#pragma once
// Erlang loss/delay formulas and infinite-buffer M/M/c metrics. These are
// the limiting cases of M/M/c/K (K = c and K -> infinity) and are used as
// independent cross-checks of the mmck module.

#include <cstddef>

namespace upa::queueing {

/// Erlang B: blocking probability of M/M/c/c with offered load
/// a = alpha/nu erlangs. Evaluated by the standard stable recurrence.
[[nodiscard]] double erlang_b(double offered_load, std::size_t servers);

/// Erlang C: probability an arrival must wait in M/M/c (requires
/// offered_load < servers). Derived from Erlang B.
[[nodiscard]] double erlang_c(double offered_load, std::size_t servers);

/// Steady-state metrics of the infinite-buffer M/M/c queue.
struct MmcMetrics {
  double utilization = 0.0;  ///< rho = alpha / (c nu) < 1
  double wait_probability = 0.0;
  double mean_in_queue = 0.0;
  double mean_in_system = 0.0;
  double mean_wait = 0.0;
  double mean_response = 0.0;
};

[[nodiscard]] MmcMetrics mmc_metrics(double alpha, double nu,
                                     std::size_t servers);

}  // namespace upa::queueing
