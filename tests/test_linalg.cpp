// Unit tests for upa::linalg: dense matrices, LU solves, sparse CSR, and
// the iterative kernels.

#include <gtest/gtest.h>

#include <algorithm>

#include "upa/common/error.hpp"
#include "upa/linalg/iterative.hpp"
#include "upa/linalg/lu.hpp"
#include "upa/linalg/matrix.hpp"
#include "upa/linalg/sparse.hpp"

namespace ul = upa::linalg;
using upa::common::ModelError;

TEST(Matrix, ConstructAndIndex) {
  ul::Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
  EXPECT_THROW((void)m.at(2, 0), ModelError);
}

TEST(Matrix, InitializerListAndEquality) {
  ul::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  ul::Matrix same{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m, same);
  EXPECT_THROW((ul::Matrix{{1.0}, {1.0, 2.0}}), ModelError);
}

TEST(Matrix, IdentityAndTranspose) {
  const ul::Matrix i = ul::Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  ul::Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const ul::Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, ArithmeticOperators) {
  ul::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  ul::Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  const ul::Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const ul::Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), 0.0);
  const ul::Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  ul::Matrix wrong(3, 3);
  EXPECT_THROW(a += wrong, ModelError);
}

TEST(Matrix, ProductMatchesHandComputation) {
  ul::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  ul::Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const ul::Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, VectorProducts) {
  ul::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const ul::Vector x{1.0, 1.0};
  const ul::Vector ax = a * x;
  EXPECT_DOUBLE_EQ(ax[0], 3.0);
  EXPECT_DOUBLE_EQ(ax[1], 7.0);
  const ul::Vector xa = ul::left_multiply(x, a);
  EXPECT_DOUBLE_EQ(xa[0], 4.0);
  EXPECT_DOUBLE_EQ(xa[1], 6.0);
}

TEST(Matrix, Norms) {
  const ul::Vector v{-3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(ul::norm_inf(v), 3.0);
  EXPECT_DOUBLE_EQ(ul::norm_1(v), 6.0);
  EXPECT_DOUBLE_EQ(ul::dot(v, v), 14.0);
}

TEST(Lu, SolvesWellConditionedSystem) {
  ul::Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const ul::Vector b{1.0, 2.0};
  const ul::Vector x = ul::solve(a, b);
  EXPECT_NEAR(4.0 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 2.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  ul::Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const ul::Vector x = ul::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  ul::Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)ul::solve(a, {1.0, 1.0}), ModelError);
}

TEST(Lu, DeterminantWithSign) {
  ul::LuDecomposition lu(ul::Matrix{{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
  ul::LuDecomposition lu2(ul::Matrix{{2.0, 0.0}, {0.0, 3.0}});
  EXPECT_NEAR(lu2.determinant(), 6.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  ul::Matrix a{{4.0, 7.0, 2.0}, {3.0, 5.0, 1.0}, {2.0, 1.0, 6.0}};
  const ul::Matrix inv = ul::inverse(a);
  const ul::Matrix prod = a * inv;
  EXPECT_LT(ul::max_abs_diff(prod, ul::Matrix::identity(3)), 1e-10);
}

TEST(Lu, MultiRhsSolveMatchesSingle) {
  ul::Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  ul::LuDecomposition lu(a);
  ul::Matrix b{{1.0, 0.0}, {2.0, 1.0}};
  const ul::Matrix x = lu.solve(b);
  const ul::Vector x0 = lu.solve(ul::Vector{1.0, 2.0});
  EXPECT_NEAR(x(0, 0), x0[0], 1e-14);
  EXPECT_NEAR(x(1, 0), x0[1], 1e-14);
}

TEST(Sparse, AssemblySumsDuplicatesAndSkipsZeros) {
  std::vector<ul::Triplet> t{{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 0.5},
                             {1, 0, 1.0}, {1, 0, -1.0}};
  ul::SparseMatrix m(2, 2, t);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);  // cancelled out
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(Sparse, MultiplyMatchesDense) {
  std::vector<ul::Triplet> t{{0, 1, 2.0}, {1, 0, 3.0}, {1, 2, 1.0},
                             {2, 2, 4.0}};
  ul::SparseMatrix s(3, 3, t);
  const ul::Matrix d = s.to_dense();
  const ul::Vector x{1.0, 2.0, 3.0};
  const ul::Vector ys = s.multiply(x);
  const ul::Vector yd = d * x;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-14);
  const ul::Vector ls = s.left_multiply(x);
  const ul::Vector ld = ul::left_multiply(x, d);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ls[i], ld[i], 1e-14);
}

TEST(Sparse, DuplicateSummationIsInputOrderIndependent) {
  // Duplicates of one cell carry values whose sum depends on evaluation
  // order in the last ULPs (0.1 + 0.2 + 0.3 groupings differ). Assembly
  // canonicalizes the order by the values' bit patterns, so every
  // permutation of the triplet list must build the bit-identical matrix.
  std::vector<ul::Triplet> base{{0, 0, 0.1},  {0, 0, 0.2}, {0, 0, 0.3},
                                {1, 1, 1e16}, {1, 1, 1.0}, {1, 1, -1e16},
                                {0, 1, 7.5}};
  std::vector<ul::Triplet> perm = base;
  std::sort(perm.begin(), perm.end(),
            [](const ul::Triplet& a, const ul::Triplet& b) {
              return a.value < b.value;
            });
  std::vector<ul::Triplet> reversed(base.rbegin(), base.rend());
  const ul::SparseMatrix m1(2, 2, base);
  const ul::SparseMatrix m2(2, 2, perm);
  const ul::SparseMatrix m3(2, 2, reversed);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(m1.at(r, c), m2.at(r, c));
      EXPECT_EQ(m1.at(r, c), m3.at(r, c));
    }
  }
}

TEST(Sparse, RejectsOutOfRangeTriplets) {
  std::vector<ul::Triplet> t{{5, 0, 1.0}};
  EXPECT_THROW(ul::SparseMatrix(2, 2, t), ModelError);
}

TEST(Iterative, PowerIterationFindsStationary) {
  // Two-state chain: P = [[0.9, 0.1], [0.5, 0.5]]; pi = (5/6, 1/6).
  std::vector<ul::Triplet> t{{0, 0, 0.9}, {0, 1, 0.1}, {1, 0, 0.5},
                             {1, 1, 0.5}};
  ul::SparseMatrix p(2, 2, t);
  const auto result = ul::power_iteration(p);
  EXPECT_NEAR(result.solution[0], 5.0 / 6.0, 1e-10);
  EXPECT_NEAR(result.solution[1], 1.0 / 6.0, 1e-10);
}

TEST(Iterative, GaussSeidelSolvesDiagonallyDominant) {
  std::vector<ul::Triplet> t{{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0},
                             {1, 1, 3.0}};
  ul::SparseMatrix a(2, 2, t);
  const auto result = ul::gauss_seidel(a, {1.0, 2.0});
  EXPECT_NEAR(4.0 * result.solution[0] + result.solution[1], 1.0, 1e-10);
  EXPECT_NEAR(result.solution[0] + 3.0 * result.solution[1], 2.0, 1e-10);
}

TEST(Iterative, JacobiAgreesWithGaussSeidel) {
  std::vector<ul::Triplet> t{{0, 0, 5.0}, {0, 1, 2.0}, {1, 0, 1.0},
                             {1, 1, 4.0}};
  ul::SparseMatrix a(2, 2, t);
  const auto gs = ul::gauss_seidel(a, {3.0, 4.0});
  const auto j = ul::jacobi(a, {3.0, 4.0});
  EXPECT_NEAR(gs.solution[0], j.solution[0], 1e-9);
  EXPECT_NEAR(gs.solution[1], j.solution[1], 1e-9);
}

TEST(Iterative, ReportsConvergenceFailure) {
  // Not diagonally dominant; Jacobi diverges.
  std::vector<ul::Triplet> t{{0, 0, 1.0}, {0, 1, 5.0}, {1, 0, 5.0},
                             {1, 1, 1.0}};
  ul::SparseMatrix a(2, 2, t);
  ul::IterativeOptions options;
  options.max_iterations = 200;
  EXPECT_THROW((void)ul::jacobi(a, {1.0, 1.0}, options),
               upa::common::ConvergenceError);
}

TEST(Iterative, GaussSeidelRequiresNonZeroDiagonal) {
  std::vector<ul::Triplet> t{{0, 1, 1.0}, {1, 0, 1.0}};
  ul::SparseMatrix a(2, 2, t);
  EXPECT_THROW((void)ul::gauss_seidel(a, {1.0, 1.0}), ModelError);
}

/// A diagonally dominant tridiagonal system of size n with a small
/// perturbation knob on the diagonal, standing in for "the next grid
/// point" of a parameter sweep.
ul::SparseMatrix tridiagonal(std::size_t n, double diag_shift) {
  std::vector<ul::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0 + diag_shift});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  return ul::SparseMatrix(n, n, t);
}

TEST(Iterative, WarmStartConvergesInFewerGaussSeidelIterations) {
  constexpr std::size_t n = 64;
  const ul::Vector b(n, 1.0);
  const auto base = ul::gauss_seidel(tridiagonal(n, 0.0), b);

  // Re-solve a slightly perturbed system, cold vs warm-started from the
  // base solution. Warm starting is an accuracy-neutral accelerator: the
  // perturbed solution is close to the base one, so seeding the iterate
  // there must save iterations.
  const ul::SparseMatrix perturbed = tridiagonal(n, 1e-3);
  const auto cold = ul::gauss_seidel(perturbed, b);
  ul::IterativeOptions warm_options;
  warm_options.initial_guess = base.solution;
  const auto warm = ul::gauss_seidel(perturbed, b, warm_options);
  EXPECT_LT(warm.iterations, cold.iterations);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(warm.solution[i], cold.solution[i], 1e-8);
  }
}

TEST(Iterative, EmptyInitialGuessReproducesDefaultBitForBit) {
  constexpr std::size_t n = 32;
  const ul::Vector b(n, 1.0);
  const ul::SparseMatrix a = tridiagonal(n, 0.0);
  const auto pinned = ul::gauss_seidel(a, b);
  ul::IterativeOptions options;  // initial_guess defaults to empty
  const auto defaulted = ul::gauss_seidel(a, b, options);
  EXPECT_EQ(pinned.iterations, defaulted.iterations);
  EXPECT_EQ(pinned.solution, defaulted.solution);

  std::vector<ul::Triplet> t{{0, 0, 0.9}, {0, 1, 0.1}, {1, 0, 0.5},
                             {1, 1, 0.5}};
  const ul::SparseMatrix p(2, 2, t);
  const auto pi_default = ul::power_iteration(p);
  const auto pi_explicit = ul::power_iteration(p, options);
  EXPECT_EQ(pi_default.iterations, pi_explicit.iterations);
  EXPECT_EQ(pi_default.solution, pi_explicit.solution);
}

TEST(Iterative, WarmStartSeedsPowerIterationAfterNormalization) {
  std::vector<ul::Triplet> t{{0, 0, 0.9}, {0, 1, 0.1}, {1, 0, 0.5},
                             {1, 1, 0.5}};
  const ul::SparseMatrix p(2, 2, t);
  const auto cold = ul::power_iteration(p);
  ul::IterativeOptions options;
  options.initial_guess = {5.0, 1.0};  // un-normalized, near the answer
  const auto warm = ul::power_iteration(p, options);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_NEAR(warm.solution[0], 5.0 / 6.0, 1e-10);
}

TEST(Iterative, WarmStartRejectsSizeMismatch) {
  const ul::SparseMatrix a = tridiagonal(4, 0.0);
  ul::IterativeOptions options;
  options.initial_guess = {1.0, 2.0};  // wrong size
  EXPECT_THROW((void)ul::gauss_seidel(a, ul::Vector(4, 1.0), options),
               ModelError);
  EXPECT_THROW((void)ul::jacobi(a, ul::Vector(4, 1.0), options), ModelError);
  EXPECT_THROW((void)ul::power_iteration(a, options), ModelError);
}
