// Dashboard-scale persistent-cache attach: the cost of coming back up
// with a cache directory holding ~10^5..10^6 records.
//
// The eager attach (the original PersistentCache behavior) decodes and
// seeds EVERY record at construction -- O(total value bytes) before the
// process can serve anything. The lazy attach mmaps each segment and
// loads its *.upaidx sidecar (sorted key-digest -> offset), so startup
// is O(index bytes) and values decode on first touch. This harness
// measures both on the same generated directory and gates bit-for-bit
// identity of the values each path serves:
//
//   fig11_mmap     eager-vs-lazy attach wall time at >= 100k records
//                  (CI gates speedup >= 5x and results_identical = 1)
//   fig11_compact  first-wins merge of the duplicate-laden directory,
//                  attach time over the compacted output, and identity
//                  of the surviving records
//
// Both sections carry the speedup / hit_rate / results_identical keys
// the shared BENCH_cache.json identity check iterates over.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "upa/cache/compact.hpp"
#include "upa/cache/eval_cache.hpp"
#include "upa/cache/index.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cache/segment.hpp"
#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"

namespace {

namespace cache = upa::cache;
namespace cm = upa::common;
namespace fs = std::filesystem;

constexpr std::size_t kSegments = 6;
constexpr std::size_t kRecordsPerSegment = 20000;
/// The first keys of segment 0 are re-appended by every later segment:
/// cross-segment duplicates for first-wins dedupe to drop.
constexpr std::size_t kDuplicatesPerSegment = 1000;
constexpr std::size_t kDistinct = kSegments * kRecordsPerSegment;

/// Big enough shards that neither attach mode evicts (eviction would
/// both skew the timing and break the identity probes).
cache::EvalCache::Config scale_config() {
  return cache::EvalCache::Config{16, 16384};
}

cache::CacheKey key_of(std::uint64_t i) {
  cache::KeyBuilder kb("bench.scale", 1);
  kb.add(static_cast<double>(i));
  return std::move(kb).finish();
}

double value_of(std::uint64_t i) {
  return 1.0 / (1.0 + static_cast<double>(i));
}

std::string value_bytes_of(std::uint64_t i) {
  cache::ByteWriter w;
  w.put_double(value_of(i));
  return std::move(w).take();
}

/// Writes the benchmark directory: kSegments sealed segments of
/// kRecordsPerSegment fresh records each, plus kDuplicatesPerSegment
/// repeats of segment 0's first keys in every later segment.
void generate_directory(const std::string& dir) {
  for (std::size_t s = 0; s < kSegments; ++s) {
    char name[32];
    std::snprintf(name, sizeof name, "segment-%06zu.upaseg", s);
    cache::SegmentFile segment(dir + "/" + name);
    const std::uint64_t base = s * kRecordsPerSegment;
    for (std::size_t r = 0; r < kRecordsPerSegment; ++r) {
      const std::uint64_t i = base + r;
      segment.append({"f64", key_of(i).bytes, value_bytes_of(i)});
    }
    if (s > 0) {
      for (std::size_t r = 0; r < kDuplicatesPerSegment; ++r) {
        segment.append({"f64", key_of(r).bytes, value_bytes_of(r)});
      }
    }
  }
}

/// Probes `count` keys spread across the space through `ec` with a
/// throwing compute (every probe MUST be served, memory or disk) and
/// checks each value. Returns false on any mismatch.
bool probe_identical(cache::EvalCache& ec, std::size_t count) {
  const std::uint64_t stride = kDistinct / count;
  for (std::size_t p = 0; p < count; ++p) {
    const std::uint64_t i = p * stride;
    const auto value = ec.get_or_compute<double>(key_of(i), []() -> double {
      throw upa::common::ModelError("probe missed: record not served");
    });
    if (*value != value_of(i)) return false;
  }
  return true;
}

void bench_cache_scale() {
  upa::bench::print_header(
      "cache attach at dashboard scale",
      "Eager (decode everything up front) vs lazy (mmap + on-disk index)\n"
      "attach of a persistent cache directory with >= 100k records.\n"
      "Expected shape: lazy attach cost is the index load, >= 5x below\n"
      "the eager decode; both paths serve bit-identical values.");

  const std::string dir =
      (fs::temp_directory_path() / "upa_bench_cache_scale").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const double generate_s =
      upa::bench::wall_seconds([&] { generate_directory(dir); });

  // Pre-build the *.upaidx sidecars once, untimed: the steady state a
  // dashboard restart sees (every sealed segment indexed by the process
  // that wrote or last compacted it). The build cost is reported.
  double index_build_s = upa::bench::wall_seconds([&] {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() != cache::kSegmentExtension) continue;
      const cache::MappedFile file(entry.path().string());
      const auto result =
          cache::load_or_build_index(entry.path().string(), file);
      UPA_REQUIRE(result.segment_ok && result.index.entries.size() > 0,
                  "index build failed for " + entry.path().string());
    }
  });

  // Eager attach: decode + seed every record at construction.
  cache::EvalCache eager_cache(scale_config());
  double eager_stats_replayed = 0.0;
  const double eager_s = upa::bench::wall_seconds([&] {
    cache::PersistConfig config;
    config.attach = cache::PersistConfig::Attach::kEager;
    cache::PersistentCache tier(eager_cache, dir, config);
    eager_stats_replayed = double(tier.stats().records_replayed);
  });

  // Lazy attach: open mappings + load indexes; values stay on disk.
  cache::EvalCache lazy_cache(scale_config());
  cache::PersistStats lazy_stats;
  std::vector<std::unique_ptr<cache::PersistentCache>> lazy_holder;
  const double lazy_s = upa::bench::wall_seconds([&] {
    lazy_holder.push_back(
        std::make_unique<cache::PersistentCache>(lazy_cache, dir));
    lazy_stats = lazy_holder.back()->stats();
  });
  cache::PersistentCache& lazy_tier = *lazy_holder.back();

  // Identity: both paths must serve the same values; the lazy probes
  // fault records in from disk through the index.
  constexpr std::size_t kProbes = 5000;
  const bool eager_identical = probe_identical(eager_cache, kProbes);
  double probe_s = 0.0;
  bool lazy_identical = false;
  probe_s = upa::bench::wall_seconds(
      [&] { lazy_identical = probe_identical(lazy_cache, kProbes); });
  const bool identical = eager_identical && lazy_identical;
  const cache::CacheStats lazy_cache_stats = lazy_cache.stats();
  const cache::PersistStats lazy_after = lazy_tier.stats();

  const double speedup = eager_s / lazy_s;
  std::cout << "Attach timing (" << kDistinct << " distinct records, "
            << kSegments << " segments, generated in "
            << cm::fmt(generate_s, 3) << "s, indexed in "
            << cm::fmt(index_build_s, 3) << "s):\n"
            << "  eager attach seconds : " << cm::fmt(eager_s, 4) << " ("
            << eager_stats_replayed << " records decoded)\n"
            << "  lazy attach seconds  : " << cm::fmt(lazy_s, 4) << " ("
            << lazy_stats.records_indexed << " records indexed, "
            << lazy_stats.bytes_mapped << " bytes mapped)\n"
            << "  attach speedup       : " << cm::fmt(speedup, 2) << "x\n"
            << "  probe wall seconds   : " << cm::fmt(probe_s, 4) << " ("
            << kProbes << " probes, " << lazy_after.disk_hits
            << " disk hits)\n"
            << "  results identical    : " << (identical ? "yes" : "NO!")
            << "\n\n";

  upa::bench::write_bench_json(
      "BENCH_cache.json", "fig11_mmap",
      {{"records", double(kDistinct)},
       {"segments", double(kSegments)},
       {"eager_attach_seconds", eager_s},
       {"lazy_attach_seconds", lazy_s},
       {"speedup", speedup},
       {"index_build_seconds", index_build_s},
       {"records_indexed", double(lazy_stats.records_indexed)},
       {"bytes_mapped", double(lazy_stats.bytes_mapped)},
       {"probe_seconds", probe_s},
       {"probes", double(kProbes)},
       {"disk_hits", double(lazy_after.disk_hits)},
       {"hit_rate", lazy_cache_stats.hit_rate()},
       {"results_identical", identical ? 1.0 : 0.0}});

  // Compaction: merge the duplicate-laden directory first-wins and
  // re-attach over the single compacted segment.
  lazy_holder.clear();  // release the mappings before files are removed
  cache::CompactionStats compaction;
  const double compact_s = upa::bench::wall_seconds(
      [&] { compaction = cache::compact_directory(dir); });
  UPA_REQUIRE(compaction.performed, "compaction did not run");

  cache::EvalCache compacted_cache(scale_config());
  cache::PersistStats compacted_stats;
  double compacted_attach_s = 0.0;
  bool compacted_identical = false;
  {
    std::unique_ptr<cache::PersistentCache> tier;
    compacted_attach_s = upa::bench::wall_seconds([&] {
      tier = std::make_unique<cache::PersistentCache>(compacted_cache, dir);
      compacted_stats = tier->stats();
    });
    compacted_identical = probe_identical(compacted_cache, kProbes);
  }

  const double expected_dropped =
      double((kSegments - 1) * kDuplicatesPerSegment);
  std::cout << "Compaction (" << compaction.segments_in << " segments, "
            << compaction.records_in << " records in):\n"
            << "  compact wall seconds : " << cm::fmt(compact_s, 3) << "\n"
            << "  records kept         : " << compaction.records_kept << "\n"
            << "  duplicates dropped   : "
            << compaction.records_dropped_duplicate << " (expected "
            << expected_dropped << ")\n"
            << "  re-attach seconds    : " << cm::fmt(compacted_attach_s, 4)
            << "\n"
            << "  results identical    : "
            << (compacted_identical ? "yes" : "NO!") << "\n\n";

  upa::bench::write_bench_json(
      "BENCH_cache.json", "fig11_compact",
      {{"segments_in", double(compaction.segments_in)},
       {"records_in", double(compaction.records_in)},
       {"records_kept", double(compaction.records_kept)},
       {"records_dropped_duplicate",
        double(compaction.records_dropped_duplicate)},
       {"expected_dropped_duplicate", expected_dropped},
       {"compact_wall_seconds", compact_s},
       {"compacted_attach_seconds", compacted_attach_s},
       // Attach-time win of compacting away the duplicate tail,
       // reported for trend lines; the identity flag is the gate.
       {"speedup", lazy_s / compacted_attach_s},
       {"hit_rate", compacted_cache.stats().hit_rate()},
       {"results_identical", compacted_identical &&
                                     compaction.records_dropped_duplicate ==
                                         expected_dropped
                                 ? 1.0
                                 : 0.0}});

  fs::remove_all(dir);
}

void bm_indexed_lookup(benchmark::State& state) {
  // Steady-state cost of one lazy disk lookup: binary-search the
  // index, CRC-check one record, decode one double.
  const std::string dir =
      (fs::temp_directory_path() / "upa_bench_cache_scale_bm").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    cache::SegmentFile segment(dir + "/segment-000000.upaseg");
    for (std::uint64_t i = 0; i < 10000; ++i) {
      segment.append({"f64", key_of(i).bytes, value_bytes_of(i)});
    }
  }
  cache::EvalCache ec(scale_config());
  cache::PersistentCache tier(ec, dir);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ec.clear();  // every iteration faults the record back in from disk
    const auto value =
        ec.get_or_compute<double>(key_of(i % 10000), []() -> double {
          throw upa::common::ModelError("bm probe missed");
        });
    benchmark::DoNotOptimize(*value);
    i += 37;
  }
  fs::remove_all(dir);
}
BENCHMARK(bm_indexed_lookup);

}  // namespace

UPA_BENCH_MAIN(bench_cache_scale)
