#include "upa/core/performability.hpp"

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::core {

CompositeAvailabilityModel::CompositeAvailabilityModel(
    markov::Ctmc chain, std::vector<double> service_probability)
    : chain_(std::move(chain)),
      service_probability_(std::move(service_probability)) {
  UPA_REQUIRE(service_probability_.size() == chain_.state_count(),
              "one service probability per state required");
  for (double p : service_probability_) {
    UPA_REQUIRE(upa::common::is_probability(p),
                "service probabilities must lie in [0, 1]");
  }
}

double CompositeAvailabilityModel::availability() const {
  const linalg::Vector pi = chain_.steady_state();
  double a = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    a += pi[s] * service_probability_[s];
  }
  return a;
}

CompositeAvailabilityModel::Breakdown CompositeAvailabilityModel::breakdown()
    const {
  const linalg::Vector pi = chain_.steady_state();
  Breakdown b;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    const double r = service_probability_[s];
    b.availability += pi[s] * r;
    if (r == 0.0) {
      b.downtime_loss += pi[s];
    } else {
      b.performance_loss += pi[s] * (1.0 - r);
    }
  }
  return b;
}

double timescale_separation_ratio(const markov::Ctmc& chain,
                                  double performance_rate) {
  UPA_REQUIRE(performance_rate > 0.0, "performance rate must be positive");
  return chain.max_exit_rate() / performance_rate;
}

}  // namespace upa::core
