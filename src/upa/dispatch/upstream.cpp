#include "upa/dispatch/upstream.hpp"

#include <cstdlib>

#include "upa/common/error.hpp"

namespace upa::dispatch {

UpstreamAddress parse_upstream_address(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  UPA_REQUIRE(colon != std::string::npos && colon > 0 &&
                  colon + 1 < text.size(),
              "upstream address must be host:port, got '" + text + "'");
  UpstreamAddress address;
  address.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  UPA_REQUIRE(end != nullptr && *end == '\0' && port > 0 && port <= 65535,
              "upstream port must be 1..65535, got '" + port_text + "'");
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

std::vector<UpstreamAddress> parse_upstream_list(const std::string& text) {
  std::vector<UpstreamAddress> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string piece = text.substr(start, comma - start);
    if (!piece.empty()) out.push_back(parse_upstream_address(piece));
    start = comma + 1;
  }
  UPA_REQUIRE(!out.empty(), "upstream list is empty");
  return out;
}

std::string attempt_outcome_name(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kOk: return "ok";
    case AttemptOutcome::kRejected: return "rejected";
    case AttemptOutcome::kDeadline: return "deadline";
    case AttemptOutcome::kError: return "error";
    case AttemptOutcome::kTransport: return "transport_error";
  }
  return "?";
}

UpstreamPool::UpstreamPool(std::vector<UpstreamAddress> addresses) {
  UPA_REQUIRE(!addresses.empty(), "UpstreamPool needs at least one upstream");
  states_.reserve(addresses.size());
  for (UpstreamAddress& address : addresses) {
    State state;
    state.address = std::move(address);
    states_.push_back(std::move(state));
  }
}

const UpstreamAddress& UpstreamPool::address(std::size_t index) const {
  UPA_REQUIRE(index < states_.size(), "upstream index out of range");
  return states_[index].address;  // immutable after construction
}

void UpstreamPool::begin_call(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = states_.at(index);
  ++s.outstanding;
  ++s.attempts;
}

void UpstreamPool::end_call(std::size_t index, AttemptOutcome outcome,
                            double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = states_.at(index);
  if (s.outstanding > 0) --s.outstanding;
  s.latency_sum_seconds += latency_seconds;
  switch (outcome) {
    case AttemptOutcome::kOk: ++s.ok; break;
    case AttemptOutcome::kRejected: ++s.rejected; break;
    case AttemptOutcome::kDeadline: ++s.deadline; break;
    case AttemptOutcome::kError: ++s.errors; break;
    case AttemptOutcome::kTransport: ++s.transport; break;
  }
}

bool UpstreamPool::record_probe(std::size_t index, bool ok,
                                std::size_t unhealthy_threshold,
                                std::size_t healthy_threshold) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = states_.at(index);
  if (ok) {
    s.consecutive_probe_failures = 0;
    ++s.consecutive_probe_successes;
    if (!s.healthy && s.consecutive_probe_successes >= healthy_threshold) {
      s.healthy = true;
      ++s.readmissions;
      return true;
    }
    return false;
  }
  ++s.probe_failures;
  s.consecutive_probe_successes = 0;
  ++s.consecutive_probe_failures;
  if (s.healthy && s.consecutive_probe_failures >= unhealthy_threshold) {
    s.healthy = false;
    ++s.ejections;
    return true;
  }
  return false;
}

bool UpstreamPool::healthy(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return states_.at(index).healthy;
}

void UpstreamPool::balancing_view(
    std::vector<bool>& healthy_out,
    std::vector<std::size_t>& outstanding_out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  healthy_out.resize(states_.size());
  outstanding_out.resize(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    healthy_out[i] = states_[i].healthy;
    outstanding_out[i] = states_[i].outstanding;
  }
}

std::vector<UpstreamSnapshot> UpstreamPool::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<UpstreamSnapshot> out;
  out.reserve(states_.size());
  for (const State& s : states_) {
    UpstreamSnapshot snap;
    snap.address = s.address;
    snap.healthy = s.healthy;
    snap.outstanding = s.outstanding;
    snap.attempts = s.attempts;
    snap.ok = s.ok;
    snap.rejected = s.rejected;
    snap.deadline = s.deadline;
    snap.errors = s.errors;
    snap.transport = s.transport;
    snap.probe_failures = s.probe_failures;
    snap.ejections = s.ejections;
    snap.readmissions = s.readmissions;
    snap.latency_sum_seconds = s.latency_sum_seconds;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace upa::dispatch
