#include "upa/ta/lan_model.hpp"

#include <cmath>
#include <string>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::ta {
namespace {

void check(const LanComponentParams& p) {
  UPA_REQUIRE(upa::common::is_probability(p.medium) &&
                  upa::common::is_probability(p.tap),
              "component availabilities must lie in [0, 1]");
  UPA_REQUIRE(p.stations >= 2, "a LAN needs at least two stations");
  UPA_REQUIRE(p.redundant_media >= 1, "need at least one medium");
}

}  // namespace

double bus_lan_availability(const LanComponentParams& p) {
  check(p);
  const double media_group =
      1.0 - std::pow(1.0 - p.medium, static_cast<double>(p.redundant_media));
  return media_group * std::pow(p.tap, static_cast<double>(p.stations));
}

double ring_lan_availability(double link_availability,
                             double adapter_availability,
                             std::size_t stations) {
  UPA_REQUIRE(upa::common::is_probability(link_availability) &&
                  upa::common::is_probability(adapter_availability),
              "availabilities must lie in [0, 1]");
  UPA_REQUIRE(stations >= 2, "a ring needs at least two stations");
  // All adapters up; links form an (n-1)-out-of-n:G group thanks to the
  // wrap capability.
  const double adapters =
      std::pow(adapter_availability, static_cast<double>(stations));
  const double links = upa::common::k_out_of_n(
      static_cast<unsigned>(stations - 1), static_cast<unsigned>(stations),
      link_availability);
  return adapters * links;
}

rbd::Block bus_lan_rbd(const LanComponentParams& p,
                       rbd::ParamMap& availabilities) {
  check(p);
  std::vector<rbd::Block> media;
  for (std::size_t m = 0; m < p.redundant_media; ++m) {
    const std::string name = "medium#" + std::to_string(m);
    availabilities[name] = p.medium;
    media.push_back(rbd::Block::component(name));
  }
  std::vector<rbd::Block> series;
  series.push_back(rbd::Block::parallel(std::move(media)));
  for (std::size_t t = 0; t < p.stations; ++t) {
    const std::string name = "tap#" + std::to_string(t);
    availabilities[name] = p.tap;
    series.push_back(rbd::Block::component(name));
  }
  return rbd::Block::series(std::move(series));
}

}  // namespace upa::ta
