#pragma once
// Importance measures on fault trees, computed exactly through the BDD:
// conditioning a basic event up/down is one probability evaluation each,
// so shared events are handled exactly (unlike series/parallel formulas).

#include <string>
#include <vector>

#include "upa/faulttree/tree.hpp"

namespace upa::faulttree {

/// Importance of one basic event for the top event.
struct EventImportance {
  std::string event;
  /// Birnbaum: P(top | event occurred) - P(top | event not occurred).
  double birnbaum = 0.0;
  /// Criticality: birnbaum * P(event) / P(top).
  double criticality = 0.0;
  /// Fussell-Vesely: P(event contributes to top) approximated as
  /// P(top with event forced) ... computed exactly as
  /// 1 - P(top | event not occurred) / P(top).
  double fussell_vesely = 0.0;
};

/// Importance of every basic event, sorted by descending Birnbaum.
[[nodiscard]] std::vector<EventImportance> event_importance_ranking(
    const FaultTree& tree);

}  // namespace upa::faulttree
