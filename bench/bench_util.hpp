#pragma once
// Shared plumbing for the reproduction harnesses. Every bench binary
// first prints the paper artifact it regenerates (table rows / figure
// series, paper value vs reproduced value where applicable), then runs
// google-benchmark timings of the underlying kernels.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "upa/cache/persist.hpp"
#include "upa/common/bench_json.hpp"
#include "upa/common/table.hpp"
#include "upa/ta/params.hpp"

namespace upa::bench {

/// Paper configuration shortcuts.
[[nodiscard]] inline ta::TaParameters paper_params(std::size_t n_reservation) {
  return ta::TaParameters::paper_defaults().with_reservation_systems(
      n_reservation);
}

/// Section-merge writer for BENCH_*.json artifacts. The implementation
/// lives in upa/common/bench_json.{hpp,cpp} because upa_loadgen -- a
/// shipped tool, not a bench binary -- writes the same artifacts.
using common::write_bench_json;

/// Wall-clock seconds spent in fn().
template <typename Fn>
[[nodiscard]] inline double wall_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Extracts `--cache-dir DIR` (or `--cache-dir=DIR`) from argv before
/// google-benchmark sees it -- ReportUnrecognizedArguments would
/// otherwise abort the run -- and attaches the on-disk persistence tier
/// so a second process re-run starts warm from the segment files.
inline void attach_cache_dir_flag(int& argc, char** argv) {
  std::string dir;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
      dir = argv[i] + 12;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (dir.empty()) return;
  upa::cache::set_enabled(true);
  const upa::cache::PersistStats loaded =
      upa::cache::attach_global_persistence(dir).stats();
  std::cout << "cache persistence (" << dir << "): " << loaded.segments_loaded
            << " segments loaded, " << loaded.records_replayed
            << " records replayed\n\n";
}

inline void print_header(const char* artifact, const char* description) {
  std::cout << "==============================================================="
               "=\n"
            << "Reproduction of " << artifact << "\n"
            << description << "\n"
            << "==============================================================="
               "=\n\n";
}

}  // namespace upa::bench

/// Prints the reproduction output, then runs registered benchmarks.
#define UPA_BENCH_MAIN(print_fn)                      \
  int main(int argc, char** argv) {                   \
    upa::bench::attach_cache_dir_flag(argc, argv);    \
    print_fn();                                       \
    benchmark::Initialize(&argc, argv);               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();              \
    benchmark::Shutdown();                            \
    return 0;                                         \
  }
