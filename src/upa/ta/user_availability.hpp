#pragma once
// User-level availability of the travel agency: the paper's eq. (10)
// closed form, the hierarchical-model evaluation (which must agree), and
// the Section 5.2 scenario-category breakdown behind Figure 13.

#include <map>

#include "upa/core/hierarchy.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::ta {

/// Paper eq. (10): closed-form user-perceived availability for a user
/// class under the given parameters.
[[nodiscard]] double user_availability_eq10(UserClass uc,
                                            const TaParameters& p);

/// The same measure evaluated through the generic four-level hierarchy
/// (core::UserLevelModel) — service-sharing across functions handled by
/// exact conditioning. Equals eq. (10) to floating-point accuracy; kept
/// separate as a structural cross-check.
[[nodiscard]] double user_availability_hierarchical(UserClass uc,
                                                    const TaParameters& p);

/// Per-category unavailability contributions UA(SC_i) (probability units;
/// multiply by 8760 for hours/year) plus the total.
struct CategoryBreakdown {
  std::map<ScenarioCategory, double> unavailability;
  double total_unavailability = 0.0;
};
[[nodiscard]] CategoryBreakdown category_breakdown(UserClass uc,
                                                   const TaParameters& p);

}  // namespace upa::ta
