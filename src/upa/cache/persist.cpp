#include "upa/cache/persist.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"

namespace upa::cache {

namespace fs = std::filesystem;

namespace {

/// Sorted *.upaseg paths under `directory` (replay order).
std::vector<std::string> list_segments(const std::string& directory) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::directory_iterator it(directory, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& path = it->path();
    if (path.extension() == kSegmentExtension) {
      paths.push_back(path.string());
    }
  }
  UPA_REQUIRE(!ec, "cannot list cache directory '" + directory +
                       "': " + ec.message());
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// Best-effort read of the pid a lock file was stamped with, for the
/// "held by pid N" error message. Empty when unreadable.
std::string read_lock_holder(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return {};
  char buffer[32];
  const ssize_t got = ::read(fd, buffer, sizeof(buffer) - 1);
  ::close(fd);
  if (got <= 0) return {};
  buffer[got] = '\0';
  std::string holder(buffer);
  while (!holder.empty() &&
         (holder.back() == '\n' || holder.back() == '\r')) {
    holder.pop_back();
  }
  return holder;
}

}  // namespace

DirectoryLock::DirectoryLock(const std::string& directory) {
  const std::string path =
      directory + "/" + std::string(kLockFileName);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  UPA_REQUIRE(fd_ >= 0, "cannot open cache lock file '" + path +
                            "': " + std::strerror(errno));
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    const int error = errno;
    const std::string holder = read_lock_holder(path);
    ::close(fd_);
    fd_ = -1;
    if (error == EWOULDBLOCK || error == EAGAIN) {
      throw common::ModelError(
          "cache directory '" + directory + "' already has a writer" +
          (holder.empty() ? std::string()
                          : " (pid " + holder + ")") +
          "; run against it after that process exits, or use a "
          "read-only verb");
    }
    throw common::ModelError("cannot lock cache directory '" + directory +
                             "': " + std::strerror(error));
  }
  // Stamp the holder pid purely for diagnostics -- the flock is the
  // actual exclusion, so a stale stamp after a crash locks nothing.
  const std::string stamp = std::to_string(::getpid()) + "\n";
  (void)::ftruncate(fd_, 0);
  (void)::pwrite(fd_, stamp.data(), stamp.size(), 0);
}

DirectoryLock::~DirectoryLock() { release(); }

DirectoryLock::DirectoryLock(DirectoryLock&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

DirectoryLock& DirectoryLock::operator=(DirectoryLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void DirectoryLock::release() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);  // closing the descriptor drops the flock
    fd_ = -1;
  }
}

PersistentCache::PersistentCache(EvalCache& cache, std::string directory,
                                 PersistConfig config)
    : cache_(cache), directory_(std::move(directory)), config_(config) {
  UPA_REQUIRE(!directory_.empty(), "cache directory must be non-empty");
  std::error_code ec;
  fs::create_directories(directory_, ec);
  UPA_REQUIRE(!ec, "cannot create cache directory '" + directory_ +
                       "': " + ec.message());
  lock_ = DirectoryLock(directory_);
  if (config_.attach == PersistConfig::Attach::kEager) {
    load_directory_eager();
  } else {
    load_directory_lazy();
    cache_.set_source(this);
  }
  cache_.set_sink(this);
}

PersistentCache::~PersistentCache() {
  stop_maintenance();
  cache_.set_sink(nullptr);
  cache_.set_source(nullptr);
}

void PersistentCache::load_directory_eager() {
  const std::vector<std::string> paths = list_segments(directory_);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& path : paths) {
    SegmentLoadStats file_stats;
    load_segment_file(path, file_stats, [&](SegmentRecord&& record) {
      bool inserted = false;
      if (seed_record(record, &inserted)) {
        ++stats_.records_replayed;
        persisted_digests_.insert(key_digest(record.key_bytes));
      } else {
        ++stats_.records_skipped_decode;
      }
    });
    stats_.segments_loaded += file_stats.segments_loaded;
    stats_.segments_rejected += file_stats.segments_rejected;
    stats_.records_skipped_crc += file_stats.records_skipped_crc;
  }
}

void PersistentCache::load_directory_lazy() {
  const std::vector<std::string> paths = list_segments(directory_);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& path : paths) attach_segment(path);
}

void PersistentCache::attach_segment(const std::string& path) {
  AttachedSegment segment;
  segment.path = path;
  segment.file = MappedFile(path);
  IndexLoadResult result = load_or_build_index(path, segment.file);
  if (!result.segment_ok) {
    ++stats_.segments_rejected;
    return;
  }
  ++stats_.segments_loaded;
  if (result.loaded) ++stats_.indexes_loaded;
  if (result.rebuilt) {
    ++stats_.indexes_rebuilt;
    stats_.records_skipped_crc += result.scan.records_skipped_crc;
  }
  segment.entries = std::move(result.index.entries);
  stats_.records_indexed += segment.entries.size();
  if (segment.file.mapped()) stats_.bytes_mapped += segment.file.size();
  // Deliberately NOT folded into persisted_digests_: the entries are
  // already sorted by digest, so append dedupe binary-searches them in
  // place (digest_on_disk). Building a 10^5..10^6-element hash set here
  // would cost more than the whole index load -- the attach speedup the
  // lazy path exists for.
  segments_.push_back(std::move(segment));
}

bool PersistentCache::digest_on_disk(std::uint64_t digest) const {
  for (const AttachedSegment& segment : segments_) {
    if (std::binary_search(segment.entries.begin(), segment.entries.end(),
                           IndexEntry{digest, 0},
                           [](const IndexEntry& a, const IndexEntry& b) {
                             return a.digest < b.digest;
                           })) {
      return true;
    }
  }
  return false;
}

bool PersistentCache::lookup(const CacheKey& key, StoredValue* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const AttachedSegment& segment : segments_) {
    for (const std::uint64_t offset :
         offsets_for_digest(segment.entries, key.digest)) {
      SegmentRecord record;
      if (!read_record_at(segment.file, offset, &record)) continue;
      if (record.key_bytes != key.bytes) continue;  // digest collision
      const ValueCodec* codec = codec_for_tag(record.type_tag);
      if (codec == nullptr) {
        ++stats_.records_skipped_decode;
        continue;
      }
      try {
        *out = codec->deserialize(record.value_bytes);
      } catch (const common::ModelError&) {
        ++stats_.records_skipped_decode;
        continue;
      }
      ++stats_.disk_hits;
      ++stats_.records_replayed;
      return true;
    }
  }
  return false;
}

bool PersistentCache::seed_record(const SegmentRecord& record,
                                  bool* inserted) {
  const ValueCodec* codec = codec_for_tag(record.type_tag);
  if (codec == nullptr) return false;
  CacheKey key;
  key.bytes = record.key_bytes;
  key.digest = key_digest(key.bytes);
  try {
    key.solver_id = solver_id_from_key_bytes(key.bytes);
    StoredValue value = codec->deserialize(record.value_bytes);
    *inserted = cache_.seed(key, std::move(value));
  } catch (const common::ModelError&) {
    return false;
  }
  return true;
}

void PersistentCache::append_record(const std::string& type_tag,
                                    const std::string& key_bytes,
                                    const std::string& value_bytes) {
  // Callers hold mutex_. The active segment is named after the process
  // so sequential runs sharing a directory never clobber each other's
  // file; a suffix probe handles pid reuse across runs. (Concurrent
  // writers are excluded outright by the DirectoryLock.)
  try {
    if (active_ == nullptr) {
      const std::string stem =
          directory_ + "/segment-p" + std::to_string(::getpid());
      std::string path = stem + std::string(kSegmentExtension);
      for (int n = 1; fs::exists(path); ++n) {
        path = stem + "-" + std::to_string(n) +
               std::string(kSegmentExtension);
      }
      active_ = std::make_unique<SegmentFile>(path);
    }
    active_->append(SegmentRecord{type_tag, key_bytes, value_bytes});
    ++stats_.records_appended;
  } catch (const std::exception&) {
    // An unwritable tier must never take the workload down; the value
    // stays cached in memory and simply will not survive a restart.
    ++stats_.write_errors;
  }
}

void PersistentCache::on_insert(const CacheKey& key,
                                const StoredValue& value) {
  const ValueCodec* codec = codec_for_type(*value.type);
  if (codec == nullptr) return;  // unknown type: memory-only
  std::lock_guard<std::mutex> lock(mutex_);
  // Already on disk (or a digest collision: skip, recompute later -- a
  // collision can lose an append, never a value). Sealed segments are
  // consulted via their sorted indexes; the hash set only tracks keys
  // THIS process appended or eager-seeded.
  if (digest_on_disk(key.digest)) return;
  if (!persisted_digests_.insert(key.digest).second) return;
  append_record(std::string(codec->type_tag), key.bytes,
                codec->serialize(value.value.get()));
}

ImportStats PersistentCache::import_blob(std::string_view segment_bytes) {
  ImportStats import;
  SegmentLoadStats blob_stats;
  std::lock_guard<std::mutex> lock(mutex_);
  const bool accepted =
      load_segment_bytes(segment_bytes, blob_stats,
                         [&](SegmentRecord&& record) {
                           bool inserted = false;
                           if (!seed_record(record, &inserted)) {
                             ++import.records_skipped;
                             ++stats_.records_skipped_decode;
                             return;
                           }
                           ++stats_.records_replayed;
                           if (inserted) {
                             ++import.records_seeded;
                           } else {
                             ++import.records_duplicate;
                           }
                           const std::uint64_t digest =
                               key_digest(record.key_bytes);
                           if (!digest_on_disk(digest) &&
                               persisted_digests_.insert(digest).second) {
                             const std::uint64_t before =
                                 stats_.records_appended;
                             append_record(record.type_tag,
                                           record.key_bytes,
                                           record.value_bytes);
                             import.records_appended +=
                                 stats_.records_appended - before;
                           }
                         });
  import.segment_rejected = !accepted;
  import.records_skipped += blob_stats.records_skipped_crc;
  stats_.records_skipped_crc += blob_stats.records_skipped_crc;
  if (!accepted) ++stats_.segments_rejected;
  return import;
}

CompactionStats PersistentCache::compact_now(std::size_t min_segments) {
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string active_path =
        active_ != nullptr ? active_->path() : std::string();
    for (const std::string& path : list_segments(directory_)) {
      if (path != active_path) paths.push_back(path);
    }
    if (paths.size() < std::max<std::size_t>(min_segments, 1)) {
      return CompactionStats{};
    }
  }

  // Merge outside the lock: the inputs are sealed files (this process
  // appends only to active_, which is excluded), and concurrent lazy
  // lookups keep reading the OLD mappings -- a deleted-but-mapped file
  // stays readable -- until the swap below.
  CompactionStats merged =
      compact_segments(paths, next_compact_path(directory_), {});
  if (!merged.performed) return merged;

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.compactions;
  stats_.compact_records_dropped += merged.records_dropped();
  if (config_.attach == PersistConfig::Attach::kLazy) {
    std::uint64_t detached_indexed = 0;
    std::uint64_t detached_mapped = 0;
    segments_.erase(
        std::remove_if(segments_.begin(), segments_.end(),
                       [&](const AttachedSegment& segment) {
                         if (std::find(paths.begin(), paths.end(),
                                       segment.path) == paths.end()) {
                           return false;
                         }
                         detached_indexed += segment.entries.size();
                         if (segment.file.mapped()) {
                           detached_mapped += segment.file.size();
                         }
                         return true;
                       }),
        segments_.end());
    stats_.records_indexed -= detached_indexed;
    stats_.bytes_mapped -= detached_mapped;
    attach_segment(merged.output_path);
    // Replay priority: "compact-*" sorts before "segment-*", so keep
    // the attach list in name order exactly like a fresh load would.
    std::sort(segments_.begin(), segments_.end(),
              [](const AttachedSegment& a, const AttachedSegment& b) {
                return a.path < b.path;
              });
  }
  return merged;
}

void PersistentCache::start_maintenance(std::chrono::milliseconds interval) {
  stop_maintenance();
  {
    std::lock_guard<std::mutex> lock(maintenance_mutex_);
    maintenance_stop_ = false;
  }
  maintenance_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(maintenance_mutex_);
    while (!maintenance_stop_) {
      if (maintenance_cv_.wait_for(lock, interval,
                                   [this] { return maintenance_stop_; })) {
        break;
      }
      lock.unlock();
      try {
        compact_now(config_.compact_min_segments);
      } catch (const std::exception&) {
        // An unwritable directory must not kill the maintenance loop;
        // the next pass retries.
      }
      lock.lock();
    }
  });
}

void PersistentCache::stop_maintenance() {
  {
    std::lock_guard<std::mutex> lock(maintenance_mutex_);
    maintenance_stop_ = true;
  }
  maintenance_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
}

PersistStats PersistentCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string export_segment_blob(EvalCache& cache, ExportStats* stats) {
  return export_delta_blob(cache, {}, stats);
}

ImportStats import_segment_blob(EvalCache& cache,
                                std::string_view segment_bytes) {
  ImportStats import;
  SegmentLoadStats blob_stats;
  const bool accepted = load_segment_bytes(
      segment_bytes, blob_stats, [&](SegmentRecord&& record) {
        const ValueCodec* codec = codec_for_tag(record.type_tag);
        if (codec == nullptr) {
          ++import.records_skipped;
          return;
        }
        CacheKey key;
        key.bytes = std::move(record.key_bytes);
        key.digest = key_digest(key.bytes);
        try {
          key.solver_id = solver_id_from_key_bytes(key.bytes);
          StoredValue value = codec->deserialize(record.value_bytes);
          if (cache.seed(key, std::move(value))) {
            ++import.records_seeded;
          } else {
            ++import.records_duplicate;
          }
        } catch (const common::ModelError&) {
          ++import.records_skipped;
        }
      });
  import.segment_rejected = !accepted;
  import.records_skipped += blob_stats.records_skipped_crc;
  return import;
}

std::vector<std::uint64_t> digest_summary(EvalCache& cache) {
  std::vector<std::uint64_t> digests;
  for (const EvalCache::SnapshotEntry& entry : cache.snapshot()) {
    digests.push_back(key_digest(entry.key_bytes));
  }
  std::sort(digests.begin(), digests.end());
  digests.erase(std::unique(digests.begin(), digests.end()),
                digests.end());
  return digests;
}

std::string encode_digests(const std::vector<std::uint64_t>& digests) {
  ByteWriter w;
  for (const std::uint64_t digest : digests) w.put_u64(digest);
  return std::move(w).take();
}

std::vector<std::uint64_t> decode_digests(std::string_view bytes) {
  UPA_REQUIRE(bytes.size() % 8 == 0,
              "digest summary bytes must be a multiple of 8");
  ByteReader r(bytes);
  std::vector<std::uint64_t> digests;
  digests.reserve(bytes.size() / 8);
  while (r.remaining() > 0) digests.push_back(r.get_u64());
  std::sort(digests.begin(), digests.end());
  return digests;
}

std::string export_delta_blob(EvalCache& cache,
                              const std::vector<std::uint64_t>& have,
                              ExportStats* stats) {
  ExportStats local;
  std::string blob = segment_header();
  for (const EvalCache::SnapshotEntry& entry : cache.snapshot()) {
    if (!have.empty() &&
        std::binary_search(have.begin(), have.end(),
                           key_digest(entry.key_bytes))) {
      continue;  // the caller already holds this key (by digest)
    }
    const ValueCodec* codec = codec_for_type(*entry.value.type);
    if (codec == nullptr) {
      ++local.skipped_no_codec;
      continue;
    }
    blob += encode_record(SegmentRecord{
        std::string(codec->type_tag), entry.key_bytes,
        codec->serialize(entry.value.value.get())});
    ++local.records;
  }
  if (stats != nullptr) *stats = local;
  return blob;
}

namespace {

/// Finalizer-strength 64-bit mixer (splitmix64). XOR-folding the MIXED
/// digests stays commutative -- replicas enumerate in different orders
/// -- while the mix keeps structured digest sets from cancelling.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

DigestFingerprint digest_fingerprint(EvalCache& cache) {
  DigestFingerprint fp;
  for (const std::uint64_t digest : digest_summary(cache)) {
    ++fp.count;
    fp.fold ^= splitmix64(digest);
  }
  return fp;
}

DeltaPage export_delta_page(EvalCache& cache,
                            const std::vector<std::uint64_t>& have,
                            std::uint64_t cursor, std::size_t max_bytes) {
  UPA_REQUIRE(max_bytes > 0, "delta page max_bytes must be positive");
  // Digest order makes the cursor meaningful across calls even though
  // the snapshots are taken independently: every digest <= cursor was
  // already shipped (or skipped), so concurrent inserts behind the
  // cursor are simply left for the NEXT round, like any gossip.
  std::vector<EvalCache::SnapshotEntry> entries = cache.snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const EvalCache::SnapshotEntry& a,
               const EvalCache::SnapshotEntry& b) {
              return key_digest(a.key_bytes) < key_digest(b.key_bytes);
            });
  DeltaPage page;
  page.blob = segment_header();
  page.next_cursor = cursor;
  std::uint64_t previous = cursor;
  for (const EvalCache::SnapshotEntry& entry : entries) {
    const std::uint64_t digest = key_digest(entry.key_bytes);
    if (digest <= cursor) continue;
    if (digest == previous) continue;  // digest dupe: first key wins
    if (std::binary_search(have.begin(), have.end(), digest)) continue;
    const ValueCodec* codec = codec_for_type(*entry.value.type);
    if (codec == nullptr) {
      ++page.skipped_no_codec;
      continue;
    }
    const std::string record = encode_record(SegmentRecord{
        std::string(codec->type_tag), entry.key_bytes,
        codec->serialize(entry.value.value.get())});
    if (page.records > 0 && page.blob.size() + record.size() > max_bytes) {
      page.complete = false;
      break;
    }
    page.blob += record;
    ++page.records;
    page.next_cursor = digest;
    previous = digest;
  }
  return page;
}

namespace {
std::mutex g_persist_mutex;
std::unique_ptr<PersistentCache> g_persist_owner;
std::atomic<PersistentCache*> g_persist{nullptr};
}  // namespace

PersistentCache& attach_global_persistence(const std::string& directory) {
  std::lock_guard<std::mutex> lock(g_persist_mutex);
  if (g_persist_owner != nullptr) {
    UPA_REQUIRE(g_persist_owner->directory() == directory,
                "cache persistence is already attached to '" +
                    g_persist_owner->directory() +
                    "'; cannot re-attach to '" + directory + "'");
    return *g_persist_owner;
  }
  g_persist_owner =
      std::make_unique<PersistentCache>(global(), directory);
  g_persist.store(g_persist_owner.get(), std::memory_order_release);
  return *g_persist_owner;
}

PersistentCache* global_persistence() noexcept {
  return g_persist.load(std::memory_order_acquire);
}

}  // namespace upa::cache
