// Extension bench: fault-injection campaigns and user resilience. The
// analytic model can only answer "what does the stochastic steady state
// look like"; this harness injects scripted and correlated outages into
// the end-to-end simulator and measures what users perceive -- with and
// without retries -- plus the retry-adjusted analytic reference.

#include <chrono>

#include "bench_util.hpp"
#include "upa/cache/eval_cache.hpp"
#include "upa/exec/parallel.hpp"
#include "upa/exec/thread_pool.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/sim/rng.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ut = upa::ta;
namespace cm = upa::common;
namespace inj = upa::inject;

constexpr double kHorizon = 20000.0;

std::vector<inj::CampaignPlan> build_plans() {
  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"web farm down 48 h",
                   inj::scripted_outage(inj::FaultTarget::kWebFarm, 1000.0,
                                        48.0, kHorizon)});
  plans.push_back({"internet down 200 h",
                   inj::scripted_outage(inj::FaultTarget::kInternet, 5000.0,
                                        200.0, kHorizon)});
  plans.push_back({"payment down 500 h",
                   inj::scripted_outage(inj::FaultTarget::kPayment, 9000.0,
                                        500.0, kHorizon)});
  // A correlated shock process: rare events that take the whole internal
  // stack down at once (power loss / operator error).
  inj::OutageProcess process;
  process.targets = {inj::FaultTarget::kWebFarm,
                     inj::FaultTarget::kApplication,
                     inj::FaultTarget::kDatabase};
  process.events_per_hour = 5e-4;
  process.mean_duration_hours = 12.0;
  process.common_cause_probability = 1.0;
  upa::sim::Xoshiro256 rng(20260806);
  plans.push_back(
      {"common-cause shocks", inj::sample_outage_plan(process, kHorizon, rng)});
  return plans;
}

void print_campaign() {
  upa::bench::print_header(
      "Fault-injection campaigns (robustness extension)",
      "Scripted and correlated outages replayed against the end-to-end\n"
      "simulator at a common seed; per-plan perceived-availability deltas\n"
      "for the fail-fast user (R = 0) and a retrying user (R = 2,\n"
      "exponential backoff). N_F=N_H=N_C=2, class B.");

  const auto p = upa::bench::paper_params(2);
  const auto plans = build_plans();

  // The retry-policy design points are independent campaigns, so the
  // sweep itself fans out; each campaign's own fan-out stays serial
  // (one parallel level at a time).
  const std::vector<std::size_t> retry_points{0, 2};
  const auto campaigns = upa::exec::parallel_sweep(
      retry_points, [&](std::size_t retries) {
        inj::CampaignOptions coptions;
        coptions.threads = 1;
        coptions.end_to_end.horizon_hours = kHorizon;
        coptions.end_to_end.sessions_per_replication = 12000;
        coptions.end_to_end.replications = 4;
        coptions.end_to_end.seed = 1903;
        coptions.end_to_end.threads = 1;
        coptions.end_to_end.retry.max_retries = retries;
        coptions.end_to_end.retry.backoff_base_hours = 4.0;
        return inj::run_campaign(ut::UserClass::kB, p, coptions, plans);
      });

  for (std::size_t ri = 0; ri < retry_points.size(); ++ri) {
    const std::size_t retries = retry_points[ri];
    ut::EndToEndOptions options;
    options.retry.max_retries = retries;
    options.retry.backoff_base_hours = 4.0;
    const auto& campaign = campaigns[ri];
    cm::Table t({"plan", "A(user)", "95% CI +/-", "delta vs baseline",
                 "retries/session"});
    t.set_align(0, cm::Align::kLeft);
    t.set_title("R = " + std::to_string(retries) +
                " (analytic indep. reference = " +
                cm::fmt(ut::user_availability_with_retries(
                            ut::UserClass::kB, p, options.retry),
                        6) +
                ")");
    for (const auto& e : campaign.entries) {
      t.add_row({e.name, cm::fmt(e.perceived_availability.mean, 6),
                 cm::fmt(e.perceived_availability.half_width, 4),
                 cm::fmt(e.delta_vs_baseline, 5),
                 cm::fmt(e.mean_retries_per_session, 4)});
    }
    std::cout << t << "\n";
  }
  std::cout
      << "Scripted outages cost availability proportional to their length\n"
         "(a d-hour total outage over an H-hour horizon removes ~d/H);\n"
         "retries claw back the stochastic short outages but not the\n"
         "scripted windows that outlast the backoff schedule.\n\n";
}

// Times one campaign serial (threads = 1 everywhere) vs with plan-level
// fan-out (threads = hardware) and appends the numbers to the shared
// BENCH_parallel.json artifact; the two runs must agree bit for bit.
void bench_parallel_campaign() {
  const auto p = upa::bench::paper_params(2);
  const auto plans = build_plans();
  inj::CampaignOptions options;
  options.end_to_end.horizon_hours = kHorizon;
  options.end_to_end.sessions_per_replication = 12000;
  options.end_to_end.replications = 4;
  options.end_to_end.seed = 1903;
  options.end_to_end.retry.max_retries = 2;
  options.end_to_end.retry.backoff_base_hours = 4.0;
  const double total_sessions =
      double(options.end_to_end.sessions_per_replication) *
      double(options.end_to_end.replications) * double(plans.size() + 1);

  using clock = std::chrono::steady_clock;
  options.threads = 1;
  options.end_to_end.threads = 1;
  const auto t0 = clock::now();
  const auto serial = inj::run_campaign(ut::UserClass::kB, p, options, plans);
  const auto t1 = clock::now();
  options.threads = 0;  // plan-level fan-out, one worker per hardware thread
  options.end_to_end.threads = 0;
  const auto parallel =
      inj::run_campaign(ut::UserClass::kB, p, options, plans);
  const auto t2 = clock::now();

  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_s = std::chrono::duration<double>(t2 - t1).count();
  bool identical = serial.entries.size() == parallel.entries.size();
  for (std::size_t i = 0; identical && i < serial.entries.size(); ++i) {
    identical =
        serial.entries[i].perceived_availability.mean ==
            parallel.entries[i].perceived_availability.mean &&
        serial.entries[i].delta_vs_baseline ==
            parallel.entries[i].delta_vs_baseline &&
        serial.entries[i].mean_retries_per_session ==
            parallel.entries[i].mean_retries_per_session;
  }

  std::cout << "Parallel campaign timing (plan-level fan-out, baseline + "
            << plans.size() << " plans):\n"
            << "  threads             : " << upa::exec::resolve_threads(0)
            << "\n"
            << "  serial wall seconds : " << cm::fmt(serial_s, 3) << "\n"
            << "  parallel wall secs  : " << cm::fmt(parallel_s, 3) << "\n"
            << "  speedup             : " << cm::fmt(serial_s / parallel_s, 2)
            << "x\n"
            << "  results identical   : " << (identical ? "yes" : "NO!")
            << "\n\n";

  upa::bench::write_bench_json(
      "BENCH_parallel.json", "injection_campaign",
      {{"threads", double(upa::exec::resolve_threads(0))},
       {"plans", double(plans.size() + 1)},
       {"serial_wall_seconds", serial_s},
       {"parallel_wall_seconds", parallel_s},
       {"speedup", serial_s / parallel_s},
       {"sessions_per_second_serial", total_sessions / serial_s},
       {"sessions_per_second_parallel", total_sessions / parallel_s},
       {"results_identical", identical ? 1.0 : 0.0}});
}

// Repeats one small campaign kCacheReps times cold (cache off, every
// repeat re-simulates each scenario) vs warm (cache on, repeats after the
// first replay the stored entries) -- the what-if workflow where an
// analyst re-runs overlapping scenario sets while iterating. The entries
// must agree bit for bit; wall seconds, hit rate, and the identity flag
// go to BENCH_cache.json.
void bench_cache_campaign() {
  constexpr std::size_t kCacheReps = 3;
  const auto p = upa::bench::paper_params(2);
  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"web farm down 48 h",
                   inj::scripted_outage(inj::FaultTarget::kWebFarm, 1000.0,
                                        48.0, kHorizon)});
  plans.push_back({"payment down 500 h",
                   inj::scripted_outage(inj::FaultTarget::kPayment, 9000.0,
                                        500.0, kHorizon)});
  inj::CampaignOptions options;
  options.threads = 1;
  options.end_to_end.horizon_hours = kHorizon;
  options.end_to_end.sessions_per_replication = 4000;
  options.end_to_end.replications = 2;
  options.end_to_end.seed = 1903;
  options.end_to_end.threads = 1;

  const auto evaluate = [&] {
    std::vector<inj::CampaignResult> results;
    results.reserve(kCacheReps);
    for (std::size_t rep = 0; rep < kCacheReps; ++rep) {
      results.push_back(inj::run_campaign(ut::UserClass::kB, p, options,
                                          plans));
    }
    return results;
  };

  upa::cache::global().clear();
  std::vector<inj::CampaignResult> cold;
  std::vector<inj::CampaignResult> warm;
  double cold_s = 0.0;
  double warm_s = 0.0;
  {
    upa::cache::ScopedEnable off(false);
    cold_s = upa::bench::wall_seconds([&] { cold = evaluate(); });
  }
  {
    upa::cache::ScopedEnable on(true);
    warm_s = upa::bench::wall_seconds([&] { warm = evaluate(); });
  }
  const upa::cache::CacheStats stats =
      upa::cache::global().solver_stats("inject.campaign_entry");

  bool identical = cold.size() == warm.size();
  for (std::size_t r = 0; identical && r < cold.size(); ++r) {
    identical = cold[r].entries.size() == warm[r].entries.size();
    for (std::size_t i = 0; identical && i < cold[r].entries.size(); ++i) {
      const auto& a = cold[r].entries[i];
      const auto& b = warm[r].entries[i];
      identical = a.name == b.name &&
                  a.perceived_availability.mean ==
                      b.perceived_availability.mean &&
                  a.perceived_availability.half_width ==
                      b.perceived_availability.half_width &&
                  a.delta_vs_baseline == b.delta_vs_baseline &&
                  a.observed_web_service_availability ==
                      b.observed_web_service_availability &&
                  a.mean_retries_per_session == b.mean_retries_per_session &&
                  a.abandonment_fraction == b.abandonment_fraction;
    }
  }

  std::cout << "Evaluation-cache timing (" << kCacheReps
            << "x one campaign, baseline + " << plans.size() << " plans):\n"
            << "  cold wall seconds   : " << cm::fmt(cold_s, 3) << "\n"
            << "  warm wall seconds   : " << cm::fmt(warm_s, 3) << "\n"
            << "  speedup             : " << cm::fmt(cold_s / warm_s, 2)
            << "x\n"
            << "  hit rate            : "
            << cm::fmt(100.0 * stats.hit_rate(), 4) << "% of "
            << stats.lookups() << " campaign-entry lookups\n"
            << "  results identical   : " << (identical ? "yes" : "NO!")
            << "\n\n";

  upa::bench::write_bench_json(
      "BENCH_cache.json", "injection_campaign",
      {{"reps", double(kCacheReps)},
       {"plans", double(plans.size() + 1)},
       {"cold_wall_seconds", cold_s},
       {"warm_wall_seconds", warm_s},
       {"speedup", cold_s / warm_s},
       {"hit_rate", stats.hit_rate()},
       {"lookups", double(stats.lookups())},
       {"results_identical", identical ? 1.0 : 0.0}});
}

void print_all() {
  print_campaign();
  bench_parallel_campaign();
  bench_cache_campaign();
}

void bm_campaign(benchmark::State& state) {
  const auto p = upa::bench::paper_params(2);
  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"web farm down 48 h",
                   inj::scripted_outage(inj::FaultTarget::kWebFarm, 1000.0,
                                        48.0, kHorizon)});
  ut::EndToEndOptions options;
  options.horizon_hours = kHorizon;
  options.sessions_per_replication = 2000;
  options.replications = 2;
  options.retry.max_retries = 2;
  options.retry.backoff_base_hours = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inj::run_campaign(ut::UserClass::kB, p, options, plans));
  }
}
BENCHMARK(bm_campaign);

void bm_fault_plan_query(benchmark::State& state) {
  upa::sim::Xoshiro256 rng(7);
  inj::OutageProcess process;
  process.events_per_hour = 0.01;
  const auto plan = inj::sample_outage_plan(process, kHorizon, rng);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.37;
    if (t >= kHorizon) t = 0.0;
    benchmark::DoNotOptimize(
        plan.forced_down(inj::FaultTarget::kWebFarm, t));
  }
}
BENCHMARK(bm_fault_plan_query);

void bm_steady_state_robust(benchmark::State& state) {
  // The iterative fallback path on a mid-size chain.
  upa::markov::Ctmc chain(64);
  for (std::size_t i = 0; i + 1 < 64; ++i) {
    chain.add_rate(i, i + 1, 1.0 + 0.01 * static_cast<double>(i));
    chain.add_rate(i + 1, i, 2.0);
  }
  upa::markov::StationaryOptions options;
  options.max_dense_states = 8;  // force the fallback stages
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.steady_state_robust(options));
  }
}
BENCHMARK(bm_steady_state_robust);

}  // namespace

UPA_BENCH_MAIN(print_all)
