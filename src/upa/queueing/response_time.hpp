#pragma once
// Response-time distribution of accepted requests in an M/M/c/K FIFO
// queue. This implements the paper's stated future work: "extend the
// measure to include failures that occur when the response time exceeds
// an acceptable threshold".
//
// An accepted arrival that finds j customers in the system (PASTA,
// conditioned on acceptance) experiences
//   j <  c : T = Exp(nu)                        (immediate service)
//   j >= c : T = Erlang(j-c+1, c*nu) + Exp(nu)  (wait + service)
// so the tail is a mixture of hypoexponential tails, evaluated in closed
// form through regularized incomplete gamma functions of integer shape
// (finite Poisson sums).

#include <cstddef>

namespace upa::queueing {

/// P(T > tau) for an accepted request in M/M/c/K FIFO.
[[nodiscard]] double mmck_response_time_tail(double alpha, double nu,
                                             std::size_t servers,
                                             std::size_t capacity,
                                             double tau);

/// Mean response time of accepted requests from the stage representation;
/// equals mmck_metrics().mean_response (Little's law) and cross-checks it.
[[nodiscard]] double mmck_mean_response_time(double alpha, double nu,
                                             std::size_t servers,
                                             std::size_t capacity);

/// Smallest tau with P(T > tau) <= epsilon, by bisection on the tail
/// (the (1-epsilon)-quantile of the response time).
[[nodiscard]] double mmck_response_time_quantile(double alpha, double nu,
                                                 std::size_t servers,
                                                 std::size_t capacity,
                                                 double epsilon);

/// Probability a request is served within `tau`: accepted AND on time.
/// This is the per-state service probability of the deadline-extended
/// composite model: (1 - p_K) * P(T <= tau).
[[nodiscard]] double mmck_served_within(double alpha, double nu,
                                        std::size_t servers,
                                        std::size_t capacity, double tau);

}  // namespace upa::queueing
