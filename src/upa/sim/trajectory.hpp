#pragma once
// Pre-sampled CTMC trajectories: one draw of the chain's piecewise-
// constant path over a horizon, queryable at arbitrary times. Used by the
// end-to-end system simulation, where many user sessions probe the same
// resource history at different instants.

#include <cstddef>
#include <vector>

#include "upa/markov/ctmc.hpp"
#include "upa/sim/rng.hpp"

namespace upa::sim {

/// One sampled path of a CTMC over [0, horizon].
class CtmcTrajectory {
 public:
  /// Samples the embedded jump chain with exponential sojourns starting
  /// from `initial`. Absorbing states simply persist to the horizon.
  CtmcTrajectory(const markov::Ctmc& chain, std::size_t initial,
                 double horizon, Xoshiro256& rng);

  /// State occupied at time t (0 <= t <= horizon).
  [[nodiscard]] std::size_t state_at(double t) const;

  /// Fraction of [0, horizon] spent in states of `set`.
  [[nodiscard]] double occupancy(const std::vector<std::size_t>& set) const;

  /// Fraction of the window [from, to] spent in states of `set`
  /// (0 <= from < to <= horizon). Used by the fault-injection layer to
  /// integrate a trajectory over scripted outage windows exactly.
  [[nodiscard]] double occupancy_in(const std::vector<std::size_t>& set,
                                    double from, double to) const;

  [[nodiscard]] double horizon() const noexcept { return horizon_; }
  [[nodiscard]] std::size_t jump_count() const noexcept {
    return times_.size() - 1;
  }

 private:
  double horizon_;
  std::vector<double> times_;        // jump instants, times_[0] == 0
  std::vector<std::size_t> states_;  // state entered at times_[i]
};

/// Convenience: a two-state (0 = up, 1 = down) component trajectory with
/// exponential failure/repair, starting up.
[[nodiscard]] CtmcTrajectory sample_component_trajectory(
    double failure_rate, double repair_rate, double horizon,
    Xoshiro256& rng);

/// Failure rate that yields steady availability `a` for a component with
/// the given repair rate: lambda = mu (1 - a) / a.
[[nodiscard]] double failure_rate_for_availability(double availability,
                                                   double repair_rate);

}  // namespace upa::sim
