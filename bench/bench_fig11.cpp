// Regenerates Figure 11: web-service unavailability vs number of web
// servers N_W = 1..10 under PERFECT coverage, one series per
// (failure rate lambda, arrival rate alpha) combination
// (lambda in {1e-2, 1e-3, 1e-4}/h, alpha in {50, 100, 150}/s,
// nu = 100/s, mu = 1/h, K = 10).
//
// The full (alpha, lambda, N_W) grid is evaluated through
// exec::parallel_sweep, and the harness also times one end-to-end
// simulator run serial vs parallel, appending the wall-clock numbers to
// BENCH_parallel.json (shared with bench_injection).

#include <chrono>
#include <cstddef>
#include <vector>

#include "bench_util.hpp"
#include "upa/cache/eval_cache.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/exec/parallel.hpp"
#include "upa/exec/thread_pool.hpp"
#include "upa/sensitivity/sweep.hpp"
#include "upa/ta/end_to_end_sim.hpp"

namespace {

namespace uc = upa::core;
namespace cm = upa::common;
namespace ut = upa::ta;

constexpr double kAlphas[] = {50.0, 100.0, 150.0};
constexpr double kLambdas[] = {1e-2, 1e-3, 1e-4};

double unavailability(std::size_t n, double lambda, double alpha) {
  uc::WebFarmParams farm{n, lambda, 1.0, 1.0, 12.0};
  uc::WebQueueParams queue{alpha, 100.0, 10};
  return 1.0 - uc::web_service_availability_perfect(farm, queue);
}

struct GridPoint {
  double alpha;
  double lambda;
  std::size_t n;
};

// Grid in (alpha, lambda, N_W) row-major order, matching the printed
// tables; parallel_sweep returns results in this same input order.
std::vector<GridPoint> build_grid() {
  std::vector<GridPoint> grid;
  for (double alpha : kAlphas)
    for (double lambda : kLambdas)
      for (std::size_t n = 1; n <= 10; ++n) grid.push_back({alpha, lambda, n});
  return grid;
}

void print_fig11() {
  upa::bench::print_header(
      "Figure 11",
      "Web service unavailability (perfect coverage) vs N_W.\n"
      "Expected shape: monotone decrease in N_W for every series; lambda\n"
      "separates the curves only when the load alpha/nu < 1.");
  const std::vector<GridPoint> grid = build_grid();
  const std::vector<double> ua = upa::exec::parallel_sweep(
      grid, [](const GridPoint& g) {
        return unavailability(g.n, g.lambda, g.alpha);
      });
  const auto at = [&](std::size_t ai, std::size_t li, std::size_t n) {
    return ua[(ai * 3 + li) * 10 + (n - 1)];
  };
  for (std::size_t ai = 0; ai < 3; ++ai) {
    const double alpha = kAlphas[ai];
    cm::Table t({"N_W", "lambda=1e-2/h", "lambda=1e-3/h", "lambda=1e-4/h"});
    t.set_title("UA(Web service), alpha = " + cm::fmt(alpha, 3) +
                " req/s (rho = " + cm::fmt(alpha / 100.0, 3) + ")");
    for (std::size_t n = 1; n <= 10; ++n) {
      t.add_row({std::to_string(n), cm::fmt_sci(at(ai, 0, n), 3),
                 cm::fmt_sci(at(ai, 1, n), 3), cm::fmt_sci(at(ai, 2, n), 3)});
    }
    std::cout << t << "\n";
  }

  // Shape check mirrored from the paper's reading of the figure, built
  // from the already-computed alpha=100, lambda=1e-3 series.
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t n = 1; n <= 10; ++n) {
    xs.push_back(double(n));
    ys.push_back(at(1, 1, n));
  }
  const auto series = upa::sensitivity::sweep(
      "lambda=1e-3, alpha=100", xs,
      [&](double n) { return ys[static_cast<std::size_t>(n) - 1]; });
  std::cout << "monotone decreasing (no reversal expected): "
            << (upa::sensitivity::first_increase(series) == -1 ? "yes"
                                                               : "NO!")
            << "\n\n";
}

// Times one end-to-end simulator configuration serial (threads = 1)
// vs parallel (threads = hardware) and records the wall-clock numbers
// in the shared BENCH_parallel.json artifact. The two runs must agree
// bit for bit -- the parallel layer guarantees it -- so the availability
// match is checked and reported alongside the speedup.
void bench_parallel_end_to_end() {
  ut::EndToEndOptions options;
  options.horizon_hours = 20000.0;
  options.sessions_per_replication = 20000;
  options.replications = 8;
  options.seed = 1111;
  const auto params = upa::bench::paper_params(2);
  const double total_sessions =
      double(options.sessions_per_replication) * double(options.replications);

  using clock = std::chrono::steady_clock;
  options.threads = 1;
  const auto t0 = clock::now();
  const auto serial = ut::simulate_end_to_end(ut::UserClass::kB, params,
                                              options);
  const auto t1 = clock::now();
  options.threads = 0;  // one worker per hardware thread
  const auto parallel = ut::simulate_end_to_end(ut::UserClass::kB, params,
                                                options);
  const auto t2 = clock::now();

  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_s = std::chrono::duration<double>(t2 - t1).count();
  const bool identical = serial.perceived_availability.mean ==
                             parallel.perceived_availability.mean &&
                         serial.perceived_availability.half_width ==
                             parallel.perceived_availability.half_width &&
                         serial.mean_session_duration_hours ==
                             parallel.mean_session_duration_hours;

  std::cout << "Parallel end-to-end timing (replication-level fan-out):\n"
            << "  threads             : " << upa::exec::resolve_threads(0)
            << "\n"
            << "  serial wall seconds : " << cm::fmt(serial_s, 3) << "\n"
            << "  parallel wall secs  : " << cm::fmt(parallel_s, 3) << "\n"
            << "  speedup             : " << cm::fmt(serial_s / parallel_s, 2)
            << "x\n"
            << "  results identical   : " << (identical ? "yes" : "NO!")
            << "\n\n";

  upa::bench::write_bench_json(
      "BENCH_parallel.json", "fig11_end_to_end",
      {{"threads", double(upa::exec::resolve_threads(0))},
       {"serial_wall_seconds", serial_s},
       {"parallel_wall_seconds", parallel_s},
       {"speedup", serial_s / parallel_s},
       {"sessions_per_second_serial", total_sessions / serial_s},
       {"sessions_per_second_parallel", total_sessions / parallel_s},
       {"results_identical", identical ? 1.0 : 0.0}});
}

// Re-evaluates the Figure 11 grid kCacheReps times -- exactly the
// sweep-scale workload the evaluation cache targets (a refinement loop
// or a dashboard re-render revisits the same design points over and
// over). Cold = cache off, every pass re-solves each composite CTMC,
// M/M/i/K loss, and deadline measure; warm = cache on, every pass after
// the first replays stored results. The contract is bit-for-bit
// identity, checked element by element; wall seconds, hit rate, and the
// identity flag go to the BENCH_cache.json artifact.
void bench_cache_fig11() {
  constexpr std::size_t kCacheReps = 20;
  const std::vector<GridPoint> grid = build_grid();
  constexpr double kDeadlines[] = {0.05, 0.1};  // response deadlines [s]
  const auto evaluate = [&grid, &kDeadlines] {
    std::vector<double> out;
    out.reserve(3 * kCacheReps * grid.size());
    for (std::size_t rep = 0; rep < kCacheReps; ++rep) {
      for (const GridPoint& g : grid) {
        uc::WebFarmParams farm{g.n, g.lambda, 1.0, 1.0, 12.0};
        uc::WebQueueParams queue{g.alpha, 100.0, 10};
        out.push_back(uc::web_service_availability_perfect(farm, queue));
        for (double deadline : kDeadlines) {
          out.push_back(uc::web_service_availability_perfect_with_deadline(
              farm, queue, deadline));
        }
      }
    }
    return out;
  };

  // When a persistence directory is attached (--cache-dir) its
  // segments were indexed at startup and replay lazily on first touch;
  // measure that tier BEFORE clear() wipes it, and read the persist
  // stats AFTER the timed pass so records_replayed counts the lazy
  // disk-hit serves (an eager attach would have counted at startup).
  // Nonzero records_replayed distinguishes a genuine second-process
  // warm-from-disk run from a first run that found an empty directory.
  const bool have_persist = upa::cache::global_persistence() != nullptr;
  std::vector<double> disk;
  double disk_s = 0.0;
  upa::cache::CacheStats disk_stats;
  upa::cache::PersistStats persist;
  if (have_persist) {
    upa::cache::global().reset_stats();
    upa::cache::ScopedEnable on(true);
    disk_s = upa::bench::wall_seconds([&] { disk = evaluate(); });
    disk_stats = upa::cache::global().stats();
    persist = upa::cache::global_persistence()->stats();
  }

  upa::cache::global().clear();
  std::vector<double> cold;
  std::vector<double> warm;
  double cold_s = 0.0;
  double warm_s = 0.0;
  {
    upa::cache::ScopedEnable off(false);
    cold_s = upa::bench::wall_seconds([&] { cold = evaluate(); });
  }
  {
    upa::cache::ScopedEnable on(true);
    warm_s = upa::bench::wall_seconds([&] { warm = evaluate(); });
  }
  const upa::cache::CacheStats stats = upa::cache::global().stats();
  const bool identical = cold == warm;

  std::cout << "Evaluation-cache timing (" << kCacheReps << "x the "
            << grid.size() << "-point Figure 11 grid, 3 measures/point):\n"
            << "  cold wall seconds   : " << cm::fmt(cold_s, 3) << "\n"
            << "  warm wall seconds   : " << cm::fmt(warm_s, 3) << "\n"
            << "  speedup             : " << cm::fmt(cold_s / warm_s, 2)
            << "x\n"
            << "  hit rate            : "
            << cm::fmt(100.0 * stats.hit_rate(), 4) << "% of "
            << stats.lookups() << " lookups\n"
            << "  results identical   : " << (identical ? "yes" : "NO!")
            << "\n\n";

  upa::bench::write_bench_json(
      "BENCH_cache.json", "fig11_grid",
      {{"reps", double(kCacheReps)},
       {"grid_points", double(grid.size())},
       {"cold_wall_seconds", cold_s},
       {"warm_wall_seconds", warm_s},
       {"speedup", cold_s / warm_s},
       {"hit_rate", stats.hit_rate()},
       {"lookups", double(stats.lookups())},
       {"results_identical", identical ? 1.0 : 0.0}});

  if (have_persist) {
    const bool disk_identical = disk == cold;
    std::cout << "Warm-from-disk timing (same workload, shards pre-warmed "
                 "from segments):\n"
              << "  records replayed    : " << persist.records_replayed
              << " from " << persist.segments_loaded << " segment(s)\n"
              << "  disk wall seconds   : " << cm::fmt(disk_s, 3) << "\n"
              << "  speedup vs cold     : " << cm::fmt(cold_s / disk_s, 2)
              << "x\n"
              << "  hit rate            : "
              << cm::fmt(100.0 * disk_stats.hit_rate(), 4) << "% of "
              << disk_stats.lookups() << " lookups\n"
              << "  results identical   : " << (disk_identical ? "yes" : "NO!")
              << "\n\n";
    upa::bench::write_bench_json(
        "BENCH_cache.json", "fig11_disk",
        {{"segments_loaded", double(persist.segments_loaded)},
         {"records_replayed", double(persist.records_replayed)},
         {"records_indexed", double(persist.records_indexed)},
         {"bytes_mapped", double(persist.bytes_mapped)},
         {"disk_hits", double(persist.disk_hits)},
         {"records_skipped_crc", double(persist.records_skipped_crc)},
         {"disk_wall_seconds", disk_s},
         {"cold_wall_seconds", cold_s},
         {"speedup", cold_s / disk_s},
         {"hit_rate", disk_stats.hit_rate()},
         {"lookups", double(disk_stats.lookups())},
         {"results_identical", disk_identical ? 1.0 : 0.0}});
  }
}

void print_all() {
  print_fig11();
  bench_parallel_end_to_end();
  bench_cache_fig11();
}

void bm_fig11_full_grid(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (double lambda : kLambdas) {
      for (double alpha : kAlphas) {
        for (std::size_t n = 1; n <= 10; ++n) {
          acc += unavailability(n, lambda, alpha);
        }
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_fig11_full_grid);

void bm_fig11_parallel_sweep(benchmark::State& state) {
  const std::vector<GridPoint> grid = build_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(upa::exec::parallel_sweep(
        grid, [](const GridPoint& g) {
          return unavailability(g.n, g.lambda, g.alpha);
        }));
  }
}
BENCHMARK(bm_fig11_parallel_sweep);

}  // namespace

UPA_BENCH_MAIN(print_all)
