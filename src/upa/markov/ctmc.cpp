#include "upa/markov/ctmc.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/linalg/iterative.hpp"
#include "upa/linalg/lu.hpp"
#include "upa/obs/observer.hpp"

namespace upa::markov {

Ctmc::Ctmc(std::size_t state_count) : n_(state_count), labels_(state_count) {
  UPA_REQUIRE(state_count >= 1, "CTMC needs at least one state");
  for (std::size_t i = 0; i < n_; ++i) {
    labels_[i] = "s" + std::to_string(i);
  }
}

void Ctmc::check_state(std::size_t s) const {
  UPA_REQUIRE(s < n_, "state index " + std::to_string(s) + " out of range");
}

void Ctmc::add_rate(std::size_t from, std::size_t to, double rate) {
  check_state(from);
  check_state(to);
  UPA_REQUIRE(from != to, "self-loop rates are not allowed in a CTMC");
  UPA_REQUIRE(std::isfinite(rate) && rate > 0.0,
              "transition rate must be positive and finite");
  rates_.push_back({from, to, rate});
}

void Ctmc::set_label(std::size_t state, std::string label) {
  check_state(state);
  labels_[state] = std::move(label);
}

const std::string& Ctmc::label(std::size_t state) const {
  check_state(state);
  return labels_[state];
}

linalg::Matrix Ctmc::generator() const {
  linalg::Matrix q(n_, n_);
  for (const auto& t : rates_) {
    q(t.row, t.col) += t.value;
    q(t.row, t.row) -= t.value;
  }
  return q;
}

linalg::SparseMatrix Ctmc::sparse_generator() const {
  std::vector<linalg::Triplet> triplets = rates_;
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) exit[t.row] += t.value;
  for (std::size_t i = 0; i < n_; ++i) {
    if (exit[i] != 0.0) triplets.push_back({i, i, -exit[i]});
  }
  return {n_, n_, std::move(triplets)};
}

double Ctmc::exit_rate(std::size_t state) const {
  check_state(state);
  double sum = 0.0;
  for (const auto& t : rates_) {
    if (t.row == state) sum += t.value;
  }
  return sum;
}

double Ctmc::max_exit_rate() const {
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) exit[t.row] += t.value;
  return *std::max_element(exit.begin(), exit.end());
}

void Ctmc::append_cache_key(cache::KeyBuilder& kb) const {
  kb.add(static_cast<std::uint64_t>(n_));
  std::vector<linalg::Triplet> sorted = rates_;
  std::sort(sorted.begin(), sorted.end(),
            [](const linalg::Triplet& a, const linalg::Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              if (a.col != b.col) return a.col < b.col;
              return std::bit_cast<std::uint64_t>(a.value) <
                     std::bit_cast<std::uint64_t>(b.value);
            });
  kb.add(static_cast<std::uint64_t>(sorted.size()));
  for (const auto& t : sorted) {
    kb.add(static_cast<std::uint64_t>(t.row));
    kb.add(static_cast<std::uint64_t>(t.col));
    kb.add(t.value);
  }
}

linalg::Vector Ctmc::steady_state() const {
  if (!cache::enabled()) return steady_state_uncached();
  cache::KeyBuilder kb("markov.steady_state", 1);
  append_cache_key(kb);
  return *cache::global().get_or_compute<linalg::Vector>(
      std::move(kb).finish(), [&] { return steady_state_uncached(); });
}

linalg::Vector Ctmc::steady_state_uncached() const {
  // Solve pi Q = 0 with normalization: transpose to Q^T pi^T = 0 and
  // replace the last balance equation by sum(pi) = 1.
  linalg::Matrix a = generator().transposed();
  for (std::size_t c = 0; c < n_; ++c) a(n_ - 1, c) = 1.0;
  linalg::Vector b(n_, 0.0);
  b[n_ - 1] = 1.0;
  linalg::Vector pi = linalg::solve(std::move(a), b);
  for (double& p : pi) {
    UPA_REQUIRE(p > -1e-9, "steady state produced a negative probability; "
                           "the chain is likely reducible");
    p = std::max(p, 0.0);
  }
  upa::common::normalize(pi);
  return pi;
}

linalg::SparseMatrix Ctmc::uniformized_transition() const {
  // Uniformize: P = I + Q / Lambda with Lambda slightly above the largest
  // exit rate so every diagonal stays positive (aperiodic DTMC).
  const double lambda = max_exit_rate() * 1.02 + 1e-300;
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(rates_.size() + n_);
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) {
    exit[t.row] += t.value;
    triplets.push_back({t.row, t.col, t.value / lambda});
  }
  for (std::size_t i = 0; i < n_; ++i) {
    triplets.push_back({i, i, 1.0 - exit[i] / lambda});
  }
  return {n_, n_, std::move(triplets)};
}

linalg::Vector Ctmc::steady_state_iterative(double tolerance) const {
  linalg::IterativeOptions options;
  options.tolerance = tolerance;
  return linalg::power_iteration(uniformized_transition(), options).solution;
}

std::string stationary_method_name(StationaryMethod m) {
  switch (m) {
    case StationaryMethod::kDenseLu: return "dense-lu";
    case StationaryMethod::kGaussSeidel: return "gauss-seidel";
    case StationaryMethod::kPowerIteration: return "power-iteration";
  }
  UPA_ASSERT(false);
  return {};
}

std::string stage_diagnostic(const StationaryStage& stage) {
  const std::string name = stationary_method_name(stage.method);
  switch (stage.outcome) {
    case StationaryStage::Outcome::kAccepted:
      return name + ": ok, " + stage.note + ", balance residual " +
             std::to_string(stage.residual);
    case StationaryStage::Outcome::kRejected:
      return name + ": rejected, " + stage.note;
    case StationaryStage::Outcome::kSkipped:
      return name + ": skipped, " + stage.note;
    case StationaryStage::Outcome::kFailed:
      if (stage.iterations > 0) {
        return name + ": failed after " + std::to_string(stage.iterations) +
               " iterations, final residual " + std::to_string(stage.residual);
      }
      return name + ": failed, " + stage.note;
  }
  UPA_ASSERT(false);
  return {};
}

namespace {

std::string outcome_name(StationaryStage::Outcome outcome) {
  switch (outcome) {
    case StationaryStage::Outcome::kAccepted: return "accepted";
    case StationaryStage::Outcome::kRejected: return "rejected";
    case StationaryStage::Outcome::kFailed: return "failed";
    case StationaryStage::Outcome::kSkipped: return "skipped";
  }
  UPA_ASSERT(false);
  return {};
}

}  // namespace

StationaryReport Ctmc::steady_state_robust(
    const StationaryOptions& options) const {
  if (!cache::enabled()) return steady_state_robust_uncached(options);
  // Key on everything that shapes the report: the chain content plus the
  // stage controls. The observer and record_residual_history are
  // excluded -- they affect what gets recorded, never what gets solved.
  cache::KeyBuilder kb("markov.steady_state_robust", 1);
  append_cache_key(kb);
  kb.add(static_cast<std::uint64_t>(options.max_dense_states))
      .add(static_cast<std::uint64_t>(options.iterative.max_iterations))
      .add(options.iterative.tolerance)
      .add(options.iterative.initial_guess)
      .add(options.residual_tolerance);
  return *cache::global().get_or_compute<StationaryReport>(
      std::move(kb).finish(),
      [&] { return steady_state_robust_uncached(options); }, options.obs);
}

StationaryReport Ctmc::steady_state_robust_uncached(
    const StationaryOptions& options) const {
  const linalg::SparseMatrix q = sparse_generator();
  StationaryReport report;
  obs::Observer* const ob = options.obs;
  obs::Tracer* const tracer = ob != nullptr ? &ob->tracer : nullptr;
  linalg::IterativeOptions iterative = options.iterative;
  if (ob != nullptr) iterative.record_residual_history = true;

  auto balance_residual = [&](const linalg::Vector& pi) {
    const linalg::Vector r = q.left_multiply(pi);
    double norm = 0.0;
    for (double v : r) norm = std::max(norm, std::abs(v));
    return norm;
  };

  // Every attempted stage flows through here exactly once: the structured
  // record is appended, the canonical diagnostic line is derived from it,
  // and -- when an observer is attached -- the same record feeds the
  // solver_stage span attributes and the solver metrics.
  auto publish = [&](StationaryStage stage, obs::ScopedWallSpan& span,
                     const std::vector<double>& residual_history) {
    stage.wall_seconds = span.elapsed_seconds();
    report.diagnostics.push_back(stage_diagnostic(stage));
    if (ob != nullptr) {
      const std::string name = stationary_method_name(stage.method);
      span.attr("outcome", outcome_name(stage.outcome));
      span.attr("iterations", static_cast<double>(stage.iterations));
      span.attr("residual", stage.residual);
      ob->metrics.counter("solver." + name + ".attempts").add();
      ob->metrics.counter("solver." + name + ".iterations")
          .add(stage.iterations);
      ob->metrics.gauge("solver." + name + ".wall_seconds")
          .set(stage.wall_seconds);
      ob->metrics.gauge("solver." + name + ".residual").set(stage.residual);
      if (!residual_history.empty()) {
        // Log-bucketed trajectory: how many sweeps sat at which residual
        // magnitude (1e-16 .. 1e2 decades).
        auto& trajectory = ob->metrics.histogram(
            "solver." + name + ".residual_trajectory",
            obs::geometric_buckets(1e-16, 10.0, 19));
        for (double r : residual_history) trajectory.record(r);
        span.attr("first_residual", residual_history.front());
      }
    }
    report.stages.push_back(std::move(stage));
  };

  // Validates a candidate: clamp tiny negatives, renormalize, and accept
  // only when the balance equations actually hold. Fills the stage's
  // outcome/residual/note; returns true when accepted.
  auto accept = [&](linalg::Vector pi, StationaryStage& stage,
                    const std::string& note) {
    for (double& p : pi) {
      if (p < -1e-9) {
        stage.outcome = StationaryStage::Outcome::kRejected;
        stage.note = "solution has negative probabilities";
        return false;
      }
      p = std::max(p, 0.0);
    }
    upa::common::normalize(pi);
    const double residual = balance_residual(pi);
    stage.residual = residual;
    if (residual > options.residual_tolerance) {
      stage.outcome = StationaryStage::Outcome::kRejected;
      stage.note = "balance residual " + std::to_string(residual) +
                   " exceeds " + std::to_string(options.residual_tolerance);
      return false;
    }
    stage.outcome = StationaryStage::Outcome::kAccepted;
    stage.note = note;
    report.distribution = std::move(pi);
    report.method = stage.method;
    report.residual = residual;
    return true;
  };

  const std::vector<double> no_history;

  // Stage 1: dense LU on the transposed balance equations.
  {
    StationaryStage stage;
    stage.method = StationaryMethod::kDenseLu;
    obs::ScopedWallSpan span(tracer, obs::SpanLevel::kSolverStage,
                             "dense-lu");
    bool accepted = false;
    if (n_ > options.max_dense_states) {
      stage.outcome = StationaryStage::Outcome::kSkipped;
      stage.note = std::to_string(n_) + " states exceed " +
                   std::to_string(options.max_dense_states);
    } else {
      try {
        accepted = accept(steady_state(), stage, "direct solve");
      } catch (const upa::common::ModelError& e) {
        stage.outcome = StationaryStage::Outcome::kFailed;
        stage.note = e.what();
      }
    }
    publish(std::move(stage), span, no_history);
    if (accepted) return report;
  }

  // Stage 2: Gauss-Seidel on Q^T pi = 0 with the last balance equation
  // replaced by the normalization sum(pi) = 1.
  {
    StationaryStage stage;
    stage.method = StationaryMethod::kGaussSeidel;
    obs::ScopedWallSpan span(tracer, obs::SpanLevel::kSolverStage,
                             "gauss-seidel");
    bool accepted = false;
    std::vector<double> history;
    try {
      std::vector<linalg::Triplet> triplets;
      triplets.reserve(rates_.size() + 2 * n_);
      std::vector<double> exit(n_, 0.0);
      for (const auto& t : rates_) exit[t.row] += t.value;
      for (const auto& t : rates_) {
        if (t.col != n_ - 1) triplets.push_back({t.col, t.row, t.value});
      }
      for (std::size_t i = 0; i + 1 < n_; ++i) {
        if (exit[i] != 0.0) triplets.push_back({i, i, -exit[i]});
      }
      for (std::size_t c = 0; c < n_; ++c) {
        triplets.push_back({n_ - 1, c, 1.0});
      }
      const linalg::SparseMatrix a(n_, n_, std::move(triplets));
      linalg::Vector b(n_, 0.0);
      b[n_ - 1] = 1.0;
      linalg::IterativeResult gs = linalg::gauss_seidel(a, b, iterative);
      stage.iterations = gs.iterations;
      history = std::move(gs.residual_history);
      accepted = accept(std::move(gs.solution), stage,
                        std::to_string(stage.iterations) + " iterations");
    } catch (const upa::common::ConvergenceError& e) {
      stage.outcome = StationaryStage::Outcome::kFailed;
      stage.iterations = e.iterations();
      stage.residual = e.final_residual();
      stage.note = e.what();
    } catch (const upa::common::ModelError& e) {
      stage.outcome = StationaryStage::Outcome::kFailed;
      stage.note = e.what();
    }
    publish(std::move(stage), span, history);
    if (accepted) return report;
  }

  // Stage 3: power iteration on the uniformized chain.
  {
    StationaryStage stage;
    stage.method = StationaryMethod::kPowerIteration;
    obs::ScopedWallSpan span(tracer, obs::SpanLevel::kSolverStage,
                             "power-iteration");
    bool accepted = false;
    std::vector<double> history;
    try {
      linalg::IterativeResult pw =
          linalg::power_iteration(uniformized_transition(), iterative);
      stage.iterations = pw.iterations;
      history = std::move(pw.residual_history);
      accepted = accept(std::move(pw.solution), stage,
                        std::to_string(stage.iterations) + " iterations");
    } catch (const upa::common::ConvergenceError& e) {
      stage.outcome = StationaryStage::Outcome::kFailed;
      stage.iterations = e.iterations();
      stage.residual = e.final_residual();
      stage.note = e.what();
    } catch (const upa::common::ModelError& e) {
      stage.outcome = StationaryStage::Outcome::kFailed;
      stage.note = e.what();
    }
    publish(std::move(stage), span, history);
    if (accepted) return report;
  }

  std::string summary =
      "steady_state_robust: every stage failed on a " + std::to_string(n_) +
      "-state chain:";
  for (const std::string& d : report.diagnostics) summary += "\n  " + d;
  throw upa::common::ModelError(summary);
}

double Ctmc::mean_time_to_absorption(
    std::size_t from, const std::vector<std::size_t>& absorbing) const {
  check_state(from);
  UPA_REQUIRE(!absorbing.empty(), "need at least one absorbing state");
  std::vector<bool> is_absorbing(n_, false);
  for (std::size_t s : absorbing) {
    check_state(s);
    is_absorbing[s] = true;
  }
  UPA_REQUIRE(!is_absorbing[from], "start state is absorbing; MTTA is 0");

  // Index the transient states and solve (-Q_TT) tau = 1.
  std::vector<std::size_t> transient_index(n_, SIZE_MAX);
  std::vector<std::size_t> transient_states;
  for (std::size_t s = 0; s < n_; ++s) {
    if (!is_absorbing[s]) {
      transient_index[s] = transient_states.size();
      transient_states.push_back(s);
    }
  }
  const std::size_t m = transient_states.size();
  linalg::Matrix neg_qtt(m, m);
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) exit[t.row] += t.value;
  for (std::size_t i = 0; i < m; ++i) {
    neg_qtt(i, i) = exit[transient_states[i]];
  }
  for (const auto& t : rates_) {
    if (is_absorbing[t.row] || is_absorbing[t.col]) continue;
    neg_qtt(transient_index[t.row], transient_index[t.col]) -= t.value;
  }
  const linalg::Vector ones(m, 1.0);
  const linalg::Vector tau = linalg::solve(std::move(neg_qtt), ones);
  return tau[transient_index[from]];
}

double Ctmc::steady_state_mass(const std::vector<std::size_t>& states) const {
  const linalg::Vector pi = steady_state();
  double mass = 0.0;
  for (std::size_t s : states) {
    check_state(s);
    mass += pi[s];
  }
  return mass;
}

Ctmc two_state_availability(double lambda, double mu) {
  UPA_REQUIRE(lambda > 0.0 && mu > 0.0, "rates must be positive");
  Ctmc chain(2);
  chain.set_label(0, "up");
  chain.set_label(1, "down");
  chain.add_rate(0, 1, lambda);
  chain.add_rate(1, 0, mu);
  return chain;
}

double two_state_steady_availability(double lambda, double mu) {
  UPA_REQUIRE(lambda > 0.0 && mu > 0.0, "rates must be positive");
  return mu / (lambda + mu);
}

}  // namespace upa::markov
