#pragma once
// Up/down analysis of a CTMC partitioned into up and down states:
// steady availability, failure frequency (crossing rate of the up->down
// cut), and the equivalent mean up time (MUT) / mean down time (MDT) of
// the aggregate two-state model. These are the standard quantities used
// to summarize a redundant architecture as an "equivalent component".

#include <vector>

#include "upa/markov/ctmc.hpp"

namespace upa::markov {

/// Aggregate up/down measures of a partitioned chain.
struct UpDownMeasures {
  double availability = 0.0;        ///< steady P(up)
  double failure_frequency = 0.0;   ///< expected up->down crossings / time
  double mean_up_time = 0.0;        ///< MUT = A / frequency
  double mean_down_time = 0.0;      ///< MDT = (1 - A) / frequency
  /// Failure/repair rates of the equivalent two-state component whose
  /// steady behaviour matches (lambda_eq = 1/MUT, mu_eq = 1/MDT).
  double equivalent_failure_rate = 0.0;
  double equivalent_repair_rate = 0.0;
};

/// Computes the measures for the given chain and up-state set. The chain
/// must be irreducible and the partition non-trivial (both sides
/// reachable), otherwise frequencies degenerate -> ModelError.
[[nodiscard]] UpDownMeasures up_down_measures(
    const Ctmc& chain, const std::vector<std::size_t>& up_states);

}  // namespace upa::markov
