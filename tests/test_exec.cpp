// Tests for the parallel execution layer: ThreadPool semantics (join,
// exception order, nested-submit rejection) and the bit-for-bit
// determinism contract -- the end-to-end simulator and fault-injection
// campaigns must produce byte-identical results (including observer
// metric and span tables) at every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/exec/parallel.hpp"
#include "upa/exec/thread_pool.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/obs/observer.hpp"
#include "upa/ta/end_to_end_sim.hpp"
#include "upa/ta/params.hpp"

namespace {

namespace ex = upa::exec;
namespace ut = upa::ta;
namespace inj = upa::inject;
namespace obs = upa::obs;
using upa::common::ModelError;

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ex::resolve_threads(0), 1u);
  EXPECT_EQ(ex::resolve_threads(1), 1u);
  EXPECT_EQ(ex::resolve_threads(7), 7u);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ex::ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    ex::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ex::ThreadPool pool(4);
  const std::vector<int> out = pool.parallel_map<int>(
      257, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, PoolIsReusableAcrossCalls) {
  ex::ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(40, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 40 * 39 / 2);
  }
}

TEST(ThreadPool, RethrowsTheSmallestFailingIndex) {
  // Both indices throw; a serial loop would have thrown index 3 first,
  // so the parallel join must surface that one regardless of timing.
  for (int attempt = 0; attempt < 20; ++attempt) {
    ex::ThreadPool pool(4);
    try {
      pool.parallel_for(16, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("index 3");
        if (i == 11) throw std::runtime_error("index 11");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 3");
    }
  }
}

TEST(ThreadPool, NestedSubmitOnTheSamePoolIsRejected) {
  ex::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t) {
                                   pool.parallel_for(
                                       2, [](std::size_t) {});
                                 }),
               ModelError);
  // The pool survives the rejection and still runs work.
  std::atomic<int> calls{0};
  pool.parallel_for(4, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPool, DistinctPoolsMayNest) {
  ex::ThreadPool outer(2);
  std::atomic<int> calls{0};
  outer.parallel_for(2, [&](std::size_t) {
    ex::ThreadPool inner(1);
    inner.parallel_for(3, [&](std::size_t) { calls.fetch_add(1); });
  });
  EXPECT_EQ(calls.load(), 6);
}

TEST(ParallelSweep, ReturnsResultsInInputOrder) {
  std::vector<int> points;
  for (int i = 0; i < 100; ++i) points.push_back(i);
  const std::vector<double> out = ex::parallel_sweep(
      points, [](int p) { return 0.5 * p; }, 4);
  ASSERT_EQ(out.size(), points.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 0.5 * static_cast<double>(i));
  }
}

TEST(ParallelSweep, EmptyInputYieldsEmptyOutput) {
  const std::vector<int> points;
  EXPECT_TRUE(ex::parallel_sweep(points, [](int) { return 1; }).empty());
}

TEST(ParallelSweep, ExistingPoolOverloadMatches) {
  ex::ThreadPool pool(3);
  std::vector<int> points{5, 6, 7, 8};
  const auto out =
      ex::parallel_sweep(pool, points, [](int p) { return p * 10; });
  EXPECT_EQ(out, (std::vector<int>{50, 60, 70, 80}));
}

// ---------------------------------------------------------------------
// Determinism matrix: the same configuration at threads 1 / 2 / 8 must
// produce EXACTLY equal results -- EXPECT_EQ on doubles on purpose.
// ---------------------------------------------------------------------

ut::EndToEndOptions small_run() {
  ut::EndToEndOptions options;
  options.horizon_hours = 2000.0;
  options.think_time_hours = 0.02;
  options.sessions_per_replication = 1500;
  options.replications = 5;
  options.seed = 20260806;
  options.retry.max_retries = 2;
  options.retry.backoff_base_hours = 0.05;
  options.retry.response_timeout_seconds = 0.5;
  return options;
}

void expect_identical_metrics(const obs::MetricsRegistry& a,
                              const obs::MetricsRegistry& b,
                              bool skip_wall_clock) {
  ASSERT_EQ(a.counters().size(), b.counters().size());
  for (auto ia = a.counters().begin(), ib = b.counters().begin();
       ia != a.counters().end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.value(), ib->second.value()) << ia->first;
  }
  ASSERT_EQ(a.gauges().size(), b.gauges().size());
  for (auto ia = a.gauges().begin(), ib = b.gauges().begin();
       ia != a.gauges().end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    if (skip_wall_clock && ia->first.find("wall") != std::string::npos)
      continue;
    EXPECT_EQ(ia->second.value(), ib->second.value()) << ia->first;
  }
  ASSERT_EQ(a.histograms().size(), b.histograms().size());
  for (auto ia = a.histograms().begin(), ib = b.histograms().begin();
       ia != a.histograms().end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    if (skip_wall_clock && ia->first.find("wall") != std::string::npos)
      continue;
    EXPECT_EQ(ia->second.bucket_counts(), ib->second.bucket_counts())
        << ia->first;
    EXPECT_EQ(ia->second.count(), ib->second.count()) << ia->first;
    EXPECT_EQ(ia->second.sum(), ib->second.sum()) << ia->first;
  }
}

void expect_identical_model_spans(const obs::Tracer& a,
                                  const obs::Tracer& b) {
  ASSERT_EQ(a.spans().size(), b.spans().size());
  EXPECT_EQ(a.dropped(), b.dropped());
  for (std::size_t i = 0; i < a.spans().size(); ++i) {
    const obs::Span& sa = a.spans()[i];
    const obs::Span& sb = b.spans()[i];
    EXPECT_EQ(sa.id, sb.id);
    EXPECT_EQ(sa.parent, sb.parent);
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.level, sb.level);
    EXPECT_EQ(sa.domain, sb.domain);
    // Wall-domain spans (campaign plans) measure real time -- their
    // stamps are honest, not reproducible; everything model-domain is.
    if (sa.domain == obs::TimeDomain::kModelHours) {
      EXPECT_EQ(sa.start, sb.start);
      EXPECT_EQ(sa.end, sb.end);
    }
  }
}

TEST(Determinism, EndToEndIsBitForBitAcrossThreadCounts) {
  const auto params = ut::TaParameters::paper_defaults();
  ut::EndToEndOptions options = small_run();

  options.threads = 1;
  obs::Observer ob1;
  ob1.trace_level = obs::TraceLevel::kInvocation;
  options.obs = &ob1;
  const auto serial = ut::simulate_end_to_end(ut::UserClass::kB, params,
                                              options);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    obs::Observer obn;
    obn.trace_level = obs::TraceLevel::kInvocation;
    options.obs = &obn;
    const auto parallel = ut::simulate_end_to_end(ut::UserClass::kB, params,
                                                  options);
    EXPECT_EQ(serial.perceived_availability.mean,
              parallel.perceived_availability.mean);
    EXPECT_EQ(serial.perceived_availability.half_width,
              parallel.perceived_availability.half_width);
    EXPECT_EQ(serial.observed_web_service_availability,
              parallel.observed_web_service_availability);
    EXPECT_EQ(serial.mean_session_duration_hours,
              parallel.mean_session_duration_hours);
    EXPECT_EQ(serial.mean_retries_per_session,
              parallel.mean_retries_per_session);
    EXPECT_EQ(serial.abandonment_fraction, parallel.abandonment_fraction);
    expect_identical_metrics(ob1.metrics, obn.metrics,
                             /*skip_wall_clock=*/false);
    expect_identical_model_spans(ob1.tracer, obn.tracer);
  }
}

TEST(Determinism, CampaignIsBitForBitAcrossThreadCounts) {
  const auto params = ut::TaParameters::paper_defaults();
  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"web outage",
                   inj::scripted_outage(inj::FaultTarget::kWebFarm, 200.0,
                                        24.0, 2000.0)});
  plans.push_back({"payment outage",
                   inj::scripted_outage(inj::FaultTarget::kPayment, 900.0,
                                        80.0, 2000.0)});

  inj::CampaignOptions options;
  options.end_to_end = small_run();
  options.end_to_end.sessions_per_replication = 800;

  options.threads = 1;
  options.end_to_end.threads = 1;
  obs::Observer ob1;
  options.obs = &ob1;
  const auto serial =
      inj::run_campaign(ut::UserClass::kB, params, options, plans);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    options.end_to_end.threads = threads;
    obs::Observer obn;
    options.obs = &obn;
    const auto parallel =
        inj::run_campaign(ut::UserClass::kB, params, options, plans);
    ASSERT_EQ(serial.entries.size(), parallel.entries.size());
    for (std::size_t i = 0; i < serial.entries.size(); ++i) {
      EXPECT_EQ(serial.entries[i].name, parallel.entries[i].name);
      EXPECT_EQ(serial.entries[i].perceived_availability.mean,
                parallel.entries[i].perceived_availability.mean);
      EXPECT_EQ(serial.entries[i].perceived_availability.half_width,
                parallel.entries[i].perceived_availability.half_width);
      EXPECT_EQ(serial.entries[i].delta_vs_baseline,
                parallel.entries[i].delta_vs_baseline);
      EXPECT_EQ(serial.entries[i].observed_web_service_availability,
                parallel.entries[i].observed_web_service_availability);
      EXPECT_EQ(serial.entries[i].mean_retries_per_session,
                parallel.entries[i].mean_retries_per_session);
      EXPECT_EQ(serial.entries[i].abandonment_fraction,
                parallel.entries[i].abandonment_fraction);
    }
    // Wall-clock instruments (plan timing spans and gauges) are honest
    // real-time measurements; every model-domain table must match.
    expect_identical_metrics(ob1.metrics, obn.metrics,
                             /*skip_wall_clock=*/true);
    expect_identical_model_spans(ob1.tracer, obn.tracer);
  }
}

TEST(Determinism, ObserverShardingLeavesDisabledRunsUntouched) {
  // No observer attached: the parallel path must produce the same result
  // as the observed runs' availability (instrumentation records, never
  // perturbs) at any thread count.
  const auto params = ut::TaParameters::paper_defaults();
  ut::EndToEndOptions options = small_run();
  options.threads = 1;
  const auto serial = ut::simulate_end_to_end(ut::UserClass::kB, params,
                                              options);
  options.threads = 8;
  const auto parallel = ut::simulate_end_to_end(ut::UserClass::kB, params,
                                                options);
  EXPECT_EQ(serial.perceived_availability.mean,
            parallel.perceived_availability.mean);
  EXPECT_EQ(serial.mean_session_duration_hours,
            parallel.mean_session_duration_hours);
}

}  // namespace
