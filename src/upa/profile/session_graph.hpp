#pragma once
// Fluent builder for operational profiles using node names instead of raw
// matrix indices. "Start" and "Exit" are implicit nodes.

#include <map>
#include <string>
#include <vector>

#include "upa/profile/operational_profile.hpp"

namespace upa::profile {

/// Builder: add functions, set transition probabilities by name, build.
/// Rows that do not sum to one are rejected at build time with a message
/// naming the offending node.
class SessionGraphBuilder {
 public:
  SessionGraphBuilder& add_function(const std::string& name);

  /// Sets P(from -> to); `from` may be "Start", `to` may be "Exit".
  SessionGraphBuilder& transition(const std::string& from,
                                  const std::string& to, double probability);

  [[nodiscard]] OperationalProfile build() const;

 private:
  [[nodiscard]] std::size_t state_of(const std::string& name) const;

  std::vector<std::string> functions_;
  std::map<std::string, std::size_t> index_;  // function name -> index
  std::vector<std::tuple<std::string, std::string, double>> transitions_;
};

}  // namespace upa::profile
