#pragma once
// Section-merge writer for flat JSON benchmark artifacts (BENCH_*.json):
// a file is one object whose members are named sections, each owned by
// one harness. write_bench_json replaces or appends a single section
// while preserving every other harness's sections, so bench_fig11,
// bench_injection, upa_loadgen, ... can all contribute to the same file
// in any order. Extracted from bench/bench_util.hpp once upa_loadgen --
// a shipped tool, not a bench binary -- needed it too.

#include <string>
#include <utility>
#include <vector>

namespace upa::common {

/// Splits a one-level JSON object ("{ "k": <raw>, ... }") into its
/// (key, raw value text) pairs in file order. The scanner is
/// string-aware (escapes included) and depth-counting, which is all the
/// structure the bench files use. Malformed input yields whatever
/// prefix parsed cleanly, which for a bench artifact means the file
/// gets rewritten.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
bench_json_sections(const std::string& text);

/// Writes (or updates) one named section of a flat JSON benchmark
/// artifact. Existing sections written by other harnesses are
/// preserved; a section with the same name is replaced in place, a new
/// one is appended. Field values are written with max_digits10
/// precision so they round-trip.
void write_bench_json(
    const std::string& path, const std::string& section,
    const std::vector<std::pair<std::string, double>>& fields);

}  // namespace upa::common
