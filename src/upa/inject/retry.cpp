#include "upa/inject/retry.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::inject {

double RetryPolicy::backoff_hours(std::size_t retry_index) const {
  return backoff_base_hours *
         std::pow(backoff_multiplier, static_cast<double>(retry_index));
}

void RetryPolicy::validate() const {
  UPA_REQUIRE(
      std::isfinite(backoff_base_hours) && backoff_base_hours >= 0.0,
      "retry backoff base must be finite and non-negative");
  UPA_REQUIRE(std::isfinite(backoff_multiplier) && backoff_multiplier >= 1.0,
              "retry backoff multiplier must be >= 1");
  UPA_REQUIRE(std::isfinite(response_timeout_seconds) &&
                  response_timeout_seconds >= 0.0,
              "response timeout must be finite and non-negative");
  UPA_REQUIRE(abandonment_probability >= 0.0 &&
                  abandonment_probability <= 1.0,
              "abandonment probability must lie in [0, 1]");
}

}  // namespace upa::inject
