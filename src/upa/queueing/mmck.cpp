#include "upa/queueing/mmck.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::queueing {
namespace {

void check_args(double alpha, double nu, std::size_t servers,
                std::size_t capacity) {
  UPA_REQUIRE(std::isfinite(alpha) && alpha > 0.0,
              "arrival rate must be positive");
  UPA_REQUIRE(std::isfinite(nu) && nu > 0.0, "service rate must be positive");
  UPA_REQUIRE(servers >= 1, "need at least one server");
  UPA_REQUIRE(capacity >= servers,
              "capacity must be at least the number of servers");
}

/// Unnormalized birth-death weights w_j with w_0 = 1:
/// w_j = w_{j-1} * rho / min(j, c). Stable (no factorials/powers), and
/// rescaled in-loop by an exact power of two whenever the running weight
/// crosses 2^512, so extreme loads (rho ~ 1e3 with K ~ 1e4 grows like
/// (rho/c)^K) stay finite instead of overflowing the one-shot
/// normalization. Only the ratio of weights matters downstream, and a
/// power-of-two rescale is exact, so cases that never trigger it keep
/// their historical bits; rescaled prefixes may flush weights below
/// ~2^-512 of the peak to zero, which is far under the 1e-16 resolution
/// of the normalized sum.
std::vector<double> weights(double rho, std::size_t servers,
                            std::size_t capacity) {
  constexpr double kRescaleAbove = 0x1p512;
  constexpr double kRescale = 0x1p-512;
  std::vector<double> w(capacity + 1);
  w[0] = 1.0;
  for (std::size_t j = 1; j <= capacity; ++j) {
    w[j] = w[j - 1] * rho / static_cast<double>(std::min(j, servers));
    if (w[j] > kRescaleAbove) {
      for (std::size_t k = 0; k <= j; ++k) w[k] *= kRescale;
    }
  }
  return w;
}

double mmck_loss_probability_uncached(double alpha, double nu,
                                      std::size_t servers,
                                      std::size_t capacity) {
  const double rho = alpha / nu;
  const std::vector<double> w = weights(rho, servers, capacity);
  const double total = upa::common::kahan_sum(w);
  return w[capacity] / total;
}

MmckMetrics mmck_metrics_uncached(double alpha, double nu,
                                  std::size_t servers, std::size_t capacity);

}  // namespace

double mmck_loss_probability(double alpha, double nu, std::size_t servers,
                             std::size_t capacity) {
  check_args(alpha, nu, servers, capacity);
  if (!cache::enabled()) {
    return mmck_loss_probability_uncached(alpha, nu, servers, capacity);
  }
  cache::KeyBuilder kb("queueing.mmck_loss", 1);
  kb.add(alpha)
      .add(nu)
      .add(static_cast<std::uint64_t>(servers))
      .add(static_cast<std::uint64_t>(capacity));
  return *cache::global().get_or_compute<double>(std::move(kb).finish(), [&] {
    return mmck_loss_probability_uncached(alpha, nu, servers, capacity);
  });
}

MmckMetrics mmck_metrics(double alpha, double nu, std::size_t servers,
                         std::size_t capacity) {
  check_args(alpha, nu, servers, capacity);
  if (!cache::enabled()) {
    return mmck_metrics_uncached(alpha, nu, servers, capacity);
  }
  cache::KeyBuilder kb("queueing.mmck_metrics", 1);
  kb.add(alpha)
      .add(nu)
      .add(static_cast<std::uint64_t>(servers))
      .add(static_cast<std::uint64_t>(capacity));
  return *cache::global().get_or_compute<MmckMetrics>(
      std::move(kb).finish(),
      [&] { return mmck_metrics_uncached(alpha, nu, servers, capacity); });
}

namespace {

MmckMetrics mmck_metrics_uncached(double alpha, double nu,
                                  std::size_t servers, std::size_t capacity) {
  MmckMetrics m;
  m.rho = alpha / nu;
  std::vector<double> w = weights(m.rho, servers, capacity);
  upa::common::normalize(w);
  m.state_probabilities = w;
  m.blocking = w[capacity];
  for (std::size_t j = 0; j <= capacity; ++j) {
    m.mean_in_system += static_cast<double>(j) * w[j];
    m.mean_busy_servers +=
        static_cast<double>(std::min(j, servers)) * w[j];
    if (j > servers) {
      m.mean_in_queue += static_cast<double>(j - servers) * w[j];
    }
  }
  m.throughput = alpha * (1.0 - m.blocking);
  m.mean_response = m.mean_in_system / m.throughput;  // Little's law
  return m;
}

}  // namespace

double paper_pk(double alpha, double nu, std::size_t operational_servers,
                std::size_t buffer_size) {
  return mmck_loss_probability(alpha, nu, operational_servers, buffer_size);
}

MmckSizing mmck_capacity_for_loss(double alpha, double nu,
                                  std::size_t servers, double target_loss,
                                  std::size_t max_capacity,
                                  std::size_t min_capacity) {
  check_args(alpha, nu, servers, std::max(servers, max_capacity));
  UPA_REQUIRE(std::isfinite(target_loss) && target_loss > 0.0 &&
                  target_loss < 1.0,
              "target loss must be in (0, 1)");
  UPA_REQUIRE(max_capacity >= servers,
              "max capacity must be at least the server count");
  MmckSizing out;
  out.servers = servers;
  std::size_t lo = std::max({servers, min_capacity, std::size_t{1}});
  std::size_t hi = std::max(lo, max_capacity);
  out.capacity = hi;
  out.loss = mmck_loss_probability(alpha, nu, servers, hi);
  if (out.loss > target_loss) return out;  // even the cap misses the SLO
  out.feasible = true;
  // Invariant: loss(hi) <= target < loss(lo - 1); shrink to the smallest
  // feasible K. p_K is nonincreasing in K, so bisection applies.
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (mmck_loss_probability(alpha, nu, servers, mid) <= target_loss) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  out.capacity = hi;
  out.loss = mmck_loss_probability(alpha, nu, servers, hi);
  return out;
}

MmckSizing mmck_smallest_config(double alpha, double nu, double target_loss,
                                std::size_t max_servers,
                                std::size_t max_capacity,
                                std::size_t min_servers) {
  UPA_REQUIRE(min_servers >= 1, "min servers must be >= 1");
  UPA_REQUIRE(max_servers >= min_servers,
              "max servers must be >= min servers");
  UPA_REQUIRE(max_capacity >= max_servers,
              "max capacity must be >= max servers");
  MmckSizing best;
  for (std::size_t i = min_servers; i <= max_servers; ++i) {
    best = mmck_capacity_for_loss(alpha, nu, i, target_loss, max_capacity);
    if (best.feasible) return best;
  }
  return best;  // the (max_servers, max_capacity) corner, infeasible
}

}  // namespace upa::queueing
