#include "upa/rbd/paths.hpp"

#include <algorithm>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/rbd/block_node.hpp"

namespace upa::rbd {
namespace {

/// Removes every set that is a (non-strict) superset of another set.
std::vector<ComponentSet> minimize(std::vector<ComponentSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const ComponentSet& a, const ComponentSet& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<ComponentSet> kept;
  for (const ComponentSet& candidate : sets) {
    const bool absorbed = std::any_of(
        kept.begin(), kept.end(), [&](const ComponentSet& smaller) {
          return std::includes(candidate.begin(), candidate.end(),
                               smaller.begin(), smaller.end());
        });
    if (!absorbed) kept.push_back(candidate);
  }
  return kept;
}

/// Cross product: every union of one set from `a` with one set from `b`.
std::vector<ComponentSet> cross(const std::vector<ComponentSet>& a,
                                const std::vector<ComponentSet>& b) {
  std::vector<ComponentSet> out;
  out.reserve(a.size() * b.size());
  for (const ComponentSet& x : a) {
    for (const ComponentSet& y : b) {
      ComponentSet u = x;
      u.insert(y.begin(), y.end());
      out.push_back(std::move(u));
    }
  }
  UPA_REQUIRE(out.size() <= 200000,
              "path/cut set expansion too large for exact enumeration");
  return out;
}

std::vector<ComponentSet> append(std::vector<ComponentSet> a,
                                 std::vector<ComponentSet> b) {
  a.insert(a.end(), std::make_move_iterator(b.begin()),
           std::make_move_iterator(b.end()));
  return a;
}

/// Enumerates all size-`r` subsets of indices [0, n) and applies `fn`.
template <typename Fn>
void for_each_subset(std::size_t n, std::size_t r, const Fn& fn) {
  std::vector<std::size_t> idx(r);
  for (std::size_t i = 0; i < r; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    // Advance to the next combination.
    std::size_t i = r;
    while (i-- > 0) {
      if (idx[i] != i + n - r) {
        ++idx[i];
        for (std::size_t j = i + 1; j < r; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (r == 0) return;
  }
}

std::vector<ComponentSet> paths_of(const Block& block);
std::vector<ComponentSet> cuts_of(const Block& block);

std::vector<ComponentSet> paths_of(const Block& block) {
  const auto& node = BlockAccess::node(block);
  switch (node.kind) {
    case BlockKind::kComponent:
      return {ComponentSet{node.name}};
    case BlockKind::kSeries: {
      std::vector<ComponentSet> acc{ComponentSet{}};
      for (const Block& child : node.children) {
        acc = minimize(cross(acc, paths_of(child)));
      }
      return acc;
    }
    case BlockKind::kParallel: {
      std::vector<ComponentSet> acc;
      for (const Block& child : node.children) {
        acc = append(std::move(acc), paths_of(child));
      }
      return minimize(std::move(acc));
    }
    case BlockKind::kKofN: {
      // A path: pick k children and take a path through each.
      std::vector<std::vector<ComponentSet>> child_paths;
      child_paths.reserve(node.children.size());
      for (const Block& child : node.children) {
        child_paths.push_back(paths_of(child));
      }
      std::vector<ComponentSet> acc;
      for_each_subset(node.children.size(), node.k,
                      [&](const std::vector<std::size_t>& subset) {
                        std::vector<ComponentSet> combo{ComponentSet{}};
                        for (std::size_t c : subset) {
                          combo = cross(combo, child_paths[c]);
                        }
                        acc = append(std::move(acc), std::move(combo));
                      });
      return minimize(std::move(acc));
    }
  }
  UPA_ASSERT(false);
  return {};
}

std::vector<ComponentSet> cuts_of(const Block& block) {
  const auto& node = BlockAccess::node(block);
  switch (node.kind) {
    case BlockKind::kComponent:
      return {ComponentSet{node.name}};
    case BlockKind::kSeries: {
      std::vector<ComponentSet> acc;
      for (const Block& child : node.children) {
        acc = append(std::move(acc), cuts_of(child));
      }
      return minimize(std::move(acc));
    }
    case BlockKind::kParallel: {
      std::vector<ComponentSet> acc{ComponentSet{}};
      for (const Block& child : node.children) {
        acc = minimize(cross(acc, cuts_of(child)));
      }
      return acc;
    }
    case BlockKind::kKofN: {
      // A cut: bring down n-k+1 children.
      const std::size_t need_down = node.children.size() - node.k + 1;
      std::vector<std::vector<ComponentSet>> child_cuts;
      child_cuts.reserve(node.children.size());
      for (const Block& child : node.children) {
        child_cuts.push_back(cuts_of(child));
      }
      std::vector<ComponentSet> acc;
      for_each_subset(node.children.size(), need_down,
                      [&](const std::vector<std::size_t>& subset) {
                        std::vector<ComponentSet> combo{ComponentSet{}};
                        for (std::size_t c : subset) {
                          combo = cross(combo, child_cuts[c]);
                        }
                        acc = append(std::move(acc), std::move(combo));
                      });
      return minimize(std::move(acc));
    }
  }
  UPA_ASSERT(false);
  return {};
}

}  // namespace

std::vector<ComponentSet> minimal_path_sets(const Block& block) {
  return paths_of(block);
}

std::vector<ComponentSet> minimal_cut_sets(const Block& block) {
  return cuts_of(block);
}

double availability_from_path_sets(
    const std::vector<ComponentSet>& path_sets, const ParamMap& params) {
  UPA_REQUIRE(!path_sets.empty(), "need at least one path set");
  UPA_REQUIRE(path_sets.size() <= 22,
              "too many path sets for inclusion-exclusion");
  const std::size_t n = path_sets.size();
  double total = 0.0;
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    ComponentSet unioned;
    int bits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        unioned.insert(path_sets[i].begin(), path_sets[i].end());
        ++bits;
      }
    }
    double product = 1.0;
    for (const std::string& name : unioned) {
      const auto it = params.find(name);
      UPA_REQUIRE(it != params.end(),
                  "no availability provided for component " + name);
      product *= upa::common::clamp_probability(it->second);
    }
    total += (bits % 2 == 1 ? 1.0 : -1.0) * product;
  }
  return total;
}

}  // namespace upa::rbd
