// Unit tests for upa::markov: CTMC construction/steady state, DTMC
// stationary + absorbing-chain analysis, and birth-death closed forms.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/markov/birth_death.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/markov/dtmc.hpp"

namespace um = upa::markov;
namespace ul = upa::linalg;
using upa::common::ModelError;

TEST(Ctmc, TwoStateAvailabilityClosedForm) {
  const double lambda = 1e-3;
  const double mu = 0.5;
  const um::Ctmc chain = um::two_state_availability(lambda, mu);
  const ul::Vector pi = chain.steady_state();
  EXPECT_NEAR(pi[0], um::two_state_steady_availability(lambda, mu), 1e-14);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-14);
  EXPECT_NEAR(pi[0], mu / (lambda + mu), 1e-14);
}

TEST(Ctmc, GeneratorRowsSumToZero) {
  um::Ctmc chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 2, 3.0);
  chain.add_rate(2, 0, 4.0);
  const ul::Matrix q = chain.generator();
  for (std::size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += q(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-14);
  }
  EXPECT_DOUBLE_EQ(q(0, 0), -2.0);
}

TEST(Ctmc, SparseGeneratorMatchesDense) {
  um::Ctmc chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(1, 2, 3.0);
  chain.add_rate(2, 1, 5.0);
  EXPECT_LT(ul::max_abs_diff(chain.sparse_generator().to_dense(),
                             chain.generator()),
            1e-15);
}

TEST(Ctmc, RejectsBadRates) {
  um::Ctmc chain(2);
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), ModelError);  // self loop
  EXPECT_THROW(chain.add_rate(0, 1, -1.0), ModelError);
  EXPECT_THROW(chain.add_rate(0, 1, 0.0), ModelError);
  EXPECT_THROW(chain.add_rate(0, 5, 1.0), ModelError);
}

TEST(Ctmc, AccumulatesParallelRates) {
  um::Ctmc chain(2);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 0, 6.0);
  const ul::Vector pi = chain.steady_state();
  // Effective 0->1 rate 3, 1->0 rate 6: pi = (2/3, 1/3).
  EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-12);
}

TEST(Ctmc, SteadyStateIterativeAgreesWithDirect) {
  um::Ctmc chain(4);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 3, 3.0);
  chain.add_rate(3, 0, 4.0);
  chain.add_rate(2, 0, 0.5);
  const ul::Vector direct = chain.steady_state();
  const ul::Vector iterative = chain.steady_state_iterative();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(direct[i], iterative[i], 1e-9);
  }
}

TEST(Ctmc, ExitRatesAndUniformizationConstant) {
  um::Ctmc chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(0, 2, 3.0);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(2, 0, 1.0);
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 5.0);
  EXPECT_DOUBLE_EQ(chain.max_exit_rate(), 5.0);
}

TEST(Ctmc, MeanTimeToAbsorptionTwoState) {
  // Pure death chain 1 -> 0 with rate lambda: MTTA = 1/lambda.
  um::Ctmc chain(2);
  chain.add_rate(1, 0, 0.25);
  EXPECT_NEAR(chain.mean_time_to_absorption(1, {0}), 4.0, 1e-12);
}

TEST(Ctmc, MttfOfParallelPairWithRepair) {
  // Classic 2-component parallel system, failure rate l each, repair m,
  // absorbing when both failed. States: 2 up, 1 up, 0 up (absorbing).
  // MTTF = (3l + m) / (2 l^2).
  const double l = 0.01;
  const double m = 1.0;
  um::Ctmc chain(3);
  chain.add_rate(0, 1, 2 * l);  // state 0 = both up
  chain.add_rate(1, 0, m);
  chain.add_rate(1, 2, l);
  const double expected = (3 * l + m) / (2 * l * l);
  EXPECT_NEAR(chain.mean_time_to_absorption(0, {2}) / expected, 1.0, 1e-12);
}

TEST(Ctmc, SteadyStateMassOfSubset) {
  um::Ctmc chain = um::two_state_availability(1.0, 3.0);
  EXPECT_NEAR(chain.steady_state_mass({0}), 0.75, 1e-12);
  EXPECT_NEAR(chain.steady_state_mass({0, 1}), 1.0, 1e-12);
}

TEST(Ctmc, LabelsRoundTrip) {
  um::Ctmc chain(2);
  chain.set_label(0, "operational");
  EXPECT_EQ(chain.label(0), "operational");
  EXPECT_EQ(chain.label(1), "s1");
}

TEST(Dtmc, ValidatesStochasticRows) {
  EXPECT_THROW(um::Dtmc(ul::Matrix{{0.5, 0.4}, {0.0, 1.0}}), ModelError);
  EXPECT_THROW(um::Dtmc(ul::Matrix{{1.2, -0.2}, {0.0, 1.0}}), ModelError);
  EXPECT_NO_THROW(um::Dtmc(ul::Matrix{{0.5, 0.5}, {0.25, 0.75}}));
}

TEST(Dtmc, StationaryDistributionTwoState) {
  um::Dtmc chain(ul::Matrix{{0.9, 0.1}, {0.3, 0.7}});
  const ul::Vector pi = chain.stationary_distribution();
  EXPECT_NEAR(pi[0], 0.75, 1e-12);
  EXPECT_NEAR(pi[1], 0.25, 1e-12);
  // Verify fixed point.
  const ul::Vector next = chain.distribution_after(pi, 1);
  EXPECT_NEAR(next[0], pi[0], 1e-12);
}

TEST(Dtmc, DistributionAfterSteps) {
  um::Dtmc chain(ul::Matrix{{0.0, 1.0}, {1.0, 0.0}});
  const ul::Vector after3 = chain.distribution_after({1.0, 0.0}, 3);
  EXPECT_NEAR(after3[1], 1.0, 1e-14);
}

TEST(Absorbing, GamblersRuinProbabilities) {
  // States 0..4; 0 and 4 absorbing; fair coin moves +-1.
  ul::Matrix p(5, 5);
  p(0, 0) = 1.0;
  p(4, 4) = 1.0;
  for (std::size_t s = 1; s <= 3; ++s) {
    p(s, s - 1) = 0.5;
    p(s, s + 1) = 0.5;
  }
  um::Dtmc chain(p);
  um::AbsorbingChainAnalysis analysis(chain, {0, 4});
  EXPECT_NEAR(analysis.absorption_probability(1, 4), 0.25, 1e-12);
  EXPECT_NEAR(analysis.absorption_probability(2, 4), 0.50, 1e-12);
  EXPECT_NEAR(analysis.absorption_probability(3, 4), 0.75, 1e-12);
  // Expected duration from the middle: i(N-i) = 4.
  EXPECT_NEAR(analysis.expected_steps_to_absorption(2), 4.0, 1e-12);
}

TEST(Absorbing, ExpectedVisitsGeometric) {
  // State 0 self-loops with 0.5, else absorbs: visits ~ geometric mean 2.
  ul::Matrix p(2, 2);
  p(0, 0) = 0.5;
  p(0, 1) = 0.5;
  p(1, 1) = 1.0;
  um::Dtmc chain(p);
  um::AbsorbingChainAnalysis analysis(chain, {1});
  EXPECT_NEAR(analysis.expected_visits(0, 0), 2.0, 1e-12);
}

TEST(Absorbing, RejectsNonAbsorbingTarget) {
  um::Dtmc chain(ul::Matrix{{0.5, 0.5}, {0.5, 0.5}});
  EXPECT_THROW(um::AbsorbingChainAnalysis(chain, {1}), ModelError);
}

TEST(BirthDeath, MatchesExplicitCtmc) {
  um::BirthDeath bd({2.0, 1.0, 0.5}, {1.0, 1.0, 2.0});
  const ul::Vector closed = bd.steady_state();
  const ul::Vector numeric = bd.to_ctmc().steady_state();
  ASSERT_EQ(closed.size(), numeric.size());
  for (std::size_t i = 0; i < closed.size(); ++i) {
    EXPECT_NEAR(closed[i], numeric[i], 1e-12);
  }
}

TEST(BirthDeath, HandlesExtremeRateRatios) {
  // mu/lambda = 1e8 over 6 states: must not overflow or lose normalization.
  std::vector<double> birth(6, 1e4);
  std::vector<double> death(6, 1e-4);
  um::BirthDeath bd(birth, death);
  const ul::Vector pi = bd.steady_state();
  double sum = 0.0;
  for (double p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(pi.back(), 0.99);
}

TEST(BirthDeath, RejectsBadInput) {
  EXPECT_THROW(um::BirthDeath({}, {}), ModelError);
  EXPECT_THROW(um::BirthDeath({1.0}, {1.0, 2.0}), ModelError);
  EXPECT_THROW(um::BirthDeath({-1.0}, {1.0}), ModelError);
}
