#pragma once
// Wire protocol of `upa_served`: newline-delimited JSON request/response
// over a byte stream, exposing the travel-agency evaluators as RPC
// methods. One request per line:
//
//   {"id": 7, "method": "mmck_metrics",
//    "params": {"alpha": 200, "nu": 100, "servers": 2, "capacity": 6}}
//
// and exactly one response line per request:
//
//   {"id": 7, "ok": true, "result": {...}}
//   {"id": 7, "ok": false, "error": {"code": 400, "message": "..."}}
//
// `id` is echoed verbatim (any JSON value; null when the request could
// not be parsed). Error codes follow the HTTP convention the paper's
// web tier would use: 400 malformed request / bad parameters, 404
// unknown method, 500 internal error, 503 admission rejected (queue
// full), 504 deadline exceeded. 503 is produced by the server's
// admission control before the request is even read -- see server.hpp.
//
// The Dispatcher is transport-free and deterministic: identical request
// lines yield byte-identical response lines (doubles are written with
// shortest round-trip formatting, object members in fixed order), with
// or without the evaluation cache -- the cache replays results bit for
// bit, so the serialized payload cannot differ.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "upa/serve/json.hpp"

namespace upa::serve {

/// Error codes used in response envelopes (HTTP-style).
struct ErrorCode {
  static constexpr int kBadRequest = 400;
  static constexpr int kUnknownMethod = 404;
  static constexpr int kInternal = 500;
  static constexpr int kQueueFull = 503;
  static constexpr int kDeadlineExceeded = 504;
};

/// Builds the success / error envelopes. `id` is echoed verbatim.
[[nodiscard]] Json make_result_response(const Json& id, Json result);
[[nodiscard]] Json make_error_response(const Json& id, int code,
                                       const std::string& message);

/// Distributed trace context carried in the optional `trace` member of a
/// request envelope:
///
///   {"id": 7, "method": "ping", "trace":
///     {"trace_id": "a1b2c3d4e5f60718", "span_id": 42, "sampled": true}}
///
/// `trace_id` names the end-to-end request (1-32 lowercase hex chars),
/// `span_id` is the sender's attempt-span reference the receiver parents
/// its server-side spans on (0 = root), and `sampled` lets a front end
/// forward context without forcing every hop to record spans. Responses
/// never echo the trace member, so response bytes are identical with and
/// without tracing.
struct TraceContext {
  std::string trace_id;
  std::uint64_t span_id = 0;
  bool sampled = true;
};

/// Extracts the trace context from a parsed request envelope. Returns
/// nullopt when no `trace` member is present; throws common::ModelError
/// when one is present but malformed (wrong types, empty or non-hex
/// trace_id, negative / fractional / oversized span_id).
[[nodiscard]] std::optional<TraceContext> parse_trace_context(
    const Json& request);

/// The `trace` member value for a context.
[[nodiscard]] Json trace_context_json(const TraceContext& context);

/// Re-serializes `request` with its `trace` member set to `context`
/// (replacing any existing one). All other members keep their positions,
/// so the rewritten line hashes to the same balancing affinity key.
[[nodiscard]] std::string with_trace_context(const Json& request,
                                             const TraceContext& context);

/// Deterministic 16-hex-char trace id from a seed. Uses the splitmix64
/// finalizer -- a bijection on 64-bit values -- so distinct seeds always
/// yield distinct ids.
[[nodiscard]] std::string make_trace_id(std::uint64_t seed);

/// Method table mapping RPC names to handlers. Construction registers
/// the built-in evaluator methods:
///
///   ping                   liveness probe
///   sleep                  hold a worker for params.seconds (loadgen's
///                          calibrated-service-time workload)
///   steady_state           robust stationary solve of the web-farm
///                          coverage chain (Fig. 9/10)
///   mmck_metrics           M/M/c/K steady-state metrics (eq. 3)
///   web_farm_availability  composite A(WS) closed form (eqs. 5/9)
///   composite_availability CTMC + reward cross-check with breakdown
///   user_availability      user-perceived availability, eq. (10)
///   run_campaign           fault-injection campaign (scripted outage)
///   simulate_end_to_end    end-to-end session simulation
///   cache                  evaluation-cache control: op = stats |
///                          clear | reset_stats | enable | disable
///
/// The server registers one extra method (`stats`) that closes over its
/// live counters. Handlers receive the request's `params` object (null
/// when absent) and return the `result` value; they signal caller
/// errors by throwing common::ModelError (mapped to code 400).
class Dispatcher {
 public:
  using Handler = std::function<Json(const Json& params)>;

  Dispatcher();

  /// Registers (or replaces) a method.
  void register_method(const std::string& name, Handler handler);

  [[nodiscard]] std::vector<std::string> method_names() const;

  /// Full request -> response on parsed envelopes.
  [[nodiscard]] Json dispatch(const Json& request) const;

  /// One request line -> one response line (no trailing newline). Never
  /// throws: every failure becomes an error envelope.
  [[nodiscard]] std::string dispatch_line(const std::string& line) const;

 private:
  std::map<std::string, Handler> methods_;
};

}  // namespace upa::serve
