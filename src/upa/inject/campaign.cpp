#include "upa/inject/campaign.hpp"

#include <utility>

#include "upa/common/csv.hpp"
#include "upa/common/table.hpp"
#include "upa/obs/observer.hpp"

namespace upa::inject {
namespace {

common::CsvWriter build_csv(const std::vector<CampaignEntry>& entries) {
  common::CsvWriter writer({"plan", "availability_mean", "ci_half_width",
                            "ci_low", "ci_high", "delta_vs_baseline",
                            "observed_web_availability",
                            "mean_retries_per_session",
                            "abandonment_fraction"});
  for (const CampaignEntry& e : entries) {
    writer.add_row({e.name, common::fmt(e.perceived_availability.mean, 10),
                    common::fmt(e.perceived_availability.half_width, 10),
                    common::fmt(e.perceived_availability.low, 10),
                    common::fmt(e.perceived_availability.high, 10),
                    common::fmt(e.delta_vs_baseline, 10),
                    common::fmt(e.observed_web_service_availability, 10),
                    common::fmt(e.mean_retries_per_session, 10),
                    common::fmt(e.abandonment_fraction, 10)});
  }
  return writer;
}

CampaignEntry measure(std::string name, ta::UserClass uclass,
                      const ta::TaParameters& params,
                      ta::EndToEndOptions options, FaultPlan plan,
                      obs::Observer* ob) {
  options.faults = std::move(plan);
  obs::ScopedWallSpan span(ob != nullptr ? &ob->tracer : nullptr,
                           obs::SpanLevel::kCampaignPlan, name);
  const ta::EndToEndResult r =
      ta::simulate_end_to_end(uclass, params, options);
  CampaignEntry entry;
  entry.name = std::move(name);
  entry.perceived_availability = r.perceived_availability;
  entry.observed_web_service_availability =
      r.observed_web_service_availability;
  entry.mean_retries_per_session = r.mean_retries_per_session;
  entry.abandonment_fraction = r.abandonment_fraction;
  if (ob != nullptr) {
    span.attr("availability_mean", entry.perceived_availability.mean);
    span.attr("ci_half_width", entry.perceived_availability.half_width);
    span.attr("mean_retries_per_session", entry.mean_retries_per_session);
    span.attr("abandonment_fraction", entry.abandonment_fraction);
    ob->metrics.counter("campaign.plans").add();
    ob->metrics.gauge("campaign.last_plan_wall_seconds")
        .set(span.elapsed_seconds());
    ob->metrics
        .histogram("campaign.plan_wall_seconds",
                   obs::geometric_buckets(1e-3, 10.0, 7))
        .record(span.elapsed_seconds());
  }
  return entry;
}

}  // namespace

std::string CampaignResult::csv() const { return build_csv(entries).str(); }

void CampaignResult::write_csv(const std::string& path) const {
  build_csv(entries).write_file(path);
}

CampaignResult run_campaign(ta::UserClass uclass,
                            const ta::TaParameters& params,
                            const CampaignOptions& options,
                            const std::vector<CampaignPlan>& plans) {
  // The plan-level observer defaults to the per-run one (and vice versa)
  // so attaching either instruments the whole campaign.
  obs::Observer* const ob =
      options.obs != nullptr ? options.obs : options.end_to_end.obs;
  ta::EndToEndOptions run_options = options.end_to_end;
  if (run_options.obs == nullptr) run_options.obs = ob;

  CampaignResult result;
  result.entries.reserve(plans.size() + 1);
  result.entries.push_back(
      measure("baseline", uclass, params, run_options, FaultPlan{}, ob));
  const double baseline_mean =
      result.entries.front().perceived_availability.mean;
  for (const CampaignPlan& p : plans) {
    CampaignEntry entry =
        measure(p.name, uclass, params, run_options, p.plan, ob);
    entry.delta_vs_baseline =
        entry.perceived_availability.mean - baseline_mean;
    if (ob != nullptr) {
      ob->metrics.gauge("campaign." + p.name + ".delta_vs_baseline")
          .set(entry.delta_vs_baseline);
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

CampaignResult run_campaign(ta::UserClass uclass,
                            const ta::TaParameters& params,
                            const ta::EndToEndOptions& base_options,
                            const std::vector<CampaignPlan>& plans) {
  CampaignOptions options;
  options.end_to_end = base_options;
  return run_campaign(uclass, params, options, plans);
}

}  // namespace upa::inject
