// Tests for the semi-Markov process module (including the insensitivity
// result for the web farm's reconfiguration-time distribution) and the
// M/G/1 Pollaczek-Khinchine formulas.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/markov/semi_markov.hpp"
#include "upa/queueing/mg1.hpp"
#include "upa/queueing/mm1.hpp"
#include "upa/sim/queue_sim.hpp"

namespace um = upa::markov;
namespace uq = upa::queueing;
namespace uc = upa::core;
using upa::common::ModelError;

TEST(SemiMarkov, CtmcRoundTripMatchesSteadyState) {
  um::Ctmc chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(1, 0, 0.5);
  chain.add_rate(2, 0, 4.0);
  const auto smp = um::to_semi_markov(chain);
  const auto occupancy = smp.steady_state_occupancy();
  const auto ctmc_pi = chain.steady_state();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(occupancy[i], ctmc_pi[i], 1e-12);
  }
}

TEST(SemiMarkov, TwoStateAlternatingRenewal) {
  // Up 9 h, down 1 h on average (ANY distribution): availability 0.9.
  upa::linalg::Matrix p{{0.0, 1.0}, {1.0, 0.0}};
  const um::SemiMarkovProcess smp(p, {9.0, 1.0});
  EXPECT_NEAR(smp.occupancy_mass({0}), 0.9, 1e-12);
}

TEST(SemiMarkov, FarmAvailabilityInsensitiveToReconfigurationLaw) {
  // Insensitivity: replace every sojourn with a different-distribution
  // equal-mean one -- occupancies depend on means only, so the paper's
  // exponential manual-reconfiguration assumption is harmless for the
  // steady-state availability.
  uc::WebFarmParams farm{4, 1e-3, 1.0, 0.9, 12.0};
  const auto chain = uc::imperfect_coverage_chain(farm);
  const auto smp = um::to_semi_markov(chain.chain);
  const auto smp_occupancy = smp.steady_state_occupancy();
  const auto ctmc_pi = chain.chain.steady_state();
  for (std::size_t s = 0; s < ctmc_pi.size(); ++s) {
    EXPECT_NEAR(smp_occupancy[s], ctmc_pi[s], 1e-12) << "state " << s;
  }
  // The semi-Markov formula uses ONLY the mean 1/beta of the y-state
  // sojourns; a deterministic 5-minute reconfiguration yields the same
  // occupancy vector by construction. The paper's A(WS) is therefore
  // exact for deterministic repairs as well.
}

TEST(SemiMarkov, RejectsBadInputs) {
  upa::linalg::Matrix p{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW(um::SemiMarkovProcess(p, {1.0}), ModelError);
  EXPECT_THROW(um::SemiMarkovProcess(p, {1.0, -1.0}), ModelError);
  um::Ctmc absorbing(2);
  absorbing.add_rate(0, 1, 1.0);
  EXPECT_THROW((void)um::to_semi_markov(absorbing), ModelError);
}

TEST(Mg1, ExponentialServiceReducesToMm1) {
  const double alpha = 5.0;
  const double nu = 10.0;
  const auto mg1 = uq::mg1_metrics(alpha, uq::exponential_service(nu));
  const auto mm1 = uq::mm1_metrics(alpha, nu);
  EXPECT_NEAR(mg1.mean_in_system, mm1.mean_in_system, 1e-12);
  EXPECT_NEAR(mg1.mean_wait, mm1.mean_wait, 1e-12);
  EXPECT_NEAR(mg1.mean_response, mm1.mean_response, 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesTheQueue) {
  // Classic result: M/D/1 waiting time is half of M/M/1's.
  const double alpha = 8.0;
  const auto md1 = uq::mg1_metrics(alpha, uq::deterministic_service(0.1));
  const auto mm1 = uq::mg1_metrics(alpha, uq::exponential_service(10.0));
  EXPECT_NEAR(md1.mean_in_queue, 0.5 * mm1.mean_in_queue, 1e-12);
}

TEST(Mg1, ErlangMomentsAndMonotonicityInVariability) {
  const auto erlang = uq::erlang_service(4, 40.0);
  EXPECT_NEAR(erlang.mean, 0.1, 1e-15);
  EXPECT_NEAR(erlang.scv, 0.25, 1e-15);
  const double alpha = 6.0;
  const double lq_det =
      uq::mg1_metrics(alpha, uq::deterministic_service(0.1)).mean_in_queue;
  const double lq_erl = uq::mg1_metrics(alpha, erlang).mean_in_queue;
  const double lq_exp =
      uq::mg1_metrics(alpha, uq::exponential_service(10.0)).mean_in_queue;
  EXPECT_LT(lq_det, lq_erl);
  EXPECT_LT(lq_erl, lq_exp);
}

TEST(Mg1, RejectsUnstableAndInvalid) {
  EXPECT_THROW((void)uq::mg1_metrics(10.0, uq::deterministic_service(0.1)),
               ModelError);
  EXPECT_THROW((void)uq::mg1_metrics(1.0, {0.0, 1.0}), ModelError);
  EXPECT_THROW((void)uq::mg1_metrics(1.0, {0.1, -0.5}), ModelError);
}

TEST(Mg1, ValidatedByDesWithErlangService) {
  // M/E4/1 with rho = 0.6: simulated sojourn time matches P-K.
  const double alpha = 6.0;
  upa::sim::QueueSpec spec;
  spec.interarrival = upa::sim::Exponential{alpha};
  spec.service = upa::sim::Erlang{4, 40.0};
  spec.servers = 1;
  spec.capacity = 4000;  // effectively infinite
  upa::sim::QueueSimOptions options;
  options.arrivals_per_replication = 80000;
  options.warmup_arrivals = 8000;
  options.replications = 6;
  options.seed = 7;
  const auto result = upa::sim::simulate_queue(spec, options);
  const auto analytic = uq::mg1_metrics(alpha, uq::erlang_service(4, 40.0));
  EXPECT_NEAR(result.mean_response.mean, analytic.mean_response,
              result.mean_response.half_width + 2e-3);
}
