#include "upa/sim/queue_sim.hpp"

#include <deque>

#include "upa/common/error.hpp"
#include "upa/sim/engine.hpp"
#include "upa/sim/rng.hpp"

namespace upa::sim {
namespace {

struct Replication {
  double loss = 0.0;
  double mean_l = 0.0;
  double mean_response = 0.0;
  double deadline_miss = 0.0;
};

Replication run_once(const QueueSpec& spec, const QueueSimOptions& options,
                     Xoshiro256 rng) {
  Engine engine;
  std::size_t in_system = 0;
  std::size_t busy = 0;
  std::deque<double> waiting;  // admission times of queued jobs

  std::uint64_t arrived = 0;
  std::uint64_t accepted = 0;
  std::uint64_t lost = 0;
  double response_sum = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t missed_deadline = 0;

  TimeWeightedStats l_stats(0.0, 0.0);
  double observe_from = -1.0;  // set when warmup ends

  std::function<void(double)> depart;
  auto start_service = [&](double admit_time) {
    ++busy;
    engine.schedule_in(sample(spec.service, rng),
                       [&, admit_time] { depart(admit_time); });
  };
  depart = [&](double admit_time) {
    --busy;
    --in_system;
    if (observe_from >= 0.0) {
      l_stats.update(engine.now(), static_cast<double>(in_system));
      if (admit_time >= observe_from) {
        const double sojourn = engine.now() - admit_time;
        response_sum += sojourn;
        ++completed;
        if (options.deadline > 0.0 && sojourn > options.deadline) {
          ++missed_deadline;
        }
      }
    }
    if (!waiting.empty()) {
      const double next_admit = waiting.front();
      waiting.pop_front();
      start_service(next_admit);
    }
  };

  std::function<void()> arrive = [&] {
    ++arrived;
    const bool in_observation = arrived > options.warmup_arrivals;
    if (in_observation && observe_from < 0.0) {
      observe_from = engine.now();
      l_stats = TimeWeightedStats(engine.now(),
                                  static_cast<double>(in_system));
    }
    if (in_system >= spec.capacity) {
      if (in_observation) ++lost;
    } else {
      ++in_system;
      if (observe_from >= 0.0) {
        l_stats.update(engine.now(), static_cast<double>(in_system));
      }
      if (in_observation) ++accepted;
      if (busy < spec.servers) {
        start_service(engine.now());
      } else {
        waiting.push_back(engine.now());
      }
    }
    if (arrived <
        options.warmup_arrivals + options.arrivals_per_replication) {
      engine.schedule_in(sample(spec.interarrival, rng), arrive);
    }
  };
  engine.schedule_in(sample(spec.interarrival, rng), arrive);
  engine.run_all();

  Replication rep;
  const std::uint64_t observed = accepted + lost;
  UPA_ASSERT(observed > 0);
  rep.loss = static_cast<double>(lost) / static_cast<double>(observed);
  rep.mean_l = l_stats.time_average(engine.now());
  rep.mean_response =
      completed > 0 ? response_sum / static_cast<double>(completed) : 0.0;
  rep.deadline_miss = completed > 0 ? static_cast<double>(missed_deadline) /
                                          static_cast<double>(completed)
                                    : 0.0;
  return rep;
}

}  // namespace

QueueSimResult simulate_queue(const QueueSpec& spec,
                              const QueueSimOptions& options) {
  validate(spec.interarrival);
  validate(spec.service);
  UPA_REQUIRE(spec.servers >= 1, "need at least one server");
  UPA_REQUIRE(spec.capacity >= spec.servers,
              "capacity must be at least the number of servers");
  UPA_REQUIRE(options.replications >= 2, "need at least two replications");
  UPA_REQUIRE(options.arrivals_per_replication > 0,
              "need at least one observed arrival");

  Xoshiro256 master(options.seed);
  std::vector<double> loss;
  std::vector<double> mean_l;
  std::vector<double> response;
  std::vector<double> miss;
  for (std::size_t r = 0; r < options.replications; ++r) {
    const Replication rep = run_once(spec, options, master.split());
    loss.push_back(rep.loss);
    mean_l.push_back(rep.mean_l);
    response.push_back(rep.mean_response);
    miss.push_back(rep.deadline_miss);
  }
  QueueSimResult result;
  result.loss_probability =
      confidence_interval(loss, options.confidence_level);
  result.mean_in_system =
      confidence_interval(mean_l, options.confidence_level);
  result.mean_response =
      confidence_interval(response, options.confidence_level);
  result.deadline_miss =
      confidence_interval(miss, options.confidence_level);
  return result;
}

}  // namespace upa::sim
