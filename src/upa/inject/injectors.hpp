#pragma once
// Stochastic fault-plan generators: sample FaultPlans from outage-process
// models the per-component availability models cannot express — Poisson
// outage arrivals with exponential durations, optionally hitting several
// resource classes at once (common cause), plus a deterministic
// total-outage helper for calibration campaigns.

#include <vector>

#include "upa/inject/fault_plan.hpp"
#include "upa/sim/rng.hpp"

namespace upa::inject {

/// A Poisson process of outage events over the horizon. Each event forces
/// one uniformly chosen target down for an exponential duration — or, with
/// probability `common_cause_probability`, forces EVERY listed target down
/// simultaneously (a correlated shock: power loss, fire, operator error).
struct OutageProcess {
  std::vector<FaultTarget> targets = {FaultTarget::kWebFarm};
  double events_per_hour = 1e-4;
  double mean_duration_hours = 2.0;
  double common_cause_probability = 0.0;

  /// Throws ModelError when any field is out of its domain.
  void validate() const;
};

/// Samples one fault plan from the outage process over [0, horizon].
/// Durations are truncated at the horizon so plans always validate.
[[nodiscard]] FaultPlan sample_outage_plan(const OutageProcess& process,
                                           double horizon_hours,
                                           sim::Xoshiro256& rng);

/// A single scripted total outage of one target (the "inject a 2 h
/// web-farm outage" experiment), clipped to the horizon.
[[nodiscard]] FaultPlan scripted_outage(FaultTarget target,
                                        double start_hours,
                                        double duration_hours,
                                        double horizon_hours);

}  // namespace upa::inject
