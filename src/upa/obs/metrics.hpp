#pragma once
// Metrics registry: named counters, gauges, and fixed-bucket histograms
// backing the solver/simulator instrumentation. Single-threaded by design
// (the whole library is), so the fast path is a plain integer or double
// update -- no locks, no atomics. Call sites cache the instrument
// reference returned by the registry once and update it in their hot
// loop; when no observer is attached the hooks are skipped entirely, so
// disabled observability costs one pointer test.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace upa::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value (plus a high-water helper).
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  /// Keeps the maximum of the current and the given value (high-water
  /// marks: calendar depth, residual peaks).
  void max_with(double value) noexcept {
    if (value > value_) value_ = value;
  }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus-style `le` (less-or-equal)
/// upper bounds. Bucket i counts values in (bounds[i-1], bounds[i]];
/// values above the last bound land in the overflow bucket, so
/// bucket_counts() has one more entry than upper_bounds().
class Histogram {
 public:
  /// Bounds must be finite, non-empty, and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value) noexcept;

  /// Adds another histogram's buckets, count, sum, and min/max into this
  /// one. Throws ModelError on mismatched bounds. Bucket counts and the
  /// total count merge exactly (integers); `sum` adds the other's partial
  /// sum, so merging worker shards in a fixed order yields the same
  /// double at every thread count.
  void merge_from(const Histogram& other);

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  /// One count per bound plus the trailing overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Smallest/largest recorded value (0 when empty).
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric bucket bounds `first, first*ratio, ...` (count bounds) --
/// the usual shape for wall-clock seconds and solver residuals.
[[nodiscard]] std::vector<double> geometric_buckets(double first,
                                                    double ratio,
                                                    std::size_t count);

/// Owns all instruments, keyed by name. Lookup is a map walk, so resolve
/// instruments once outside hot loops; references stay valid for the
/// registry's lifetime (std::map nodes never move). Iteration order is
/// sorted by name, which keeps every export deterministic.
class MetricsRegistry {
 public:
  /// Returns the named instrument, creating it on first use. A histogram
  /// keeps the bounds of its first creation; later calls with different
  /// bounds throw ModelError (one metric, one meaning).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds);

  [[nodiscard]] const std::map<std::string, Counter>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Deterministic merge of one parallel worker's shard registry:
  /// counters add, gauges take the shard's value (so absorbing shards in
  /// a fixed order reproduces serial last-write-wins), histograms merge
  /// per merge_from. Instruments absent here are created on the fly.
  void merge_from(const MetricsRegistry& shard);

  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace upa::obs
