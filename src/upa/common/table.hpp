#pragma once
// ASCII table rendering used by the benchmark harnesses and examples to
// print paper tables/figure series side by side with reproduced values.

#include <iosfwd>
#include <string>
#include <vector>

namespace upa::common {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, add rows of strings (helpers
/// format doubles), then stream it. No wrapping; cells are padded to the
/// widest entry of their column.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Sets the alignment for one column (default: right).
  void set_align(std::size_t column, Align align);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Renders to a string (also available via operator<<).
  [[nodiscard]] std::string str() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

/// Formats a double with `digits` significant digits (general format).
[[nodiscard]] std::string fmt(double value, int digits = 6);

/// Formats a double with fixed `decimals` decimal places.
[[nodiscard]] std::string fmt_fixed(double value, int decimals);

/// Formats a double in scientific notation with `decimals` digits.
[[nodiscard]] std::string fmt_sci(double value, int decimals = 3);

}  // namespace upa::common
