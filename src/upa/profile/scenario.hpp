#pragma once
// User execution scenarios (the paper's Table 1). A *scenario class* is
// identified by the exact set of functions invoked during a session
// (cycles collapse: St-{Ho-Br}*-Ex and St-Ho-Br-Ex belong to the same
// class). This module computes exact class probabilities from a profile's
// p_ij graph, and evaluates scenario-set data supplied directly as tables.

#include <set>
#include <string>
#include <vector>

#include "upa/profile/operational_profile.hpp"

namespace upa::profile {

/// One scenario class: the set of functions invoked (by function index)
/// and its activation probability pi_i.
struct ScenarioClass {
  std::set<std::size_t> functions;
  double probability = 0.0;
  std::string label;  ///< e.g. "St-{Ho-Br}*-Se-Ex"
};

/// Exact probability that a session visits *exactly* the given set of
/// functions, via inclusion-exclusion over "stay inside subset" absorption
/// probabilities. Cost: one linear solve per subset of `functions`.
[[nodiscard]] double visited_exactly_probability(
    const OperationalProfile& profile, const std::set<std::size_t>& functions);

/// All scenario classes with non-negligible probability (> threshold),
/// sorted by descending probability. Requires <= 16 functions.
[[nodiscard]] std::vector<ScenarioClass> scenario_classes(
    const OperationalProfile& profile, double threshold = 1e-12);

/// A scenario table supplied as data (the paper's Table 1 route), with
/// probability validation.
class ScenarioSet {
 public:
  /// `function_names` gives the universe of functions; scenarios refer to
  /// them by index.
  explicit ScenarioSet(std::vector<std::string> function_names);

  void add(std::string label, std::set<std::size_t> functions,
           double probability);

  [[nodiscard]] const std::vector<ScenarioClass>& scenarios() const noexcept {
    return scenarios_;
  }
  [[nodiscard]] const std::vector<std::string>& function_names()
      const noexcept {
    return names_;
  }

  /// Sum of scenario probabilities (should be ~1 for a complete table).
  [[nodiscard]] double total_probability() const noexcept;

  /// Throws unless total probability is 1 within `tol`.
  void validate_complete(double tol = 1e-6) const;

  /// Probability-weighted share of scenarios that invoke function i.
  [[nodiscard]] double invocation_probability(std::size_t function) const;

 private:
  std::vector<std::string> names_;
  std::vector<ScenarioClass> scenarios_;
};

}  // namespace upa::profile
