#pragma once
// Replica anti-entropy: a background agent that keeps an upa_served
// replica's warm set converged with its peers WITHOUT any orchestrator
// driving transfers.
//
// Every `interval` the agent picks the next peer round-robin and runs
// one pull exchange:
//
//   0. `cache` op=fingerprint RPC: when the peer's O(1) (count, fold)
//      digest fingerprint equals ours the sets already converged and
//      the round ends here -- steady state costs one tiny RPC per
//      round, not a digest-summary ship. (A peer predating the op just
//      falls through to the pull.)
//   1. summarize what this replica HAS: the sorted key digests of every
//      completed cache entry (cache::digest_summary);
//   2. `cache` op=pull RPC to the peer with that summary (have_hex),
//      bounded to max_pull_bytes of blob per reply -- the peer answers
//      in digest-ordered pages (cursor/complete) so no reply line can
//      outgrow the wire protocol's line cap;
//   3. each page is a delta segment blob holding ONLY the records the
//      caller is missing (cache::export_delta_page);
//   4. import every page -- through the persistence tier when attached,
//      so pulled warmth also survives the NEXT restart.
//
// A replica restarted by kill -9 therefore re-warms itself: its first
// rounds pull the whole working set from whichever peers stayed up.
// Errors (peer down, mid-restart, transport reset) are counted and the
// loop moves on -- anti-entropy is gossip, not a transaction.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace upa::serve {

struct AntiEntropyStats {
  std::uint64_t rounds = 0;       ///< exchanges attempted
  std::uint64_t pulls_ok = 0;     ///< exchanges that completed the RPC
  std::uint64_t pull_errors = 0;  ///< connect/RPC/decode failures
  std::uint64_t records_pulled = 0;  ///< records imported from peers
  std::uint64_t rounds_converged = 0;  ///< fingerprint matched, pull skipped
  std::uint64_t pages_pulled = 0;      ///< paged pull replies imported
};

struct AntiEntropyConfig {
  std::vector<std::string> peers;  ///< "host:port" per peer replica
  std::chrono::milliseconds interval{1000};
  double connect_timeout_seconds = 2.0;
  /// Blob-byte bound per pull reply (hex doubles it on the wire, so
  /// 300 kB stays well under the protocol's 1 MB line cap). 0 asks the
  /// peer for the whole delta in one unpaged reply.
  std::size_t max_pull_bytes = 300'000;
};

class AntiEntropyAgent {
 public:
  explicit AntiEntropyAgent(AntiEntropyConfig config);
  ~AntiEntropyAgent();

  AntiEntropyAgent(const AntiEntropyAgent&) = delete;
  AntiEntropyAgent& operator=(const AntiEntropyAgent&) = delete;

  /// Starts the background loop (no-op when already running or when
  /// the config lists no peers).
  void start();
  void stop();

  /// Runs ONE exchange against peers[peer_index % peers.size()],
  /// synchronously. Returns false (and counts pull_errors) when the
  /// peer could not be reached or answered garbage. Public so tests
  /// and tools can drive convergence deterministically.
  bool run_round(std::size_t peer_index);

  [[nodiscard]] AntiEntropyStats stats() const;
  [[nodiscard]] const AntiEntropyConfig& config() const noexcept {
    return config_;
  }

 private:
  AntiEntropyConfig config_;

  mutable std::mutex mutex_;
  AntiEntropyStats stats_;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  std::thread loop_;
  bool stop_ = false;
};

/// The process-global agent upa_served starts for --peers, or nullptr.
/// (cache_stats_json reports its counters when present.)
[[nodiscard]] AntiEntropyAgent* global_anti_entropy() noexcept;
void set_global_anti_entropy(AntiEntropyAgent* agent) noexcept;

}  // namespace upa::serve
