// Business-impact analysis (the paper's Section 5.2, extended): which
// scenario categories cost the travel agency money, how much revenue is
// at risk, and which single investment (payment provider SLA vs more
// reservation partners vs web-farm quality) buys the most.
//
//   $ ./revenue_analysis

#include <iostream>

#include "upa/common/table.hpp"
#include "upa/ta/revenue.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ta = upa::ta;
namespace cm = upa::common;

void print_breakdown(ta::UserClass uclass, const ta::TaParameters& params) {
  const auto breakdown = ta::category_breakdown(uclass, params);
  cm::Table t({"category", "UA contribution", "hours/year"});
  t.set_align(0, cm::Align::kLeft);
  t.set_title("Unavailability by scenario category, " +
              ta::user_class_name(uclass));
  for (const auto& [category, ua] : breakdown.unavailability) {
    t.add_row({ta::category_name(category), cm::fmt_sci(ua, 3),
               cm::fmt_fixed(ua * 8760.0, 1)});
  }
  t.add_row({"total", cm::fmt_sci(breakdown.total_unavailability, 3),
             cm::fmt_fixed(breakdown.total_unavailability * 8760.0, 1)});
  std::cout << t << "\n";
}

}  // namespace

int main() {
  const auto params =
      ta::TaParameters::paper_defaults().with_reservation_systems(5);
  const ta::RevenueParams biz;  // 100 tx/s, $100/transaction

  std::cout << "Where does the travel agency lose user goodwill and "
               "revenue?\n\n";
  for (const auto uclass : {ta::UserClass::kA, ta::UserClass::kB}) {
    print_breakdown(uclass, params);
    const auto loss = ta::revenue_loss(uclass, params, biz);
    std::cout << "  lost payment transactions/yr : "
              << cm::fmt_sci(loss.lost_transactions_per_year, 3)
              << "\n  lost revenue/yr              : $"
              << cm::fmt_sci(loss.lost_revenue_per_year, 3) << "\n\n";
  }

  // Investment comparison: one upgrade at a time, measured in recovered
  // class-B revenue.
  const double base_loss =
      ta::revenue_loss(ta::UserClass::kB, params, biz).lost_revenue_per_year;
  cm::Table t({"single investment", "lost revenue $/yr", "saved vs base"});
  t.set_align(0, cm::Align::kLeft);
  t.set_title("Which upgrade recovers the most class-B revenue?");
  t.add_row({"(baseline)", cm::fmt_sci(base_loss, 3), "-"});

  auto evaluate = [&](const char* label, ta::TaParameters p) {
    const double loss =
        ta::revenue_loss(ta::UserClass::kB, p, biz).lost_revenue_per_year;
    t.add_row({label, cm::fmt_sci(loss, 3),
               "$" + cm::fmt_sci(base_loss - loss, 3)});
  };
  {
    auto p = params;
    p.a_payment = 0.99;
    evaluate("payment SLA 0.9 -> 0.99", p);
  }
  {
    auto p = params;
    p.a_net = p.a_lan = 0.9999;
    evaluate("net+LAN 0.9966 -> 0.9999", p);
  }
  {
    auto p = params;
    p.a_disk = 0.99;
    evaluate("disks 0.9 -> 0.99", p);
  }
  {
    auto p = params;
    p.coverage = 0.999;
    evaluate("fault coverage 0.98 -> 0.999", p);
  }
  std::cout << t << "\n";
  std::cout << "The payment system is the single biggest lever for the\n"
               "pay category -- exactly the argument the paper makes for\n"
               "modeling the user-PERCEIVED measure: an infrastructure-only\n"
               "view (net/LAN/web) would misdirect the investment.\n";
  return 0;
}
