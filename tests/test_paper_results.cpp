// Integration tests pinning the paper's published results (DSN'03):
// the A(WS) anchor, Table 8's values and shape, the Figure 11/12
// monotonicity properties, the Figure 13 category breakdown, the
// Section 5.1 design decisions, and the Section 5.2 revenue example.
// Known paper inconsistencies are documented in EXPERIMENTS.md; tests
// below encode what IS reproducible and the agreed-on tolerances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "upa/core/web_farm.hpp"
#include "upa/sensitivity/threshold.hpp"
#include "upa/ta/revenue.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"

namespace ut = upa::ta;
namespace uc = upa::core;
namespace us = upa::sensitivity;

namespace {

ut::TaParameters paper(std::size_t n_reservation) {
  return ut::TaParameters::paper_defaults().with_reservation_systems(
      n_reservation);
}

double ua_imperfect(std::size_t n_web, double lambda, double alpha) {
  uc::WebFarmParams farm;
  farm.servers = n_web;
  farm.failure_rate = lambda;
  farm.repair_rate = 1.0;
  farm.coverage = 0.98;
  farm.reconfiguration_rate = 12.0;
  uc::WebQueueParams queue;
  queue.arrival_rate = alpha;
  queue.service_rate = 100.0;
  queue.buffer = 10;
  return 1.0 - uc::web_service_availability_imperfect(farm, queue);
}

}  // namespace

TEST(PaperAnchors, WebServiceAvailabilityTable7) {
  // Table 7: A(WS) = 0.999995587 (N_W=4, c=0.98, alpha=100/s,
  // lambda=1e-4/h). Exact reproduction (this anchor also settles the
  // eq. 7-9 index-bound typo; see DESIGN.md).
  const double aws = ut::web_service_availability(paper(1));
  EXPECT_NEAR(aws, 0.999995587, 5e-10);
}

TEST(PaperTable8, ClassAFirstRowMatchesClosely) {
  // Paper: A(class A, N=1) = 0.84235. With Table 7 parameters taken
  // literally we compute 0.84227 (8e-5 off; the remaining Table 8 cells
  // are not derivable from Table 7 -- see EXPERIMENTS.md).
  const double a = ut::user_availability_eq10(ut::UserClass::kA, paper(1));
  EXPECT_NEAR(a, 0.84235, 2.5e-4);
  EXPECT_NEAR(a, 0.8422672, 1e-5);  // regression pin of our exact value
}

TEST(PaperTable8, MonotoneIncreasingAndSaturating) {
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    std::vector<double> a;
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 10u}) {
      a.push_back(ut::user_availability_eq10(uclass, paper(n)));
    }
    for (std::size_t i = 1; i < a.size(); ++i) {
      EXPECT_GT(a[i], a[i - 1]);
    }
    // Saturation: the N=5 -> N=10 gain is tiny (paper: 2e-5 / 3e-5).
    EXPECT_LT(a[5] - a[4], 1e-4);
    // Early steps dominate: N=1 -> 2 gains over 0.1.
    EXPECT_GT(a[1] - a[0], 0.1);
  }
}

TEST(PaperTable8, ClassAAlwaysAboveClassB) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 10u}) {
    EXPECT_GT(ut::user_availability_eq10(ut::UserClass::kA, paper(n)),
              ut::user_availability_eq10(ut::UserClass::kB, paper(n)))
        << "N = " << n;
  }
}

TEST(PaperTable8, StepDeltasMatchPaperWithinFivePercent) {
  // The N-dependence isolates the external-service term, which IS
  // consistent between Table 7 and Table 8. Paper deltas:
  //   class A: A(3)-A(2) = 0.01358, A(4)-A(3) = 0.00137
  //   class B: A(3)-A(2) = 0.02064, A(4)-A(3) = 0.00209
  const double a2 = ut::user_availability_eq10(ut::UserClass::kA, paper(2));
  const double a3 = ut::user_availability_eq10(ut::UserClass::kA, paper(3));
  const double a4 = ut::user_availability_eq10(ut::UserClass::kA, paper(4));
  EXPECT_NEAR((a3 - a2) / 0.01358, 1.0, 0.05);
  EXPECT_NEAR((a4 - a3) / 0.00137, 1.0, 0.05);
  const double b2 = ut::user_availability_eq10(ut::UserClass::kB, paper(2));
  const double b3 = ut::user_availability_eq10(ut::UserClass::kB, paper(3));
  const double b4 = ut::user_availability_eq10(ut::UserClass::kB, paper(4));
  EXPECT_NEAR((b3 - b2) / 0.02064, 1.0, 0.05);
  EXPECT_NEAR((b4 - b3) / 0.00209, 1.0, 0.05);
}

TEST(PaperFigure11, PerfectCoverageMonotoneDecreasing) {
  // Fig. 11: with perfect coverage, unavailability decreases in N_W for
  // every (lambda, alpha) combination shown.
  for (double lambda : {1e-2, 1e-3, 1e-4}) {
    for (double alpha : {50.0, 100.0, 150.0}) {
      uc::WebQueueParams queue{alpha, 100.0, 10};
      double previous = 2.0;
      for (std::size_t n = 1; n <= 10; ++n) {
        uc::WebFarmParams farm{n, lambda, 1.0, 1.0, 12.0};
        const double ua =
            1.0 - uc::web_service_availability_perfect(farm, queue);
        EXPECT_LE(ua, previous * (1.0 + 1e-12))
            << "lambda=" << lambda << " alpha=" << alpha << " n=" << n;
        previous = ua;
      }
    }
  }
}

TEST(PaperFigure11, FailureRateMattersOnlyBelowSaturation) {
  // "the web servers failure rate has a significant impact on
  // availability only when the system load (alpha/nu) is lower than 1".
  // At alpha = 150 (load 1.5), the queue loss dominates: lambda barely
  // changes UA. At alpha = 50, lambda changes UA by orders of magnitude.
  const std::size_t n = 3;
  uc::WebQueueParams loaded{150.0, 100.0, 10};
  uc::WebQueueParams light{50.0, 100.0, 10};
  auto ua = [&](double lambda, const uc::WebQueueParams& q) {
    uc::WebFarmParams farm{n, lambda, 1.0, 1.0, 12.0};
    return 1.0 - uc::web_service_availability_perfect(farm, q);
  };
  // Overload (rho = 1.5): queue loss dominates, lambda changes UA < 2x.
  EXPECT_LT(ua(1e-2, loaded) / ua(1e-4, loaded), 2.5);
  // Light load (rho = 0.5): lambda changes UA by two orders of magnitude.
  EXPECT_GT(ua(1e-2, light) / ua(1e-4, light), 50.0);
}

TEST(PaperFigure12, ImperfectCoverageReversesTrend) {
  // Fig. 12: "the trend is reversed ... for N_W values higher than 4".
  // Exactly: the unavailability valley bottoms out between N_W = 3 and 7
  // depending on (lambda, alpha), then the uncovered-failure mass makes
  // it rise again. The rising tail is the paper's headline effect.
  for (double lambda : {1e-4, 1e-3}) {
    for (double alpha : {50.0, 100.0}) {
      std::vector<double> ua;
      for (std::size_t n = 1; n <= 10; ++n) {
        ua.push_back(ua_imperfect(n, lambda, alpha));
      }
      const auto min_it = std::min_element(ua.begin(), ua.end());
      const std::size_t best_n =
          static_cast<std::size_t>(min_it - ua.begin()) + 1;
      EXPECT_GE(best_n, 2u);
      EXPECT_LE(best_n, 7u);
      EXPECT_GT(ua[9], *min_it * 1.05);  // rising tail
    }
  }
  // The configuration closest to the paper's narrative: lambda = 1e-3,
  // alpha = 100 bottoms out at N_W = 5 (the paper reads 4 off the plot).
  std::vector<double> ua;
  for (std::size_t n = 1; n <= 10; ++n) {
    ua.push_back(ua_imperfect(n, 1e-3, 100.0));
  }
  const auto min_it = std::min_element(ua.begin(), ua.end());
  EXPECT_EQ(min_it - ua.begin() + 1, 5);
}

TEST(PaperFigure12, HighFailureRateCannotReachFiveMinutesPerYear) {
  // "such a requirement cannot be satisfied with a failure rate of
  // 1e-2 per hour".
  const auto feasible = us::satisfying_set(1, 10, [](std::size_t n) {
    return ua_imperfect(n, 1e-2, 50.0) < 1e-5;
  });
  EXPECT_TRUE(feasible.empty());
}

TEST(PaperSection51, MinimumServersForFiveMinutesPerYear) {
  // lambda = 1e-4/h: N_W = 2 at alpha = 50/s and N_W = 4 at alpha =
  // 100/s (paper). Exact computation confirms both.
  const auto n50 = us::min_satisfying(1, 10, [](std::size_t n) {
    return ua_imperfect(n, 1e-4, 50.0) < 1e-5;
  });
  ASSERT_TRUE(n50.has_value());
  EXPECT_EQ(*n50, 2u);
  const auto n100 = us::min_satisfying(1, 10, [](std::size_t n) {
    return ua_imperfect(n, 1e-4, 100.0) < 1e-5;
  });
  ASSERT_TRUE(n100.has_value());
  EXPECT_EQ(*n100, 4u);
}

TEST(PaperSection51, BorderlineLambdaCase) {
  // The paper reads N_W = 4 off Figure 12 for lambda = 1e-3/h,
  // alpha = 100/s; the exact solution is marginally above 1e-5 at
  // N_W = 4 and first satisfies the requirement at N_W = 5 -- and, due
  // to the coverage reversal, ONLY at N_W = 5.
  const auto feasible = us::satisfying_set(1, 10, [](std::size_t n) {
    return ua_imperfect(n, 1e-3, 100.0) < 1e-5;
  });
  EXPECT_EQ(feasible, (std::vector<std::size_t>{5}));
  EXPECT_LT(ua_imperfect(4, 1e-3, 100.0), 1.2e-5);  // borderline, not far
}

TEST(PaperSection51, ThreeServersKeepUnderOneHourPerYearBelowLoadOne) {
  // "if we decide to employ three servers ... unavailability lower than
  // 1 hour per year, when the failure rate varies from 1e-2 to 1e-4 and
  // the system load is less than 1".
  const double one_hour_per_year = 1.0 / 8760.0;
  for (double lambda : {1e-2, 1e-3, 1e-4}) {
    for (double alpha : {50.0, 90.0}) {
      EXPECT_LT(ua_imperfect(3, lambda, alpha), one_hour_per_year)
          << "lambda=" << lambda << " alpha=" << alpha;
    }
  }
}

TEST(PaperFigure13, CategoryContributionsSumToTotal) {
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    const auto breakdown = ut::category_breakdown(uclass, paper(5));
    double sum = 0.0;
    for (const auto& [cat, ua] : breakdown.unavailability) sum += ua;
    EXPECT_NEAR(sum, breakdown.total_unavailability, 1e-12);
    EXPECT_NEAR(
        breakdown.total_unavailability,
        1.0 - ut::user_availability_eq10(uclass, paper(5)), 1e-12);
  }
}

TEST(PaperFigure13, PayCategoryRatioMatchesScenarioMasses) {
  // Paper: 43 h/yr (class B) vs 16 h/yr (class A) for SC4, ratio ~2.7 =
  // the pay-scenario mass ratio 0.203 / 0.075. The ratio is exactly
  // reproducible (the absolute hours are not derivable from Table 7;
  // see EXPERIMENTS.md).
  const auto a = ut::category_breakdown(ut::UserClass::kA, paper(5));
  const auto b = ut::category_breakdown(ut::UserClass::kB, paper(5));
  const double ratio =
      b.unavailability.at(ut::ScenarioCategory::kSC4) /
      a.unavailability.at(ut::ScenarioCategory::kSC4);
  EXPECT_NEAR(ratio, 0.203 / 0.075, 0.01);
}

TEST(PaperFigure13, ClassBSuffersMoreInTransactionCategories) {
  const auto a = ut::category_breakdown(ut::UserClass::kA, paper(5));
  const auto b = ut::category_breakdown(ut::UserClass::kB, paper(5));
  for (const auto cat : {ut::ScenarioCategory::kSC2, ut::ScenarioCategory::kSC3,
                         ut::ScenarioCategory::kSC4}) {
    EXPECT_GT(b.unavailability.at(cat), a.unavailability.at(cat));
  }
  // Class A browses more, so SC1 hits it harder.
  EXPECT_GT(a.unavailability.at(ut::ScenarioCategory::kSC1),
            b.unavailability.at(ut::ScenarioCategory::kSC1));
}

TEST(PaperSection52, RevenueLossArithmetic) {
  // The paper's arithmetic: lost transactions = rate * SC4 downtime;
  // revenue = $100 each. Verify the pipeline end to end and the B:A
  // ratio ~2.7 the paper's 15.5M vs 5.7M implies.
  const ut::RevenueParams biz;  // 100 tx/s, $100
  const auto loss_a = ut::revenue_loss(ut::UserClass::kA, paper(5), biz);
  const auto loss_b = ut::revenue_loss(ut::UserClass::kB, paper(5), biz);
  EXPECT_NEAR(loss_a.lost_transactions_per_year,
              100.0 * 3600.0 * loss_a.pay_downtime_hours_per_year, 1e-6);
  EXPECT_NEAR(loss_a.lost_revenue_per_year,
              100.0 * loss_a.lost_transactions_per_year, 1e-3);
  EXPECT_NEAR(loss_b.lost_transactions_per_year /
                  loss_a.lost_transactions_per_year,
              0.203 / 0.075, 0.01);
  EXPECT_GT(loss_b.lost_revenue_per_year, loss_a.lost_revenue_per_year);
}

TEST(PaperQualitative, FirstOrderServicesDominateUserAvailability) {
  // "the availabilities of the LAN, the net and the web service are the
  // most influential ones": numerically differentiate eq. 10 wrt each
  // service availability through parameter perturbation.
  const auto p = paper(5);
  const double base = ut::user_availability_eq10(ut::UserClass::kB, p);
  auto bump_net = p;
  bump_net.a_net += 1e-4;
  auto bump_payment = p;
  bump_payment.a_payment += 1e-4;
  const double d_net =
      ut::user_availability_eq10(ut::UserClass::kB, bump_net) - base;
  const double d_payment =
      ut::user_availability_eq10(ut::UserClass::kB, bump_payment) - base;
  EXPECT_GT(d_net, d_payment * 2.0);
}
