// upa_loadgen: load-generation client for upa_served / upa_dispatch.
//
// Modes:
//   smoke    one connection, one request per public RPC method; exit 0
//            only if every check passes (the CI liveness gate).
//   loss     open-loop Poisson single-request connections with Exp(nu)
//            `sleep` service draws against an external server -- the
//            measured rejection fraction of the paper's M/M/i/K model.
//   session  open-loop Poisson session arrivals replaying the Table 1
//            operational profile (class A browsers / class B buyers),
//            one evaluation RPC per visited function.
//   bench    self-hosted dogfood experiment: for several (lambda, i, K)
//            design points, start an in-process Server with i workers
//            and capacity K, drive the loss workload, and record
//            measured vs analytic p_K(i) into BENCH_serve.json.
//   farm     the paper's N_W-server farm, live: spawn --replicas real
//            upa_served processes behind an in-process dispatch front,
//            kill -9 / restart replicas on a FaultPlan-driven schedule
//            while replaying the loss workload, and record measured
//            farm loss vs the perfect- and imperfect-coverage composite
//            predictions into BENCH_farm.json (4-sigma gate).
//   control  closed-loop dogfood: replay a diurnal/flash-crowd/outage
//            lambda(t) against an in-process server once under upa_ctl's
//            Controller and once at a fixed trough-sized (i, K); the
//            controlled run must hold the loss SLO through every
//            transient (zero transport errors) while the baseline
//            violates it. Writes BENCH_control.json.

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "upa/cli/args.hpp"
#include "upa/common/bench_json.hpp"
#include "upa/common/csv.hpp"
#include "upa/common/error.hpp"
#include "upa/control/scenario.hpp"
#include "upa/dispatch/farm.hpp"
#include "upa/inject/fault_plan.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/serve/json.hpp"
#include "upa/serve/loadgen.hpp"
#include "upa/serve/server.hpp"
#include "upa/ta/user_classes.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: upa_loadgen --mode MODE [options]\n"
        "\n"
        "modes:\n"
        "  smoke     one request per RPC method; exit 0 iff all pass\n"
        "  loss      open-loop Poisson `sleep` workload; reports the\n"
        "            measured rejection fraction (and the analytic\n"
        "            M/M/i/K loss when --workers/--capacity are given)\n"
        "  session   replay Table 1 user sessions (--class A|B)\n"
        "  bench     self-hosted (lambda, i, K) design sweep; writes\n"
        "            measured vs analytic loss to --out\n"
        "  farm      live N_W-server farm with kill -9 failover; writes\n"
        "            measured vs composite predictions to --out\n"
        "  control   closed-loop controller vs fixed-(i,K) baseline over\n"
        "            a diurnal/flash/outage lambda(t); writes per-phase\n"
        "            loss vs SLO gates to --out\n"
        "\n"
        "options:\n"
        "  --host ADDR      server address      (default 127.0.0.1)\n"
        "  --port N         server port         (default 7077)\n"
        "  --lambda R       arrival rate [1/s]  (default 150)\n"
        "  --nu R           service rate [1/s]  (default 100)\n"
        "  --requests N     loss/farm requests  (default 1000)\n"
        "  --sessions N     session-mode count  (default 50)\n"
        "  --session-rate R session arrivals/s  (default 20)\n"
        "  --class A|B      user class          (default B)\n"
        "  --workers N      analytic i for loss comparison\n"
        "  --capacity N     analytic K for loss comparison\n"
        "  --connect-timeout S  per-connection connect timeout\n"
        "                   (default 5)\n"
        "  --call-timeout S per-call receive timeout; 0 inherits the\n"
        "                   connect timeout (default 0)\n"
        "  --seed N         RNG seed            (default 1)\n"
        "  --out PATH       bench artifact      (default BENCH_serve.json\n"
        "                   / BENCH_farm.json)\n"
        "  --trace          originate one trace context per request\n"
        "                   (loss/session/farm; ids derive from --seed)\n"
        "  --trace-csv PATH write the per-request trace log as CSV,\n"
        "                   joinable against collected spans by trace_id\n"
        "\n"
        "farm options:\n"
        "  --served-bin PATH    upa_served binary to spawn (required)\n"
        "  --replicas N         farm size N_W          (default 3)\n"
        "  --replica-workers N  per-replica i          (default 1)\n"
        "  --replica-capacity N per-replica K_r        (default 3)\n"
        "  --policy NAME        balancing policy       (default\n"
        "                       least-outstanding)\n"
        "  --retries N          per-request attempt budget (default 3)\n"
        "  --kills N            scheduled kill -9 count (default 1)\n"
        "  --kill-at S          first kill time        (default 6.0)\n"
        "  --kill-for S         per-kill down duration (default 3.5)\n"
        "  --kill-every S       kill spacing, start to start\n"
        "                       (default 6.0)\n"
        "  --probe-interval S   health probe period    (default 0.25)\n"
        "  --unhealthy-threshold N  probe failures to eject (default 1)\n"
        "  --warm-transfer      warm each restarted replica from a live\n"
        "                       peer's cache (cache export / import over\n"
        "                       the wire) and verify the replayed hits\n"
        "  --warm-points N      design points in the warm set (default 16)\n"
        "  --warm-transfer-retries N    transfer RPC attempts per restart\n"
        "                       (default 40)\n"
        "  --warm-transfer-interval-ms N  spacing between transfer\n"
        "                       attempts (default 250)\n"
        "  --anti-entropy-ms N  gossip interval: restarted replicas pull\n"
        "                       the warm set from peers themselves (the\n"
        "                       orchestrator issues zero transfer RPCs);\n"
        "                       0 = orchestrator-driven (default 0,\n"
        "                       requires --warm-transfer)\n"
        "  (farm overrides: --lambda 20, --nu 10, --requests 500,\n"
        "   --call-timeout 5 -- slow services keep scheduler overhead\n"
        "   negligible against the modeled service time)\n"
        "\n"
        "control options:\n"
        "  --scenario NAME      full = night/morning/flash/outage/\n"
        "                       recovery; flash = morning/flash only,\n"
        "                       the CI-sized subset (default full)\n"
        "  --target-loss P      the loss SLO in (0,1) (default 0.08)\n"
        "  --duration-scale F   scales every phase duration (default 1)\n"
        "  --max-workers N      controller search cap for i (default 8)\n"
        "  --max-capacity N     controller search cap for K (default 64)\n"
        "  (control overrides: --nu 12 -- ~83 ms services; the fixed\n"
        "   baseline and the controlled run both start at i=1, K=3)\n"
        "  --help           this text\n";
}

int validate_options(const upa::cli::Args& args,
                     const std::vector<std::string>& allowed) {
  const std::vector<std::string> unknown =
      upa::cli::unknown_options(args, allowed);
  if (unknown.empty()) return 0;
  std::cerr << "upa_loadgen: unknown option '--" << unknown.front()
            << "'\n\n";
  print_usage(std::cerr);
  return 2;
}

int run_smoke(const upa::cli::Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_size("port", 7077));
  const upa::serve::SmokeResult r = upa::serve::run_smoke_probe(host, port);
  for (const auto& [name, ok] : r.checks) {
    std::cout << (ok ? "ok   " : "FAIL ") << name << "\n";
  }
  std::cout << (r.all_ok ? "smoke: all checks passed"
                         : "smoke: FAILURES above")
            << std::endl;
  return r.all_ok ? 0 : 1;
}

void print_loss(const upa::serve::LossResult& r) {
  std::cout << "sent=" << r.sent << " ok=" << r.ok
            << " rejected=" << r.rejected
            << " deadline_missed=" << r.deadline_missed
            << " transport_errors=" << r.transport_errors
            << " other_errors=" << r.other_errors << "\n"
            << "measured_loss=" << r.measured_loss
            << " mean_latency_s=" << r.mean_latency_seconds
            << " max_latency_s=" << r.max_latency_seconds
            << " offered_rate=" << r.offered_rate << "/s"
            << " wall_s=" << r.wall_seconds << std::endl;
}

void write_loss_trace_csv(
    const std::string& path,
    const std::vector<upa::serve::LossRequestLog>& log) {
  upa::common::CsvWriter csv({"request", "trace_id",
                              "scheduled_offset_seconds", "method",
                              "outcome", "code", "latency_seconds"});
  for (std::size_t i = 0; i < log.size(); ++i) {
    const upa::serve::LossRequestLog& r = log[i];
    csv.add_row({std::to_string(i), r.trace_id,
                 upa::serve::format_number(r.scheduled_offset_seconds),
                 r.method, upa::serve::call_outcome_name(r.outcome),
                 std::to_string(r.code),
                 upa::serve::format_number(r.latency_seconds)});
  }
  csv.write_file(path);
  std::cout << "wrote " << path << " (" << log.size() << " requests)"
            << std::endl;
}

int run_loss(const upa::cli::Args& args) {
  upa::serve::LossConfig config;
  config.host = args.get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_size("port", 7077));
  config.lambda = args.get_double("lambda", 150.0);
  config.nu = args.get_double("nu", 100.0);
  config.requests = args.get_size("requests", 1000);
  config.seed = args.get_size("seed", 1);
  config.connect_timeout_seconds = args.get_double("connect-timeout", 5.0);
  config.call_timeout_seconds = args.get_double("call-timeout", 0.0);
  const std::string trace_csv = args.get("trace-csv", "");
  config.trace = args.has("trace") || !trace_csv.empty();

  const std::size_t workers = args.get_size("workers", 0);
  const std::size_t capacity = args.get_size("capacity", 0);

  const upa::serve::LossResult r = upa::serve::run_loss_workload(config);
  print_loss(r);
  if (!trace_csv.empty()) write_loss_trace_csv(trace_csv, r.request_log);
  if (workers > 0 && capacity > 0) {
    const double analytic = upa::queueing::mmck_loss_probability(
        config.lambda, config.nu, workers, capacity);
    std::cout << "analytic p_K(i) [i=" << workers << ", K=" << capacity
              << "] = " << analytic
              << "  abs_error=" << std::abs(r.measured_loss - analytic)
              << std::endl;
  }
  return r.transport_errors == r.sent ? 1 : 0;
}

int run_session(const upa::cli::Args& args) {
  upa::serve::SessionConfig config;
  config.host = args.get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_size("port", 7077));
  config.sessions = args.get_size("sessions", 50);
  config.session_rate = args.get_double("session-rate", 20.0);
  config.seed = args.get_size("seed", 1);
  config.connect_timeout_seconds = args.get_double("connect-timeout", 5.0);
  config.call_timeout_seconds = args.get_double("call-timeout", 0.0);
  const std::string uclass = args.get("class", "B");
  UPA_REQUIRE(uclass == "A" || uclass == "B", "--class must be A or B");
  config.uclass =
      uclass == "A" ? upa::ta::UserClass::kA : upa::ta::UserClass::kB;
  const std::string trace_csv = args.get("trace-csv", "");
  config.trace = args.has("trace") || !trace_csv.empty();

  const upa::serve::SessionResult r = upa::serve::run_session_replay(config);
  if (!trace_csv.empty()) {
    upa::common::CsvWriter csv({"session", "invocation", "function",
                                "method", "trace_id", "outcome", "code"});
    for (const upa::serve::SessionInvocationLog& inv : r.invocation_log) {
      csv.add_row({std::to_string(inv.session),
                   std::to_string(inv.invocation), inv.function, inv.method,
                   inv.trace_id, upa::serve::call_outcome_name(inv.outcome),
                   std::to_string(inv.code)});
    }
    csv.write_file(trace_csv);
    std::cout << "wrote " << trace_csv << " (" << r.invocation_log.size()
              << " invocations)" << std::endl;
  }
  std::cout << "class " << uclass << ": sessions=" << r.sessions
            << " completed=" << r.completed << " rejected=" << r.rejected
            << " failed=" << r.failed << "\n"
            << "invocations=" << r.invocations
            << " invocation_failures=" << r.invocation_failures
            << " mean_invocations_per_session="
            << r.mean_invocations_per_session << "\n"
            << "session_success_fraction=" << r.session_success_fraction
            << std::endl;
  return r.completed > 0 ? 0 : 1;
}

struct DesignPoint {
  double lambda;       ///< arrival rate [1/s]
  double nu;           ///< service rate [1/s]
  std::size_t workers; ///< the model's i
  std::size_t capacity;///< the model's K
  std::size_t requests;
};

int run_bench(const upa::cli::Args& args) {
  const std::string out = args.get("out", "BENCH_serve.json");
  const std::uint64_t seed = args.get_size("seed", 1);

  // Three operating regimes of eq. (3): heavy overload, a single
  // saturated server, and a lightly-loaded farm. Request counts keep
  // each point's wall clock to a few seconds while the binomial
  // half-width stays well under the loss being measured.
  const std::vector<DesignPoint> points = {
      {300.0, 100.0, 2, 4, 900},
      {150.0, 100.0, 1, 3, 600},
      {120.0, 100.0, 2, 6, 600},
  };

  bool all_within = true;
  for (const DesignPoint& p : points) {
    upa::serve::ServerConfig sc;
    sc.port = 0;  // ephemeral
    sc.workers = p.workers;
    sc.capacity = p.capacity;
    upa::serve::Server server(std::move(sc));
    server.start();

    upa::serve::LossConfig lc;
    lc.port = server.port();
    lc.lambda = p.lambda;
    lc.nu = p.nu;
    lc.requests = p.requests;
    lc.seed = seed;
    const upa::serve::LossResult r = upa::serve::run_loss_workload(lc);
    server.stop();

    const double analytic = upa::queueing::mmck_loss_probability(
        p.lambda, p.nu, p.workers, p.capacity);
    const double abs_error = std::abs(r.measured_loss - analytic);
    // 4-sigma binomial half-width plus a small allowance for scheduling
    // overhead (connect latency shifts effective arrival spacing).
    const double tolerance =
        4.0 * std::sqrt(analytic * (1.0 - analytic) /
                        static_cast<double>(p.requests)) +
        0.02;
    const bool within = abs_error <= tolerance;
    all_within = all_within && within;

    std::ostringstream section;
    section << "serve_loss_l" << static_cast<int>(p.lambda) << "_i"
            << p.workers << "_k" << p.capacity;
    upa::common::write_bench_json(
        out, section.str(),
        {{"lambda", p.lambda},
         {"nu", p.nu},
         {"workers", static_cast<double>(p.workers)},
         {"capacity", static_cast<double>(p.capacity)},
         {"requests", static_cast<double>(r.sent)},
         {"measured_loss", r.measured_loss},
         {"analytic_loss", analytic},
         {"abs_error", abs_error},
         {"tolerance", tolerance},
         {"within_tolerance", within ? 1.0 : 0.0},
         {"transport_errors", static_cast<double>(r.transport_errors)},
         {"mean_latency_seconds", r.mean_latency_seconds},
         {"offered_rate", r.offered_rate},
         {"wall_seconds", r.wall_seconds}});

    std::cout << section.str() << ": measured=" << r.measured_loss
              << " analytic=" << analytic << " abs_error=" << abs_error
              << " tolerance=" << tolerance
              << (within ? " [within]" : " [OUTSIDE]") << std::endl;
  }
  std::cout << "wrote " << out << std::endl;
  return all_within ? 0 : 1;
}

int run_farm(const upa::cli::Args& args) {
  upa::dispatch::FarmExperimentConfig config;
  config.replica.served_binary = args.get("served-bin", "");
  if (config.replica.served_binary.empty()) {
    std::cerr << "upa_loadgen: --mode farm requires --served-bin\n\n";
    print_usage(std::cerr);
    return 2;
  }
  config.replicas = args.get_size("replicas", 3);
  config.replica.workers = args.get_size("replica-workers", 1);
  config.replica.capacity = args.get_size("replica-capacity", 3);
  config.policy = upa::dispatch::parse_balance_policy(
      args.get("policy", "least-outstanding"));
  config.retry.max_attempts = args.get_size("retries", 3);
  // Defaults mirror FarmExperimentConfig: ~100 ms mean services so the
  // container's scheduling overhead stays small against the service
  // time (the M/M/i/K ratios only depend on lambda/nu).
  config.lambda = args.get_double("lambda", 20.0);
  config.nu = args.get_double("nu", 10.0);
  config.requests = args.get_size("requests", 500);
  config.seed = args.get_size("seed", 1);
  config.call_timeout_seconds = args.get_double("call-timeout", 5.0);
  config.health.probe_interval_seconds =
      args.get_double("probe-interval", 0.25);
  config.health.unhealthy_threshold =
      args.get_size("unhealthy-threshold", 1);
  const std::size_t kills = args.get_size("kills", 1);
  const double kill_at = args.get_double("kill-at", 6.0);
  const double kill_for = args.get_double("kill-for", 3.5);
  const double kill_every = args.get_double("kill-every", 6.0);
  const std::string out = args.get("out", "BENCH_farm.json");
  const std::string trace_csv = args.get("trace-csv", "");
  config.trace = args.has("trace") || !trace_csv.empty();
  config.warm_transfer = args.has("warm-transfer");
  config.warm_points = args.get_size("warm-points", 16);
  config.warm_transfer_retries =
      static_cast<int>(args.get_size("warm-transfer-retries", 40));
  config.warm_transfer_interval_ms =
      static_cast<int>(args.get_size("warm-transfer-interval-ms", 250));
  config.anti_entropy_ms =
      static_cast<int>(args.get_size("anti-entropy-ms", 0));

  // The kill schedule goes through an inject::FaultPlan -- the same
  // scripted-outage machinery the simulation campaigns replay -- with
  // plan hours mapped 1:3600 onto experiment seconds.
  upa::inject::FaultPlan plan;
  for (std::size_t j = 0; j < kills; ++j) {
    plan.add(upa::inject::FaultTarget::kWebFarm,
             (kill_at + static_cast<double>(j) * kill_every) / 3600.0,
             kill_for / 3600.0);
  }
  config.kills = upa::dispatch::kill_schedule_from_fault_plan(
      plan, config.replicas, 3600.0);

  const upa::dispatch::FarmExperimentResult r =
      upa::dispatch::run_farm_experiment(config);
  print_loss(r.loss);
  if (!trace_csv.empty()) write_loss_trace_csv(trace_csv, r.loss.request_log);
  if (config.trace) {
    std::cout << "trace: roots=" << r.traced_requests
              << " attempts=" << r.traced_attempts
              << " dropped=" << r.trace_dropped_spans
              << (r.trace_accounted ? " [accounted]"
                                    : " [UNACCOUNTED: " +
                                          r.trace_accounting_error + "]")
              << "\n";
  }
  if (config.warm_transfer) {
    std::cout << "warm transfer: peer=" << r.warm_peer
              << " points=" << r.warm_points_computed
              << " exported=" << r.warm_export_records
              << " imported=" << r.warm_import_records
              << " warmed_hits=" << r.warmed_hits
              << (config.anti_entropy_ms > 0
                      ? " anti_entropy_pulled=" +
                            std::to_string(r.anti_entropy_records_pulled) +
                            " orchestrator_transfers=" +
                            std::to_string(r.orchestrator_transfers)
                      : std::string())
              << (r.warm_transfer_ok
                      ? " [warm]"
                      : " [COLD: " + r.warm_transfer_error + "]")
              << "\n";
  }
  std::cout << "farm: replicas=" << config.replicas
            << " kills=" << r.kills_executed
            << " down_s=" << r.total_down_seconds
            << " lambda_f=" << r.failure_rate << " mu=" << r.repair_rate
            << " coverage=" << r.coverage
            << " beta=" << r.reconfiguration_rate << "\n"
            << "front: retries=" << r.front.retries
            << " failovers=" << r.front.failovers
            << " exhausted=" << r.front.retries_exhausted << "\n";
  for (const upa::dispatch::UpstreamSnapshot& u : r.upstreams) {
    std::cout << "upstream " << u.address.label()
              << ": healthy=" << (u.healthy ? 1 : 0)
              << " ok=" << u.ok << " rejected=" << u.rejected
              << " transport=" << u.transport
              << " probe_failures=" << u.probe_failures
              << " ejections=" << u.ejections
              << " readmissions=" << u.readmissions << "\n";
  }
  std::cout
            << "measured=" << r.measured_loss_fraction
            << " predicted_perfect=" << r.predicted_loss_perfect
            << " predicted_imperfect=" << r.predicted_loss_imperfect
            << " tolerance=" << r.tolerance
            << (r.within_tolerance ? " [within]" : " [OUTSIDE]")
            << std::endl;

  std::ostringstream section;
  section << "farm_failover_n" << config.replicas << "_kills"
          << r.kills_executed;
  upa::common::write_bench_json(
      out, section.str(),
      {{"replicas", static_cast<double>(config.replicas)},
       {"replica_workers", static_cast<double>(config.replica.workers)},
       {"replica_capacity",
        static_cast<double>(config.replica.capacity)},
       {"lambda", config.lambda},
       {"nu", config.nu},
       {"requests", static_cast<double>(r.loss.sent)},
       {"kills", static_cast<double>(r.kills_executed)},
       {"total_down_seconds", r.total_down_seconds},
       {"failure_rate", r.failure_rate},
       {"repair_rate", r.repair_rate},
       {"coverage", r.coverage},
       {"reconfiguration_rate", r.reconfiguration_rate},
       {"measured_loss", r.measured_loss_fraction},
       {"predicted_loss_perfect", r.predicted_loss_perfect},
       {"predicted_loss_imperfect", r.predicted_loss_imperfect},
       {"sigma", r.sigma},
       {"tolerance", r.tolerance},
       {"within_tolerance", r.within_tolerance ? 1.0 : 0.0},
       {"client_transport_errors",
        static_cast<double>(r.loss.transport_errors)},
       {"front_retries", static_cast<double>(r.front.retries)},
       {"front_failovers", static_cast<double>(r.front.failovers)},
       {"front_retries_exhausted",
        static_cast<double>(r.front.retries_exhausted)},
       {"wall_seconds", r.loss.wall_seconds},
       {"warm_transfer", config.warm_transfer ? 1.0 : 0.0},
       {"warm_peer", static_cast<double>(r.warm_peer)},
       {"warm_export_records", static_cast<double>(r.warm_export_records)},
       {"warm_import_records", static_cast<double>(r.warm_import_records)},
       {"warmed_hits", static_cast<double>(r.warmed_hits)},
       {"warm_transfer_ok", r.warm_transfer_ok ? 1.0 : 0.0},
       {"anti_entropy_ms", static_cast<double>(config.anti_entropy_ms)},
       {"anti_entropy_rounds", static_cast<double>(r.anti_entropy_rounds)},
       {"anti_entropy_records_pulled",
        static_cast<double>(r.anti_entropy_records_pulled)},
       {"orchestrator_transfers",
        static_cast<double>(r.orchestrator_transfers)},
       {"anti_entropy_ok", r.anti_entropy_ok ? 1.0 : 0.0}});
  std::cout << "wrote " << out << std::endl;

  // Budgeted retries must fully mask the kill: any client-visible
  // transport error is a failover bug, not workload noise.
  if (r.loss.transport_errors > 0) {
    std::cerr << "farm: " << r.loss.transport_errors
              << " client-visible transport errors (failover leak)\n";
    return 1;
  }
  // Traced runs additionally gate on span accounting: every issued
  // request must be a fully-attributed dispatch_request root.
  if (config.trace && !r.trace_accounted) {
    std::cerr << "farm: trace accounting failed: "
              << r.trace_accounting_error << "\n";
    return 1;
  }
  // Warm-transfer runs gate on the restart actually replaying imported
  // results: zero warmed hits means the restart came back cold.
  if (config.warm_transfer && !r.warm_transfer_ok) {
    std::cerr << "farm: warm transfer failed: " << r.warm_transfer_error
              << "\n";
    return 1;
  }
  // Anti-entropy runs additionally gate on the gossip path doing the
  // warming: nonzero pulled records, zero orchestrator transfer RPCs.
  if (config.anti_entropy_ms > 0 && !r.anti_entropy_ok) {
    std::cerr << "farm: anti-entropy convergence failed: pulled="
              << r.anti_entropy_records_pulled << " orchestrator_transfers="
              << r.orchestrator_transfers << " error="
              << r.warm_transfer_error << "\n";
    return 1;
  }
  return r.within_tolerance ? 0 : 1;
}

void print_control_pass(const std::string& label,
                        const upa::control::ControlRunSummary& pass) {
  for (const upa::control::ControlPhaseOutcome& p : pass.phases) {
    std::cout << label << " " << p.name << ": lambda=" << p.lambda
              << " nu=" << p.nu << (p.faulted ? " [faulted]" : "")
              << " sent=" << p.requests << " rejected=" << p.rejected
              << " loss=" << p.measured_loss << " gate=" << p.gate
              << (p.within_gate ? " [within]" : " [OUTSIDE]")
              << " i=" << p.workers_after << " K=" << p.capacity_after
              << " transport=" << p.transport_errors << "\n";
  }
}

int run_control(const upa::cli::Args& args) {
  upa::control::ControlScenarioConfig config;
  config.scenario = args.get("scenario", "full");
  config.nu = args.get_double("nu", 12.0);
  config.target_loss = args.get_double("target-loss", 0.08);
  config.duration_scale = args.get_double("duration-scale", 1.0);
  config.seed = args.get_size("seed", 1);
  config.max_workers = args.get_size("max-workers", 8);
  config.max_capacity = args.get_size("max-capacity", 64);
  const std::string out = args.get("out", "BENCH_control.json");

  std::cout << "control scenario '" << config.scenario << "':";
  for (const upa::control::ControlPhase& p :
       upa::control::control_phases(config)) {
    std::cout << " " << p.name << "(lambda=" << p.lambda << ",nu=" << p.nu
              << "," << p.duration_seconds << "s)";
  }
  std::cout << std::endl;

  const upa::control::ControlExperimentResult r =
      upa::control::run_control_experiment(config);

  print_control_pass("controlled", r.controlled);
  print_control_pass("baseline", r.baseline);
  std::cout << "controller: ticks=" << r.controller.ticks
            << " applies=" << r.controller.applies
            << " retries=" << r.controller.apply_retries
            << " failures=" << r.controller.apply_failures
            << " final i=" << r.controller.workers
            << " K=" << r.controller.capacity << "\n"
            << "control_ok=" << (r.control_ok ? 1 : 0)
            << " baseline_violates=" << (r.baseline_violates ? 1 : 0)
            << std::endl;

  const auto pass_sections =
      [&out, &config](const std::string& label,
                      const upa::control::ControlRunSummary& pass) {
        for (const upa::control::ControlPhaseOutcome& p : pass.phases) {
          upa::common::write_bench_json(
              out, "control_" + label + "_" + p.name,
              {{"lambda", p.lambda},
               {"nu", p.nu},
               {"faulted", p.faulted ? 1.0 : 0.0},
               {"requests", static_cast<double>(p.requests)},
               {"rejected", static_cast<double>(p.rejected)},
               {"measured_loss", p.measured_loss},
               {"gate", p.gate},
               {"target_loss", config.target_loss},
               {"within_gate", p.within_gate ? 1.0 : 0.0},
               {"transport_errors",
                static_cast<double>(p.transport_errors)},
               {"workers_after", static_cast<double>(p.workers_after)},
               {"capacity_after",
                static_cast<double>(p.capacity_after)}});
        }
      };
  pass_sections("controlled", r.controlled);
  pass_sections("baseline", r.baseline);
  upa::common::write_bench_json(
      out, "control_summary",
      {{"target_loss", config.target_loss},
       {"control_ok", r.control_ok ? 1.0 : 0.0},
       {"baseline_violates", r.baseline_violates ? 1.0 : 0.0},
       {"controller_ticks", static_cast<double>(r.controller.ticks)},
       {"controller_applies", static_cast<double>(r.controller.applies)},
       {"controller_apply_retries",
        static_cast<double>(r.controller.apply_retries)},
       {"controller_apply_failures",
        static_cast<double>(r.controller.apply_failures)},
       {"controlled_transport_errors",
        static_cast<double>(r.controlled.transport_errors)}});
  std::cout << "wrote " << out << std::endl;

  // The loop must both hold the SLO (zero transport errors included:
  // grow/shrink under load may never kill a request) and be necessary
  // (the trough-sized baseline breaks without it).
  if (!r.control_ok) {
    std::cerr << "control: controlled run failed its gates\n";
    return 1;
  }
  if (!r.baseline_violates) {
    std::cerr << "control: baseline unexpectedly held every gate -- the\n"
                 "scenario is not stressing the controller\n";
    return 1;
  }
  return 0;
}

const std::vector<std::string> kCommonOptions = {"mode", "seed"};

std::vector<std::string> allowed_for_mode(const std::string& mode) {
  std::vector<std::string> allowed = kCommonOptions;
  const auto extend = [&allowed](std::initializer_list<const char*> more) {
    for (const char* name : more) allowed.emplace_back(name);
  };
  if (mode == "smoke") {
    extend({"host", "port"});
  } else if (mode == "loss") {
    extend({"host", "port", "lambda", "nu", "requests", "workers",
            "capacity", "connect-timeout", "call-timeout", "trace",
            "trace-csv"});
  } else if (mode == "session") {
    extend({"host", "port", "sessions", "session-rate", "class",
            "connect-timeout", "call-timeout", "trace", "trace-csv"});
  } else if (mode == "bench") {
    extend({"out"});
  } else if (mode == "farm") {
    extend({"served-bin", "replicas", "replica-workers",
            "replica-capacity", "policy", "retries", "lambda", "nu",
            "requests", "call-timeout", "probe-interval",
            "unhealthy-threshold", "kills", "kill-at", "kill-for",
            "kill-every", "out", "trace", "trace-csv", "warm-transfer",
            "warm-points", "warm-transfer-retries",
            "warm-transfer-interval-ms", "anti-entropy-ms"});
  } else if (mode == "control") {
    extend({"scenario", "nu", "target-loss", "duration-scale",
            "max-workers", "max-capacity", "out"});
  }
  return allowed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  cli::Args args(argc, argv);
  if (args.has("help") || args.command() == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (!args.command().empty()) {
    std::cerr << "upa_loadgen: unexpected positional argument '"
              << args.command() << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    const std::string mode = args.get("mode", "");
    if (mode != "smoke" && mode != "loss" && mode != "session" &&
        mode != "bench" && mode != "farm" && mode != "control") {
      std::cerr << "upa_loadgen: --mode must be smoke | loss | session | "
                   "bench | farm | control\n\n";
      print_usage(std::cerr);
      return 2;
    }
    // Allowlist check before any side effects: a typo'd flag must not
    // start servers, spawn replicas, or write artifacts.
    if (const int rc = validate_options(args, allowed_for_mode(mode));
        rc != 0) {
      return rc;
    }

    if (mode == "smoke") return run_smoke(args);
    if (mode == "loss") return run_loss(args);
    if (mode == "session") return run_session(args);
    if (mode == "bench") return run_bench(args);
    if (mode == "control") return run_control(args);
    return run_farm(args);
  } catch (const std::exception& e) {
    std::cerr << "upa_loadgen: " << e.what() << "\n";
    return 1;
  }
}
