#pragma once
// Parameter sweeps: evaluate a measure over a grid of one or two
// parameters and collect the series. This is the engine behind the
// paper's Figures 11/12 (N_W x lambda x alpha) and Table 8 (N_F sweep).

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace upa::sensitivity {

/// One swept series: a label plus (x, y) points.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Execution controls for sweep / sweep_family.
struct SweepOptions {
  /// Worker threads for the grid evaluation: 1 (the default) is the
  /// historical serial loop; 0 means hardware concurrency; N > 1 fans the
  /// points out over exec::parallel_sweep. Results come back in input
  /// order and bit-for-bit equal to the serial loop at any thread count,
  /// so this is purely a wall-clock knob. Measures must be thread-safe
  /// when threads != 1.
  std::size_t threads = 1;
};

/// Evaluates `measure` at each x value.
[[nodiscard]] Series sweep(std::string label, const std::vector<double>& xs,
                           const std::function<double(double)>& measure,
                           const SweepOptions& options);

/// Serial sweep (threads = 1), kept as the common call shape.
[[nodiscard]] Series sweep(std::string label, const std::vector<double>& xs,
                           const std::function<double(double)>& measure);

/// Evaluates `measure(x, s)` for each series parameter s, producing one
/// Series per s (labels come from `series_labels`). The whole family is
/// flattened into one series-major grid before fan-out, so a family of
/// short series still saturates options.threads workers.
[[nodiscard]] std::vector<Series> sweep_family(
    const std::vector<double>& xs, const std::vector<double>& series_params,
    const std::vector<std::string>& series_labels,
    const std::function<double(double, double)>& measure,
    const SweepOptions& options);

/// Serial sweep_family (threads = 1).
[[nodiscard]] std::vector<Series> sweep_family(
    const std::vector<double>& xs, const std::vector<double>& series_params,
    const std::vector<std::string>& series_labels,
    const std::function<double(double, double)>& measure);

/// Finite-difference derivative of `measure` at x (central difference).
[[nodiscard]] double derivative_at(const std::function<double(double)>& measure,
                                   double x, double relative_step = 1e-6);

/// Checks a series for monotone decrease; returns the first index where
/// it increases, or -1 when monotone (used to locate the Figure 12
/// coverage-induced reversal).
[[nodiscard]] std::ptrdiff_t first_increase(const Series& series);

}  // namespace upa::sensitivity
