#pragma once
// Upstream registry of the dispatch front end: the set of `upa_served`
// replicas behind `upa_dispatch`, each with a health state driven by the
// active checker (see health.hpp), an outstanding-call count feeding the
// least-outstanding balancing policy, and per-outcome counters that flow
// into `dispatch_stats` and obs::MetricsRegistry. One mutex guards the
// whole pool: every operation is a handful of integer updates, and the
// pool is consulted once per forwarded attempt, so contention is
// negligible next to a TCP round trip.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace upa::dispatch {

/// One replica address. Dispatch speaks the same IPv4 host:port wire
/// protocol as serve::Client.
struct UpstreamAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string label() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses "host:port"; throws ModelError on a malformed address or an
/// out-of-range port.
[[nodiscard]] UpstreamAddress parse_upstream_address(const std::string& text);

/// Parses a comma-separated "host:port,host:port" list (the
/// `--upstreams` flag); throws ModelError when empty or malformed.
[[nodiscard]] std::vector<UpstreamAddress> parse_upstream_list(
    const std::string& text);

/// Point-in-time view of one upstream (all counters since pool
/// construction). `healthy` reflects the active checker's verdict; the
/// balancer only falls back to unhealthy upstreams when no healthy one
/// is left (fail open beats failing every request on a stale verdict).
struct UpstreamSnapshot {
  UpstreamAddress address;
  bool healthy = true;
  std::size_t outstanding = 0;      ///< forwarded calls in flight
  std::uint64_t attempts = 0;       ///< forward attempts (incl. retries)
  std::uint64_t ok = 0;             ///< attempts answered with ok envelopes
  std::uint64_t rejected = 0;       ///< 503 admission rejections
  std::uint64_t deadline = 0;       ///< 504 deadline misses
  std::uint64_t errors = 0;         ///< other error envelopes (400/404/500)
  std::uint64_t transport = 0;      ///< refused/reset/mid-response failures
  std::uint64_t probe_failures = 0; ///< health probes failed (lifetime)
  std::uint64_t ejections = 0;      ///< healthy -> unhealthy transitions
  std::uint64_t readmissions = 0;   ///< unhealthy -> healthy transitions
  double latency_sum_seconds = 0.0; ///< total attempt latency (any outcome)
};

/// Attempt outcome classes recorded against an upstream; mirrors
/// serve::CallOutcome but lives here so the pool does not depend on the
/// client header.
enum class AttemptOutcome { kOk, kRejected, kDeadline, kError, kTransport };

[[nodiscard]] std::string attempt_outcome_name(AttemptOutcome outcome);

/// Thread-safe registry. The address list is fixed at construction (the
/// consistent-hash ring depends on it); health and counters are mutable.
class UpstreamPool {
 public:
  explicit UpstreamPool(std::vector<UpstreamAddress> addresses);

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const UpstreamAddress& address(std::size_t index) const;

  /// Marks a forwarded call in flight / finished against `index`;
  /// `end_call` records the outcome class and the attempt latency.
  void begin_call(std::size_t index);
  void end_call(std::size_t index, AttemptOutcome outcome,
                double latency_seconds);

  /// Health-checker feedback: one probe result. Consecutive failures
  /// beyond `unhealthy_threshold` eject the upstream; consecutive
  /// successes beyond `healthy_threshold` readmit it. Returns true when
  /// the verdict flipped (the caller logs the transition).
  bool record_probe(std::size_t index, bool ok,
                    std::size_t unhealthy_threshold,
                    std::size_t healthy_threshold);

  [[nodiscard]] bool healthy(std::size_t index) const;

  /// Balancer inputs in one locked pass: health flags and outstanding
  /// counts, index-aligned with the address list.
  void balancing_view(std::vector<bool>& healthy_out,
                      std::vector<std::size_t>& outstanding_out) const;

  [[nodiscard]] std::vector<UpstreamSnapshot> snapshot() const;

 private:
  struct State {
    UpstreamAddress address;
    bool healthy = true;
    std::size_t outstanding = 0;
    std::size_t consecutive_probe_failures = 0;
    std::size_t consecutive_probe_successes = 0;
    std::uint64_t attempts = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadline = 0;
    std::uint64_t errors = 0;
    std::uint64_t transport = 0;
    std::uint64_t probe_failures = 0;
    std::uint64_t ejections = 0;
    std::uint64_t readmissions = 0;
    double latency_sum_seconds = 0.0;
  };

  mutable std::mutex mutex_;
  std::vector<State> states_;
};

}  // namespace upa::dispatch
