#include "upa/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  UPA_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    UPA_REQUIRE(std::isfinite(bounds_[i]),
                "histogram bucket bounds must be finite");
    UPA_REQUIRE(i == 0 || bounds_[i - 1] < bounds_[i],
                "histogram bucket bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) noexcept {
  // First bound >= value (le semantics); everything above the last bound
  // falls into the trailing overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

void Histogram::merge_from(const Histogram& other) {
  UPA_REQUIRE(bounds_ == other.bounds_,
              "cannot merge histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<double> geometric_buckets(double first, double ratio,
                                      std::size_t count) {
  UPA_REQUIRE(std::isfinite(first) && first > 0.0,
              "first bucket bound must be positive");
  UPA_REQUIRE(std::isfinite(ratio) && ratio > 1.0,
              "bucket ratio must exceed 1");
  UPA_REQUIRE(count >= 1, "need at least one bucket");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= ratio;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  UPA_REQUIRE(!name.empty(), "metric name must not be empty");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  UPA_REQUIRE(!name.empty(), "metric name must not be empty");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds) {
  UPA_REQUIRE(!name.empty(), "metric name must not be empty");
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return histograms_.emplace(name, Histogram(upper_bounds)).first->second;
  }
  UPA_REQUIRE(it->second.upper_bounds() == upper_bounds,
              "histogram " + name + " re-registered with different buckets");
  return it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& shard) {
  for (const auto& [name, shard_counter] : shard.counters()) {
    counter(name).add(shard_counter.value());
  }
  for (const auto& [name, shard_gauge] : shard.gauges()) {
    gauge(name).set(shard_gauge.value());
  }
  for (const auto& [name, shard_histogram] : shard.histograms()) {
    histogram(name, shard_histogram.upper_bounds())
        .merge_from(shard_histogram);
  }
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace upa::obs
