// API-coverage tests: exercises corners of the public interfaces that the
// thematic suites do not reach (error paths, small helpers, defaults).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "upa/common/csv.hpp"
#include "upa/common/error.hpp"
#include "upa/common/table.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/markov/transient.hpp"
#include "upa/queueing/erlang.hpp"
#include "upa/rbd/block.hpp"
#include "upa/sim/distributions.hpp"
#include "upa/sim/engine.hpp"
#include "upa/sim/session_sim.hpp"
#include "upa/ta/revenue.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_classes.hpp"

using upa::common::ModelError;

TEST(ApiCoverage, CsvWriteFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "upa_csv_test.csv").string();
  upa::common::CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  csv.write_file(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  in.close();
  std::remove(path.c_str());
}

TEST(ApiCoverage, CsvWriteFileFailsOnBadPath) {
  upa::common::CsvWriter csv({"x"});
  EXPECT_THROW(csv.write_file("/nonexistent-dir/x/y.csv"), ModelError);
}

TEST(ApiCoverage, TableAlignmentOutOfRange) {
  upa::common::Table t({"a"});
  EXPECT_THROW(t.set_align(5, upa::common::Align::kLeft), ModelError);
}

TEST(ApiCoverage, ErlangBRejectsBadInput) {
  EXPECT_THROW((void)upa::queueing::erlang_b(-1.0, 2), ModelError);
  EXPECT_THROW((void)upa::queueing::erlang_b(1.0, 0), ModelError);
}

TEST(ApiCoverage, RbdAvailabilityGivenPinsComponent) {
  const auto block = upa::rbd::Block::series(
      {upa::rbd::Block::component("a"), upa::rbd::Block::component("b")});
  const upa::rbd::ParamMap params{{"a", 0.9}, {"b", 0.8}};
  EXPECT_NEAR(upa::rbd::availability_given(block, params, "a", true), 0.8,
              1e-15);
  EXPECT_NEAR(upa::rbd::availability_given(block, params, "a", false), 0.0,
              1e-15);
}

TEST(ApiCoverage, ReplicatedSingleIsJustOneComponent) {
  const auto block = upa::rbd::Block::replicated("x", 1);
  EXPECT_NEAR(upa::rbd::availability(block, {{"x#0", 0.7}}), 0.7, 1e-15);
}

TEST(ApiCoverage, EngineCancelAfterFire) {
  upa::sim::Engine engine;
  const auto id = engine.schedule_at(1.0, [] {});
  engine.run_all();
  EXPECT_FALSE(engine.cancel(id));
  EXPECT_EQ(engine.pending_count(), 0u);
}

TEST(ApiCoverage, EngineRejectsNullHandler) {
  upa::sim::Engine engine;
  EXPECT_THROW((void)engine.schedule_at(1.0, nullptr), ModelError);
}

TEST(ApiCoverage, LogNormalMedianMatchesMu) {
  upa::sim::Xoshiro256 rng(42);
  const upa::sim::Distribution d = upa::sim::LogNormal{1.0, 0.25};
  int below = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (upa::sim::sample(d, rng) < std::exp(1.0)) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(ApiCoverage, SessionSimValidatesInputs) {
  upa::linalg::Matrix p(3, 3);
  p(0, 1) = 1.0;
  p(1, 2) = 1.0;
  p(2, 2) = 1.0;
  const auto world = [](upa::sim::Xoshiro256&) {
    return std::vector<double>(3, 1.0);
  };
  upa::sim::SessionSimOptions options;
  options.sessions = 10;
  options.replications = 2;
  EXPECT_THROW((void)upa::sim::simulate_sessions(p, 0, 0, world, options),
               ModelError);  // start == exit
  EXPECT_THROW((void)upa::sim::simulate_sessions(p, 0, 2, nullptr, options),
               ModelError);
  EXPECT_NO_THROW(
      (void)upa::sim::simulate_sessions(p, 0, 2, world, options));
}

TEST(ApiCoverage, TransientRejectsNegativeTime) {
  const auto chain = upa::markov::two_state_availability(1.0, 1.0);
  EXPECT_THROW(
      (void)upa::markov::transient_distribution(chain, {1.0, 0.0}, -1.0),
      ModelError);
  EXPECT_THROW((void)upa::markov::interval_availability(chain, {1.0, 0.0},
                                                        0.0, {0}),
               ModelError);
}

TEST(ApiCoverage, BasicArchitectureIgnoresCoverageModel) {
  // The basic architecture has one server; its availability follows the
  // two-state model regardless of the coverage setting.
  auto imperfect = upa::ta::TaParameters::paper_defaults();
  imperfect.architecture = upa::ta::Architecture::kBasic;
  imperfect.coverage_model = upa::ta::CoverageModel::kImperfect;
  auto perfect = imperfect;
  perfect.coverage_model = upa::ta::CoverageModel::kPerfect;
  EXPECT_NEAR(upa::ta::web_service_availability(imperfect),
              upa::ta::web_service_availability(perfect), 1e-15);
}

TEST(ApiCoverage, FittedGraphRejectsBadFreeParameters) {
  EXPECT_THROW(
      (void)upa::ta::fitted_session_graph(upa::ta::UserClass::kA, 0.0, 0.2),
      ModelError);
  EXPECT_THROW(
      (void)upa::ta::fitted_session_graph(upa::ta::UserClass::kA, 1.0, 0.2),
      ModelError);
  EXPECT_THROW(
      (void)upa::ta::fitted_session_graph(upa::ta::UserClass::kA, 0.5, 0.99),
      ModelError);
}

TEST(ApiCoverage, RevenueRejectsBadBusinessParams) {
  upa::ta::RevenueParams biz;
  biz.transactions_per_second = 0.0;
  EXPECT_THROW((void)upa::ta::revenue_loss(
                   upa::ta::UserClass::kA,
                   upa::ta::TaParameters::paper_defaults(), biz),
               ModelError);
}

TEST(ApiCoverage, ImperfectDistributionNormalizesAcrossParams) {
  for (std::size_t n : {1u, 3u, 8u}) {
    for (double c : {0.0, 0.5, 0.98, 1.0}) {
      upa::core::WebFarmParams farm{n, 1e-3, 1.0, c, 12.0};
      const auto dist = upa::core::imperfect_coverage_distribution(farm);
      double sum = 0.0;
      for (double p : dist.operational) sum += p;
      for (double p : dist.manual) sum += p;
      EXPECT_NEAR(sum, 1.0, 1e-12) << "n=" << n << " c=" << c;
    }
  }
}

TEST(ApiCoverage, ImperfectChainLabelsAreMeaningful) {
  upa::core::WebFarmParams farm{2, 1e-3, 1.0, 0.9, 12.0};
  const auto chain = upa::core::imperfect_coverage_chain(farm);
  EXPECT_EQ(chain.chain.label(chain.operational_state(2)), "2up");
  EXPECT_EQ(chain.chain.label(chain.manual_state(1)), "y1");
}

TEST(ApiCoverage, UserClassNames) {
  EXPECT_EQ(upa::ta::user_class_name(upa::ta::UserClass::kA), "class A");
  EXPECT_EQ(upa::ta::category_name(upa::ta::ScenarioCategory::kSC4),
            "SC4 (Pay)");
  EXPECT_EQ(upa::ta::function_name(upa::ta::TaFunction::kBrowse), "Browse");
}
