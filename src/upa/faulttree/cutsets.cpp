#include "upa/faulttree/cutsets.hpp"

#include <algorithm>
#include <map>

#include "upa/common/error.hpp"

namespace upa::faulttree {
namespace {

std::vector<CutSet> minimize(std::vector<CutSet> sets) {
  std::sort(sets.begin(), sets.end(), [](const CutSet& a, const CutSet& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<CutSet> kept;
  for (const CutSet& candidate : sets) {
    const bool absorbed =
        std::any_of(kept.begin(), kept.end(), [&](const CutSet& smaller) {
          return std::includes(candidate.begin(), candidate.end(),
                               smaller.begin(), smaller.end());
        });
    if (!absorbed) kept.push_back(candidate);
  }
  return kept;
}

std::vector<CutSet> cross(const std::vector<CutSet>& a,
                          const std::vector<CutSet>& b) {
  std::vector<CutSet> out;
  out.reserve(a.size() * b.size());
  for (const CutSet& x : a) {
    for (const CutSet& y : b) {
      CutSet u = x;
      u.insert(y.begin(), y.end());
      out.push_back(std::move(u));
    }
  }
  UPA_REQUIRE(out.size() <= 200000, "cut-set expansion too large");
  return out;
}

std::vector<CutSet> cuts_of(const FaultTree& tree, NodeId node) {
  if (tree.is_basic(node)) {
    return {CutSet{tree.event_name(node)}};
  }
  const auto& children = tree.gate_children(node);
  switch (tree.gate_kind(node)) {
    case GateKind::kOr: {
      std::vector<CutSet> acc;
      for (NodeId c : children) {
        auto sub = cuts_of(tree, c);
        acc.insert(acc.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
      }
      return minimize(std::move(acc));
    }
    case GateKind::kAnd: {
      std::vector<CutSet> acc{CutSet{}};
      for (NodeId c : children) {
        acc = minimize(cross(acc, cuts_of(tree, c)));
      }
      return acc;
    }
    case GateKind::kKofN: {
      // The top fails when any k children fail: OR over k-subsets of ANDs.
      const std::size_t k = tree.gate_threshold(node);
      const std::size_t n = children.size();
      std::vector<std::vector<CutSet>> child_cuts;
      child_cuts.reserve(n);
      for (NodeId c : children) child_cuts.push_back(cuts_of(tree, c));

      std::vector<CutSet> acc;
      std::vector<std::size_t> idx(k);
      for (std::size_t i = 0; i < k; ++i) idx[i] = i;
      while (true) {
        std::vector<CutSet> combo{CutSet{}};
        for (std::size_t i : idx) combo = cross(combo, child_cuts[i]);
        acc.insert(acc.end(), std::make_move_iterator(combo.begin()),
                   std::make_move_iterator(combo.end()));
        std::size_t i = k;
        bool advanced = false;
        while (i-- > 0) {
          if (idx[i] != i + n - k) {
            ++idx[i];
            for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
            advanced = true;
            break;
          }
        }
        if (!advanced) break;
      }
      return minimize(std::move(acc));
    }
  }
  UPA_ASSERT(false);
  return {};
}

std::map<std::string, double> event_probabilities(const FaultTree& tree) {
  std::map<std::string, double> p;
  for (NodeId e : tree.basic_events()) {
    p[tree.event_name(e)] = tree.event_probability(e);
  }
  return p;
}

}  // namespace

std::vector<CutSet> minimal_cut_sets(const FaultTree& tree) {
  return cuts_of(tree, tree.top());
}

double rare_event_bound(const FaultTree& tree,
                        const std::vector<CutSet>& cut_sets) {
  const auto probs = event_probabilities(tree);
  double bound = 0.0;
  for (const CutSet& cut : cut_sets) {
    double p = 1.0;
    for (const std::string& name : cut) {
      const auto it = probs.find(name);
      UPA_REQUIRE(it != probs.end(), "unknown event " + name);
      p *= it->second;
    }
    bound += p;
  }
  return std::min(bound, 1.0);
}

double probability_from_cut_sets(const FaultTree& tree,
                                 const std::vector<CutSet>& cut_sets) {
  UPA_REQUIRE(!cut_sets.empty(), "need at least one cut set");
  UPA_REQUIRE(cut_sets.size() <= 22,
              "too many cut sets for inclusion-exclusion");
  const auto probs = event_probabilities(tree);
  const std::size_t n = cut_sets.size();
  double total = 0.0;
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    CutSet unioned;
    int bits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        unioned.insert(cut_sets[i].begin(), cut_sets[i].end());
        ++bits;
      }
    }
    double product = 1.0;
    for (const std::string& name : unioned) {
      const auto it = probs.find(name);
      UPA_REQUIRE(it != probs.end(), "unknown event " + name);
      product *= it->second;
    }
    total += (bits % 2 == 1 ? 1.0 : -1.0) * product;
  }
  return total;
}

}  // namespace upa::faulttree
