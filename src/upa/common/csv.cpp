#include "upa/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "upa/common/error.hpp"

namespace upa::common {
namespace {

std::string escape(const std::string& cell) {
  // A bare CR would be glued to the next field's LF-terminated row when
  // re-parsed, so it forces quoting just like LF does (RFC 4180).
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void emit_row(std::ostringstream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) os << ',';
    os << escape(row[i]);
  }
  os << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  UPA_REQUIRE(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  UPA_REQUIRE(cells.size() == headers_.size(),
              "csv row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  emit_row(os, headers_);
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  UPA_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << str();
  UPA_REQUIRE(out.good(), "write to " + path + " failed");
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;      // inside a quoted field
  bool cell_open = false;   // current row has an unfinished cell
  const std::size_t n = text.size();

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_open = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < n; ++i) {
    const char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
          // Only a separator, a row end, or end-of-input may follow.
          const char next = i + 1 < n ? text[i + 1] : ',';
          UPA_REQUIRE(next == ',' || next == '\n' || next == '\r',
                      "csv: closing quote must end the field");
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        UPA_REQUIRE(!cell_open || cell.empty(),
                    "csv: quote inside an unquoted field");
        quoted = true;
        cell_open = true;
        break;
      case ',':
        end_cell();
        cell_open = true;  // a separator always opens the next cell
        break;
      case '\r':
        // CRLF counts as one row terminator; a lone CR also ends the row.
        if (i + 1 < n && text[i + 1] == '\n') ++i;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        cell += ch;
        cell_open = true;
    }
  }
  UPA_REQUIRE(!quoted, "csv: unterminated quoted field at end of input");
  // Input without a trailing newline still yields its last row.
  if (cell_open || !row.empty() || !cell.empty()) end_row();
  return rows;
}

}  // namespace upa::common
