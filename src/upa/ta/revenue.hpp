#pragma once
// Business-impact model (paper Section 5.2): transactions lost to
// pay-scenario unavailability and the implied revenue loss.

#include "upa/ta/user_availability.hpp"

namespace upa::ta {

/// Business parameters of the Section 5.2 example.
struct RevenueParams {
  double transactions_per_second = 100.0;
  double revenue_per_transaction = 100.0;  ///< dollars
};

/// Annualized impact of SC4 (payment) unavailability.
struct RevenueLoss {
  double pay_downtime_hours_per_year = 0.0;  ///< UA(SC4) * 8760
  double lost_transactions_per_year = 0.0;
  double lost_revenue_per_year = 0.0;  ///< dollars
};

[[nodiscard]] RevenueLoss revenue_loss(UserClass uc, const TaParameters& p,
                                       const RevenueParams& biz = {});

}  // namespace upa::ta
