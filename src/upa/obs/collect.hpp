#pragma once
// Cross-process trace collection for the serving farm. Every farm
// process (upa_dispatch, each upa_served replica) streams completed
// spans over its `subscribe` telemetry channel; the collector ingests
// those JSONL lines, reassembles per-request traces across process
// boundaries, and mines the observed workload back into the paper's
// modeling inputs.
//
// Linkage model (see serve/protocol.hpp): the front's dispatch_request
// root carries the trace_id; each dispatch_attempt child carries a
// per-process `ref` it also propagated to the upstream as the trace
// context's span_id, and the replica's serve_request span echoes that
// value back as its `parent_span` attribute. A trace is *complete* when
// its root exists, its per-attempt children match the root's `attempts`
// count, and every attempt whose outcome implies the replica handled
// the request (ok / deadline / error) has a matching server-side span
// -- acceptor rejections (503 written without reading) and transport
// failures legitimately leave no server span.
//
// Profile mining: traced requests carry (conn, seq) attributes, so the
// collector can rebuild each client connection's method sequence, map
// methods back to the paper's Table 1 functions, and estimate both the
// session DTMC (an operational profile) and the empirical scenario-class
// mix -- exactly the inputs ta::user_availability consumes. The mined
// mix fed through eq. (10) is then compared against the hand-specified
// Table 1 answer with a sampling-error tolerance.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "upa/profile/operational_profile.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/ta/params.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::obs {

/// One span as received over a telemetry channel, with its attributes
/// split by type. Span ids are only unique per process.
struct CollectedSpan {
  std::string process;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (within its process)
  std::string name;
  std::string level;   ///< span_level_name string, e.g. "serve_request"
  std::string domain;  ///< time_domain_name string
  double start = 0.0;
  double end = 0.0;
  std::map<std::string, double> number_attrs;
  std::map<std::string, std::string> text_attrs;

  [[nodiscard]] bool has_number(const std::string& key) const;
  [[nodiscard]] double number(const std::string& key,
                              double fallback = 0.0) const;
  [[nodiscard]] std::string text(const std::string& key) const;
};

/// Per-process ingest accounting (one entry per distinct process label).
struct ProcessIngest {
  std::string process;
  std::uint64_t metrics_lines = 0;
  std::uint64_t span_lines = 0;
  std::uint64_t last_seq = 0;
  std::uint64_t seq_gaps = 0;       ///< missed metrics ticks
  std::uint64_t dropped_spans = 0;  ///< latest reported by the process
};

/// One forwarding attempt inside a reassembled request.
struct TraceAttempt {
  const CollectedSpan* span = nullptr;
  std::uint64_t ref = 0;
  std::string upstream;
  std::string outcome;
  const CollectedSpan* server_root = nullptr;  ///< matched serve_request
  std::vector<const CollectedSpan*> server_phases;
};

/// One client request: a dispatch_request root with its attempt chain,
/// or a direct (front-less) serve_request root with no attempts.
struct TraceRequest {
  const CollectedSpan* root = nullptr;
  std::string method;
  std::string outcome;
  std::vector<TraceAttempt> attempts;
  bool complete = true;
  std::string incompleteness;  ///< first failed check; empty if complete
};

/// Everything observed under one trace_id (loadgen issues one request
/// per trace, but adopted contexts may carry several).
struct AssembledTrace {
  std::string trace_id;
  std::vector<TraceRequest> requests;
  bool complete = false;  ///< at least one request, all complete
};

struct ReassemblyReport {
  std::vector<AssembledTrace> traces;  ///< sorted by trace_id
  std::size_t complete_traces = 0;
  /// serve_request spans claiming a parent ref no attempt carries
  /// (clock-skewed subscriptions or a dropped front span).
  std::size_t orphan_server_roots = 0;
};

/// The mined workload model: session DTMC + empirical class mix over
/// the paper's five functions (TaFunction order).
struct MinedProfile {
  profile::OperationalProfile profile;
  profile::ScenarioSet classes;  ///< visited-set mix, masses sum to ~1
  std::size_t walks = 0;
  std::size_t invocations = 0;
  std::size_t skipped_invocations = 0;  ///< methods outside the mapping
};

/// Mined-vs-hand-specified eq. (10) comparison. The tolerance is the
/// run's own sampling error: the mined availability is the mean of one
/// bounded per-walk weight, so 4 standard errors plus a small absolute
/// floor covers it at any walk count that mining accepts.
struct ProfileComparison {
  double mined_availability = 0.0;
  double hand_availability = 0.0;
  double difference = 0.0;  ///< |mined - hand|
  double tolerance = 0.0;
  std::size_t walks = 0;
  bool within_tolerance = false;
};

/// Ingests telemetry JSONL from any number of processes (thread-safe:
/// one reader thread per subscription may call ingest_line
/// concurrently) and runs the offline analyses.
class TraceCollector {
 public:
  /// Ingests one telemetry line ({"telemetry":"metrics"|"span",...}).
  /// Returns true if the line was recognized; malformed or non-telemetry
  /// lines are counted, not thrown.
  bool ingest_line(const std::string& line);

  /// Ingests a whole newline-delimited blob; returns the number of
  /// recognized lines.
  std::size_t ingest_jsonl(const std::string& text);

  [[nodiscard]] std::vector<CollectedSpan> spans() const;
  [[nodiscard]] std::vector<ProcessIngest> processes() const;
  [[nodiscard]] std::uint64_t dropped_spans_total() const;
  [[nodiscard]] std::uint64_t unrecognized_lines() const;

  /// Groups spans by trace_id and stitches the cross-process linkage.
  /// Pointers in the report alias this collector's span storage and are
  /// valid until the next ingest call.
  [[nodiscard]] ReassemblyReport reassemble() const;

  /// Fraction of `expected_trace_ids` (e.g. a loadgen run's per-request
  /// CSV) reassembled into a complete trace.
  [[nodiscard]] static double accounted_fraction(
      const ReassemblyReport& report,
      const std::vector<std::string>& expected_trace_ids);

  /// Merged Chrome/Perfetto trace: one track (pid) per process, one row
  /// (tid) per root span. Per-process clocks are aligned onto the
  /// reference process's wall timeline by matching each serve_request
  /// span to the midpoint of its dispatch_attempt window.
  [[nodiscard]] std::string merged_chrome_trace(
      const ReassemblyReport& report) const;

  /// Raw ingested spans as JSONL (telemetry span-line format), ordered
  /// by (process, span id) -- a deterministic merge of all channels.
  [[nodiscard]] std::string merged_spans_jsonl() const;

  /// Rebuilds per-connection method sequences from a reassembly report,
  /// maps them to Table 1 functions, and estimates the session DTMC and
  /// empirical class mix. Throws ModelError when no complete walks over
  /// mapped methods exist.
  [[nodiscard]] static MinedProfile mine_profile(
      const ReassemblyReport& report);

  /// Eq. (10) over the mined class mix vs. the hand-specified Table 1
  /// inputs for `uclass`, with a 4-standard-error + 0.02 tolerance.
  [[nodiscard]] static ProfileComparison compare_with_hand_specified(
      const MinedProfile& mined, ta::UserClass uclass,
      const ta::TaParameters& params = ta::TaParameters::paper_defaults());

 private:
  mutable std::mutex mutex_;
  std::vector<CollectedSpan> spans_;
  std::map<std::string, ProcessIngest> processes_;
  std::uint64_t unrecognized_ = 0;
};

}  // namespace upa::obs
