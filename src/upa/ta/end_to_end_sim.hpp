#pragma once
// End-to-end "measurement" of the travel agency: simulate the physical
// resources (two-state components, the coverage-aware web farm) over a
// long horizon, then run user sessions through the operational profile at
// real timestamps with think times between function invocations.
//
// With instantaneous sessions this reproduces eq. (10) (every invocation
// sees the same resource snapshot). With realistic think times the
// invocations decorrelate, testing the paper's implicit frozen-state-per-
// session assumption -- an experiment the analytic model cannot run.
//
// Two orthogonal extensions hook in here:
//   - fault injection (options.faults): scripted outage windows force
//     resource classes down on top of the sampled trajectories, so what-if
//     campaigns replay against identical resource histories;
//   - user resilience (options.retry): failed invocations are retried with
//     exponential backoff, over-deadline responses count as failures, and
//     impatient users abandon the session.
// Both default off, in which case results are draw-for-draw identical to
// the plain simulator.

#include <cstdint>

#include "upa/inject/fault_plan.hpp"
#include "upa/inject/retry.hpp"
#include "upa/sim/stats.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::obs {
struct Observer;
}  // namespace upa::obs

namespace upa::ta {

/// Controls for the end-to-end simulation. Time unit: hours.
struct EndToEndOptions {
  double horizon_hours = 50000.0;
  /// Mean think time between consecutive function invocations within a
  /// session (exponential); 0 = instantaneous sessions (eq. 10 regime).
  double think_time_hours = 0.0;
  /// Repair rate assumed for the black-box resources whose availability
  /// (not dynamics) Table 7 specifies; their failure rate is derived as
  /// mu (1 - A) / A.
  double black_box_repair_rate = 1.0;
  std::uint64_t sessions_per_replication = 40000;
  std::size_t replications = 6;
  std::uint64_t seed = 42;
  double confidence_level = 0.95;
  /// Worker threads for replication-level parallelism: 0 = one per
  /// hardware thread, 1 = the legacy serial path (no pool), N = a fixed
  /// pool of N (capped at the replication count). Results are bit-for-bit
  /// identical at every setting: each replication derives its RNG stream
  /// from (seed, replication index) alone, accumulates into private
  /// partial sums, and the partials -- including per-replication observer
  /// shards -- are merged in replication order after the join.
  std::size_t threads = 0;
  /// Scripted outage windows overlaid on the sampled trajectories.
  inject::FaultPlan faults;
  /// User retry / timeout / abandonment behavior.
  inject::RetryPolicy retry;
  /// Optional observability sink (non-owning). When attached, the run
  /// emits session / function_invocation / service_call spans (volume
  /// gated by the observer's trace level) and session/retry/deadline
  /// counters. Instrumentation only records -- it draws no randomness --
  /// so results are bit-for-bit identical with or without an observer
  /// (pinned in tests/test_obs.cpp).
  obs::Observer* obs = nullptr;

  /// Throws ModelError when any option is out of its domain (horizon and
  /// think time, >= 2 replications so confidence intervals are
  /// well-defined, fault windows within the horizon, valid retry policy).
  void validate() const;
};

/// Results of the end-to-end measurement.
struct EndToEndResult {
  sim::ConfidenceInterval perceived_availability;
  /// Observed time-average availability of the web farm trajectory with
  /// injected web-farm outages subtracted (diagnostic: approaches the
  /// analytic A(WS) minus the scripted down fraction).
  double observed_web_service_availability = 0.0;
  double mean_session_duration_hours = 0.0;
  /// Retry diagnostics (all zero for the default fail-fast policy).
  double mean_retries_per_session = 0.0;
  double abandonment_fraction = 0.0;
};

/// Runs the measurement for one user class under the given parameters.
[[nodiscard]] EndToEndResult simulate_end_to_end(
    UserClass uclass, const TaParameters& params,
    const EndToEndOptions& options = {});

}  // namespace upa::ta
