// Cross-engine validation: the same quantity computed through genuinely
// different machinery must agree. This is the library's strongest defense
// against formula transcription errors:
//   eq. (10)  ==  hierarchical conditioning  ==  session simulation
//   web-farm closed form  ==  explicit CTMC  ==  GSPN -> CTMC  ==  MC sim
//   RBD evaluation  ==  dual fault tree via BDD

#include <gtest/gtest.h>

#include "upa/faulttree/bdd.hpp"
#include "upa/rbd/block.hpp"
#include "upa/sim/availability_sim.hpp"
#include "upa/sim/session_sim.hpp"
#include "upa/spn/net.hpp"
#include "upa/spn/reachability.hpp"
#include "upa/spn/to_ctmc.hpp"
#include "upa/ta/model_builder.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"

namespace ut = upa::ta;
namespace uc = upa::core;
namespace usim = upa::sim;
namespace uspn = upa::spn;

TEST(CrossVal, Eq10EqualsHierarchicalModel) {
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    for (std::size_t n : {1u, 2u, 5u}) {
      const auto p =
          ut::TaParameters::paper_defaults().with_reservation_systems(n);
      EXPECT_NEAR(ut::user_availability_eq10(uclass, p),
                  ut::user_availability_hierarchical(uclass, p), 1e-12)
          << ut::user_class_name(uclass) << " N=" << n;
    }
  }
}

TEST(CrossVal, Eq10EqualsHierarchicalOnBasicArchitecture) {
  auto p = ut::TaParameters::paper_defaults().with_reservation_systems(3);
  p.architecture = ut::Architecture::kBasic;
  p.coverage_model = ut::CoverageModel::kPerfect;
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    EXPECT_NEAR(ut::user_availability_eq10(uclass, p),
                ut::user_availability_hierarchical(uclass, p), 1e-12);
  }
}

TEST(CrossVal, SessionSimulationMatchesHierarchicalModel) {
  // Monte-Carlo over sessions walking the fitted p_ij graph, with one
  // service-world draw per session: must land on the analytic
  // user-perceived availability (fitted-graph rounding ~2e-3 + CI).
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  const auto uclass = ut::UserClass::kB;
  const auto model = ut::build_user_model(uclass, p);
  const auto profile = ut::fitted_session_graph(uclass);
  const double analytic = model.user_availability();

  const std::size_t service_count = model.catalog().size();
  const auto world = [&model, &profile, service_count](
                         usim::Xoshiro256& rng) -> std::vector<double> {
    std::vector<bool> up(service_count);
    for (std::size_t s = 0; s < service_count; ++s) {
      up[s] = rng.uniform01() < model.catalog().availability(s);
    }
    // Per-function success probability in this world (branch mixtures
    // stay fractional; hard service outages give 0).
    std::vector<double> result(profile.state_count(), 1.0);
    for (std::size_t f = 0; f < 5; ++f) {
      result[upa::profile::NodeIndex::function(f)] =
          model.function(f).success_given(up);
    }
    return result;
  };

  usim::SessionSimOptions options;
  options.sessions = 60000;
  options.replications = 6;
  options.seed = 20260705;
  const auto result = usim::simulate_sessions(
      profile.transition_matrix(), upa::profile::NodeIndex::kStart,
      profile.exit_state(), world, options);
  EXPECT_NEAR(result.perceived_availability.mean, analytic,
              result.perceived_availability.half_width + 4e-3);
}

TEST(CrossVal, SessionSimulationVisitCountsMatchAbsorbingChain) {
  const auto profile = ut::fitted_session_graph(ut::UserClass::kA);
  const auto world = [&profile](usim::Xoshiro256&) {
    return std::vector<double>(profile.state_count(), 1.0);
  };
  usim::SessionSimOptions options;
  options.sessions = 50000;
  options.replications = 4;
  options.seed = 7;
  const auto result = usim::simulate_sessions(
      profile.transition_matrix(), upa::profile::NodeIndex::kStart,
      profile.exit_state(), world, options);
  for (std::size_t f = 0; f < profile.function_count(); ++f) {
    EXPECT_NEAR(
        result.mean_visits[upa::profile::NodeIndex::function(f)],
        profile.expected_visits(f), 0.01)
        << profile.function_name(f);
  }
}

namespace {

/// GSPN formulation of the Figure 10 web farm. While a manual
/// reconfiguration is pending the whole service freezes (matching the
/// paper's chain, where y_i's only transition is beta), enforced through
/// inhibitor arcs.
uspn::PetriNet imperfect_farm_net(std::size_t servers, double lambda,
                                  double mu, double coverage, double beta) {
  uspn::PetriNet net;
  const auto up = net.add_place("up", static_cast<int>(servers));
  const auto down = net.add_place("down", 0);
  const auto choice = net.add_place("choice", 0);
  const auto manual = net.add_place("manual", 0);

  const auto fail = net.add_timed_transition(
      "fail", lambda, uspn::ServerSemantics::kInfiniteServer);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, choice);
  net.add_inhibitor_arc(fail, manual);

  const auto covered = net.add_immediate_transition("covered", coverage);
  net.add_input_arc(covered, choice);
  net.add_output_arc(covered, down);

  const auto uncovered =
      net.add_immediate_transition("uncovered", 1.0 - coverage);
  net.add_input_arc(uncovered, choice);
  net.add_output_arc(uncovered, manual);

  const auto reconfig = net.add_timed_transition("reconfig", beta);
  net.add_input_arc(reconfig, manual);
  net.add_output_arc(reconfig, down);

  const auto repair = net.add_timed_transition("repair", mu);
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);
  net.add_inhibitor_arc(repair, manual);
  return net;
}

}  // namespace

TEST(CrossVal, GspnReproducesImperfectCoverageDistribution) {
  const std::size_t servers = 4;
  const double lambda = 1e-3;
  const double mu = 1.0;
  const double coverage = 0.9;
  const double beta = 12.0;

  const auto net =
      imperfect_farm_net(servers, lambda, mu, coverage, beta);
  const auto tc = uspn::to_ctmc(net, uspn::explore(net));

  uc::WebFarmParams farm{servers, lambda, mu, coverage, beta};
  const auto closed = uc::imperfect_coverage_distribution(farm);

  // P(i operational, no manual pending) == pi_i.
  for (std::size_t i = 0; i <= servers; ++i) {
    const double spn = uspn::steady_state_probability(
        tc, [&](const uspn::Marking& m) {
          return m[0] == static_cast<int>(i) && m[3] == 0;
        });
    EXPECT_NEAR(spn, closed.operational[i], 1e-10) << "state " << i;
  }
  // P(manual pending with i-1 still up) == pi_{y_i}.
  for (std::size_t i = 1; i <= servers; ++i) {
    const double spn = uspn::steady_state_probability(
        tc, [&](const uspn::Marking& m) {
          return m[0] == static_cast<int>(i - 1) && m[3] == 1;
        });
    EXPECT_NEAR(spn, closed.manual[i], 1e-10) << "y" << i;
  }
}

TEST(CrossVal, MonteCarloConfirmsImperfectFarmAvailability) {
  uc::WebFarmParams farm{3, 5e-3, 1.0, 0.95, 12.0};
  uc::WebQueueParams queue{100.0, 100.0, 10};
  const double analytic =
      uc::web_service_availability_imperfect(farm, queue);
  const auto composite = uc::composite_imperfect(farm, queue);

  usim::MonteCarloOptions options;
  options.horizon = 400000.0;  // hours; failures are rare events
  options.replications = 8;
  options.seed = 424242;
  const auto estimate = usim::simulate_ctmc_reward(
      composite.chain(), composite.service_probability(),
      /*initial_state=*/3, options);
  EXPECT_NEAR(estimate.interval.mean, analytic,
              estimate.interval.half_width + 5e-4);
}

TEST(CrossVal, RbdAgreesWithDualFaultTree) {
  // TA-like internal structure: series(net, lan, parallel(ws1, ws2),
  // parallel(as1, as2), db). Dual fault tree: OR over series elements,
  // AND over parallel pairs.
  namespace ur = upa::rbd;
  namespace uf = upa::faulttree;
  const auto block = ur::Block::series(
      {ur::Block::component("net"), ur::Block::component("lan"),
       ur::Block::parallel(
           {ur::Block::component("ws1"), ur::Block::component("ws2")}),
       ur::Block::parallel(
           {ur::Block::component("as1"), ur::Block::component("as2")}),
       ur::Block::component("db")});
  const ur::ParamMap avail{{"net", 0.9966}, {"lan", 0.9966}, {"ws1", 0.99},
                           {"ws2", 0.99},   {"as1", 0.996},  {"as2", 0.996},
                           {"db", 0.92}};

  uf::FaultTree tree;
  const auto net_f = tree.add_basic_event("net", 1 - 0.9966);
  const auto lan_f = tree.add_basic_event("lan", 1 - 0.9966);
  const auto ws1_f = tree.add_basic_event("ws1", 1 - 0.99);
  const auto ws2_f = tree.add_basic_event("ws2", 1 - 0.99);
  const auto as1_f = tree.add_basic_event("as1", 1 - 0.996);
  const auto as2_f = tree.add_basic_event("as2", 1 - 0.996);
  const auto db_f = tree.add_basic_event("db", 1 - 0.92);
  const auto ws_pair = tree.add_and({ws1_f, ws2_f});
  const auto as_pair = tree.add_and({as1_f, as2_f});
  tree.add_or({net_f, lan_f, ws_pair, as_pair, db_f});

  EXPECT_NEAR(ur::availability(block, avail),
              1.0 - uf::top_event_probability(tree), 1e-12);
}

TEST(CrossVal, SteadyStateSolversAgreeOnImperfectChain) {
  uc::WebFarmParams farm{5, 2e-3, 1.0, 0.93, 10.0};
  const auto chain = uc::imperfect_coverage_chain(farm);
  const auto direct = chain.chain.steady_state();
  const auto iterative = chain.chain.steady_state_iterative(1e-14);
  for (std::size_t s = 0; s < direct.size(); ++s) {
    EXPECT_NEAR(direct[s], iterative[s], 1e-9) << "state " << s;
  }
}
