#include "upa/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  UPA_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  UPA_REQUIRE(rows.size() > 0, "matrix needs at least one row");
  rows_ = rows.size();
  cols_ = rows.begin()->size();
  UPA_REQUIRE(cols_ > 0, "matrix needs at least one column");
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    UPA_REQUIRE(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  UPA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  UPA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

std::span<const double> Matrix::row(std::size_t r) const {
  UPA_REQUIRE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  UPA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  UPA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "matrix shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  UPA_REQUIRE(a.cols() == b.rows(), "matrix shape mismatch in product");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  UPA_REQUIRE(a.cols() == x.size(), "shape mismatch in matrix*vector");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = dot(a.row(i), x);
  }
  return y;
}

Vector left_multiply(const Vector& x, const Matrix& a) {
  UPA_REQUIRE(a.rows() == x.size(), "shape mismatch in vector*matrix");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  UPA_REQUIRE(a.size() == b.size(), "shape mismatch in dot product");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm_inf(std::span<const double> v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double norm_1(std::span<const double> v) noexcept {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  UPA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
              "matrix shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      m = std::max(m, std::abs(a(r, c) - b(r, c)));
    }
  }
  return m;
}

}  // namespace upa::linalg
