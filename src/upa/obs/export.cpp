#include "upa/obs/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "upa/common/error.hpp"

namespace upa::obs {
namespace {

/// Shortest round-trip decimal form (std::to_chars); "null" for
/// non-finite values, which bare JSON numbers cannot represent.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  UPA_ASSERT(ec == std::errc());
  return std::string(buffer, ptr);
}

std::string attrs_json(const std::vector<SpanAttribute>& attributes) {
  std::string out = "{";
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    const SpanAttribute& a = attributes[i];
    if (i != 0) out += ',';
    out += '"' + json_escape(a.key) + "\":";
    out += a.is_number ? json_number(a.number)
                       : '"' + json_escape(a.text) + '"';
  }
  out += '}';
  return out;
}

void write_text_file(const std::string& text, const std::string& path) {
  std::ofstream out(path);
  UPA_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << text;
  UPA_REQUIRE(out.good(), "write to " + path + " failed");
}

/// Maps each span to the id of its root ancestor (its Chrome-trace
/// thread), so overlapping sessions get separate rows.
std::unordered_map<SpanId, SpanId> root_of(const std::vector<Span>& spans) {
  std::unordered_map<SpanId, SpanId> roots;
  roots.reserve(spans.size());
  // Spans are appended in begin() order, so a parent always precedes its
  // children and one forward pass resolves every chain.
  for (const Span& span : spans) {
    const auto parent = roots.find(span.parent);
    roots.emplace(span.id,
                  parent == roots.end() ? span.id : parent->second);
  }
  return roots;
}

std::string bucket_summary(const Histogram& histogram) {
  std::string out;
  const auto& bounds = histogram.upper_bounds();
  const auto& counts = histogram.bucket_counts();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "le=%g:%llu", bounds[i],
                  static_cast<unsigned long long>(counts[i]));
    out += buffer;
    out += ',';
  }
  out += "inf:" + std::to_string(counts.back());
  return out;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
          out += buffer;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string spans_jsonl(const Tracer& tracer) {
  std::string out;
  for (const Span& span : tracer.spans()) {
    out += "{\"id\":" + std::to_string(span.id) +
           ",\"parent\":" + std::to_string(span.parent) + ",\"name\":\"" +
           json_escape(span.name) + "\",\"level\":\"" +
           span_level_name(span.level) + "\",\"domain\":\"" +
           time_domain_name(span.domain) +
           "\",\"start\":" + json_number(span.start) +
           ",\"end\":" + json_number(span.end) +
           ",\"attrs\":" + attrs_json(span.attributes) + "}\n";
  }
  return out;
}

void write_spans_jsonl(const Tracer& tracer, const std::string& path) {
  write_text_file(spans_jsonl(tracer), path);
}

std::string chrome_trace_json(const Tracer& tracer) {
  const auto roots = root_of(tracer.spans());
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += "\n" + event;
  };
  emit(R"json({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"model time (1us = 1 model second)"}})json");
  emit(R"json({"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"wall time"}})json");
  for (const Span& span : tracer.spans()) {
    // Model hours -> us at 1 model second per us; wall seconds -> us.
    const double scale =
        span.domain == TimeDomain::kModelHours ? 3.6e6 : 1e6;
    const int pid = span.domain == TimeDomain::kModelHours ? 1 : 2;
    const double ts = span.start * scale;
    const double dur = (span.end - span.start) * scale;
    emit("{\"name\":\"" + json_escape(span.name) + "\",\"cat\":\"" +
         span_level_name(span.level) + "\",\"ph\":\"X\",\"ts\":" +
         json_number(ts) + ",\"dur\":" + json_number(dur) +
         ",\"pid\":" + std::to_string(pid) + ",\"tid\":" +
         std::to_string(roots.at(span.id)) +
         ",\"args\":" + attrs_json(span.attributes) + "}");
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":" +
         std::to_string(tracer.dropped()) + "}}\n";
  return out;
}

void write_chrome_trace(const Tracer& tracer, const std::string& path) {
  write_text_file(chrome_trace_json(tracer), path);
}

common::CsvWriter metrics_csv(const MetricsRegistry& registry) {
  common::CsvWriter writer(
      {"metric", "type", "value", "count", "sum", "min", "max", "buckets"});
  for (const auto& [name, counter] : registry.counters()) {
    writer.add_row({name, "counter", std::to_string(counter.value()), "", "",
                    "", "", ""});
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    writer.add_row(
        {name, "gauge", json_number(gauge.value()), "", "", "", "", ""});
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    writer.add_row({name, "histogram", "", std::to_string(histogram.count()),
                    json_number(histogram.sum()),
                    json_number(histogram.min()),
                    json_number(histogram.max()), bucket_summary(histogram)});
  }
  return writer;
}

void write_metrics_csv(const MetricsRegistry& registry,
                       const std::string& path) {
  metrics_csv(registry).write_file(path);
}

std::string metrics_jsonl(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counters()) {
    out += "{\"metric\":\"" + json_escape(name) +
           "\",\"type\":\"counter\",\"value\":" +
           std::to_string(counter.value()) + "}\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    out += "{\"metric\":\"" + json_escape(name) +
           "\",\"type\":\"gauge\",\"value\":" + json_number(gauge.value()) +
           "}\n";
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    out += "{\"metric\":\"" + json_escape(name) +
           "\",\"type\":\"histogram\",\"count\":" +
           std::to_string(histogram.count()) +
           ",\"sum\":" + json_number(histogram.sum()) +
           ",\"min\":" + json_number(histogram.min()) +
           ",\"max\":" + json_number(histogram.max()) + ",\"bounds\":[";
    const auto& bounds = histogram.upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i != 0) out += ',';
      out += json_number(bounds[i]);
    }
    out += "],\"counts\":[";
    const auto& counts = histogram.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(counts[i]);
    }
    out += "]}\n";
  }
  return out;
}

void write_metrics_jsonl(const MetricsRegistry& registry,
                         const std::string& path) {
  write_text_file(metrics_jsonl(registry), path);
}

}  // namespace upa::obs
