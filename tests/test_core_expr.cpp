// Tests for the availability-expression AST: evaluation, structure
// helpers (series/parallel/complement), symbolic derivatives, and
// gradients used for sensitivity ranking.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/core/expr.hpp"

using upa::common::ModelError;
using upa::core::Expr;
using upa::core::Params;

TEST(Expr, ConstantsAndParams) {
  EXPECT_DOUBLE_EQ(Expr::constant(2.5).evaluate({}), 2.5);
  EXPECT_DOUBLE_EQ(Expr::param("x").evaluate({{"x", 0.7}}), 0.7);
  EXPECT_THROW((void)Expr::param("x").evaluate({}), ModelError);
}

TEST(Expr, ArithmeticComposition) {
  const Expr e = Expr::param("a") * Expr::param("b") + Expr::constant(1.0);
  EXPECT_DOUBLE_EQ(e.evaluate({{"a", 2.0}, {"b", 3.0}}), 7.0);
}

TEST(Expr, ComplementAndParallel) {
  const Expr c = Expr::complement(Expr::param("a"));
  EXPECT_NEAR(c.evaluate({{"a", 0.9}}), 0.1, 1e-15);
  const Expr p = Expr::parallel({Expr::param("a"), Expr::param("b")});
  EXPECT_NEAR(p.evaluate({{"a", 0.9}, {"b", 0.8}}), 0.98, 1e-15);
}

TEST(Expr, ParallelOfThree) {
  const Expr p = Expr::parallel(
      {Expr::param("a"), Expr::param("a"), Expr::param("a")});
  // Note: same parameter three times = three independent uses of its
  // VALUE (expressions are algebraic, not probabilistic).
  EXPECT_NEAR(p.evaluate({{"a", 0.9}}), 1.0 - 1e-3, 1e-12);
}

TEST(Expr, ProductDerivative) {
  const Expr e = Expr::param("x") * Expr::param("y");
  const Params at{{"x", 3.0}, {"y", 5.0}};
  EXPECT_DOUBLE_EQ(e.derivative("x").evaluate(at), 5.0);
  EXPECT_DOUBLE_EQ(e.derivative("y").evaluate(at), 3.0);
  EXPECT_DOUBLE_EQ(e.derivative("z").evaluate(at), 0.0);
}

TEST(Expr, SumDerivative) {
  const Expr e = Expr::param("x") + Expr::param("x") + Expr::constant(4.0);
  EXPECT_DOUBLE_EQ(e.derivative("x").evaluate({{"x", 1.0}}), 2.0);
}

TEST(Expr, ChainOfStructures) {
  // A = x * (1 - (1-y)(1-z)); dA/dy = x (1-z).
  const Expr e = Expr::param("x") *
                 Expr::parallel({Expr::param("y"), Expr::param("z")});
  const Params at{{"x", 0.95}, {"y", 0.9}, {"z", 0.8}};
  EXPECT_NEAR(e.derivative("y").evaluate(at), 0.95 * 0.2, 1e-12);
  EXPECT_NEAR(e.derivative("z").evaluate(at), 0.95 * 0.1, 1e-12);
}

TEST(Expr, DerivativeMatchesFiniteDifference) {
  const Expr e = Expr::parallel(
      {Expr::param("a") * Expr::param("b"),
       Expr::param("c") * Expr::complement(Expr::param("a"))});
  Params at{{"a", 0.6}, {"b", 0.7}, {"c", 0.5}};
  for (const std::string name : {"a", "b", "c"}) {
    const double h = 1e-7;
    Params up = at;
    Params down = at;
    up[name] += h;
    down[name] -= h;
    const double fd = (e.evaluate(up) - e.evaluate(down)) / (2 * h);
    EXPECT_NEAR(e.derivative(name).evaluate(at), fd, 1e-6) << name;
  }
}

TEST(Expr, ParametersCollectedSortedUnique) {
  const Expr e = Expr::param("z") * Expr::param("a") + Expr::param("a");
  const auto names = e.parameters();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "z");
}

TEST(Expr, GradientRanksFirstOrderFactors) {
  // user availability ~ net * lan * ws * deep-stuff: the gradient wrt the
  // always-required factors exceeds second-order ones.
  const Expr e = Expr::param("net") * Expr::param("lan") *
                 (Expr::constant(0.5) +
                  Expr::constant(0.5) * Expr::param("ext"));
  const Params at{{"net", 0.9966}, {"lan", 0.9966}, {"ext", 0.9}};
  const auto g = upa::core::gradient(e, at);
  EXPECT_GT(g.at("net"), g.at("ext"));
  EXPECT_GT(g.at("lan"), g.at("ext"));
}

TEST(Expr, ToStringRenders) {
  const Expr e = Expr::param("a") * Expr::constant(2.0);
  const std::string s = e.to_string();
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find('2'), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(Expr, SingleChildCollapses) {
  const Expr e = Expr::product({Expr::param("only")});
  EXPECT_EQ(e.to_string(), "only");
}

TEST(Expr, EmptyCompositionRejected) {
  EXPECT_THROW((void)Expr::product({}), ModelError);
  EXPECT_THROW((void)Expr::sum({}), ModelError);
  EXPECT_THROW((void)Expr::parallel({}), ModelError);
  EXPECT_THROW((void)Expr::param(""), ModelError);
}
