#pragma once
// Minimal path sets and minimal cut sets of a block diagram, derived from
// the structure function. Path/cut sets explain *why* a system is up or
// down and feed the Fussell-Vesely importance measure.

#include <set>
#include <string>
#include <vector>

#include "upa/rbd/block.hpp"

namespace upa::rbd {

/// A set of component names; the system is up when every component of some
/// minimal path set is up, and down when every component of some minimal
/// cut set is down.
using ComponentSet = std::set<std::string>;

/// Minimal path sets of the diagram (exact, via monotone expansion with
/// absorption). Component count must stay small enough for exact work.
[[nodiscard]] std::vector<ComponentSet> minimal_path_sets(const Block& block);

/// Minimal cut sets of the diagram (dual expansion).
[[nodiscard]] std::vector<ComponentSet> minimal_cut_sets(const Block& block);

/// Inclusion-exclusion system availability from the minimal path sets —
/// an independent cross-check of rbd::availability for small diagrams.
[[nodiscard]] double availability_from_path_sets(
    const std::vector<ComponentSet>& path_sets, const ParamMap& params);

}  // namespace upa::rbd
