#pragma once
// Reduced ordered binary decision diagrams with hash consing, built from
// scratch. Variables are fault-tree basic events in creation order; the
// `high` branch is "event occurred". Exact probability evaluation is a
// single memoized traversal, making shared events and replicated
// subsystems exact where structural methods are not.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "upa/faulttree/tree.hpp"

namespace upa::faulttree {

/// Handle to a BDD node within one BddManager (0 and 1 are the terminals).
using BddRef = std::uint32_t;

/// Hash-consed ROBDD node store with apply-style AND/OR/NOT and a
/// probability evaluator.
class BddManager {
 public:
  explicit BddManager(std::size_t variable_count);

  [[nodiscard]] BddRef zero() const noexcept { return 0; }
  [[nodiscard]] BddRef one() const noexcept { return 1; }

  /// The single-variable BDD "var is true".
  [[nodiscard]] BddRef variable(std::size_t var);

  [[nodiscard]] BddRef apply_and(BddRef a, BddRef b);
  [[nodiscard]] BddRef apply_or(BddRef a, BddRef b);
  [[nodiscard]] BddRef negate(BddRef a);

  /// At-least-k-of over a list of functions.
  [[nodiscard]] BddRef at_least(std::size_t k, const std::vector<BddRef>& fns);

  /// P(f = 1) where variable v is true with probability p[v], variables
  /// independent.
  [[nodiscard]] double probability(BddRef f,
                                   const std::vector<double>& var_probability);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t variable_count() const noexcept {
    return variable_count_;
  }

  /// Number of satisfying assignments (over all variables), as a double.
  [[nodiscard]] double satisfying_count(BddRef f);

 private:
  struct Node {
    std::uint32_t var;  // terminal nodes use var = variable_count_
    BddRef low;
    BddRef high;
  };

  struct NodeKey {
    std::uint32_t var;
    BddRef low;
    BddRef high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept {
      std::size_t h = k.var;
      h = h * 1000003u ^ k.low;
      h = h * 1000003u ^ k.high;
      return h;
    }
  };

  [[nodiscard]] BddRef make_node(std::uint32_t var, BddRef low, BddRef high);
  [[nodiscard]] BddRef apply(BddRef a, BddRef b, bool is_and);

  std::size_t variable_count_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<std::uint64_t, BddRef> and_cache_;
  std::unordered_map<std::uint64_t, BddRef> or_cache_;
  std::unordered_map<BddRef, BddRef> not_cache_;
};

/// Compiles a fault tree into a BDD over its basic events (creation
/// order); returns the manager and the root of the top event.
struct CompiledTree {
  BddManager manager;
  BddRef top;
};

[[nodiscard]] CompiledTree compile_to_bdd(const FaultTree& tree);

}  // namespace upa::faulttree
