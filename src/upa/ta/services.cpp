#include "upa/ta/services.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::ta {

double external_service_availability(double per_system, std::size_t systems) {
  UPA_REQUIRE(systems >= 1, "need at least one system");
  return 1.0 - std::pow(1.0 - per_system, static_cast<double>(systems));
}

double flight_availability(const TaParameters& p) {
  return external_service_availability(p.a_reservation, p.n_flight);
}

double hotel_availability(const TaParameters& p) {
  return external_service_availability(p.a_reservation, p.n_hotel);
}

double car_availability(const TaParameters& p) {
  return external_service_availability(p.a_reservation, p.n_car);
}

double application_service_availability(const TaParameters& p) {
  if (p.architecture == Architecture::kBasic) return p.a_cas;
  const double q = 1.0 - p.a_cas;
  return 1.0 - q * q;
}

double database_service_availability(const TaParameters& p) {
  if (p.architecture == Architecture::kBasic) return p.a_cds * p.a_disk;
  const double host_pair = 1.0 - (1.0 - p.a_cds) * (1.0 - p.a_cds);
  const double disk_pair = 1.0 - (1.0 - p.a_disk) * (1.0 - p.a_disk);
  return host_pair * disk_pair;
}

core::WebFarmParams web_farm_params(const TaParameters& p) {
  core::WebFarmParams farm;
  farm.servers = p.architecture == Architecture::kBasic ? 1 : p.n_web;
  farm.failure_rate = p.lambda_web;
  farm.repair_rate = p.mu_web;
  farm.coverage = p.coverage;
  farm.reconfiguration_rate = p.beta;
  return farm;
}

core::WebQueueParams web_queue_params(const TaParameters& p) {
  core::WebQueueParams queue;
  queue.arrival_rate = p.alpha;
  queue.service_rate = p.nu;
  queue.buffer = p.buffer;
  return queue;
}

double web_service_availability(const TaParameters& p) {
  const core::WebFarmParams farm = web_farm_params(p);
  const core::WebQueueParams queue = web_queue_params(p);
  // The basic architecture has a single server, for which perfect and
  // imperfect coverage coincide only when every failure leads to the
  // same down state; eq. 2 of the paper uses the two-state model, i.e.
  // the perfect-coverage chain with N_W = 1.
  if (p.architecture == Architecture::kBasic ||
      p.coverage_model == CoverageModel::kPerfect) {
    return core::web_service_availability_perfect(farm, queue);
  }
  return core::web_service_availability_imperfect(farm, queue);
}

ServiceAvailabilities compute_services(const TaParameters& p) {
  p.validate();
  ServiceAvailabilities s;
  s.net = p.a_net;
  s.lan = p.a_lan;
  s.web = web_service_availability(p);
  s.application = application_service_availability(p);
  s.database = database_service_availability(p);
  s.flight = flight_availability(p);
  s.hotel = hotel_availability(p);
  s.car = car_availability(p);
  s.payment = p.a_payment;
  return s;
}

}  // namespace upa::ta
