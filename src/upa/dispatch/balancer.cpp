#include "upa/dispatch/balancer.hpp"

#include <algorithm>

#include "upa/common/error.hpp"
#include "upa/serve/json.hpp"

namespace upa::dispatch {

BalancePolicy parse_balance_policy(const std::string& text) {
  if (text == "round-robin") return BalancePolicy::kRoundRobin;
  if (text == "least-outstanding") return BalancePolicy::kLeastOutstanding;
  if (text == "consistent-hash") return BalancePolicy::kConsistentHash;
  throw common::ModelError(
      "balance policy must be round-robin | least-outstanding | "
      "consistent-hash, got '" +
      text + "'");
}

std::string balance_policy_name(BalancePolicy policy) {
  switch (policy) {
    case BalancePolicy::kRoundRobin: return "round-robin";
    case BalancePolicy::kLeastOutstanding: return "least-outstanding";
    case BalancePolicy::kConsistentHash: return "consistent-hash";
  }
  return "?";
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;
  }
  // splitmix64-style finalizer: raw FNV-1a barely moves the high bits
  // when strings differ only in trailing bytes (the last byte shifts the
  // value by at most ~255 * prime), which would cluster similar affinity
  // keys onto one ring position.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

std::string affinity_key(const std::string& request_line) {
  try {
    const serve::Json request = serve::parse_json(request_line);
    const serve::Json* method = request.find("method");
    if (method == nullptr || !method->is_string()) return request_line;
    std::string key = method->as_string();
    if (const serve::Json* params = request.find("params");
        params != nullptr) {
      key += "|" + params->dump();
    }
    return key;
  } catch (const std::exception&) {
    return request_line;  // malformed lines still balance deterministically
  }
}

Balancer::Balancer(const UpstreamPool& pool, BalancePolicy policy,
                   std::size_t virtual_nodes)
    : pool_(pool), policy_(policy) {
  UPA_REQUIRE(virtual_nodes > 0, "virtual_nodes must be > 0");
  ring_.reserve(pool_.size() * virtual_nodes);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const std::string label = pool_.address(i).label();
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      ring_.push_back(
          {fnv1a64(label + "#" + std::to_string(v)), i});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.index < b.index;
            });
}

std::vector<std::size_t> Balancer::ring_walk(const std::string& key) const {
  // Walk clockwise from the key's position; the first occurrence of each
  // upstream index gives the preference order.
  const std::uint64_t h = fnv1a64(key);
  std::size_t start = ring_.size();
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i].hash >= h) {
      start = i;
      break;
    }
  }
  if (start == ring_.size()) start = 0;  // wrap

  std::vector<std::size_t> order;
  std::vector<bool> seen(pool_.size(), false);
  order.reserve(pool_.size());
  for (std::size_t step = 0;
       step < ring_.size() && order.size() < pool_.size(); ++step) {
    const std::size_t index = ring_[(start + step) % ring_.size()].index;
    if (!seen[index]) {
      seen[index] = true;
      order.push_back(index);
    }
  }
  return order;
}

std::vector<std::size_t> Balancer::pick(const std::string& key) {
  std::vector<bool> healthy;
  std::vector<std::size_t> outstanding;
  pool_.balancing_view(healthy, outstanding);
  const std::size_t n = healthy.size();

  std::vector<std::size_t> order;
  switch (policy_) {
    case BalancePolicy::kRoundRobin: {
      const std::uint64_t cursor =
          cursor_.fetch_add(1, std::memory_order_relaxed);
      order.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        order.push_back((cursor + i) % n);
      }
      break;
    }
    case BalancePolicy::kLeastOutstanding: {
      const std::uint64_t cursor =
          cursor_.fetch_add(1, std::memory_order_relaxed);
      order.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        order.push_back((cursor + i) % n);
      }
      // Stable sort keeps the rotated tie-break under equal load.
      std::stable_sort(order.begin(), order.end(),
                       [&outstanding](std::size_t a, std::size_t b) {
                         return outstanding[a] < outstanding[b];
                       });
      break;
    }
    case BalancePolicy::kConsistentHash: {
      order = ring_walk(key);
      break;
    }
  }

  // Healthy upstreams first, preserving per-policy order within each
  // class; the unhealthy tail keeps the front fail-open.
  std::stable_partition(order.begin(), order.end(),
                        [&healthy](std::size_t i) { return healthy[i]; });
  return order;
}

}  // namespace upa::dispatch
