#include "upa/sim/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::sim {

CtmcTrajectory::CtmcTrajectory(const markov::Ctmc& chain, std::size_t initial,
                               double horizon, Xoshiro256& rng)
    : horizon_(horizon) {
  UPA_REQUIRE(initial < chain.state_count(), "initial state out of range");
  UPA_REQUIRE(std::isfinite(horizon) && horizon > 0.0,
              "horizon must be positive");

  // Successor lists from the sparse generator.
  const linalg::SparseMatrix q = chain.sparse_generator();
  const std::size_t n = chain.state_count();
  std::vector<std::vector<std::pair<std::size_t, double>>> successors(n);
  std::vector<double> exit(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto cols = q.row_cols(r);
    const auto vals = q.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r) continue;
      successors[r].emplace_back(cols[k], vals[k]);
      exit[r] += vals[k];
    }
  }

  times_.push_back(0.0);
  states_.push_back(initial);
  double t = 0.0;
  std::size_t state = initial;
  while (t < horizon_) {
    if (exit[state] <= 0.0) break;  // absorbing: persists to horizon
    t += -std::log(rng.uniform01_open_left()) / exit[state];
    if (t >= horizon_) break;
    double u = rng.uniform01() * exit[state];
    std::size_t next = successors[state].back().first;
    for (const auto& [candidate, rate] : successors[state]) {
      if (u < rate) {
        next = candidate;
        break;
      }
      u -= rate;
    }
    state = next;
    times_.push_back(t);
    states_.push_back(state);
  }
}

std::size_t CtmcTrajectory::state_at(double t) const {
  UPA_REQUIRE(t >= 0.0 && t <= horizon_, "query time outside the horizon");
  // Last jump instant <= t.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t index =
      static_cast<std::size_t>(it - times_.begin()) - 1;
  return states_[index];
}

double CtmcTrajectory::occupancy(const std::vector<std::size_t>& set) const {
  return occupancy_in(set, 0.0, horizon_);
}

double CtmcTrajectory::occupancy_in(const std::vector<std::size_t>& set,
                                    double from, double to) const {
  UPA_REQUIRE(from >= 0.0 && to <= horizon_ && from < to,
              "occupancy window must satisfy 0 <= from < to <= horizon");
  std::vector<bool> in_set;
  for (std::size_t s : set) {
    if (s >= in_set.size()) in_set.resize(s + 1, false);
    in_set[s] = true;
  }
  auto contains = [&](std::size_t s) {
    return s < in_set.size() && in_set[s];
  };
  double total = 0.0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    const double seg_end = i + 1 < times_.size() ? times_[i + 1] : horizon_;
    const double lo = std::max(times_[i], from);
    const double hi = std::min(seg_end, to);
    if (hi > lo && contains(states_[i])) total += hi - lo;
  }
  return total / (to - from);
}

CtmcTrajectory sample_component_trajectory(double failure_rate,
                                           double repair_rate, double horizon,
                                           Xoshiro256& rng) {
  return CtmcTrajectory(
      markov::two_state_availability(failure_rate, repair_rate), 0, horizon,
      rng);
}

double failure_rate_for_availability(double availability,
                                     double repair_rate) {
  UPA_REQUIRE(availability > 0.0 && availability < 1.0,
              "availability must lie strictly in (0, 1)");
  UPA_REQUIRE(repair_rate > 0.0, "repair rate must be positive");
  return repair_rate * (1.0 - availability) / availability;
}

}  // namespace upa::sim
