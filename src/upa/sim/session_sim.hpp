#pragma once
// User-session simulation: walks the operational-profile DTMC from Start
// to Exit, drawing one "world" (service/function availabilities) per
// session. Estimates the user-perceived availability exactly as the paper
// defines it — the probability that every function invoked during a visit
// is available — including the dependence induced by shared services.

#include <cstdint>
#include <functional>
#include <vector>

#include "upa/linalg/matrix.hpp"
#include "upa/sim/rng.hpp"
#include "upa/sim/stats.hpp"

namespace upa::sim {

/// Per-session world: availability of each profile function in [0, 1]
/// (may be 0/1 for hard failures or fractional for branch mixtures).
using WorldSampler = std::function<std::vector<double>(Xoshiro256&)>;

/// Controls for the session simulation.
struct SessionSimOptions {
  std::uint64_t sessions = 200000;
  std::size_t replications = 10;
  std::uint64_t seed = 42;
  double confidence_level = 0.95;
  std::uint64_t max_steps_per_session = 100000;
};

/// Aggregated results.
struct SessionSimResult {
  ConfidenceInterval perceived_availability;
  double mean_functions_per_session = 0.0;
  std::vector<double> mean_visits;  ///< per state, visits per session
};

/// Simulates sessions over a row-stochastic `transition` matrix. `start`
/// and `exit` are state indices; every other state is a function. Per
/// session a world is drawn and the session "succeeds" with probability
/// prod over *distinct* visited functions of their availability in that
/// world (conditional expectation, for variance reduction).
[[nodiscard]] SessionSimResult simulate_sessions(
    const linalg::Matrix& transition, std::size_t start, std::size_t exit,
    const WorldSampler& world, const SessionSimOptions& options = {});

}  // namespace upa::sim
