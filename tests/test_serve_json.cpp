// The serve wire format: strict parsing, deterministic serialization.
// The determinism assertions here (member order preserved, shortest
// round-trip doubles) are what make the server's "cache-on responses
// are byte-identical to cache-off" contract testable at all.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "upa/common/error.hpp"
#include "upa/serve/json.hpp"

namespace {

using upa::common::ModelError;
using upa::serve::format_number;
using upa::serve::Json;
using upa::serve::parse_json;

TEST(ServeJson, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(ServeJson, ParsesNestedStructures) {
  const Json v = parse_json(
      R"({"id": 7, "method": "mmck_metrics",)"
      R"( "params": {"alpha": 200, "list": [1, 2, 3]}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("id")->as_number(), 7.0);
  EXPECT_EQ(v.find("method")->as_string(), "mmck_metrics");
  const Json* params = v.find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_DOUBLE_EQ(params->find("alpha")->as_number(), 200.0);
  ASSERT_EQ(params->find("list")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(params->find("list")->as_array()[2].as_number(), 3.0);
}

TEST(ServeJson, ParsesStringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  // \u escapes decode to UTF-8 bytes.
  EXPECT_EQ(parse_json("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json(""), ModelError);
  EXPECT_THROW((void)parse_json("{"), ModelError);
  EXPECT_THROW((void)parse_json("[1, 2,]"), ModelError);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), ModelError);
  EXPECT_THROW((void)parse_json("tru"), ModelError);
  EXPECT_THROW((void)parse_json("\"unterminated"), ModelError);
  // Trailing garbage after a complete value is an error, not ignored.
  EXPECT_THROW((void)parse_json("42 43"), ModelError);
  EXPECT_THROW((void)parse_json("{} x"), ModelError);
  // The wire format has no NaN / Infinity.
  EXPECT_THROW((void)parse_json("NaN"), ModelError);
  EXPECT_THROW((void)parse_json("Infinity"), ModelError);
  EXPECT_THROW((void)parse_json("1e999"), ModelError);
}

TEST(ServeJson, RejectsPathologicalNesting) {
  // A hostile request line of repeated '[' (the server admits lines up
  // to 1 MB) must be rejected by the depth cap, not recursed into until
  // the worker thread's stack overflows.
  const std::string bombs[] = {std::string(2000, '['),
                               std::string(100000, '['),
                               [] {
                                 std::string s;
                                 for (int i = 0; i < 2000; ++i) s += "{\"a\":";
                                 return s;
                               }()};
  for (const std::string& bomb : bombs) {
    EXPECT_THROW((void)parse_json(bomb), ModelError);
  }
  // Modest nesting is untouched by the cap and round-trips.
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 40; ++i) deep += "]";
  EXPECT_EQ(parse_json(deep).dump(), deep);
}

TEST(ServeJson, DumpGuardsAgainstRunawayDepth) {
  // dump() carries the same guard as the parser: programmatically built
  // towers beyond the serialization cap throw instead of recursing off
  // the stack.
  Json deep = Json(1.0);
  for (int i = 0; i < 400; ++i) {
    Json wrapper = Json::array();
    wrapper.push_back(std::move(deep));
    deep = std::move(wrapper);
  }
  EXPECT_THROW((void)deep.dump(), ModelError);
}

TEST(ServeJson, DumpPreservesInsertionOrder) {
  Json v = Json::object();
  v.set("zeta", Json(1));
  v.set("alpha", Json(2));
  v.set("mid", Json("x"));
  EXPECT_EQ(v.dump(), R"({"zeta":1,"alpha":2,"mid":"x"})");
}

TEST(ServeJson, SetOverwritesInPlace) {
  Json v = Json::object();
  v.set("a", Json(1));
  v.set("b", Json(2));
  v.set("a", Json(3));  // overwrite keeps the original position
  EXPECT_EQ(v.dump(), R"({"a":3,"b":2})");
}

TEST(ServeJson, DumpRoundTripsThroughParse) {
  const std::string line =
      R"({"id":7,"ok":true,"result":{"loss":0.125,"servers":4,)"
      R"("names":["a","b"],"nested":{"x":null}}})";
  const Json v = parse_json(line);
  EXPECT_EQ(v.dump(), line);
  EXPECT_EQ(parse_json(v.dump()), v);
}

TEST(ServeJson, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(format_number(0.1), "0.1");
  EXPECT_EQ(format_number(1.0), "1");
  EXPECT_EQ(format_number(-2.5), "-2.5");
  // Shortest form that still round-trips exactly.
  const double loss = 0.39942;
  EXPECT_EQ(std::stod(format_number(loss)), loss);
  EXPECT_THROW((void)format_number(std::numeric_limits<double>::infinity()),
               ModelError);
  EXPECT_THROW((void)format_number(std::nan("")), ModelError);
}

TEST(ServeJson, DumpIsDeterministic) {
  Json v = Json::object();
  v.set("measured", Json(0.39942));
  v.set("analytic", Json(1.0 / 3.0));
  const std::string first = v.dump();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(v.dump(), first);
}

TEST(ServeJson, StringEscapingInDump) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
  // Control bytes escape as \u00XX.
  EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(ServeJson, TypedAccessorsThrowOnMismatch) {
  EXPECT_THROW((void)Json(1.0).as_string(), ModelError);
  EXPECT_THROW((void)Json("x").as_number(), ModelError);
  EXPECT_THROW((void)Json().as_object(), ModelError);
  EXPECT_EQ(Json(1.0).find("k"), nullptr);  // find on non-object is nullptr
}

}  // namespace
