#pragma once
// Design-decision helpers (the paper's Section 5.1): smallest integer
// design parameter (e.g. number of web servers) meeting an availability
// requirement, and requirement <-> downtime conversions.

#include <functional>
#include <optional>

namespace upa::sensitivity {

/// Smallest n in [lo, hi] with predicate(n) true, scanning upward
/// (no monotonicity assumed — imperfect coverage makes availability
/// non-monotone in the server count). nullopt when no n qualifies.
[[nodiscard]] std::optional<std::size_t> min_satisfying(
    std::size_t lo, std::size_t hi,
    const std::function<bool(std::size_t)>& predicate);

/// All n in [lo, hi] satisfying the predicate (for reporting feasible
/// design regions).
[[nodiscard]] std::vector<std::size_t> satisfying_set(
    std::size_t lo, std::size_t hi,
    const std::function<bool(std::size_t)>& predicate);

/// Availability required to keep annual downtime below `minutes` min/yr.
[[nodiscard]] double availability_for_downtime_minutes_per_year(
    double minutes);

}  // namespace upa::sensitivity
