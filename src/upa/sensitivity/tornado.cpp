#include "upa/sensitivity/tornado.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::sensitivity {

std::vector<TornadoEntry> tornado(
    const std::map<std::string, double>& base,
    const std::map<std::string, ParameterRange>& ranges,
    const std::function<double(const std::map<std::string, double>&)>&
        measure) {
  UPA_REQUIRE(measure != nullptr, "measure must be provided");
  UPA_REQUIRE(!ranges.empty(), "tornado needs at least one parameter range");
  for (const auto& [name, range] : ranges) {
    UPA_REQUIRE(base.contains(name),
                "range given for unknown parameter " + name);
    UPA_REQUIRE(range.low <= range.high,
                "range of " + name + " has low > high");
  }

  std::vector<TornadoEntry> entries;
  entries.reserve(ranges.size());
  for (const auto& [name, range] : ranges) {
    std::map<std::string, double> point = base;
    point[name] = range.low;
    const double at_low = measure(point);
    point[name] = range.high;
    const double at_high = measure(point);
    entries.push_back(
        {name, at_low, at_high, std::abs(at_high - at_low)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const TornadoEntry& a, const TornadoEntry& b) {
              return a.swing > b.swing;
            });
  return entries;
}

}  // namespace upa::sensitivity
