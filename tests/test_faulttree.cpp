// Tests for the fault-tree engine and the from-scratch BDD: gate
// semantics, exact probabilities under shared events, minimal cut sets,
// and structural-vs-BDD agreement.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/faulttree/bdd.hpp"
#include "upa/faulttree/cutsets.hpp"
#include "upa/faulttree/tree.hpp"

namespace uf = upa::faulttree;
using upa::common::ModelError;

TEST(FaultTree, AndGateProbability) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.2);
  tree.add_and({a, b});
  EXPECT_NEAR(uf::top_event_probability(tree), 0.02, 1e-12);
  EXPECT_NEAR(uf::top_event_probability_structural(tree), 0.02, 1e-12);
}

TEST(FaultTree, OrGateProbability) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.2);
  tree.add_or({a, b});
  EXPECT_NEAR(uf::top_event_probability(tree), 1.0 - 0.9 * 0.8, 1e-12);
}

TEST(FaultTree, KofNGateProbability) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.1);
  const auto c = tree.add_basic_event("c", 0.1);
  tree.add_k_of_n(2, {a, b, c});
  // P(at least 2 of 3 fail) = 3*0.01*0.9 + 0.001 = 0.028.
  EXPECT_NEAR(uf::top_event_probability(tree), 0.028, 1e-12);
}

TEST(FaultTree, SharedEventHandledExactly) {
  // top = OR(AND(a, b), AND(a, c)): P = P(a (b or c)) = 0.1 * 0.36...
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.2);
  const auto c = tree.add_basic_event("c", 0.3);
  const auto g1 = tree.add_and({a, b});
  const auto g2 = tree.add_and({a, c});
  tree.add_or({g1, g2});
  const double exact = 0.1 * (1.0 - 0.8 * 0.7);
  EXPECT_NEAR(uf::top_event_probability(tree), exact, 1e-12);
  // Structural evaluation must refuse (event a is shared).
  EXPECT_THROW((void)uf::top_event_probability_structural(tree),
               ModelError);
}

TEST(FaultTree, StructuralMatchesBddOnTreeShapedSystems) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.05);
  const auto b = tree.add_basic_event("b", 0.10);
  const auto c = tree.add_basic_event("c", 0.15);
  const auto d = tree.add_basic_event("d", 0.20);
  const auto g1 = tree.add_and({a, b});
  const auto g2 = tree.add_or({c, d});
  tree.add_or({g1, g2});
  EXPECT_NEAR(uf::top_event_probability(tree),
              uf::top_event_probability_structural(tree), 1e-12);
}

TEST(FaultTree, EvaluateStructureFunction) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.1);
  tree.add_and({a, b});
  EXPECT_TRUE(tree.evaluate_top({true, true}));
  EXPECT_FALSE(tree.evaluate_top({true, false}));
}

TEST(FaultTree, SetEventProbabilityUpdates) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  tree.add_or({a});
  EXPECT_NEAR(uf::top_event_probability(tree), 0.1, 1e-15);
  tree.set_event_probability(a, 0.4);
  EXPECT_NEAR(uf::top_event_probability(tree), 0.4, 1e-15);
}

TEST(FaultTree, TopDefaultsToLastGate) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.25);
  EXPECT_EQ(tree.top(), a);  // single node
  const auto g = tree.add_or({a});
  EXPECT_EQ(tree.top(), g);
  tree.set_top(a);
  EXPECT_EQ(tree.top(), a);
}

TEST(FaultTree, RejectsInvalidGates) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  EXPECT_THROW((void)tree.add_and({}), ModelError);
  EXPECT_THROW((void)tree.add_k_of_n(0, {a}), ModelError);
  EXPECT_THROW((void)tree.add_k_of_n(2, {a}), ModelError);
  EXPECT_THROW((void)tree.add_basic_event("bad", 1.5), ModelError);
}

TEST(Bdd, TerminalAndVariableBasics) {
  uf::BddManager mgr(2);
  EXPECT_EQ(mgr.apply_and(mgr.one(), mgr.zero()), mgr.zero());
  EXPECT_EQ(mgr.apply_or(mgr.one(), mgr.zero()), mgr.one());
  const auto x = mgr.variable(0);
  EXPECT_EQ(mgr.apply_and(x, x), x);
  EXPECT_EQ(mgr.apply_or(x, mgr.negate(x)), mgr.one());
  EXPECT_EQ(mgr.apply_and(x, mgr.negate(x)), mgr.zero());
}

TEST(Bdd, HashConsingReusesNodes) {
  uf::BddManager mgr(2);
  const auto a1 = mgr.variable(0);
  const auto a2 = mgr.variable(0);
  EXPECT_EQ(a1, a2);
  const std::size_t before = mgr.node_count();
  (void)mgr.variable(0);
  EXPECT_EQ(mgr.node_count(), before);
}

TEST(Bdd, ProbabilityOfMajorityFunction) {
  uf::BddManager mgr(3);
  const std::vector<uf::BddRef> vars{mgr.variable(0), mgr.variable(1),
                                     mgr.variable(2)};
  const auto maj = mgr.at_least(2, vars);
  const double p = mgr.probability(maj, {0.5, 0.5, 0.5});
  EXPECT_NEAR(p, 0.5, 1e-12);
  EXPECT_NEAR(mgr.satisfying_count(maj), 4.0, 1e-9);
}

TEST(Bdd, NegationProbabilityComplement) {
  uf::BddManager mgr(2);
  const auto f = mgr.apply_and(mgr.variable(0), mgr.variable(1));
  const auto nf = mgr.negate(f);
  const std::vector<double> p{0.3, 0.7};
  uf::BddManager& m = mgr;
  EXPECT_NEAR(m.probability(f, p) + m.probability(nf, p), 1.0, 1e-12);
}

TEST(CutSets, SimpleAndOrStructure) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.1);
  const auto c = tree.add_basic_event("c", 0.1);
  const auto g = tree.add_and({b, c});
  tree.add_or({a, g});
  const auto cuts = uf::minimal_cut_sets(tree);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), uf::CutSet{"a"}) !=
              cuts.end());
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), uf::CutSet{"b", "c"}) !=
              cuts.end());
}

TEST(CutSets, AbsorptionRemovesSupersets) {
  // top = OR(a, AND(a, b)): minimal cut sets = {{a}} only.
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.1);
  const auto g = tree.add_and({a, b});
  tree.add_or({a, g});
  const auto cuts = uf::minimal_cut_sets(tree);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(*cuts.begin(), uf::CutSet{"a"});
}

TEST(CutSets, InclusionExclusionMatchesBdd) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.12);
  const auto b = tree.add_basic_event("b", 0.2);
  const auto c = tree.add_basic_event("c", 0.35);
  const auto g1 = tree.add_and({a, b});
  const auto g2 = tree.add_and({b, c});
  tree.add_or({g1, g2});
  const auto cuts = uf::minimal_cut_sets(tree);
  EXPECT_NEAR(uf::probability_from_cut_sets(tree, cuts),
              uf::top_event_probability(tree), 1e-12);
}

TEST(CutSets, RareEventBoundIsUpperBound) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.01);
  const auto b = tree.add_basic_event("b", 0.02);
  tree.add_or({a, b});
  const auto cuts = uf::minimal_cut_sets(tree);
  const double bound = uf::rare_event_bound(tree, cuts);
  const double exact = uf::top_event_probability(tree);
  EXPECT_GE(bound, exact);
  EXPECT_NEAR(bound, 0.03, 1e-12);
}

TEST(CutSets, KofNCutSets) {
  uf::FaultTree tree;
  const auto a = tree.add_basic_event("a", 0.1);
  const auto b = tree.add_basic_event("b", 0.1);
  const auto c = tree.add_basic_event("c", 0.1);
  const auto d = tree.add_basic_event("d", 0.1);
  tree.add_k_of_n(3, {a, b, c, d});
  // Cut sets = all 3-subsets: C(4,3) = 4.
  EXPECT_EQ(uf::minimal_cut_sets(tree).size(), 4u);
}
