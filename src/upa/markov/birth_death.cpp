#include "upa/markov/birth_death.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::markov {

BirthDeath::BirthDeath(std::vector<double> birth_rates,
                       std::vector<double> death_rates)
    : birth_(std::move(birth_rates)), death_(std::move(death_rates)) {
  UPA_REQUIRE(!birth_.empty(), "birth-death chain needs at least two states");
  UPA_REQUIRE(birth_.size() == death_.size(),
              "birth and death rate vectors must have equal length");
  for (double b : birth_) {
    UPA_REQUIRE(std::isfinite(b) && b > 0.0, "birth rates must be positive");
  }
  for (double d : death_) {
    UPA_REQUIRE(std::isfinite(d) && d > 0.0, "death rates must be positive");
  }
}

linalg::Vector BirthDeath::steady_state() const {
  const std::size_t n = state_count();
  // log pi[i] (unnormalized); log-domain keeps mu/lambda ~ 1e4 ratios over
  // ten states well inside double range.
  std::vector<double> log_pi(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    log_pi[i] = log_pi[i - 1] + std::log(birth_[i - 1]) -
                std::log(death_[i - 1]);
  }
  const double max_log = *std::max_element(log_pi.begin(), log_pi.end());
  linalg::Vector pi(n);
  for (std::size_t i = 0; i < n; ++i) pi[i] = std::exp(log_pi[i] - max_log);
  upa::common::normalize(pi);
  return pi;
}

Ctmc BirthDeath::to_ctmc() const {
  Ctmc chain(state_count());
  for (std::size_t i = 0; i + 1 < state_count(); ++i) {
    chain.add_rate(i, i + 1, birth_[i]);
    chain.add_rate(i + 1, i, death_[i]);
  }
  return chain;
}

}  // namespace upa::markov
