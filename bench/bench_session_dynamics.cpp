// Extension bench: session dynamics. The paper's eq. (10) implicitly
// freezes the resource state for the whole user session. This harness
// measures the user-perceived availability with REAL time passing between
// function invocations (end-to-end system simulation), quantifying how
// optimistic the frozen-state assumption is as sessions get longer.

#include "bench_util.hpp"
#include "upa/ta/end_to_end_sim.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ut = upa::ta;
namespace cm = upa::common;

void print_dynamics() {
  upa::bench::print_header(
      "Session dynamics (frozen-state assumption)",
      "End-to-end simulation: resources evolve while the session runs.\n"
      "think = mean time between function invocations. think = 0 is the\n"
      "eq. (10) regime; the paper's analytic value is shown for reference.\n"
      "N_F=N_H=N_C=2, black-box repair rate 1/h.");

  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);

  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    const double analytic = ut::user_availability_eq10(uclass, p);
    cm::Table t({"think time", "A(user) measured", "95% CI half-width",
                 "delta vs eq. (10)"});
    t.set_align(0, cm::Align::kLeft);
    t.set_title("A(user), " + ut::user_class_name(uclass) +
                " (eq. 10 = " + cm::fmt(analytic, 6) + ")");
    struct Row {
      const char* label;
      double think_hours;
    };
    for (const Row& row : {Row{"0 (frozen state)", 0.0},
                           Row{"1 minute", 1.0 / 60.0},
                           Row{"10 minutes", 1.0 / 6.0},
                           Row{"1 hour", 1.0},
                           Row{"4 hours (stress)", 4.0}}) {
      ut::EndToEndOptions options;
      options.horizon_hours = 30000.0;
      options.think_time_hours = row.think_hours;
      options.sessions_per_replication = 25000;
      options.replications = 5;
      options.seed = 4242;
      const auto result = ut::simulate_end_to_end(uclass, p, options);
      t.add_row({row.label,
                 cm::fmt(result.perceived_availability.mean, 6),
                 cm::fmt(result.perceived_availability.half_width, 4),
                 cm::fmt(result.perceived_availability.mean - analytic, 5)});
    }
    std::cout << t << "\n";
  }
  std::cout
      << "Within-snapshot failures are positively correlated across the\n"
         "functions of one session (one LAN outage kills all of them at\n"
         "once), which HELPS joint success; as think time grows the\n"
         "snapshots decorrelate and the measured availability drops below\n"
         "eq. (10). For minute-scale real sessions the frozen-state\n"
         "assumption is accurate to well under one percentage point.\n\n";
}

void bm_end_to_end(benchmark::State& state) {
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 5000.0;
  options.sessions_per_replication = 5000;
  options.replications = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ut::simulate_end_to_end(ut::UserClass::kB, p, options));
  }
}
BENCHMARK(bm_end_to_end);

}  // namespace

UPA_BENCH_MAIN(print_dynamics)
