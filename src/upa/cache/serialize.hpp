#pragma once
// Byte codecs for the evaluation cache's persistent tier.
//
// A cached value crosses a process boundary in two places: the on-disk
// segment files (persist.hpp) and the `cache export` / `cache import`
// RPC verbs. Both carry the same encoding, produced here: fixed-width
// little-endian integers, raw IEEE-754 bit patterns for doubles (values
// round-trip BIT FOR BIT -- the whole point of the replay contract; no
// -0.0 normalization happens on the value side, only on the key side),
// and u64 length prefixes for strings and vectors, mirroring
// KeyBuilder's conventions.
//
// Each cached value type gets one ValueCodec with a stable on-disk
// type tag. The registry is closed: the five types the solvers memoize
// (double, std::vector<double>, queueing::MmckMetrics,
// markov::StationaryReport, inject::CampaignEntry) are registered at
// first use. A record whose tag is unknown decodes to nothing and is
// skipped by the loader -- never a wrong answer, at worst a recompute.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <typeinfo>
#include <vector>

#include "upa/cache/eval_cache.hpp"

namespace upa::cache {

/// Append-only little-endian byte encoder.
class ByteWriter {
 public:
  void put_u8(std::uint8_t value) {
    bytes_.push_back(static_cast<char>(value));
  }
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  /// Raw bit pattern; NaN payloads and -0.0 survive unchanged.
  void put_double(double value);
  /// u64 length prefix + raw bytes.
  void put_string(std::string_view value);
  void put_doubles(const std::vector<double>& values);

  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::string take() && { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Mirror decoder; every getter throws ModelError on underrun, so a
/// truncated payload can never be silently misread as a short value.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_double();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] std::vector<double> get_doubles();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  /// Throws ModelError unless every byte was consumed -- trailing bytes
  /// mean the payload was produced by a different (newer) encoder.
  void expect_end() const;

 private:
  void need(std::size_t count) const;

  std::string_view data_;
  std::size_t offset_ = 0;
};

/// One value type's serializer pair. `serialize` is handed the object
/// behind StoredValue::value; `deserialize` rebuilds a StoredValue
/// whose type pointer identifies the concrete type (it throws
/// ModelError on a malformed payload).
struct ValueCodec {
  std::string_view type_tag;
  const std::type_info* type = nullptr;
  std::string (*serialize)(const void* value) = nullptr;
  StoredValue (*deserialize)(std::string_view bytes) = nullptr;
};

/// Codec for a concrete value type; nullptr when the type has none
/// (such values simply do not persist).
[[nodiscard]] const ValueCodec* codec_for_type(const std::type_info& type);

/// Codec for an on-disk tag; nullptr for unknown tags (records written
/// by a newer build are skipped, not misparsed).
[[nodiscard]] const ValueCodec* codec_for_tag(std::string_view tag);

/// All registered tags, sorted (docs and tests).
[[nodiscard]] std::vector<std::string> registered_codec_tags();

/// Lowercase hex transport encoding for shipping segment blobs inside
/// the newline-delimited JSON protocol.
[[nodiscard]] std::string to_hex(std::string_view bytes);
/// Inverse; throws ModelError on odd length or non-hex characters.
[[nodiscard]] std::string from_hex(std::string_view hex);

}  // namespace upa::cache
