#include "upa/core/expr.hpp"

#include <algorithm>
#include <sstream>

#include "upa/common/error.hpp"

namespace upa::core {

enum class ExprKind { kConst, kParam, kSum, kProduct };

struct Expr::Node {
  ExprKind kind = ExprKind::kConst;
  double value = 0.0;      // kConst
  std::string name;        // kParam
  std::vector<Expr> children;
};

Expr Expr::constant(double value) {
  return make(static_cast<int>(ExprKind::kConst), value, {}, {});
}

Expr Expr::param(std::string name) {
  UPA_REQUIRE(!name.empty(), "parameter name must not be empty");
  return make(static_cast<int>(ExprKind::kParam), 0.0, std::move(name), {});
}

Expr Expr::product(std::vector<Expr> children) {
  UPA_REQUIRE(!children.empty(), "product needs at least one factor");
  if (children.size() == 1) return children[0];
  return make(static_cast<int>(ExprKind::kProduct), 0.0, {}, std::move(children));
}

Expr Expr::sum(std::vector<Expr> children) {
  UPA_REQUIRE(!children.empty(), "sum needs at least one term");
  if (children.size() == 1) return children[0];
  return make(static_cast<int>(ExprKind::kSum), 0.0, {}, std::move(children));
}

Expr Expr::complement(const Expr& e) {
  return sum({constant(1.0), product({constant(-1.0), e})});
}

Expr Expr::parallel(std::vector<Expr> children) {
  UPA_REQUIRE(!children.empty(), "parallel needs at least one child");
  std::vector<Expr> complements;
  complements.reserve(children.size());
  for (const Expr& c : children) complements.push_back(complement(c));
  return complement(product(std::move(complements)));
}

Expr Expr::make(int kind, double value, std::string name,
                std::vector<Expr> children) {
  auto node = std::make_shared<Node>();
  node->kind = static_cast<ExprKind>(kind);
  node->value = value;
  node->name = std::move(name);
  node->children = std::move(children);
  return Expr(std::move(node));
}

double Expr::evaluate(const Params& params) const {
  switch (node_->kind) {
    case ExprKind::kConst:
      return node_->value;
    case ExprKind::kParam: {
      const auto it = params.find(node_->name);
      UPA_REQUIRE(it != params.end(), "missing parameter " + node_->name);
      return it->second;
    }
    case ExprKind::kSum: {
      double s = 0.0;
      for (const Expr& c : node_->children) s += c.evaluate(params);
      return s;
    }
    case ExprKind::kProduct: {
      double p = 1.0;
      for (const Expr& c : node_->children) {
        p *= c.evaluate(params);
        if (p == 0.0) break;
      }
      return p;
    }
  }
  UPA_ASSERT(false);
  return 0.0;
}

Expr Expr::derivative(const std::string& param) const {
  switch (node_->kind) {
    case ExprKind::kConst:
      return constant(0.0);
    case ExprKind::kParam:
      return constant(node_->name == param ? 1.0 : 0.0);
    case ExprKind::kSum: {
      std::vector<Expr> terms;
      terms.reserve(node_->children.size());
      for (const Expr& c : node_->children) {
        terms.push_back(c.derivative(param));
      }
      return sum(std::move(terms));
    }
    case ExprKind::kProduct: {
      // Product rule: sum over i of (d child_i) * prod of others.
      std::vector<Expr> terms;
      for (std::size_t i = 0; i < node_->children.size(); ++i) {
        std::vector<Expr> factors;
        factors.push_back(node_->children[i].derivative(param));
        for (std::size_t j = 0; j < node_->children.size(); ++j) {
          if (j != i) factors.push_back(node_->children[j]);
        }
        terms.push_back(product(std::move(factors)));
      }
      return sum(std::move(terms));
    }
  }
  UPA_ASSERT(false);
  return constant(0.0);
}

std::vector<std::string> Expr::parameters() const {
  std::vector<std::string> names;
  std::vector<const Expr*> stack{this};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (e->node_->kind == ExprKind::kParam) {
      names.push_back(e->node_->name);
    }
    for (const Expr& c : e->node_->children) stack.push_back(&c);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::string Expr::to_string() const {
  switch (node_->kind) {
    case ExprKind::kConst: {
      std::ostringstream os;
      os << node_->value;
      return os.str();
    }
    case ExprKind::kParam:
      return node_->name;
    case ExprKind::kSum:
    case ExprKind::kProduct: {
      const char* op = node_->kind == ExprKind::kSum ? " + " : " * ";
      std::string out = "(";
      for (std::size_t i = 0; i < node_->children.size(); ++i) {
        if (i != 0) out += op;
        out += node_->children[i].to_string();
      }
      return out + ")";
    }
  }
  UPA_ASSERT(false);
  return {};
}

std::map<std::string, double> gradient(const Expr& expr, const Params& at) {
  std::map<std::string, double> g;
  for (const std::string& name : expr.parameters()) {
    g[name] = expr.derivative(name).evaluate(at);
  }
  return g;
}

}  // namespace upa::core
