// Exact RBD availability evaluation. Strategy: Shannon-factor every
// component that appears more than once (conditioning makes the remaining
// leaves independent), then evaluate the tree structurally bottom-up.

#include <map>
#include <string>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/rbd/block.hpp"
#include "upa/rbd/block_node.hpp"

namespace upa::rbd {
namespace {

/// Structural evaluation assuming all unpinned leaves are distinct
/// (i.e. independent). `pinned` maps component names to a fixed state.
double structural(const Block& block, const ParamMap& params,
                  const std::map<std::string, bool>& pinned) {
  const auto& node = BlockAccess::node(block);
  switch (node.kind) {
    case BlockKind::kComponent: {
      if (const auto it = pinned.find(node.name); it != pinned.end()) {
        return it->second ? 1.0 : 0.0;
      }
      const auto it = params.find(node.name);
      UPA_REQUIRE(it != params.end(),
                  "no availability provided for component " + node.name);
      return upa::common::clamp_probability(it->second);
    }
    case BlockKind::kSeries: {
      double a = 1.0;
      for (const Block& child : node.children) {
        a *= structural(child, params, pinned);
      }
      return a;
    }
    case BlockKind::kParallel: {
      double all_down = 1.0;
      for (const Block& child : node.children) {
        all_down *= 1.0 - structural(child, params, pinned);
      }
      return 1.0 - all_down;
    }
    case BlockKind::kKofN: {
      // dp[j] = P(exactly j of the children examined so far are up).
      std::vector<double> dp{1.0};
      for (const Block& child : node.children) {
        const double a = structural(child, params, pinned);
        std::vector<double> next(dp.size() + 1, 0.0);
        for (std::size_t j = 0; j < dp.size(); ++j) {
          next[j] += dp[j] * (1.0 - a);
          next[j + 1] += dp[j] * a;
        }
        dp = std::move(next);
      }
      double at_least_k = 0.0;
      for (std::size_t j = node.k; j < dp.size(); ++j) at_least_k += dp[j];
      return at_least_k;
    }
  }
  UPA_ASSERT(false);
  return 0.0;
}

/// Names appearing more than once in the diagram.
std::vector<std::string> repeated_names(const Block& block) {
  std::map<std::string, int> counts;
  // component_names() deduplicates, so count occurrences by walking.
  std::vector<const Block*> stack{&block};
  while (!stack.empty()) {
    const Block* current = stack.back();
    stack.pop_back();
    const auto& node = BlockAccess::node(*current);
    if (node.kind == BlockKind::kComponent) {
      ++counts[node.name];
    } else {
      for (const Block& child : node.children) stack.push_back(&child);
    }
  }
  std::vector<std::string> repeated;
  for (const auto& [name, count] : counts) {
    if (count > 1) repeated.push_back(name);
  }
  return repeated;
}

double factored(const Block& block, const ParamMap& params,
                const std::vector<std::string>& repeated,
                std::map<std::string, bool>& pinned, std::size_t next) {
  if (next == repeated.size()) {
    return structural(block, params, pinned);
  }
  const std::string& name = repeated[next];
  const auto it = params.find(name);
  UPA_REQUIRE(it != params.end(),
              "no availability provided for component " + name);
  const double p = upa::common::clamp_probability(it->second);

  pinned[name] = true;
  const double up = factored(block, params, repeated, pinned, next + 1);
  pinned[name] = false;
  const double down = factored(block, params, repeated, pinned, next + 1);
  pinned.erase(name);
  return p * up + (1.0 - p) * down;
}

}  // namespace

double availability(const Block& block, const ParamMap& params) {
  const std::vector<std::string> repeated = repeated_names(block);
  UPA_REQUIRE(repeated.size() <= 24,
              "too many repeated components for exact factoring");
  std::map<std::string, bool> pinned;
  return factored(block, params, repeated, pinned, 0);
}

double availability_given(const Block& block, const ParamMap& params,
                          const std::string& component, bool component_up) {
  ParamMap pinned_params = params;
  pinned_params[component] = component_up ? 1.0 : 0.0;
  return availability(block, pinned_params);
}

}  // namespace upa::rbd
