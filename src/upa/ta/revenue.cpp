#include "upa/ta/revenue.hpp"

#include "upa/common/error.hpp"

namespace upa::ta {

RevenueLoss revenue_loss(UserClass uc, const TaParameters& p,
                         const RevenueParams& biz) {
  UPA_REQUIRE(biz.transactions_per_second > 0.0 &&
                  biz.revenue_per_transaction >= 0.0,
              "business parameters out of range");
  const CategoryBreakdown breakdown = category_breakdown(uc, p);
  const double ua_sc4 =
      breakdown.unavailability.at(ScenarioCategory::kSC4);

  RevenueLoss loss;
  loss.pay_downtime_hours_per_year = ua_sc4 * 8760.0;
  // The paper converts SC4 downtime directly into lost transactions at the
  // overall transaction rate.
  loss.lost_transactions_per_year = biz.transactions_per_second * 3600.0 *
                                    loss.pay_downtime_hours_per_year;
  loss.lost_revenue_per_year =
      loss.lost_transactions_per_year * biz.revenue_per_transaction;
  return loss;
}

}  // namespace upa::ta
