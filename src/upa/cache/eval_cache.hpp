#pragma once
// Content-addressed evaluation cache for sweep-scale model evaluation.
//
// The paper's design-space explorations (Figures 11-13, Table 8) re-solve
// the same web-farm CTMC, M/M/i/K loss model, and availability formulas
// hundreds of times across grids that differ in only one or two
// parameters. EvalCache memoizes those expensive subsolves behind stable
// keys derived from canonicalized parameter bytes, so a grid or a
// 100-plan campaign solves each distinct submodel exactly once and
// replays the stored result everywhere else.
//
// Contract: a cached run is BIT-FOR-BIT identical to an uncached run.
// The cache returns the exact value computed on the first miss, callers
// key on every parameter that affects the result, and every key embeds a
// solver id plus a version tag so a formula change invalidates stale
// entries by construction. Keys compare by their full canonical byte
// string (the 64-bit digest only picks the shard and pre-filters), so a
// digest collision can never replay the wrong result.
//
// Concurrency: the table is lock-striped into shards, and lookups are
// single-flight -- when several threads race on the same fresh key,
// exactly one runs the computation while the rest wait on its future and
// count as hits. This composes with the exec layer's deterministic
// fan-out: values are pure functions of their key, so which worker
// computes first never changes what anyone reads.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <unordered_map>
#include <utility>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/obs/observer.hpp"

namespace upa::cache {

/// A finished cache key: the solver id (for per-solver statistics), the
/// full canonical byte string (solver id + version tag + parameter
/// bytes; THE identity compared on lookup), and its FNV-1a 64 digest
/// (shard selection and fast rejection only).
struct CacheKey {
  std::string solver_id;
  std::string bytes;
  std::uint64_t digest = 0;
};

/// Builds a CacheKey from canonicalized parameter bytes. Doubles are
/// appended as their IEEE-754 bit pattern after normalizing -0.0 to +0.0
/// (the two compare equal, so they must hash equal); NaN parameters are
/// rejected with a ModelError (a NaN never equals itself, so no stable
/// key exists for it). Integers append as fixed-width little-endian
/// words and strings are length-prefixed, so concatenations cannot
/// collide.
class KeyBuilder {
 public:
  /// `solver_id` names the memoized computation ("markov.steady_state");
  /// `version` is its formula version -- bump it whenever the computation
  /// changes, and stale entries from the old formula can no longer be
  /// addressed.
  KeyBuilder(std::string solver_id, std::uint32_t version);

  KeyBuilder& add(double value);
  KeyBuilder& add(std::uint64_t value);
  KeyBuilder& add(std::int64_t value);
  KeyBuilder& add(bool value);
  KeyBuilder& add(const std::string& value);
  KeyBuilder& add(const std::vector<double>& values);

  /// Consumes the builder into the finished key.
  [[nodiscard]] CacheKey finish() &&;

 private:
  void append_raw(const void* data, std::size_t size);

  std::string solver_id_;
  std::string bytes_;
};

/// Recomputes the FNV-1a 64 digest of a finished key's canonical byte
/// string -- how the persistent tier rebuilds a CacheKey from bytes it
/// read off disk.
[[nodiscard]] std::uint64_t key_digest(const std::string& bytes) noexcept;

/// Recovers the solver id embedded at the front of a canonical key byte
/// string (KeyBuilder writes it first, length-prefixed). Throws
/// ModelError when the bytes are too short to hold the prefix.
[[nodiscard]] std::string solver_id_from_key_bytes(const std::string& bytes);

/// A type-erased cached value exactly as the table stores it. `type`
/// points at the typeid of the concrete value so get_or_compute<T> can
/// verify it before casting.
struct StoredValue {
  std::shared_ptr<const void> value;
  const std::type_info* type = nullptr;
};

/// Receives every freshly computed insert (not hits, not seeds). The
/// persistent tier implements this to write-behind values to its active
/// segment. Called outside any shard lock; implementations must be
/// thread-safe and must not re-enter the cache.
class CacheSink {
 public:
  virtual ~CacheSink() = default;
  virtual void on_insert(const CacheKey& key, const StoredValue& value) = 0;
};

/// Read-through second tier consulted on a miss BEFORE the compute runs
/// (the persistent tier's lazy DiskTier implements this). Called outside
/// any shard lock while the in-flight entry is already published, so at
/// most one thread per distinct key ever reads the disk. Implementations
/// must be thread-safe and must not re-enter the cache; a throwing
/// lookup is treated as "not found" (an unreadable disk tier costs a
/// recompute, never the workload).
class CacheSource {
 public:
  virtual ~CacheSource() = default;
  /// Returns true and fills `out` when the key is stored in the tier.
  virtual bool lookup(const CacheKey& key, StoredValue* out) = 0;
};

/// Aggregate lookup statistics (whole cache or one solver id).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t disk_hits = 0;  ///< fulfilled by the CacheSource tier
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return hits + disk_hits + misses;
  }
  /// Disk fulfillments count as hits: the caller asked for a stored
  /// value and got one without recomputing, wherever it lived.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0
                  : static_cast<double>(hits + disk_hits) /
                        static_cast<double>(n);
  }
};

/// Thread-safe, sharded, content-addressed memoization table. Values are
/// stored type-erased behind shared_ptr<const void>; get_or_compute<T>
/// checks the stored type, so a key accidentally reused across types
/// aborts instead of reinterpreting bytes.
class EvalCache {
 public:
  struct Config {
    /// Lock stripes; lookups on different shards never contend.
    std::size_t shards = 16;
    /// Per-shard completed-entry cap; the oldest completed entry is
    /// evicted first (FIFO -- deterministic for a deterministic workload,
    /// no access-time bookkeeping on the hit path).
    std::size_t max_entries_per_shard = 4096;
  };

  EvalCache() : EvalCache(Config{}) {}
  explicit EvalCache(Config config);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Returns the cached value for `key`, computing it via `compute()` on
  /// the first miss. Concurrent callers of the same fresh key block on
  /// the first caller's in-flight computation (exactly one underlying
  /// solve per distinct key) and count as hits. If `compute` throws, the
  /// exception propagates to every waiter and the entry is removed so a
  /// later call retries. When `ob` is non-null, one wall-domain
  /// `cache_lookup` span (attr `hit` = 0/1) and cache.hit/miss counters
  /// are recorded into it.
  template <typename T, typename Fn>
  [[nodiscard]] std::shared_ptr<const T> get_or_compute(
      const CacheKey& key, Fn&& compute, obs::Observer* ob = nullptr) {
    obs::ScopedWallSpan span(ob != nullptr ? &ob->tracer : nullptr,
                             obs::SpanLevel::kCacheLookup, key.solver_id);
    Shard& shard = shard_for(key);
    StoredFuture future;
    std::promise<Stored> promise;
    bool fresh = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.entries.find(key.bytes);
      if (it == shard.entries.end()) {
        fresh = true;
        future = promise.get_future().share();
        shard.entries.emplace(key.bytes, Entry{future});
      } else {
        future = it->second.future;
        ++shard.stats.hits;
      }
    }
    if (!fresh) {
      record_lookup(key.solver_id, Outcome::kHit, ob);
      span.attr("hit", 1.0);
      const Stored stored = future.get();  // may rethrow the first miss
      UPA_ASSERT(*stored.type == typeid(T));
      return std::static_pointer_cast<const T>(stored.value);
    }

    // Fresh key: consult the disk tier (when attached) before paying for
    // the compute. The in-flight entry is already published, so every
    // concurrent caller waits on this thread's future -- exactly one
    // disk read OR compute per distinct key, never both per caller.
    if (CacheSource* source = source_.load(std::memory_order_acquire)) {
      Stored from_disk;
      bool found = false;
      try {
        found = source->lookup(key, &from_disk);
      } catch (...) {
        found = false;  // unreadable tier: fall through to the compute
      }
      if (found && from_disk.value != nullptr && from_disk.type != nullptr &&
          *from_disk.type == typeid(T)) {
        promise.set_value(from_disk);
        complete_insert(shard, key.bytes);
        count_shard_outcome(shard, Outcome::kDiskHit);
        record_lookup(key.solver_id, Outcome::kDiskHit, ob);
        span.attr("hit", 1.0);
        // No sink: the value came FROM persistence; re-appending it
        // would grow the directory on every warm replay.
        return std::static_pointer_cast<const T>(from_disk.value);
      }
    }

    count_shard_outcome(shard, Outcome::kMiss);
    record_lookup(key.solver_id, Outcome::kMiss, ob);
    span.attr("hit", 0.0);
    try {
      auto value = std::make_shared<const T>(compute());
      promise.set_value(Stored{value, &typeid(T)});
      complete_insert(shard, key.bytes);
      if (CacheSink* sink = sink_.load(std::memory_order_acquire)) {
        sink->on_insert(key, Stored{value, &typeid(T)});
      }
      return value;
    } catch (...) {
      promise.set_exception(std::current_exception());
      abandon_insert(shard, key.bytes);
      throw;
    }
  }

  /// Inserts an already-computed value (the persistent tier's pre-warm
  /// and the `cache import` RPC). Never fires the sink -- a seeded value
  /// came FROM persistence -- and counts as an insert, not a lookup.
  /// Returns false when the key is already present (or in flight), in
  /// which case the existing entry wins.
  bool seed(const CacheKey& key, StoredValue value);

  /// One completed entry as exported by snapshot().
  struct SnapshotEntry {
    std::string key_bytes;
    StoredValue value;
  };

  /// All completed entries (in-flight computations are skipped), sorted
  /// by key bytes so an export is deterministic for deterministic
  /// contents regardless of insertion order.
  [[nodiscard]] std::vector<SnapshotEntry> snapshot() const;

  /// Installs (or clears, with nullptr) the insert sink. The sink must
  /// outlive the cache or be cleared before it dies.
  void set_sink(CacheSink* sink) noexcept {
    sink_.store(sink, std::memory_order_release);
  }

  /// Installs (or clears, with nullptr) the read-through miss source.
  /// Same lifetime contract as the sink.
  void set_source(CacheSource* source) noexcept {
    source_.store(source, std::memory_order_release);
  }

  /// Whole-cache statistics (sums over shards).
  [[nodiscard]] CacheStats stats() const;

  /// Hit/miss statistics of one solver id (zeroes when never seen).
  [[nodiscard]] CacheStats solver_stats(const std::string& solver_id) const;

  /// (solver id, stats) pairs sorted by solver id.
  [[nodiscard]] std::vector<std::pair<std::string, CacheStats>>
  per_solver_stats() const;

  /// Number of completed entries currently stored.
  [[nodiscard]] std::size_t size() const;

  /// Snapshots the counters into `metrics` as gauges: cache.hits,
  /// cache.misses, cache.inserts, cache.evictions, cache.hit_rate, plus
  /// per-solver cache.<solver>.hits / .misses / .hit_rate.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

  /// Drops every entry and zeroes all statistics. A long-lived server
  /// calls this between reconfigurations (the upa_served `cache` RPC's
  /// `clear` op) so stale design points stop occupying shard capacity.
  void clear();

  /// Zeroes the whole-cache and per-solver statistics WITHOUT dropping
  /// entries -- a measurement window reset: stored values keep replaying,
  /// but hit rates restart from zero.
  void reset_stats();

 private:
  using Stored = StoredValue;
  using StoredFuture = std::shared_future<Stored>;

  enum class Outcome { kHit, kDiskHit, kMiss };

  struct Entry {
    StoredFuture future;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    /// Completed keys in insertion order (in-flight keys are absent, so
    /// eviction can never cancel a running computation).
    std::vector<std::string> completed_order;
    std::size_t next_eviction = 0;  ///< completed_order read cursor
    CacheStats stats;
  };

  [[nodiscard]] Shard& shard_for(const CacheKey& key) noexcept {
    return shards_[key.digest % shards_.size()];
  }
  void complete_insert(Shard& shard, const std::string& bytes);
  void abandon_insert(Shard& shard, const std::string& bytes);
  void count_shard_outcome(Shard& shard, Outcome outcome);
  void record_lookup(const std::string& solver_id, Outcome outcome,
                     obs::Observer* ob);

  std::size_t max_entries_per_shard_;
  std::vector<Shard> shards_;
  std::atomic<CacheSink*> sink_{nullptr};
  std::atomic<CacheSource*> source_{nullptr};

  mutable std::mutex solver_mutex_;
  std::map<std::string, CacheStats> solver_stats_;  // guarded by solver_mutex_
};

/// The process-wide cache consulted by the analytic entry points
/// (markov::Ctmc::steady_state, queueing::mmck_metrics, the core
/// web-farm availabilities, inject::run_campaign, ...) when caching is
/// enabled.
[[nodiscard]] EvalCache& global();

/// Whether the analytic entry points consult the global cache. Default
/// off: an uninstrumented run never pays for key building, and opt-in
/// call sites (sweeps, campaigns, the CLI's --cache on) turn it on for
/// the duration of a workload.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// RAII enable/disable with restoration (benches and tests).
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : previous_(enabled()) {
    set_enabled(on);
  }
  ~ScopedEnable() { set_enabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace upa::cache
