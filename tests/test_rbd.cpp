// Tests for the reliability-block-diagram engine: structural evaluation,
// Shannon factoring with repeated components, path/cut sets, and the
// importance measures.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/rbd/block.hpp"
#include "upa/rbd/importance.hpp"
#include "upa/rbd/paths.hpp"

namespace ur = upa::rbd;
using upa::common::ModelError;

namespace {

ur::ParamMap abc(double a, double b, double c) {
  return {{"a", a}, {"b", b}, {"c", c}};
}

}  // namespace

TEST(Block, SeriesAvailabilityIsProduct) {
  const auto block = ur::Block::series(
      {ur::Block::component("a"), ur::Block::component("b")});
  EXPECT_NEAR(ur::availability(block, abc(0.9, 0.8, 1.0)), 0.72, 1e-12);
}

TEST(Block, ParallelAvailability) {
  const auto block = ur::Block::parallel(
      {ur::Block::component("a"), ur::Block::component("b")});
  EXPECT_NEAR(ur::availability(block, abc(0.9, 0.8, 1.0)),
              1.0 - 0.1 * 0.2, 1e-12);
}

TEST(Block, KofNWithHeterogeneousComponents) {
  // 2-of-3 with availabilities 0.9, 0.8, 0.7:
  // = .9*.8*.7 + .9*.8*.3 + .9*.2*.7 + .1*.8*.7 = 0.902
  const auto block = ur::Block::k_of_n(
      2, {ur::Block::component("a"), ur::Block::component("b"),
          ur::Block::component("c")});
  EXPECT_NEAR(ur::availability(block, abc(0.9, 0.8, 0.7)), 0.902, 1e-12);
}

TEST(Block, ReplicatedParallelMatchesClosedForm) {
  const auto block = ur::Block::replicated("ws", 3);
  ur::ParamMap params{{"ws#0", 0.9}, {"ws#1", 0.9}, {"ws#2", 0.9}};
  EXPECT_NEAR(ur::availability(block, params), 1.0 - 0.001, 1e-12);
}

TEST(Block, NestedStructureMatchesHandComputation) {
  // series(a, parallel(b, c)) with a=.95 b=.9 c=.8 -> .95 * .98 = .931
  const auto block = ur::Block::series(
      {ur::Block::component("a"),
       ur::Block::parallel(
           {ur::Block::component("b"), ur::Block::component("c")})});
  EXPECT_NEAR(ur::availability(block, abc(0.95, 0.9, 0.8)), 0.931, 1e-12);
}

TEST(Block, RepeatedComponentExactViaFactoring) {
  // parallel(series(a, b), series(a, c)): naive structural evaluation
  // would square P(a). Exact: a * (1 - (1-b)(1-c)).
  const auto block = ur::Block::parallel(
      {ur::Block::series(
           {ur::Block::component("a"), ur::Block::component("b")}),
       ur::Block::series(
           {ur::Block::component("a"), ur::Block::component("c")})});
  EXPECT_TRUE(block.has_repeated_components());
  const double a = 0.9;
  const double b = 0.8;
  const double c = 0.7;
  const double exact = a * (1.0 - (1.0 - b) * (1.0 - c));
  EXPECT_NEAR(ur::availability(block, abc(a, b, c)), exact, 1e-12);
}

TEST(Block, BridgeNetworkViaSharedComponent) {
  // Classic 5-component bridge, factored on the bridge element e:
  // P = e*P(parallel(a,b) series parallel(c,d)-ish) -- validate against
  // the textbook closed form with all components at p.
  // Bridge: paths {a,c}, {b,d}, {a,e,d}, {b,e,c}.
  const auto ac = ur::Block::series(
      {ur::Block::component("a"), ur::Block::component("c")});
  const auto bd = ur::Block::series(
      {ur::Block::component("b"), ur::Block::component("d")});
  const auto aed = ur::Block::series(
      {ur::Block::component("a"), ur::Block::component("e"),
       ur::Block::component("d")});
  const auto bec = ur::Block::series(
      {ur::Block::component("b"), ur::Block::component("e"),
       ur::Block::component("c")});
  const auto bridge = ur::Block::parallel({ac, bd, aed, bec});
  const double p = 0.9;
  ur::ParamMap params{{"a", p}, {"b", p}, {"c", p}, {"d", p}, {"e", p}};
  // Textbook: R = 2p^2 + 2p^3 - 5p^4 + 2p^5.
  const double exact = 2 * p * p + 2 * p * p * p - 5 * p * p * p * p +
                       2 * p * p * p * p * p;
  EXPECT_NEAR(ur::availability(bridge, params), exact, 1e-12);
}

TEST(Block, EvaluateStatesStructureFunction) {
  const auto block = ur::Block::k_of_n(
      2, {ur::Block::component("a"), ur::Block::component("b"),
          ur::Block::component("c")});
  EXPECT_TRUE(block.evaluate_states(
      {{"a", true}, {"b", true}, {"c", false}}));
  EXPECT_FALSE(block.evaluate_states(
      {{"a", true}, {"b", false}, {"c", false}}));
}

TEST(Block, MissingParameterThrows) {
  const auto block = ur::Block::component("missing");
  EXPECT_THROW((void)ur::availability(block, {}), ModelError);
}

TEST(Block, ComponentNamesDeduplicated) {
  const auto block = ur::Block::series(
      {ur::Block::component("x"), ur::Block::component("x"),
       ur::Block::component("y")});
  const auto names = block.component_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "x");
  EXPECT_EQ(names[1], "y");
}

TEST(Block, ToStringReflectsStructure) {
  const auto block = ur::Block::series(
      {ur::Block::component("a"),
       ur::Block::parallel(
           {ur::Block::component("b"), ur::Block::component("c")})});
  const std::string s = block.to_string();
  EXPECT_NE(s.find("series("), std::string::npos);
  EXPECT_NE(s.find("parallel("), std::string::npos);
}

TEST(Paths, SeriesParallelPathAndCutSets) {
  const auto block = ur::Block::series(
      {ur::Block::component("a"),
       ur::Block::parallel(
           {ur::Block::component("b"), ur::Block::component("c")})});
  const auto paths = ur::minimal_path_sets(block);
  ASSERT_EQ(paths.size(), 2u);  // {a,b}, {a,c}
  const auto cuts = ur::minimal_cut_sets(block);
  ASSERT_EQ(cuts.size(), 2u);  // {a}, {b,c}
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(),
                        ur::ComponentSet{"a"}) != cuts.end());
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(),
                        ur::ComponentSet{"b", "c"}) != cuts.end());
}

TEST(Paths, KofNPathSetsAreKSubsets) {
  const auto block = ur::Block::k_of_n(
      2, {ur::Block::component("a"), ur::Block::component("b"),
          ur::Block::component("c")});
  EXPECT_EQ(ur::minimal_path_sets(block).size(), 3u);  // C(3,2)
  EXPECT_EQ(ur::minimal_cut_sets(block).size(), 3u);   // C(3,2) duals
}

TEST(Paths, InclusionExclusionMatchesFactoring) {
  const auto block = ur::Block::parallel(
      {ur::Block::series(
           {ur::Block::component("a"), ur::Block::component("b")}),
       ur::Block::series(
           {ur::Block::component("b"), ur::Block::component("c")})});
  const auto params = abc(0.9, 0.8, 0.7);
  const auto paths = ur::minimal_path_sets(block);
  EXPECT_NEAR(ur::availability_from_path_sets(paths, params),
              ur::availability(block, params), 1e-12);
}

TEST(Importance, SeriesWeakestComponentHasHighestBirnbaum) {
  const auto block = ur::Block::series(
      {ur::Block::component("a"), ur::Block::component("b"),
       ur::Block::component("c")});
  const auto ranking =
      ur::importance_ranking(block, abc(0.99, 0.90, 0.95));
  // Birnbaum for series = product of the *other* availabilities, so the
  // component with the LOWEST availability has the highest ranking of the
  // others' product... check exact values instead.
  for (const auto& imp : ranking) {
    if (imp.component == "a") {
      EXPECT_NEAR(imp.birnbaum, 0.90 * 0.95, 1e-12);
    }
    if (imp.component == "b") {
      EXPECT_NEAR(imp.birnbaum, 0.99 * 0.95, 1e-12);
    }
  }
  EXPECT_EQ(ranking.front().component, "b");  // largest others-product
}

TEST(Importance, ParallelComponentBirnbaum) {
  const auto block = ur::Block::parallel(
      {ur::Block::component("a"), ur::Block::component("b")});
  const auto ranking = ur::importance_ranking(block, abc(0.9, 0.8, 1.0));
  for (const auto& imp : ranking) {
    if (imp.component == "a") {
      EXPECT_NEAR(imp.birnbaum, 0.2, 1e-12);
    }
    if (imp.component == "b") {
      EXPECT_NEAR(imp.birnbaum, 0.1, 1e-12);
    }
  }
}

TEST(Importance, CriticalityAndWorthsConsistent) {
  const auto block = ur::Block::series(
      {ur::Block::component("a"),
       ur::Block::parallel(
           {ur::Block::component("b"), ur::Block::component("c")})});
  const auto params = abc(0.95, 0.9, 0.8);
  const double a_sys = ur::availability(block, params);
  for (const auto& imp : ur::importance_ranking(block, params)) {
    // RAW >= 1 and RRW >= 1 for coherent systems.
    EXPECT_GE(imp.risk_achievement_worth, 1.0 - 1e-12);
    EXPECT_GE(imp.risk_reduction_worth, 1.0 - 1e-12);
    EXPECT_GE(imp.birnbaum, -1e-12);
    // criticality = birnbaum * (1-A_c) / UA_sys, all within [0, 1].
    EXPECT_LE(imp.criticality, 1.0 + 1e-9);
  }
  EXPECT_GT(a_sys, 0.9);
}
