#include "upa/cache/index.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/serialize.hpp"

namespace upa::cache {

namespace {

std::uint32_t read_u32_at(std::string_view bytes, std::size_t at) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t value;
    std::memcpy(&value, bytes.data() + at, sizeof value);
    return value;
  }
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(
                               bytes[at + static_cast<std::size_t>(i)]);
  }
  return value;
}

std::uint64_t read_u64_at(std::string_view bytes, std::size_t at) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t value;
    std::memcpy(&value, bytes.data() + at, sizeof value);
    return value;
  }
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(
                               bytes[at + static_cast<std::size_t>(i)]);
  }
  return value;
}

/// Validates the segment header through read_at and returns the offset
/// where record frames begin. False on magic/version/tag mismatch.
bool segment_body_start(const MappedFile& segment, std::uint64_t* start) {
  const std::size_t fixed = kSegmentMagic.size() + 8;
  std::string head;
  if (!segment.ok() || segment.size() < fixed ||
      !segment.read_at(0, fixed, &head) ||
      std::string_view(head).substr(0, kSegmentMagic.size()) !=
          kSegmentMagic) {
    return false;
  }
  const std::uint32_t version = read_u32_at(head, kSegmentMagic.size());
  const std::uint32_t tag_length =
      read_u32_at(head, kSegmentMagic.size() + 4);
  std::string tag;
  if (version != kSegmentFormatVersion ||
      tag_length > segment.size() - fixed ||
      !segment.read_at(fixed, tag_length, &tag) ||
      tag != kSolverVersionTag) {
    return false;
  }
  *start = fixed + tag_length;
  return true;
}

}  // namespace

std::string index_path_for(const std::string& segment_path) {
  if (segment_path.size() > kSegmentExtension.size() &&
      segment_path.ends_with(kSegmentExtension)) {
    return segment_path.substr(0,
                               segment_path.size() -
                                   kSegmentExtension.size()) +
           std::string(kIndexExtension);
  }
  return segment_path + std::string(kIndexExtension);
}

bool segment_crc_chain(const MappedFile& segment, std::uint64_t* size,
                       std::uint32_t* chain) {
  std::uint64_t at = 0;
  if (!segment_body_start(segment, &at)) return false;
  // The chain feeds each complete frame's stored payload-CRC word (as
  // its 4 little-endian bytes) into one CRC-32 -- headers only, so the
  // walk costs 8 bytes per record, never a value decode.
  std::string crc_words;
  while (at < segment.size() && segment.size() - at >= 8) {
    char frame[8];
    if (!segment.read_at(at, frame, 8)) break;
    const std::string_view frame_view(frame, 8);
    const std::uint32_t length = read_u32_at(frame_view, 0);
    if (segment.size() - at - 8 < length) break;  // torn tail
    crc_words.append(frame + 4, 4);
    at += 8 + length;
  }
  *size = segment.size();
  *chain = crc32(crc_words);
  return true;
}

SegmentIndex build_index(const MappedFile& segment,
                         SegmentLoadStats& stats) {
  SegmentIndex index;
  std::uint64_t at = 0;
  if (!segment_body_start(segment, &at)) {
    ++stats.segments_rejected;
    return index;
  }
  index.segment_size = segment.size();
  std::string crc_words;
  std::string payload;
  while (at < segment.size()) {
    char frame[8];
    if (segment.size() - at < 8 || !segment.read_at(at, frame, 8)) {
      stats.torn_tail_bytes += segment.size() - at;
      break;
    }
    const std::string_view frame_view(frame, 8);
    const std::uint32_t length = read_u32_at(frame_view, 0);
    const std::uint32_t expected_crc = read_u32_at(frame_view, 4);
    if (segment.size() - at - 8 < length ||
        !segment.read_at(at + 8, length, &payload)) {
      stats.torn_tail_bytes += segment.size() - at;
      break;
    }
    const std::uint64_t offset = at;
    at += 8 + length;
    crc_words.append(frame + 4, 4);
    if (crc32(payload) != expected_crc) {
      ++stats.records_skipped_crc;
      continue;
    }
    SegmentRecord record;
    if (!parse_record_payload(payload, &record)) {
      ++stats.records_skipped_crc;
      continue;
    }
    ++stats.records_loaded;
    index.entries.push_back(
        IndexEntry{key_digest(record.key_bytes), offset});
  }
  ++stats.segments_loaded;
  index.segment_crc_chain = crc32(crc_words);
  std::sort(index.entries.begin(), index.entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return a.digest != b.digest ? a.digest < b.digest
                                          : a.offset < b.offset;
            });
  return index;
}

std::string encode_index(const SegmentIndex& index) {
  std::string out(kIndexMagic);
  ByteWriter head;
  head.put_u32(kIndexFormatVersion);
  head.put_u32(static_cast<std::uint32_t>(kSolverVersionTag.size()));
  out += std::move(head).take();
  out += kSolverVersionTag;
  ByteWriter body;
  body.put_u64(index.segment_size);
  body.put_u32(index.segment_crc_chain);
  body.put_u64(static_cast<std::uint64_t>(index.entries.size()));
  for (const IndexEntry& entry : index.entries) {
    body.put_u64(entry.digest);
    body.put_u64(entry.offset);
  }
  out += std::move(body).take();
  ByteWriter crc;
  crc.put_u32(crc32(out));
  out += std::move(crc).take();
  return out;
}

bool decode_index(std::string_view bytes, SegmentIndex* out) {
  const std::size_t fixed = kIndexMagic.size() + 8;
  if (bytes.size() < fixed + 4 ||
      bytes.substr(0, kIndexMagic.size()) != kIndexMagic) {
    return false;
  }
  // Trailing CRC covers everything before it; check first so any other
  // field read below is known-intact.
  const std::size_t crc_at = bytes.size() - 4;
  if (crc32(bytes.substr(0, crc_at)) != read_u32_at(bytes, crc_at)) {
    return false;
  }
  const std::uint32_t version = read_u32_at(bytes, kIndexMagic.size());
  const std::uint32_t tag_length = read_u32_at(bytes, kIndexMagic.size() + 4);
  if (version != kIndexFormatVersion || tag_length > crc_at - fixed ||
      bytes.substr(fixed, tag_length) != kSolverVersionTag) {
    return false;
  }
  std::size_t at = fixed + tag_length;
  if (crc_at - at < 8 + 4 + 8) return false;
  SegmentIndex index;
  index.segment_size = read_u64_at(bytes, at);
  index.segment_crc_chain = read_u32_at(bytes, at + 8);
  const std::uint64_t count = read_u64_at(bytes, at + 12);
  at += 20;
  if (crc_at - at != count * 16) return false;
  index.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    index.entries.push_back(IndexEntry{read_u64_at(bytes, at),
                                       read_u64_at(bytes, at + 8)});
    at += 16;
  }
  *out = std::move(index);
  return true;
}

IndexLoadResult load_or_build_index(const std::string& segment_path,
                                    const MappedFile& segment) {
  IndexLoadResult result;
  std::uint64_t segment_size = 0;
  std::uint32_t chain = 0;
  if (!segment_crc_chain(segment, &segment_size, &chain)) {
    return result;  // segment header invalid: nothing to index
  }
  result.segment_ok = true;

  const std::string index_path = index_path_for(segment_path);
  {
    const MappedFile file(index_path);
    if (file.ok()) {
      std::string fallback;
      std::string_view bytes = file.view();
      if (!file.mapped() && file.size() > 0 &&
          file.read_at(0, static_cast<std::size_t>(file.size()),
                       &fallback)) {
        bytes = fallback;
      }
      SegmentIndex parsed;
      if (decode_index(bytes, &parsed) &&
          parsed.segment_size == segment_size &&
          parsed.segment_crc_chain == chain) {
        result.loaded = true;
        result.index = std::move(parsed);
        return result;
      }
    }
  }

  // Missing, stale, or corrupt: full-scan rebuild, then atomic rewrite
  // so a crash mid-write can never leave a half index (the old one, if
  // any, survives until the rename).
  result.index = build_index(segment, result.scan);
  result.rebuilt = true;
  const std::string encoded = encode_index(result.index);
  const std::string tmp = index_path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file != nullptr) {
    const bool ok =
        std::fwrite(encoded.data(), 1, encoded.size(), file) ==
            encoded.size() &&
        std::fflush(file) == 0;
    std::fclose(file);
    if (ok && std::rename(tmp.c_str(), index_path.c_str()) == 0) {
      result.written = true;
    } else {
      std::remove(tmp.c_str());
    }
  }
  return result;
}

bool read_record_at(const MappedFile& segment, std::uint64_t offset,
                    SegmentRecord* out) {
  char frame[8];
  if (!segment.ok() || segment.size() < offset ||
      segment.size() - offset < 8 || !segment.read_at(offset, frame, 8)) {
    return false;
  }
  const std::string_view frame_view(frame, 8);
  const std::uint32_t length = read_u32_at(frame_view, 0);
  const std::uint32_t expected_crc = read_u32_at(frame_view, 4);
  if (segment.size() - offset - 8 < length) return false;
  std::string payload;
  if (!segment.read_at(offset + 8, length, &payload) ||
      crc32(payload) != expected_crc) {
    return false;
  }
  return parse_record_payload(payload, out);
}

std::vector<std::uint64_t> offsets_for_digest(
    const std::vector<IndexEntry>& entries, std::uint64_t digest) {
  const auto [first, last] = std::equal_range(
      entries.begin(), entries.end(), IndexEntry{digest, 0},
      [](const IndexEntry& a, const IndexEntry& b) {
        return a.digest < b.digest;
      });
  std::vector<std::uint64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(last - first));
  for (auto it = first; it != last; ++it) offsets.push_back(it->offset);
  return offsets;
}

}  // namespace upa::cache
