#include "upa/cache/serialize.hpp"

#include <algorithm>
#include <bit>

#include "upa/common/error.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/queueing/mmck.hpp"

namespace upa::cache {

// --- byte IO -------------------------------------------------------------

void ByteWriter::put_u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void ByteWriter::put_u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void ByteWriter::put_double(double value) {
  put_u64(std::bit_cast<std::uint64_t>(value));
}

void ByteWriter::put_string(std::string_view value) {
  put_u64(value.size());
  bytes_.append(value.data(), value.size());
}

void ByteWriter::put_doubles(const std::vector<double>& values) {
  put_u64(values.size());
  for (const double v : values) put_double(v);
}

void ByteReader::need(std::size_t count) const {
  UPA_REQUIRE(remaining() >= count,
              "cache value payload truncated: needed " +
                  std::to_string(count) + " more bytes, have " +
                  std::to_string(remaining()));
}

std::uint8_t ByteReader::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t ByteReader::get_u32() {
  need(4);
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(
                               data_[offset_ + static_cast<std::size_t>(i)]);
  }
  offset_ += 4;
  return value;
}

std::uint64_t ByteReader::get_u64() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(
                               data_[offset_ + static_cast<std::size_t>(i)]);
  }
  offset_ += 8;
  return value;
}

double ByteReader::get_double() {
  return std::bit_cast<double>(get_u64());
}

std::string ByteReader::get_string() {
  const std::uint64_t length = get_u64();
  UPA_REQUIRE(length <= remaining(),
              "cache value payload truncated inside a string");
  std::string out(data_.substr(offset_, length));
  offset_ += length;
  return out;
}

std::vector<double> ByteReader::get_doubles() {
  const std::uint64_t count = get_u64();
  UPA_REQUIRE(count <= remaining() / 8,
              "cache value payload truncated inside a double vector");
  std::vector<double> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(get_double());
  return out;
}

void ByteReader::expect_end() const {
  UPA_REQUIRE(remaining() == 0,
              "cache value payload has " + std::to_string(remaining()) +
                  " trailing bytes (written by a newer encoder?)");
}

// --- codecs --------------------------------------------------------------

namespace {

template <typename T>
const T& as(const void* value) {
  return *static_cast<const T*>(value);
}

template <typename T>
StoredValue store(T value) {
  return StoredValue{std::make_shared<const T>(std::move(value)), &typeid(T)};
}

std::string serialize_double(const void* value) {
  ByteWriter w;
  w.put_double(as<double>(value));
  return std::move(w).take();
}

StoredValue deserialize_double(std::string_view bytes) {
  ByteReader r(bytes);
  const double value = r.get_double();
  r.expect_end();
  return store(value);
}

std::string serialize_doubles(const void* value) {
  ByteWriter w;
  w.put_doubles(as<std::vector<double>>(value));
  return std::move(w).take();
}

StoredValue deserialize_doubles(std::string_view bytes) {
  ByteReader r(bytes);
  std::vector<double> value = r.get_doubles();
  r.expect_end();
  return store(std::move(value));
}

std::string serialize_mmck(const void* value) {
  const auto& m = as<queueing::MmckMetrics>(value);
  ByteWriter w;
  w.put_double(m.rho);
  w.put_double(m.blocking);
  w.put_double(m.mean_in_system);
  w.put_double(m.mean_in_queue);
  w.put_double(m.throughput);
  w.put_double(m.mean_response);
  w.put_double(m.mean_busy_servers);
  w.put_doubles(m.state_probabilities);
  return std::move(w).take();
}

StoredValue deserialize_mmck(std::string_view bytes) {
  ByteReader r(bytes);
  queueing::MmckMetrics m;
  m.rho = r.get_double();
  m.blocking = r.get_double();
  m.mean_in_system = r.get_double();
  m.mean_in_queue = r.get_double();
  m.throughput = r.get_double();
  m.mean_response = r.get_double();
  m.mean_busy_servers = r.get_double();
  m.state_probabilities = r.get_doubles();
  r.expect_end();
  return store(std::move(m));
}

std::uint8_t encode_method(markov::StationaryMethod method) {
  return static_cast<std::uint8_t>(method);
}

markov::StationaryMethod decode_method(std::uint8_t value) {
  UPA_REQUIRE(
      value <= static_cast<std::uint8_t>(
                   markov::StationaryMethod::kPowerIteration),
      "stationary-report payload has an unknown method enum value");
  return static_cast<markov::StationaryMethod>(value);
}

markov::StationaryStage::Outcome decode_outcome(std::uint8_t value) {
  UPA_REQUIRE(value <= static_cast<std::uint8_t>(
                           markov::StationaryStage::Outcome::kSkipped),
              "stationary-report payload has an unknown outcome enum value");
  return static_cast<markov::StationaryStage::Outcome>(value);
}

std::string serialize_stationary(const void* value) {
  const auto& report = as<markov::StationaryReport>(value);
  ByteWriter w;
  w.put_doubles(report.distribution);
  w.put_u8(encode_method(report.method));
  w.put_double(report.residual);
  w.put_u64(report.stages.size());
  for (const markov::StationaryStage& stage : report.stages) {
    w.put_u8(encode_method(stage.method));
    w.put_u8(static_cast<std::uint8_t>(stage.outcome));
    w.put_u64(stage.iterations);
    w.put_double(stage.residual);
    w.put_double(stage.wall_seconds);
    w.put_string(stage.note);
  }
  w.put_u64(report.diagnostics.size());
  for (const std::string& line : report.diagnostics) w.put_string(line);
  return std::move(w).take();
}

StoredValue deserialize_stationary(std::string_view bytes) {
  ByteReader r(bytes);
  markov::StationaryReport report;
  report.distribution = r.get_doubles();
  report.method = decode_method(r.get_u8());
  report.residual = r.get_double();
  const std::uint64_t stages = r.get_u64();
  UPA_REQUIRE(stages <= bytes.size(),
              "stationary-report payload declares too many stages");
  report.stages.reserve(stages);
  for (std::uint64_t i = 0; i < stages; ++i) {
    markov::StationaryStage stage;
    stage.method = decode_method(r.get_u8());
    stage.outcome = decode_outcome(r.get_u8());
    stage.iterations = r.get_u64();
    stage.residual = r.get_double();
    stage.wall_seconds = r.get_double();
    stage.note = r.get_string();
    report.stages.push_back(std::move(stage));
  }
  const std::uint64_t diagnostics = r.get_u64();
  UPA_REQUIRE(diagnostics <= bytes.size(),
              "stationary-report payload declares too many diagnostics");
  report.diagnostics.reserve(diagnostics);
  for (std::uint64_t i = 0; i < diagnostics; ++i) {
    report.diagnostics.push_back(r.get_string());
  }
  r.expect_end();
  return store(std::move(report));
}

std::string serialize_campaign_entry(const void* value) {
  const auto& entry = as<inject::CampaignEntry>(value);
  ByteWriter w;
  w.put_string(entry.name);
  w.put_double(entry.perceived_availability.mean);
  w.put_double(entry.perceived_availability.half_width);
  w.put_double(entry.perceived_availability.low);
  w.put_double(entry.perceived_availability.high);
  w.put_double(entry.delta_vs_baseline);
  w.put_double(entry.observed_web_service_availability);
  w.put_double(entry.mean_retries_per_session);
  w.put_double(entry.abandonment_fraction);
  return std::move(w).take();
}

StoredValue deserialize_campaign_entry(std::string_view bytes) {
  ByteReader r(bytes);
  inject::CampaignEntry entry;
  entry.name = r.get_string();
  entry.perceived_availability.mean = r.get_double();
  entry.perceived_availability.half_width = r.get_double();
  entry.perceived_availability.low = r.get_double();
  entry.perceived_availability.high = r.get_double();
  entry.delta_vs_baseline = r.get_double();
  entry.observed_web_service_availability = r.get_double();
  entry.mean_retries_per_session = r.get_double();
  entry.abandonment_fraction = r.get_double();
  r.expect_end();
  return store(std::move(entry));
}

const std::vector<ValueCodec>& codec_table() {
  static const std::vector<ValueCodec> table = {
      {"f64", &typeid(double), serialize_double, deserialize_double},
      {"f64_vec", &typeid(std::vector<double>), serialize_doubles,
       deserialize_doubles},
      {"mmck_metrics", &typeid(queueing::MmckMetrics), serialize_mmck,
       deserialize_mmck},
      {"stationary_report", &typeid(markov::StationaryReport),
       serialize_stationary, deserialize_stationary},
      {"campaign_entry", &typeid(inject::CampaignEntry),
       serialize_campaign_entry, deserialize_campaign_entry},
  };
  return table;
}

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const ValueCodec* codec_for_type(const std::type_info& type) {
  for (const ValueCodec& codec : codec_table()) {
    if (*codec.type == type) return &codec;
  }
  return nullptr;
}

const ValueCodec* codec_for_tag(std::string_view tag) {
  for (const ValueCodec& codec : codec_table()) {
    if (codec.type_tag == tag) return &codec;
  }
  return nullptr;
}

std::vector<std::string> registered_codec_tags() {
  std::vector<std::string> tags;
  tags.reserve(codec_table().size());
  for (const ValueCodec& codec : codec_table()) {
    tags.emplace_back(codec.type_tag);
  }
  std::sort(tags.begin(), tags.end());
  return tags;
}

std::string to_hex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<std::uint8_t>(c);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::string from_hex(std::string_view hex) {
  UPA_REQUIRE(hex.size() % 2 == 0,
              "hex payload must have an even number of digits");
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    UPA_REQUIRE(hi >= 0 && lo >= 0, "hex payload has a non-hex character");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace upa::cache
