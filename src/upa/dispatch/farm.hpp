#pragma once
// Farm orchestration: N real `upa_served` processes (fork + exec) behind
// a dispatch::Front, with kill -9 / restart mid-run on a schedule driven
// by inject::FaultPlan windows. A SIGKILL the health checker has not yet
// noticed is precisely the paper's *uncovered* failure -- requests keep
// being routed to a dead replica until the probe threshold trips -- so
// the measured farm-level loss is compared against both the perfect- and
// imperfect-coverage composite predictions (core::web_farm stationary
// distributions conditioned with queueing::mmck_loss_probability per
// operational-server count).
//
// Analytic mapping from the kill schedule to the composite model, for a
// run of wall time T with n kills totalling D_down seconds of single-
// replica downtime (windows never overlap, so at most one replica is
// down at a time):
//
//   lambda_f = n / (N * (T - D_down))   per-server failure rate
//   mu       = n / D_down               repair (restart) rate
//
// which makes the birth-death occupancy ratio pi_{N-1}/pi_N =
// N*lambda_f/mu equal the scheduled down/up time ratio exactly. The
// health checker's detection delay d = probe_interval *
// unhealthy_threshold yields coverage c = 1 - d/mean_down (the fraction
// of each outage spent correctly ejected) and reconfiguration rate
// beta = 1/d.

#include <cstdint>
#include <string>
#include <vector>

#include "upa/dispatch/front.hpp"
#include "upa/dispatch/upstream.hpp"
#include "upa/inject/fault_plan.hpp"
#include "upa/serve/loadgen.hpp"

namespace upa::dispatch {

/// How to spawn one `upa_served` replica process.
struct ReplicaConfig {
  /// Path to the upa_served binary (injected by the test harness /
  /// --served-bin; never guessed).
  std::string served_binary;
  std::string host = "127.0.0.1";
  std::size_t workers = 1;   ///< per-replica i
  std::size_t capacity = 3;  ///< per-replica K_r
  double read_timeout_seconds = 10.0;
};

/// Spawns, kills (-9), restarts, and reaps N replica processes. The
/// first spawn binds an ephemeral port (parsed from the child's
/// "listening on host:port" line); restarts reuse the recorded port so
/// the front's upstream list stays valid across the kill.
class FarmOrchestrator {
 public:
  FarmOrchestrator(ReplicaConfig config, std::size_t replicas);
  ~FarmOrchestrator();

  FarmOrchestrator(const FarmOrchestrator&) = delete;
  FarmOrchestrator& operator=(const FarmOrchestrator&) = delete;

  /// Spawns every replica; throws ModelError when a child cannot be
  /// started or never prints its listening line.
  void start_all();

  /// SIGKILLs the whole farm and reaps every child. Idempotent.
  void stop_all();

  /// SIGKILL + reap one replica (an injected uncovered failure).
  void kill_replica(std::size_t index);

  /// Re-spawns a killed replica on its recorded port.
  void restart_replica(std::size_t index);

  /// Extra argv appended to replica `index` on its NEXT spawn. Used for
  /// flags that need the farm's port map (--peers for anti-entropy):
  /// the initial spawns bind ephemeral ports, so peer addresses only
  /// exist after start_all -- restarts can carry them.
  void set_restart_extra_args(std::size_t index,
                              std::vector<std::string> extra_args);

  [[nodiscard]] bool alive(std::size_t index) const;
  [[nodiscard]] std::size_t size() const noexcept { return replicas_.size(); }
  [[nodiscard]] std::vector<UpstreamAddress> addresses() const;

 private:
  struct Replica {
    int pid = -1;              ///< -1 = not running
    int stdout_fd = -1;        ///< read end of the child's stdout pipe
    UpstreamAddress address;   ///< port recorded from the first spawn
    std::vector<std::string> extra_args;  ///< appended on the next spawn
  };

  void spawn(std::size_t index, std::uint16_t port);

  ReplicaConfig config_;
  std::vector<Replica> replicas_;
};

/// One scheduled uncovered failure: `replica` is SIGKILLed at
/// `down_at_seconds` into the run and restarted at `up_at_seconds`.
struct KillEvent {
  std::size_t replica = 0;
  double down_at_seconds = 0.0;
  double up_at_seconds = 0.0;
};

/// Maps a FaultPlan's merged kWebFarm outage windows onto KillEvents:
/// window j (sorted by start) kills replica j % replicas, with hours
/// scaled by `seconds_per_hour` so wall-clock experiments replay
/// hour-denominated plans in seconds. Throws ModelError when scaled
/// windows overlap (the analytic mapping assumes at most one replica
/// down at a time) or the plan has no kWebFarm windows.
[[nodiscard]] std::vector<KillEvent> kill_schedule_from_fault_plan(
    const inject::FaultPlan& plan, std::size_t replicas,
    double seconds_per_hour);

struct FarmExperimentConfig {
  ReplicaConfig replica;
  std::size_t replicas = 3;
  BalancePolicy policy = BalancePolicy::kLeastOutstanding;
  RetryConfig retry;
  HealthConfig health;
  /// Open-loop Poisson `sleep` workload through the front (see
  /// serve::run_loss_workload). Rates are deliberately slow (~100 ms
  /// services): the M/M/i/K ratios only depend on lambda/nu, and slow
  /// services keep scheduling overhead (~ms on a loaded CI core) a
  /// rounding error instead of a 2x inflation of the effective service
  /// time. Utilization is kept moderate (a = lambda/nu = 2 erlangs on
  /// N_W = 3 replicas) because the composite model pools the farm's
  /// waiting room while the real dispatcher blocks per replica; the
  /// approximation error of that idealization grows sharply past
  /// a / N_W ~ 0.7.
  double lambda = 20.0;
  double nu = 10.0;
  std::size_t requests = 500;
  std::uint64_t seed = 1;
  double call_timeout_seconds = 5.0;
  std::vector<KillEvent> kills;
  /// Traced mode: the loadgen originates a trace context per request,
  /// the front records dispatch_request/dispatch_attempt spans, and the
  /// result carries a span-vs-loadgen-log accounting (every request the
  /// loadgen issued must appear as exactly one root span whose attempt
  /// children match its `attempts` attribute, with zero drops).
  bool trace = false;
  /// Warm-transfer mode: before the workload starts, a peer replica
  /// outside the kill schedule is warmed with `warm_points` distinct
  /// cacheable design-point evaluations; after every restart the fresh
  /// process imports the peer's cache over the wire (`cache export` on
  /// the peer, `cache import` on the restarted replica); after the
  /// workload the same design points are re-issued to the restarted
  /// replica and its hit count is recorded -- nonzero warmed_hits is
  /// the warm-restart evidence (the kill-9 restart no longer pays the
  /// cold cost for anything its peer had already solved).
  bool warm_transfer = false;
  std::size_t warm_points = 16;
  /// Transfer RPCs race the restart and the open-loop workload, so the
  /// orchestrator retries: up to `warm_transfer_retries` attempts,
  /// `warm_transfer_interval_ms` apart. The defaults are the historical
  /// hard-coded values (40 x 250 ms = 10 s worst case).
  int warm_transfer_retries = 40;
  int warm_transfer_interval_ms = 250;
  /// Anti-entropy mode (requires warm_transfer): instead of the
  /// orchestrator exporting/importing caches over restarts, every
  /// restarted replica is spawned with `--peers <siblings>
  /// --anti-entropy-ms N` and pulls the warm set ITSELF -- the
  /// orchestrator issues zero transfer RPCs and merely polls the
  /// replica's `cache stats` until anti_entropy.records_pulled is
  /// nonzero. 0 = off (classic orchestrator-driven transfer).
  int anti_entropy_ms = 0;
};

struct FarmExperimentResult {
  serve::LossResult loss;   ///< client-side view through the front
  FrontStats front;
  std::vector<UpstreamSnapshot> upstreams;

  /// (rejected + deadline + transport + other errors) / sent -- the
  /// farm-level rejection+failure fraction the composite model predicts.
  double measured_loss_fraction = 0.0;

  // Derived analytic parameters (see the header comment).
  double failure_rate = 0.0;          ///< lambda_f
  double repair_rate = 0.0;           ///< mu
  double coverage = 1.0;              ///< c
  double reconfiguration_rate = 0.0;  ///< beta
  double detection_delay_seconds = 0.0;
  double time_all_up_seconds = 0.0;
  double total_down_seconds = 0.0;
  std::size_t kills_executed = 0;

  double predicted_loss_perfect = 0.0;
  double predicted_loss_imperfect = 0.0;
  /// Binomial sigma of the measured fraction at the imperfect
  /// prediction; the gate is |measured - imperfect| <= 4*sigma + 0.03.
  double sigma = 0.0;
  double tolerance = 0.0;
  bool within_tolerance = false;

  // Trace accounting, filled only when config.trace is set.
  std::size_t traced_requests = 0;  ///< dispatch_request roots recorded
  std::size_t traced_attempts = 0;  ///< dispatch_attempt children
  std::uint64_t trace_dropped_spans = 0;
  /// All checks passed: zero dropped spans, one root per loadgen
  /// request, the root trace_id multiset equal to the loadgen's
  /// per-request log, and each root's `attempts` attribute equal to its
  /// recorded child-span count.
  bool trace_accounted = false;
  std::string trace_accounting_error;  ///< first failed check; empty = ok

  // Warm-transfer accounting, filled only when config.warm_transfer is
  // set and the schedule has kills.
  std::size_t warm_peer = 0;  ///< replica warmed before the run
  std::uint64_t warm_points_computed = 0;  ///< peer pre-warm evaluations
  std::uint64_t warm_export_records = 0;  ///< shipped per restart (last)
  std::uint64_t warm_import_records = 0;  ///< seeded on restarts (total)
  std::uint64_t warmed_hits = 0;  ///< post-run replays on the restarted
  bool warm_transfer_ok = false;  ///< transfers ran and warmed_hits > 0
  std::string warm_transfer_error;  ///< first failure; empty = ok

  // Anti-entropy accounting, filled only when config.anti_entropy_ms > 0.
  std::uint64_t anti_entropy_rounds = 0;  ///< exchanges the replica ran
  std::uint64_t anti_entropy_records_pulled = 0;  ///< via gossip pulls
  std::uint64_t orchestrator_transfers = 0;  ///< export/import RPCs WE drove
  bool anti_entropy_ok = false;  ///< converged with zero orchestrator RPCs
};

/// Runs the full experiment: spawn the farm, start the front, replay
/// the loss workload while a scheduler thread executes the kill plan,
/// then assemble measured vs analytic results. Replicas and front are
/// always torn down, including on error.
[[nodiscard]] FarmExperimentResult run_farm_experiment(
    const FarmExperimentConfig& config);

}  // namespace upa::dispatch
