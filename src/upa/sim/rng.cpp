#include "upa/sim/rng.hpp"

namespace upa::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform01_open_left() noexcept {
  return 1.0 - uniform01();
}

Xoshiro256 Xoshiro256::split() noexcept {
  return Xoshiro256((*this)());
}

}  // namespace upa::sim
