#include "upa/serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

#include "upa/common/error.hpp"

namespace upa::serve {

namespace {

/// Hard cap on container nesting while parsing. Protocol payloads are a
/// handful of levels deep; anything deeper is a hostile or broken
/// client, and unbounded recursion would overflow the worker thread's
/// stack (the 1 MB request-line cap admits ~1M '['s).
constexpr int kMaxParseDepth = 96;

/// Serialization guard: parse depth plus margin for the envelope levels
/// the server wraps around echoed client values (id inside a response
/// object). Server-built responses therefore never trip it.
constexpr int kMaxDumpDepth = 128;

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw common::ModelError(std::string("JSON value is ") +
                           names[static_cast<int>(got)] + ", expected " +
                           wanted);
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void dump_into(const Json& v, std::string& out, int depth);

void dump_into(const Json& v, std::string& out, int depth) {
  if (depth > kMaxDumpDepth) {
    throw common::ModelError("JSON value nests deeper than " +
                             std::to_string(kMaxDumpDepth) + " levels");
  }
  switch (v.type()) {
    case Json::Type::kNull:
      out += "null";
      break;
    case Json::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      out += format_number(v.as_number());
      break;
    case Json::Type::kString:
      append_escaped(out, v.as_string());
      break;
    case Json::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& e : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_into(e, out, depth + 1);
      }
      out.push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, key);
        out.push_back(':');
        dump_into(value, out, depth + 1);
      }
      out.push_back('}');
      break;
    }
  }
}

/// Strict recursive-descent parser over a string view of the input.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw common::ModelError("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
      case '[': {
        if (depth_ >= kMaxParseDepth) {
          fail("nesting deeper than " + std::to_string(kMaxParseDepth) +
               " levels");
        }
        ++depth_;
        Json v = c == '{' ? parse_object() : parse_array();
        --depth_;
        return v;
      }
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return Json(std::move(elements));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (no surrogate-pair handling: the
          // protocol payloads are ASCII identifiers and numbers).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || end != last) {
      pos_ = start;
      fail("malformed number");
    }
    if (!std::isfinite(value)) {
      pos_ = start;
      fail("number out of range");
    }
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  dump_into(*this, out, 0);
  return out;
}

bool Json::operator==(const Json& rhs) const {
  if (type_ != rhs.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == rhs.bool_;
    case Type::kNumber: return number_ == rhs.number_;
    case Type::kString: return string_ == rhs.string_;
    case Type::kArray: return array_ == rhs.array_;
    case Type::kObject: return object_ == rhs.object_;
  }
  return false;
}

Json parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::string format_number(double value) {
  UPA_REQUIRE(std::isfinite(value),
              "JSON numbers must be finite, got a NaN or infinity");
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  UPA_ASSERT(ec == std::errc{});
  return std::string(buf, end);
}

}  // namespace upa::serve
