#pragma once
// Tornado analysis: vary one parameter at a time between pessimistic and
// optimistic bounds, rank parameters by the induced swing of the measure.
// Quantifies the paper's observation that A_net, A_LAN and A(WS) dominate
// the user-perceived availability.

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace upa::sensitivity {

/// Bounds for one parameter.
struct ParameterRange {
  double low = 0.0;
  double high = 0.0;
};

/// One tornado bar.
struct TornadoEntry {
  std::string parameter;
  double measure_at_low = 0.0;
  double measure_at_high = 0.0;
  double swing = 0.0;  ///< |high - low| of the measure
};

/// Evaluates `measure` at the base point with each parameter individually
/// set to its bounds; returns entries sorted by descending swing.
[[nodiscard]] std::vector<TornadoEntry> tornado(
    const std::map<std::string, double>& base,
    const std::map<std::string, ParameterRange>& ranges,
    const std::function<double(const std::map<std::string, double>&)>&
        measure);

}  // namespace upa::sensitivity
