#pragma once
// Travel-agency model parameters. Defaults are exactly the paper's
// Table 7 plus the rate assumptions of Section 5.1 (nu = 100/s,
// mu = 1/h, beta = 12/h, K = 10, N_W = 4, c = 0.98, lambda = 1e-4/h,
// alpha = 100/s).

#include <cstddef>

namespace upa::ta {

/// Resource-level architecture of the internal services (Figures 7/8).
enum class Architecture {
  kBasic,      ///< one host per server, no redundancy (Figure 7)
  kRedundant,  ///< web farm + duplicated AS/DS + mirrored disks (Figure 8)
};

/// Web-farm fault-coverage model (Figures 9/10).
enum class CoverageModel {
  kPerfect,
  kImperfect,
};

/// All model parameters in one value type. Time units: failure/repair/
/// reconfiguration rates are per hour; request arrival/service rates are
/// per second (they only interact through dimensionless probabilities).
struct TaParameters {
  // --- resource-level availabilities (Table 7) ---
  double a_net = 0.9966;   ///< TA connectivity to the Internet
  double a_lan = 0.9966;   ///< internal LAN
  double a_cas = 0.996;    ///< application-server host
  double a_cds = 0.996;    ///< database-server host
  double a_disk = 0.9;     ///< one database disk
  double a_payment = 0.9;  ///< external payment system
  double a_reservation = 0.9;  ///< one flight/hotel/car reservation system

  // --- external-supplier replication (Table 8 sweep dimension) ---
  std::size_t n_flight = 1;
  std::size_t n_hotel = 1;
  std::size_t n_car = 1;

  // --- web farm (Figures 9-12) ---
  std::size_t n_web = 4;     ///< N_W
  double lambda_web = 1e-4;  ///< per-server failure rate [1/h]
  double mu_web = 1.0;       ///< shared repair rate [1/h]
  double coverage = 0.98;    ///< c
  double beta = 12.0;        ///< manual reconfiguration rate [1/h]

  // --- web request handling (M/M/i/K) ---
  double alpha = 100.0;      ///< request arrival rate [1/s]
  double nu = 100.0;         ///< per-server service rate [1/s]
  std::size_t buffer = 10;   ///< K

  // --- Browse interaction diagram branch probabilities (Figure 3) ---
  double q23 = 0.2;  ///< answered from web-server cache
  double q24 = 0.8;  ///< forwarded to the application server
  double q45 = 0.4;  ///< answered without the database
  double q47 = 0.6;  ///< requires the database

  Architecture architecture = Architecture::kRedundant;
  CoverageModel coverage_model = CoverageModel::kImperfect;

  /// The paper's configuration (== default member values).
  [[nodiscard]] static TaParameters paper_defaults() { return {}; }

  /// Convenience: sets N_F = N_H = N_C = n (the Table 8 sweep).
  [[nodiscard]] TaParameters with_reservation_systems(std::size_t n) const;

  /// Throws ModelError when any parameter is out of its domain.
  void validate() const;
};

}  // namespace upa::ta
