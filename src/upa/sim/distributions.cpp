#include "upa/sim/distributions.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::sim {
namespace {

double sample_exponential(double rate, Xoshiro256& rng) {
  return -std::log(rng.uniform01_open_left()) / rate;
}

/// Standard normal via Box-Muller (one value per call; simple and
/// state-free, which keeps replications independent).
double sample_standard_normal(Xoshiro256& rng) {
  const double u1 = rng.uniform01_open_left();
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

struct Validator {
  void operator()(const Exponential& d) const {
    UPA_REQUIRE(std::isfinite(d.rate) && d.rate > 0.0,
                "Exponential rate must be positive");
  }
  void operator()(const Deterministic& d) const {
    UPA_REQUIRE(std::isfinite(d.value) && d.value >= 0.0,
                "Deterministic value must be non-negative");
  }
  void operator()(const UniformReal& d) const {
    UPA_REQUIRE(std::isfinite(d.low) && std::isfinite(d.high) &&
                    d.low <= d.high,
                "UniformReal requires low <= high");
  }
  void operator()(const Erlang& d) const {
    UPA_REQUIRE(d.k >= 1, "Erlang needs at least one phase");
    UPA_REQUIRE(std::isfinite(d.rate) && d.rate > 0.0,
                "Erlang rate must be positive");
  }
  void operator()(const HyperExponential& d) const {
    UPA_REQUIRE(d.p >= 0.0 && d.p <= 1.0,
                "HyperExponential mixing probability out of range");
    UPA_REQUIRE(d.rate1 > 0.0 && d.rate2 > 0.0,
                "HyperExponential rates must be positive");
  }
  void operator()(const LogNormal& d) const {
    UPA_REQUIRE(std::isfinite(d.mu) && std::isfinite(d.sigma) &&
                    d.sigma >= 0.0,
                "LogNormal requires finite mu and sigma >= 0");
  }
};

struct Sampler {
  Xoshiro256& rng;
  double operator()(const Exponential& d) const {
    return sample_exponential(d.rate, rng);
  }
  double operator()(const Deterministic& d) const { return d.value; }
  double operator()(const UniformReal& d) const {
    return d.low + (d.high - d.low) * rng.uniform01();
  }
  double operator()(const Erlang& d) const {
    double sum = 0.0;
    for (unsigned i = 0; i < d.k; ++i) sum += sample_exponential(d.rate, rng);
    return sum;
  }
  double operator()(const HyperExponential& d) const {
    const double rate = rng.uniform01() < d.p ? d.rate1 : d.rate2;
    return sample_exponential(rate, rng);
  }
  double operator()(const LogNormal& d) const {
    return std::exp(d.mu + d.sigma * sample_standard_normal(rng));
  }
};

struct Mean {
  double operator()(const Exponential& d) const { return 1.0 / d.rate; }
  double operator()(const Deterministic& d) const { return d.value; }
  double operator()(const UniformReal& d) const {
    return 0.5 * (d.low + d.high);
  }
  double operator()(const Erlang& d) const { return d.k / d.rate; }
  double operator()(const HyperExponential& d) const {
    return d.p / d.rate1 + (1.0 - d.p) / d.rate2;
  }
  double operator()(const LogNormal& d) const {
    return std::exp(d.mu + 0.5 * d.sigma * d.sigma);
  }
};

struct Variance {
  double operator()(const Exponential& d) const {
    return 1.0 / (d.rate * d.rate);
  }
  double operator()(const Deterministic&) const { return 0.0; }
  double operator()(const UniformReal& d) const {
    const double w = d.high - d.low;
    return w * w / 12.0;
  }
  double operator()(const Erlang& d) const {
    return d.k / (d.rate * d.rate);
  }
  double operator()(const HyperExponential& d) const {
    const double m = Mean{}(d);
    const double m2 =
        2.0 * (d.p / (d.rate1 * d.rate1) + (1.0 - d.p) / (d.rate2 * d.rate2));
    return m2 - m * m;
  }
  double operator()(const LogNormal& d) const {
    const double s2 = d.sigma * d.sigma;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * d.mu + s2);
  }
};

}  // namespace

void validate(const Distribution& d) { std::visit(Validator{}, d); }

double sample(const Distribution& d, Xoshiro256& rng) {
  validate(d);
  return std::visit(Sampler{rng}, d);
}

double mean(const Distribution& d) {
  validate(d);
  return std::visit(Mean{}, d);
}

double variance(const Distribution& d) {
  validate(d);
  return std::visit(Variance{}, d);
}

}  // namespace upa::sim
