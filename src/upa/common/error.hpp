#pragma once
// Error handling for the upa library.
//
// Policy (C++ Core Guidelines E.2/E.14): throw exceptions derived from
// std::exception to signal errors that cannot be handled locally.
// Precondition violations on the public API throw upa::common::ModelError
// with a message naming the offending argument; internal invariant
// violations use UPA_ASSERT which aborts in all build types (they indicate
// library bugs, not user errors).

#include <cstddef>
#include <source_location>
#include <stdexcept>
#include <string>

namespace upa::common {

/// Thrown when a model is ill-formed (bad probabilities, negative rates,
/// inconsistent dimensions, ...) or when an algorithm cannot proceed
/// (singular matrix, failed convergence, unbounded state space).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown specifically when an iterative algorithm fails to converge.
/// Carries the iteration count and final residual so callers (e.g. solver
/// fallback chains) can report actionable per-stage diagnostics.
class ConvergenceError : public ModelError {
 public:
  explicit ConvergenceError(const std::string& what) : ModelError(what) {}
  ConvergenceError(const std::string& what, std::size_t iterations,
                   double final_residual)
      : ModelError(what),
        iterations_(iterations),
        final_residual_(final_residual) {}

  /// Iterations performed before giving up (0 when unknown).
  [[nodiscard]] std::size_t iterations() const noexcept {
    return iterations_;
  }
  /// Infinity-norm residual at the last iteration (0 when unknown).
  [[nodiscard]] double final_residual() const noexcept {
    return final_residual_;
  }

 private:
  std::size_t iterations_ = 0;
  double final_residual_ = 0.0;
};

[[noreturn]] void throw_model_error(
    const std::string& message,
    std::source_location loc = std::source_location::current());

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace upa::common

/// Precondition check on public API boundaries: throws ModelError.
#define UPA_REQUIRE(cond, message)                 \
  do {                                             \
    if (!(cond)) {                                 \
      ::upa::common::throw_model_error((message)); \
    }                                              \
  } while (false)

/// Internal invariant check: aborts (library bug if it fires).
#define UPA_ASSERT(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::upa::common::detail::assert_fail(#cond, __FILE__, __LINE__); \
    }                                                                 \
  } while (false)
