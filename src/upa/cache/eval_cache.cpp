#include "upa/cache/eval_cache.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>

namespace upa::cache {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t key_digest(const std::string& bytes) noexcept {
  return fnv1a(bytes);
}

std::string solver_id_from_key_bytes(const std::string& bytes) {
  // KeyBuilder's first field: u64 little-endian length, then the id.
  UPA_REQUIRE(bytes.size() >= 8,
              "cache key bytes too short to hold a solver-id prefix");
  std::uint64_t length = 0;
  for (int i = 7; i >= 0; --i) {
    length = (length << 8) |
             static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(i)]);
  }
  UPA_REQUIRE(length > 0 && length <= bytes.size() - 8,
              "cache key bytes have a corrupt solver-id prefix");
  return bytes.substr(8, length);
}

KeyBuilder::KeyBuilder(std::string solver_id, std::uint32_t version)
    : solver_id_(std::move(solver_id)) {
  UPA_REQUIRE(!solver_id_.empty(), "cache key needs a solver id");
  add(solver_id_);
  add(static_cast<std::uint64_t>(version));
}

void KeyBuilder::append_raw(const void* data, std::size_t size) {
  bytes_.append(static_cast<const char*>(data), size);
}

KeyBuilder& KeyBuilder::add(double value) {
  UPA_REQUIRE(!std::isnan(value),
              "cache key for solver '" + solver_id_ +
                  "' has a NaN parameter; NaN never equals itself, so no "
                  "stable cache identity exists for it");
  if (value == 0.0) value = 0.0;  // -0.0 == 0.0 must hash equal
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  return add(bits);
}

KeyBuilder& KeyBuilder::add(std::uint64_t value) {
  // Fixed-width little-endian words, independent of host endianness.
  char out[8];
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  append_raw(out, sizeof(out));
  return *this;
}

KeyBuilder& KeyBuilder::add(std::int64_t value) {
  return add(std::bit_cast<std::uint64_t>(value));
}

KeyBuilder& KeyBuilder::add(bool value) {
  return add(static_cast<std::uint64_t>(value ? 1 : 0));
}

KeyBuilder& KeyBuilder::add(const std::string& value) {
  add(static_cast<std::uint64_t>(value.size()));
  append_raw(value.data(), value.size());
  return *this;
}

KeyBuilder& KeyBuilder::add(const std::vector<double>& values) {
  add(static_cast<std::uint64_t>(values.size()));
  for (const double v : values) add(v);
  return *this;
}

CacheKey KeyBuilder::finish() && {
  CacheKey key;
  key.solver_id = std::move(solver_id_);
  key.bytes = std::move(bytes_);
  key.digest = fnv1a(key.bytes);
  return key;
}

EvalCache::EvalCache(Config config)
    : max_entries_per_shard_(config.max_entries_per_shard),
      shards_(std::max<std::size_t>(config.shards, 1)) {
  UPA_REQUIRE(config.max_entries_per_shard >= 1,
              "cache shards must hold at least one entry");
}

void EvalCache::complete_insert(Shard& shard, const std::string& bytes) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.stats.inserts;
  shard.completed_order.push_back(bytes);
  // Evict oldest completed entries past the cap. In-flight entries are
  // not in completed_order, so a running computation is never cancelled.
  while (shard.completed_order.size() - shard.next_eviction >
         max_entries_per_shard_) {
    shard.entries.erase(shard.completed_order[shard.next_eviction]);
    ++shard.next_eviction;
    ++shard.stats.evictions;
  }
  // Compact the order log once the evicted prefix dominates.
  if (shard.next_eviction > max_entries_per_shard_) {
    shard.completed_order.erase(
        shard.completed_order.begin(),
        shard.completed_order.begin() +
            static_cast<std::ptrdiff_t>(shard.next_eviction));
    shard.next_eviction = 0;
  }
}

void EvalCache::abandon_insert(Shard& shard, const std::string& bytes) {
  // The computation threw: remove the in-flight entry so a later call
  // retries instead of replaying the exception forever.
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries.erase(bytes);
}

void EvalCache::count_shard_outcome(Shard& shard, Outcome outcome) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  switch (outcome) {
    case Outcome::kHit: ++shard.stats.hits; break;
    case Outcome::kDiskHit: ++shard.stats.disk_hits; break;
    case Outcome::kMiss: ++shard.stats.misses; break;
  }
}

void EvalCache::record_lookup(const std::string& solver_id, Outcome outcome,
                              obs::Observer* ob) {
  {
    std::lock_guard<std::mutex> lock(solver_mutex_);
    CacheStats& s = solver_stats_[solver_id];
    switch (outcome) {
      case Outcome::kHit: ++s.hits; break;
      case Outcome::kDiskHit: ++s.disk_hits; break;
      case Outcome::kMiss: ++s.misses; break;
    }
  }
  if (ob != nullptr) {
    const bool hit = outcome != Outcome::kMiss;
    ob->metrics.counter(hit ? "cache.hits" : "cache.misses").add();
    ob->metrics
        .counter("cache." + solver_id + (hit ? ".hits" : ".misses"))
        .add();
  }
}

bool EvalCache::seed(const CacheKey& key, StoredValue value) {
  UPA_REQUIRE(value.value != nullptr && value.type != nullptr,
              "cache seed needs a non-null value and type");
  std::promise<Stored> promise;
  promise.set_value(std::move(value));
  StoredFuture future = promise.get_future().share();
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.entries.emplace(key.bytes,
                                                      Entry{future});
    if (!inserted) return false;
  }
  complete_insert(shard, key.bytes);
  return true;
}

std::vector<EvalCache::SnapshotEntry> EvalCache::snapshot() const {
  std::vector<SnapshotEntry> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [bytes, entry] : shard.entries) {
      if (entry.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        continue;  // in-flight computation; nothing to export yet
      }
      // A completed entry's future holds either a value or the first
      // miss's exception; exceptional entries are removed by
      // abandon_insert before anyone could snapshot them, but guard
      // anyway so a torn race cannot abort an export.
      try {
        out.push_back(SnapshotEntry{bytes, entry.future.get()});
      } catch (...) {
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.key_bytes < b.key_bytes;
            });
  return out;
}

CacheStats EvalCache::stats() const {
  // All shard locks are taken before any counter is read (always in
  // shard order, so two concurrent stats() calls cannot deadlock).
  // Locking shards one at a time would let a lookup on an
  // already-summed shard race ahead of one on a not-yet-summed shard,
  // so hit + miss totals could disagree with the number of lookups the
  // caller performed -- visible as off-by-a-few totals under the
  // eight-thread hammer test.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const Shard& shard : shards_) locks.emplace_back(shard.mutex);
  CacheStats total;
  for (const Shard& shard : shards_) {
    total.hits += shard.stats.hits;
    total.disk_hits += shard.stats.disk_hits;
    total.misses += shard.stats.misses;
    total.inserts += shard.stats.inserts;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

CacheStats EvalCache::solver_stats(const std::string& solver_id) const {
  std::lock_guard<std::mutex> lock(solver_mutex_);
  const auto it = solver_stats_.find(solver_id);
  return it == solver_stats_.end() ? CacheStats{} : it->second;
}

std::vector<std::pair<std::string, CacheStats>> EvalCache::per_solver_stats()
    const {
  std::lock_guard<std::mutex> lock(solver_mutex_);
  return {solver_stats_.begin(), solver_stats_.end()};
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.entries.size();
  }
  return n;
}

void EvalCache::publish_metrics(obs::MetricsRegistry& metrics) const {
  const CacheStats total = stats();
  metrics.gauge("cache.hits").set(static_cast<double>(total.hits));
  metrics.gauge("cache.disk_hits")
      .set(static_cast<double>(total.disk_hits));
  metrics.gauge("cache.misses").set(static_cast<double>(total.misses));
  metrics.gauge("cache.inserts").set(static_cast<double>(total.inserts));
  metrics.gauge("cache.evictions").set(static_cast<double>(total.evictions));
  metrics.gauge("cache.hit_rate").set(total.hit_rate());
  for (const auto& [solver, s] : per_solver_stats()) {
    metrics.gauge("cache." + solver + ".hits")
        .set(static_cast<double>(s.hits));
    metrics.gauge("cache." + solver + ".misses")
        .set(static_cast<double>(s.misses));
    metrics.gauge("cache." + solver + ".hit_rate").set(s.hit_rate());
  }
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.completed_order.clear();
    shard.next_eviction = 0;
    shard.stats = CacheStats{};
  }
  std::lock_guard<std::mutex> lock(solver_mutex_);
  solver_stats_.clear();
}

void EvalCache::reset_stats() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats = CacheStats{};
  }
  std::lock_guard<std::mutex> lock(solver_mutex_);
  solver_stats_.clear();
}

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

EvalCache& global() {
  static EvalCache cache;
  return cache;
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

}  // namespace upa::cache
