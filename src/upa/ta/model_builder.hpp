#pragma once
// Assembles the full four-level hierarchical model of the travel agency:
// resource level (web farm, redundancy) -> service catalog -> function
// models (interaction diagrams, Figures 3-6) -> user-level scenario set
// (Table 1). The result is a core::UserLevelModel whose
// user_availability() reproduces eq. (10).

#include "upa/core/hierarchy.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::ta {

/// Service ids within the TA catalog, in insertion order.
struct TaServiceIds {
  core::ServiceId net = 0;
  core::ServiceId lan = 0;
  core::ServiceId web = 0;
  core::ServiceId application = 0;
  core::ServiceId database = 0;
  core::ServiceId flight = 0;
  core::ServiceId hotel = 0;
  core::ServiceId car = 0;
  core::ServiceId payment = 0;
};

/// Builds the service catalog (availabilities from compute_services).
[[nodiscard]] std::pair<core::ServiceCatalog, TaServiceIds>
build_service_catalog(const TaParameters& p);

/// Builds the five TA function models over a catalog's service ids.
[[nodiscard]] std::vector<core::FunctionModel> build_function_models(
    const TaServiceIds& ids, const TaParameters& p);

/// The complete user-level model for a user class.
[[nodiscard]] core::UserLevelModel build_user_model(UserClass uc,
                                                    const TaParameters& p);

}  // namespace upa::ta
