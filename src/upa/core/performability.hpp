#pragma once
// Composite performance-availability evaluation (Meyer-style
// performability, the paper's Section 4.1.2): combine a pure availability
// model (a CTMC over failure/repair states) with a pure performance model
// (per-state service success probability), assuming the performance
// process reaches quasi-steady state between failure events.

#include <functional>
#include <vector>

#include "upa/markov/ctmc.hpp"

namespace upa::markov {
class Ctmc;
}

namespace upa::core {

/// A CTMC whose states carry a "probability a request is served" reward.
class CompositeAvailabilityModel {
 public:
  /// `service_probability[s]` = P(an arriving request is served | state s).
  CompositeAvailabilityModel(markov::Ctmc chain,
                             std::vector<double> service_probability);

  [[nodiscard]] const markov::Ctmc& chain() const noexcept { return chain_; }
  [[nodiscard]] const std::vector<double>& service_probability()
      const noexcept {
    return service_probability_;
  }

  /// The composite availability: sum_s pi_s * service_probability[s].
  /// When the evaluation cache is enabled (cache::set_enabled), identical
  /// (chain, reward) models replay the exact first-miss value.
  [[nodiscard]] double availability() const;

  /// Decomposition of the unavailability into the part caused by
  /// performance loss in operational states and the part caused by being
  /// in fully-down states (service probability == 0).
  struct Breakdown {
    double performance_loss = 0.0;  ///< sum over states with 0 < r < 1 etc.
    double downtime_loss = 0.0;     ///< mass of states with r == 0
    double availability = 0.0;
  };
  [[nodiscard]] Breakdown breakdown() const;

 private:
  markov::Ctmc chain_;
  std::vector<double> service_probability_;
};

/// Validates the quasi-steady-state assumption behind composite models:
/// returns the ratio (largest failure/repair exit rate) / (performance
/// event rate); the composite approach is sound when this is << 1.
[[nodiscard]] double timescale_separation_ratio(const markov::Ctmc& chain,
                                                double performance_rate);

}  // namespace upa::core
