// Tests for the extension modules: explicit architecture RBDs (Figures
// 7/8), up/down equivalent-component analysis, symbolic eq. (10), and
// visit-count distributions.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/markov/updown.hpp"
#include "upa/profile/visit_distribution.hpp"
#include "upa/profile/session_graph.hpp"
#include "upa/ta/architecture.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/symbolic.hpp"
#include "upa/ta/user_availability.hpp"

namespace ut = upa::ta;
namespace um = upa::markov;
namespace up = upa::profile;
using upa::common::ModelError;

// ---------------------------------------------------------------- RBDs

TEST(ArchitectureRbd, BasicInternalMatchesTable4Formulas) {
  auto p = ut::TaParameters::paper_defaults();
  p.architecture = ut::Architecture::kBasic;
  const auto arch = ut::basic_architecture_rbd(p);
  const double rbd_a =
      upa::rbd::availability(arch.internal, arch.availabilities);
  // Table 4 route: net * lan * ws_host * A(AS) * A(DS).
  const double ws_host = um::two_state_steady_availability(p.lambda_web,
                                                           p.mu_web);
  const double expected = p.a_net * p.a_lan * ws_host *
                          ut::application_service_availability(p) *
                          ut::database_service_availability(p);
  EXPECT_NEAR(rbd_a, expected, 1e-12);
}

TEST(ArchitectureRbd, RedundantInternalMatchesTable4Formulas) {
  const auto p = ut::TaParameters::paper_defaults();
  const auto arch = ut::redundant_architecture_rbd(p);
  const double rbd_a =
      upa::rbd::availability(arch.internal, arch.availabilities);
  const double ws_host = um::two_state_steady_availability(p.lambda_web,
                                                           p.mu_web);
  const double ws_farm = 1.0 - std::pow(1.0 - ws_host, double(p.n_web));
  const double expected = p.a_net * p.a_lan * ws_farm *
                          ut::application_service_availability(p) *
                          ut::database_service_availability(p);
  EXPECT_NEAR(rbd_a, expected, 1e-12);
}

TEST(ArchitectureRbd, SearchPathIncludesExternals) {
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  const auto arch = ut::redundant_architecture_rbd(p);
  const double internal =
      upa::rbd::availability(arch.internal, arch.availabilities);
  const double search =
      upa::rbd::availability(arch.search_path, arch.availabilities);
  const double ext = ut::flight_availability(p) * ut::hotel_availability(p) *
                     ut::car_availability(p);
  EXPECT_NEAR(search, internal * ext, 1e-12);
}

TEST(ArchitectureRbd, SinglePointsOfFailureDominateImportance) {
  // With N = 1 the external reservation systems are weak (0.9) series
  // singletons: their Birnbaum importance tops the Search path, above
  // net/LAN (0.9966) -- the structural argument for Table 8's N sweep.
  const auto arch =
      ut::redundant_architecture_rbd(ut::TaParameters::paper_defaults());
  const auto ranking = ut::resource_importance_ranking(arch);
  ASSERT_GE(ranking.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(ranking[i].component.starts_with("flight") ||
                ranking[i].component.starts_with("hotel") ||
                ranking[i].component.starts_with("car"))
        << ranking[i].component;
  }
  // Every series singleton outranks every replicated internal part.
  auto birnbaum_of = [&](const std::string& name) {
    for (const auto& imp : ranking) {
      if (imp.component == name) return imp.birnbaum;
    }
    ADD_FAILURE() << "missing " << name;
    return 0.0;
  };
  for (const auto& imp : ranking) {
    if (imp.component.starts_with("cas#") ||
        imp.component.starts_with("ws#") ||
        imp.component.starts_with("disk#")) {
      EXPECT_LT(imp.birnbaum, birnbaum_of("net"));
      EXPECT_LT(imp.birnbaum, birnbaum_of("lan"));
    }
  }
  // Replicating the externals (N = 4) hands dominance back to net/LAN.
  const auto arch4 = ut::redundant_architecture_rbd(
      ut::TaParameters::paper_defaults().with_reservation_systems(4));
  const auto ranking4 = ut::resource_importance_ranking(arch4);
  EXPECT_TRUE(ranking4[0].component == "net" ||
              ranking4[0].component == "lan");
  EXPECT_TRUE(ranking4[1].component == "net" ||
              ranking4[1].component == "lan");
}

TEST(ArchitectureRbd, RedundancyBeatsBasicStructurally) {
  auto basic_params = ut::TaParameters::paper_defaults();
  basic_params.architecture = ut::Architecture::kBasic;
  const auto basic = ut::basic_architecture_rbd(basic_params);
  const auto redundant =
      ut::redundant_architecture_rbd(ut::TaParameters::paper_defaults());
  EXPECT_GT(
      upa::rbd::availability(redundant.internal, redundant.availabilities),
      upa::rbd::availability(basic.internal, basic.availabilities));
}

// ------------------------------------------------------------- up/down

TEST(UpDown, TwoStateRecoversItsOwnRates) {
  const double lambda = 0.01;
  const double mu = 2.0;
  const auto m = um::up_down_measures(
      um::two_state_availability(lambda, mu), {0});
  EXPECT_NEAR(m.availability, mu / (lambda + mu), 1e-12);
  EXPECT_NEAR(m.equivalent_failure_rate, lambda, 1e-12);
  EXPECT_NEAR(m.equivalent_repair_rate, mu, 1e-12);
  EXPECT_NEAR(m.mean_up_time, 1.0 / lambda, 1e-9);
}

TEST(UpDown, ParallelPairEquivalentComponent) {
  // Two independent units (lambda, mu), system up when >= 1 up.
  // Chain over #up: 2 -> 1 (2*lambda), 1 -> 0 (lambda), repairs mu each
  // (independent repair: 0 -> 1 at 2*mu, 1 -> 2 at mu).
  const double lambda = 0.1;
  const double mu = 1.0;
  um::Ctmc chain(3);  // state = number up
  chain.add_rate(2, 1, 2 * lambda);
  chain.add_rate(1, 0, lambda);
  chain.add_rate(0, 1, 2 * mu);
  chain.add_rate(1, 2, mu);
  const auto m = um::up_down_measures(chain, {1, 2});
  const double a_unit = mu / (lambda + mu);
  EXPECT_NEAR(m.availability, 1.0 - (1.0 - a_unit) * (1.0 - a_unit),
              1e-12);
  // MDT of a parallel pair with independent repair = 1/(2 mu).
  EXPECT_NEAR(m.mean_down_time, 1.0 / (2.0 * mu), 1e-12);
  // Frequency consistency: A + UA = 1 splits via MUT/MDT.
  EXPECT_NEAR(m.mean_up_time * m.failure_frequency, m.availability, 1e-12);
}

TEST(UpDown, WebFarmEquivalentComponent) {
  // The redundant web farm summarized as one equivalent component.
  upa::core::WebFarmParams farm{4, 1e-3, 1.0, 0.98, 12.0};
  const auto chain = upa::core::imperfect_coverage_chain(farm);
  std::vector<std::size_t> up;
  for (std::size_t i = 1; i <= 4; ++i) up.push_back(i);
  const auto m = um::up_down_measures(chain.chain, up);
  EXPECT_GT(m.availability, 0.9999);
  // The farm fails mostly through uncovered failures: MDT close to the
  // manual reconfiguration time 1/beta = 5 minutes, far below 1/mu.
  EXPECT_LT(m.mean_down_time, 0.2);
  EXPECT_GT(m.mean_down_time, 1.0 / 12.0 * 0.5);
  EXPECT_NEAR(m.availability,
              m.mean_up_time / (m.mean_up_time + m.mean_down_time), 1e-9);
}

TEST(UpDown, RejectsTrivialPartitions) {
  const auto chain = um::two_state_availability(1.0, 1.0);
  EXPECT_THROW((void)um::up_down_measures(chain, {0, 1}), ModelError);
  EXPECT_THROW((void)um::up_down_measures(chain, {}), ModelError);
}

// ------------------------------------------------------------ symbolic

TEST(SymbolicEq10, EvaluatesToNumericEq10) {
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    for (std::size_t n : {1u, 3u, 5u}) {
      const auto p =
          ut::TaParameters::paper_defaults().with_reservation_systems(n);
      const auto expr = ut::user_availability_expr(uclass, p);
      const auto params = ut::service_params(ut::compute_services(p));
      EXPECT_NEAR(expr.evaluate(params),
                  ut::user_availability_eq10(uclass, p), 1e-12)
          << ut::user_class_name(uclass) << " N=" << n;
    }
  }
}

TEST(SymbolicEq10, GradientRanksFirstOrderServices) {
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(5);
  const auto grad = ut::user_availability_gradient(ut::UserClass::kB, p);
  // The paper: net, LAN and web service have FIRST-order impact.
  for (const std::string first : {"Anet", "ALAN", "AWS"}) {
    for (const std::string second :
         {"AAS", "ADS", "AFlight", "AHotel", "ACar", "APS"}) {
      EXPECT_GT(grad.at(first), grad.at(second))
          << first << " vs " << second;
    }
  }
}

TEST(SymbolicEq10, GradientMatchesFiniteDifference) {
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(3);
  const auto expr = ut::user_availability_expr(ut::UserClass::kA, p);
  auto params = ut::service_params(ut::compute_services(p));
  const auto grad = upa::core::gradient(expr, params);
  for (const auto& [name, value] : grad) {
    const double h = 1e-7;
    auto up = params;
    auto down = params;
    up[name] += h;
    down[name] -= h;
    const double fd = (expr.evaluate(up) - expr.evaluate(down)) / (2 * h);
    EXPECT_NEAR(value, fd, 1e-6) << name;
  }
}

// --------------------------------------------------- visit distribution

TEST(VisitDistribution, GeometricSelfLoopCase) {
  // A -> A with 0.5, A -> Exit 0.5: N ~ Geometric(0.5) starting at 1.
  const auto profile = up::SessionGraphBuilder()
                           .add_function("A")
                           .transition("Start", "A", 1.0)
                           .transition("A", "A", 0.5)
                           .transition("A", "Exit", 0.5)
                           .build();
  const auto law = up::visit_law(profile, 0);
  EXPECT_NEAR(law.reach_probability, 1.0, 1e-12);
  EXPECT_NEAR(law.return_probability, 0.5, 1e-12);
  const auto pmf = up::visit_count_distribution(profile, 0, 5);
  EXPECT_NEAR(pmf[0], 0.0, 1e-12);
  EXPECT_NEAR(pmf[1], 0.5, 1e-12);
  EXPECT_NEAR(pmf[3], 0.125, 1e-12);
}

TEST(VisitDistribution, ExpectedVisitsConsistent) {
  const auto profile = ut::fitted_session_graph(ut::UserClass::kB);
  for (std::size_t f = 0; f < profile.function_count(); ++f) {
    const auto law = up::visit_law(profile, f);
    EXPECT_NEAR(law.expected_visits(), profile.expected_visits(f), 1e-9)
        << profile.function_name(f);
  }
}

TEST(VisitDistribution, PmfSumsToOneInTheLimit) {
  const auto profile = ut::fitted_session_graph(ut::UserClass::kA);
  const auto pmf = up::visit_count_distribution(profile, 2, 200);
  double sum = 0.0;
  for (double p : pmf) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(VisitDistribution, NoReturnFunctionIsBernoulli) {
  // Pay in the TA graph is never revisited.
  const auto profile = ut::fitted_session_graph(ut::UserClass::kA);
  const auto law =
      up::visit_law(profile, profile.function_index("Pay"));
  EXPECT_NEAR(law.return_probability, 0.0, 1e-12);
  EXPECT_NEAR(law.reach_probability, 0.075, 3e-3);  // Table 1 SC4 mass
}
