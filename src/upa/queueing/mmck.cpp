#include "upa/queueing/mmck.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::queueing {
namespace {

void check_args(double alpha, double nu, std::size_t servers,
                std::size_t capacity) {
  UPA_REQUIRE(std::isfinite(alpha) && alpha > 0.0,
              "arrival rate must be positive");
  UPA_REQUIRE(std::isfinite(nu) && nu > 0.0, "service rate must be positive");
  UPA_REQUIRE(servers >= 1, "need at least one server");
  UPA_REQUIRE(capacity >= servers,
              "capacity must be at least the number of servers");
}

/// Unnormalized birth-death weights w_j with w_0 = 1:
/// w_j = w_{j-1} * rho / min(j, c). Stable (no factorials/powers), and
/// rescaled in-loop by an exact power of two whenever the running weight
/// crosses 2^512, so extreme loads (rho ~ 1e3 with K ~ 1e4 grows like
/// (rho/c)^K) stay finite instead of overflowing the one-shot
/// normalization. Only the ratio of weights matters downstream, and a
/// power-of-two rescale is exact, so cases that never trigger it keep
/// their historical bits; rescaled prefixes may flush weights below
/// ~2^-512 of the peak to zero, which is far under the 1e-16 resolution
/// of the normalized sum.
std::vector<double> weights(double rho, std::size_t servers,
                            std::size_t capacity) {
  constexpr double kRescaleAbove = 0x1p512;
  constexpr double kRescale = 0x1p-512;
  std::vector<double> w(capacity + 1);
  w[0] = 1.0;
  for (std::size_t j = 1; j <= capacity; ++j) {
    w[j] = w[j - 1] * rho / static_cast<double>(std::min(j, servers));
    if (w[j] > kRescaleAbove) {
      for (std::size_t k = 0; k <= j; ++k) w[k] *= kRescale;
    }
  }
  return w;
}

double mmck_loss_probability_uncached(double alpha, double nu,
                                      std::size_t servers,
                                      std::size_t capacity) {
  const double rho = alpha / nu;
  const std::vector<double> w = weights(rho, servers, capacity);
  const double total = upa::common::kahan_sum(w);
  return w[capacity] / total;
}

MmckMetrics mmck_metrics_uncached(double alpha, double nu,
                                  std::size_t servers, std::size_t capacity);

}  // namespace

double mmck_loss_probability(double alpha, double nu, std::size_t servers,
                             std::size_t capacity) {
  check_args(alpha, nu, servers, capacity);
  if (!cache::enabled()) {
    return mmck_loss_probability_uncached(alpha, nu, servers, capacity);
  }
  cache::KeyBuilder kb("queueing.mmck_loss", 1);
  kb.add(alpha)
      .add(nu)
      .add(static_cast<std::uint64_t>(servers))
      .add(static_cast<std::uint64_t>(capacity));
  return *cache::global().get_or_compute<double>(std::move(kb).finish(), [&] {
    return mmck_loss_probability_uncached(alpha, nu, servers, capacity);
  });
}

MmckMetrics mmck_metrics(double alpha, double nu, std::size_t servers,
                         std::size_t capacity) {
  check_args(alpha, nu, servers, capacity);
  if (!cache::enabled()) {
    return mmck_metrics_uncached(alpha, nu, servers, capacity);
  }
  cache::KeyBuilder kb("queueing.mmck_metrics", 1);
  kb.add(alpha)
      .add(nu)
      .add(static_cast<std::uint64_t>(servers))
      .add(static_cast<std::uint64_t>(capacity));
  return *cache::global().get_or_compute<MmckMetrics>(
      std::move(kb).finish(),
      [&] { return mmck_metrics_uncached(alpha, nu, servers, capacity); });
}

namespace {

MmckMetrics mmck_metrics_uncached(double alpha, double nu,
                                  std::size_t servers, std::size_t capacity) {
  MmckMetrics m;
  m.rho = alpha / nu;
  std::vector<double> w = weights(m.rho, servers, capacity);
  upa::common::normalize(w);
  m.state_probabilities = w;
  m.blocking = w[capacity];
  for (std::size_t j = 0; j <= capacity; ++j) {
    m.mean_in_system += static_cast<double>(j) * w[j];
    m.mean_busy_servers +=
        static_cast<double>(std::min(j, servers)) * w[j];
    if (j > servers) {
      m.mean_in_queue += static_cast<double>(j - servers) * w[j];
    }
  }
  m.throughput = alpha * (1.0 - m.blocking);
  m.mean_response = m.mean_in_system / m.throughput;  // Little's law
  return m;
}

}  // namespace

double paper_pk(double alpha, double nu, std::size_t operational_servers,
                std::size_t buffer_size) {
  return mmck_loss_probability(alpha, nu, operational_servers, buffer_size);
}

}  // namespace upa::queueing
