#pragma once
// Direct linear solver: LU factorization with partial pivoting. This is
// the workhorse behind CTMC steady-state solutions and absorbing-DTMC
// fundamental matrices (systems are dense and modest in size).

#include "upa/linalg/matrix.hpp"

namespace upa::linalg {

/// LU factorization with partial pivoting (PA = LU). Throws ModelError on
/// singular (to working precision) input.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b for one right-hand side.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A X = B column by column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// det(A), including pivot sign.
  [[nodiscard]] double determinant() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;                     // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_;  // row permutation
  int pivot_sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
[[nodiscard]] Vector solve(Matrix a, const Vector& b);

/// Matrix inverse via LU; prefer solve() when you only need A^{-1} b.
[[nodiscard]] Matrix inverse(Matrix a);

}  // namespace upa::linalg
