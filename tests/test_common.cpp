// Unit tests for upa::common: numeric helpers, table/CSV rendering, and
// the error-reporting contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "upa/common/bench_json.hpp"
#include "upa/common/csv.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/common/table.hpp"

namespace uc = upa::common;

TEST(Numeric, CloseHandlesRelativeAndAbsolute) {
  EXPECT_TRUE(uc::close(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(uc::close(1e9, 1e9 * (1 + 1e-10)));
  EXPECT_FALSE(uc::close(1.0, 1.001));
  EXPECT_FALSE(uc::close(0.0, 1e-9));
  EXPECT_TRUE(uc::close(0.0, 1e-13));
}

TEST(Numeric, IsProbabilityBoundaries) {
  EXPECT_TRUE(uc::is_probability(0.0));
  EXPECT_TRUE(uc::is_probability(1.0));
  EXPECT_TRUE(uc::is_probability(0.5));
  EXPECT_TRUE(uc::is_probability(-1e-12));   // round-off tolerated
  EXPECT_TRUE(uc::is_probability(1.0 + 1e-12));
  EXPECT_FALSE(uc::is_probability(-0.01));
  EXPECT_FALSE(uc::is_probability(1.01));
  EXPECT_FALSE(uc::is_probability(std::nan("")));
}

TEST(Numeric, ClampProbabilityClampsRoundoff) {
  EXPECT_EQ(uc::clamp_probability(-1e-12), 0.0);
  EXPECT_EQ(uc::clamp_probability(1.0 + 1e-12), 1.0);
  EXPECT_DOUBLE_EQ(uc::clamp_probability(0.25), 0.25);
}

TEST(Numeric, ClampProbabilityRejectsOutOfRange) {
  EXPECT_THROW((void)uc::clamp_probability(1.5), uc::ModelError);
  EXPECT_THROW((void)uc::clamp_probability(-0.5), uc::ModelError);
}

TEST(Numeric, KahanSumBeatsNaiveOnSmallAddends) {
  std::vector<double> values{1e16};
  for (int i = 0; i < 10; ++i) values.push_back(1.0);
  const double kahan = uc::kahan_sum(values);
  EXPECT_DOUBLE_EQ(kahan, 1e16 + 10.0);
}

TEST(Numeric, FactorialMatchesKnownValues) {
  EXPECT_DOUBLE_EQ(uc::factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(uc::factorial(1), 1.0);
  EXPECT_DOUBLE_EQ(uc::factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(uc::factorial(10), 3628800.0);
  EXPECT_THROW((void)uc::factorial(171), uc::ModelError);
}

TEST(Numeric, LogFactorialConsistentWithFactorial) {
  for (unsigned n : {0u, 1u, 5u, 20u, 100u}) {
    EXPECT_NEAR(std::exp(uc::log_factorial(n) - uc::log_factorial(n)), 1.0,
                1e-12);
  }
  EXPECT_NEAR(uc::log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(Numeric, BinomialMatchesPascal) {
  EXPECT_NEAR(uc::binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(uc::binomial(10, 5), 252.0, 1e-6);
  EXPECT_DOUBLE_EQ(uc::binomial(3, 5), 0.0);
  EXPECT_NEAR(uc::binomial(0, 0), 1.0, 1e-12);
}

TEST(Numeric, KOutOfNMatchesHandComputation) {
  // 2-of-3 with p = 0.9: 3 p^2 (1-p) + p^3 = 0.972.
  EXPECT_NEAR(uc::k_out_of_n(2, 3, 0.9), 0.972, 1e-12);
  // 1-of-2 = parallel: 1 - (1-p)^2.
  EXPECT_NEAR(uc::k_out_of_n(1, 2, 0.9), 0.99, 1e-12);
  // n-of-n = series: p^n.
  EXPECT_NEAR(uc::k_out_of_n(3, 3, 0.9), 0.729, 1e-12);
}

TEST(Numeric, KOutOfNRejectsBadK) {
  EXPECT_THROW((void)uc::k_out_of_n(0, 3, 0.9), uc::ModelError);
  EXPECT_THROW((void)uc::k_out_of_n(4, 3, 0.9), uc::ModelError);
}

TEST(Numeric, NormalizeMakesUnitSum) {
  std::vector<double> w{1.0, 2.0, 7.0};
  uc::normalize(w);
  EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-15);
  EXPECT_NEAR(w[2], 0.7, 1e-15);
}

TEST(Numeric, NormalizeRejectsZeroSum) {
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(uc::normalize(w), uc::ModelError);
}

TEST(Numeric, DowntimeConversions) {
  EXPECT_NEAR(uc::downtime_hours_per_year(1.0), 0.0, 1e-15);
  EXPECT_NEAR(uc::downtime_hours_per_year(0.0), 8760.0, 1e-12);
  // "five nines" is about 5.26 minutes per year.
  EXPECT_NEAR(uc::downtime_minutes_per_year(0.99999), 5.256, 1e-3);
}

TEST(Error, ThrowModelErrorMentionsFunction) {
  try {
    uc::throw_model_error("boom");
    FAIL() << "expected throw";
  } catch (const uc::ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Error, ConvergenceErrorIsAModelError) {
  EXPECT_THROW(throw uc::ConvergenceError("x"), uc::ModelError);
}

TEST(Table, RendersHeadersAndRows) {
  uc::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  uc::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), uc::ModelError);
}

TEST(Table, TitleAppearsAboveTable) {
  uc::Table t({"x"});
  t.set_title("My Title");
  EXPECT_EQ(t.str().rfind("My Title", 0), 0u);
}

TEST(Table, FormattersProduceExpectedShapes) {
  EXPECT_EQ(uc::fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(uc::fmt_fixed(1.0, 0), "1");
  const std::string sci = uc::fmt_sci(0.000123, 2);
  EXPECT_NE(sci.find('e'), std::string::npos);
  EXPECT_FALSE(uc::fmt(1234.5678, 4).empty());
}

TEST(Csv, EmitsHeaderAndEscapes) {
  uc::CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "has,comma"});
  csv.add_row({"quote\"inside", "multi\nline"});
  const std::string s = csv.str();
  EXPECT_EQ(s.rfind("a,b\n", 0), 0u);
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, RejectsWrongWidth) {
  uc::CsvWriter csv({"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), uc::ModelError);
}

TEST(Csv, QuotesCarriageReturns) {
  uc::CsvWriter csv({"a"});
  csv.add_row({"cr\rhere"});
  EXPECT_NE(csv.str().find("\"cr\rhere\""), std::string::npos);
}

TEST(Csv, RoundTripsCommasQuotesAndNewlines) {
  uc::CsvWriter csv({"name", "value"});
  csv.add_row({"plain", "1"});
  csv.add_row({"has,comma", "quote\"inside"});
  csv.add_row({"multi\nline", "cr\r\nmix"});
  csv.add_row({"", "trailing"});
  const auto rows = uc::parse_csv(csv.str());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"plain", "1"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"has,comma", "quote\"inside"}));
  EXPECT_EQ(rows[3], (std::vector<std::string>{"multi\nline", "cr\r\nmix"}));
  EXPECT_EQ(rows[4], (std::vector<std::string>{"", "trailing"}));
}

TEST(Csv, ParserHandlesLineEndingsAndEdgeCells) {
  // CRLF and lone-CR rows, quoted empty cells, quote-at-EOF.
  const auto rows = uc::parse_csv("a,b\r\nc,\"\"\rd,\"e\"");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", ""}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"d", "e"}));
  EXPECT_TRUE(uc::parse_csv("").empty());
  // A trailing newline does not create a phantom empty row.
  EXPECT_EQ(uc::parse_csv("x\n").size(), 1u);
}

TEST(Csv, ParserRejectsMalformedQuoting) {
  EXPECT_THROW(uc::parse_csv("a\"b"), uc::ModelError);        // stray quote
  EXPECT_THROW(uc::parse_csv("\"open"), uc::ModelError);      // unterminated
  EXPECT_THROW(uc::parse_csv("\"x\"y"), uc::ModelError);  // text after close
}

// --- bench_json: the BENCH_*.json section-merge writer -------------------

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Self-deleting temp path under the build dir's cwd.
struct TempFile {
  std::string path;
  explicit TempFile(std::string name) : path(std::move(name)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(BenchJson, CreatesFileWithOneSection) {
  TempFile tmp("test_bench_json_create.json");
  uc::write_bench_json(tmp.path, "alpha", {{"x", 1.5}, {"count", 3.0}});
  const std::string text = read_file(tmp.path);
  const auto sections = uc::bench_json_sections(text);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].first, "alpha");
  EXPECT_NE(sections[0].second.find("\"x\": 1.5"), std::string::npos);
  EXPECT_NE(sections[0].second.find("\"count\": 3"), std::string::npos);
}

TEST(BenchJson, AppendsNewSectionsAndPreservesOthers) {
  TempFile tmp("test_bench_json_append.json");
  uc::write_bench_json(tmp.path, "first", {{"a", 1.0}});
  uc::write_bench_json(tmp.path, "second", {{"b", 2.0}});
  const auto sections = uc::bench_json_sections(read_file(tmp.path));
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].first, "first");
  EXPECT_EQ(sections[1].first, "second");
  EXPECT_NE(sections[0].second.find("\"a\": 1"), std::string::npos);
}

TEST(BenchJson, ReplacesSectionInPlaceKeepingOrder) {
  TempFile tmp("test_bench_json_replace.json");
  uc::write_bench_json(tmp.path, "first", {{"a", 1.0}});
  uc::write_bench_json(tmp.path, "second", {{"b", 2.0}});
  uc::write_bench_json(tmp.path, "first", {{"a", 9.0}, {"extra", 4.0}});
  const auto sections = uc::bench_json_sections(read_file(tmp.path));
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].first, "first");  // replaced, not moved to the end
  EXPECT_NE(sections[0].second.find("\"a\": 9"), std::string::npos);
  EXPECT_NE(sections[0].second.find("\"extra\": 4"), std::string::npos);
  EXPECT_EQ(sections[0].second.find("\"a\": 1,"), std::string::npos);
  EXPECT_NE(sections[1].second.find("\"b\": 2"), std::string::npos);
}

TEST(BenchJson, ValuesRoundTripAtFullPrecision) {
  TempFile tmp("test_bench_json_precision.json");
  const double value = 0.1234567890123456789;  // not representable exactly
  uc::write_bench_json(tmp.path, "precision", {{"v", value}});
  const auto sections = uc::bench_json_sections(read_file(tmp.path));
  ASSERT_EQ(sections.size(), 1u);
  const std::size_t colon = sections[0].second.find("\"v\": ");
  ASSERT_NE(colon, std::string::npos);
  EXPECT_EQ(std::stod(sections[0].second.substr(colon + 5)), value);
}

TEST(BenchJson, MalformedFileIsRewrittenNotCrashed) {
  TempFile tmp("test_bench_json_malformed.json");
  {
    std::ofstream out(tmp.path);
    out << "{ this is : not json ]";
  }
  uc::write_bench_json(tmp.path, "fresh", {{"x", 1.0}});
  const auto sections = uc::bench_json_sections(read_file(tmp.path));
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].first, "fresh");
}

TEST(BenchJson, SectionScannerHandlesStringsAndNesting) {
  const auto sections = uc::bench_json_sections(
      "{\n  \"a\": {\"s\": \"tricky \\\"}{\", \"n\": [1, {\"m\": 2}]},\n"
      "  \"b\": 3.5\n}\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].first, "a");
  EXPECT_NE(sections[0].second.find("\"m\": 2"), std::string::npos);
  EXPECT_EQ(sections[1].first, "b");
  EXPECT_EQ(sections[1].second, "3.5");
  EXPECT_TRUE(uc::bench_json_sections("no object here").empty());
}
