#include "upa/obs/observer.hpp"

#include <utility>

#include "upa/common/error.hpp"

namespace upa::obs {

Observer Observer::make_shard() const {
  Observer shard;
  shard.trace_level = trace_level;
  shard.tracer = tracer.make_shard();
  return shard;
}

void Observer::absorb(Observer&& shard) {
  metrics.merge_from(shard.metrics);
  tracer.absorb(std::move(shard.tracer));
}

std::string trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kSession: return "session";
    case TraceLevel::kInvocation: return "invocation";
    case TraceLevel::kService: return "service";
  }
  UPA_ASSERT(false);
  return {};
}

TraceLevel trace_level_from_name(const std::string& name) {
  if (name == "off") return TraceLevel::kOff;
  if (name == "session") return TraceLevel::kSession;
  if (name == "invocation") return TraceLevel::kInvocation;
  if (name == "service") return TraceLevel::kService;
  throw upa::common::ModelError(
      "unknown trace level '" + name +
      "' (valid: off session invocation service)");
}

}  // namespace upa::obs
