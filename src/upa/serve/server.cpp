#include "upa/serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "upa/common/error.hpp"

namespace upa::serve {

namespace {

/// Protocol guard: a request line longer than this is a client bug, not
/// a workload; the connection is dropped instead of buffering unbounded.
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// How often the acceptor re-checks the stop flag while idle.
constexpr int kAcceptPollMillis = 100;

/// Bounds both directions of socket I/O. The send timeout matters as
/// much as the recv one: without it a client that stops reading (full
/// socket buffer) pins a worker in send_all forever, and stop() can
/// never join that worker.
void set_io_timeouts(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Writes the whole buffer; false on a broken/slow peer. MSG_NOSIGNAL
/// keeps a disappeared client from killing the process with SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Pulls one '\n'-terminated line out of (buffer + socket). Returns
/// false on EOF, timeout, error, or an over-long line.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer, 0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer.size() > kMaxLineBytes) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF, timeout (EAGAIN), or hard error
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      latency_(obs::geometric_buckets(1e-4, 2.0, 18)) {
  UPA_REQUIRE(config_.workers >= 1, "ServerConfig.workers must be >= 1");
  UPA_REQUIRE(config_.capacity >= config_.workers,
              "ServerConfig.capacity must be >= workers (K >= i)");
  UPA_REQUIRE(config_.deadline_seconds >= 0.0,
              "ServerConfig.deadline_seconds must be >= 0");
  UPA_REQUIRE(config_.read_timeout_seconds > 0.0,
              "ServerConfig.read_timeout_seconds must be > 0");
  dispatcher_.register_method("stats", [this](const Json&) {
    const ServerStats s = stats();
    Json out = Json::object();
    out.set("workers", Json(config_.workers));
    out.set("capacity", Json(config_.capacity));
    out.set("accepted", Json(static_cast<double>(s.accepted)));
    out.set("rejected", Json(static_cast<double>(s.rejected)));
    out.set("completed", Json(static_cast<double>(s.completed)));
    out.set("requests", Json(static_cast<double>(s.requests)));
    out.set("deadline_missed", Json(static_cast<double>(s.deadline_missed)));
    out.set("protocol_errors", Json(static_cast<double>(s.protocol_errors)));
    out.set("in_system", Json(s.in_system));
    out.set("max_in_system", Json(s.max_in_system));
    return out;
  });
}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  UPA_REQUIRE(!started_, "Server::start called twice");

  // SOCK_CLOEXEC: a fork+exec elsewhere in the process (the farm
  // orchestrator restarting a replica) must not leak this socket into
  // the child, where a lingering duplicate would keep peers from ever
  // seeing EOF.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  UPA_REQUIRE(listen_fd_ >= 0,
              std::string("socket() failed: ") + std::strerror(errno));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("ServerConfig.bind_address is not an IPv4 "
                             "address: " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("bind(" + config_.bind_address + ":" +
                             std::to_string(config_.port) +
                             ") failed: " + reason);
  }
  if (::listen(listen_fd_, 256) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("listen() failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    queue_.clear();
    in_system_ = 0;
  }
  accept_stop_.store(false);
  started_at_ = Clock::now();
  started_ = true;
  running_.store(true);

  acceptor_ = std::thread([this] { acceptor_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Wake connections parked in recv between requests: SHUT_RD makes
    // their recv return 0 at once, so the drain never waits out a read
    // timeout on an idle kept-alive client. Safe under mutex_: a worker
    // closes an fd only after unparking it.
    for (const int fd : parked_fds_) ::shutdown(fd, SHUT_RD);
  }
  accept_stop_.store(true);
  work_ready_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
  running_.store(false);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load();
  s.rejected = rejected_.load();
  s.completed = completed_.load();
  s.requests = requests_.load();
  s.deadline_missed = deadline_missed_.load();
  s.protocol_errors = protocol_errors_.load();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.in_system = in_system_;
  }
  s.max_in_system = max_in_system_.load();
  return s;
}

void Server::publish_metrics(obs::MetricsRegistry& metrics) const {
  const ServerStats s = stats();
  metrics.gauge("serve.accepted").set(static_cast<double>(s.accepted));
  metrics.gauge("serve.rejected").set(static_cast<double>(s.rejected));
  metrics.gauge("serve.completed").set(static_cast<double>(s.completed));
  metrics.gauge("serve.requests").set(static_cast<double>(s.requests));
  metrics.gauge("serve.deadline_missed")
      .set(static_cast<double>(s.deadline_missed));
  metrics.gauge("serve.protocol_errors")
      .set(static_cast<double>(s.protocol_errors));
  metrics.gauge("serve.queue_depth").set(static_cast<double>(s.in_system));
  metrics.gauge("serve.queue_depth_max")
      .set(static_cast<double>(s.max_in_system));
  std::lock_guard<std::mutex> lock(latency_mutex_);
  metrics
      .histogram("serve.request_latency_seconds", latency_.upper_bounds())
      .merge_from(latency_);
}

void Server::acceptor_loop() {
  // Built once: the admission-rejection line written to a connection
  // that arrives while the system holds K admitted connections.
  const std::string reject_line =
      make_error_response(Json(), ErrorCode::kQueueFull,
                          "server queue full (capacity " +
                              std::to_string(config_.capacity) + ")")
          .dump() +
      "\n";

  while (!accept_stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;  // timeout tick or EINTR: re-check stop flag
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_ && in_system_ < config_.capacity) {
        ++in_system_;
        std::size_t seen = max_in_system_.load();
        while (in_system_ > seen &&
               !max_in_system_.compare_exchange_weak(seen, in_system_)) {
        }
        queue_.push_back(Job{fd, Clock::now()});
        admitted = true;
      }
    }
    if (admitted) {
      accepted_.fetch_add(1);
      work_ready_.notify_one();
      continue;
    }

    // Reject without ever blocking the accept loop: the socket is made
    // non-blocking, one short send is attempted (a fresh connection's
    // send buffer always has room for ~100 bytes; if not, the client
    // sees the close alone), and the connection is dropped unread.
    rejected_.fetch_add(1);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    (void)::send(fd, reject_line.data(), reject_line.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and fully drained
      job = queue_.front();
      queue_.pop_front();
    }
    handle_connection(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_system_;
    }
    completed_.fetch_add(1);
  }
}

void Server::handle_connection(const Job& job) {
  set_io_timeouts(job.fd, config_.read_timeout_seconds);
  std::string buffer;
  bool first_request = true;
  for (;;) {
    std::string line;
    // The first request is always served -- its connection was admitted
    // -- but between requests the fd is parked so stop() can wake the
    // blocking recv and end the drain immediately.
    if (first_request) {
      if (!read_line(job.fd, buffer, line)) break;
    } else {
      if (!park_for_next_request(job.fd)) break;
      const bool got = read_line(job.fd, buffer, line);
      unpark(job.fd);
      if (!got) break;
    }
    if (line.empty()) continue;
    const Clock::time_point line_read = Clock::now();
    // The admission-anchored budget and timings apply only to the
    // connection's first request; later requests on a kept-alive
    // connection are each fresh and anchor at their own line read --
    // otherwise every request after the budget elapsed would 504 and
    // the latency histogram would absorb the whole connection age.
    const Clock::time_point anchor =
        first_request ? job.admitted : line_read;
    first_request = false;
    const std::string response = respond_line(line, anchor, line_read);
    if (!send_all(job.fd, response + "\n")) break;
  }
  ::close(job.fd);
}

bool Server::park_for_next_request(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  parked_fds_.push_back(fd);
  return true;
}

void Server::unpark(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = parked_fds_.begin(); it != parked_fds_.end(); ++it) {
    if (*it == fd) {
      parked_fds_.erase(it);
      return;
    }
  }
}

std::string Server::respond_line(const std::string& line,
                                 Clock::time_point anchor,
                                 Clock::time_point line_read) {
  const double queue_wait = seconds_between(anchor, line_read);

  Json request;
  bool parsed = true;
  try {
    request = parse_json(line);
  } catch (const std::exception&) {
    parsed = false;
  }

  std::string method = "?";
  Json id;
  if (parsed) {
    if (const Json* m = request.find("method");
        m != nullptr && m->is_string()) {
      method = m->as_string();
    }
    if (const Json* i = request.find("id"); i != nullptr) id = *i;
  }

  // Effective deadline: the server-wide budget counts from the request
  // anchor (connection admission for a connection's first request, line
  // read for later ones); a request-level `deadline_ms` counts from
  // when its line was read and can only tighten the budget.
  Clock::time_point deadline = Clock::time_point::max();
  if (config_.deadline_seconds > 0.0) {
    deadline = anchor + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                config_.deadline_seconds));
  }
  if (parsed) {
    if (const Json* ms = request.find("deadline_ms");
        ms != nullptr && ms->is_number() && ms->as_number() > 0.0) {
      const auto request_deadline =
          line_read + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(ms->as_number() /
                                                        1000.0));
      if (request_deadline < deadline) deadline = request_deadline;
    }
  }

  int code = 200;
  std::string response;
  if (!parsed) {
    protocol_errors_.fetch_add(1);
    code = ErrorCode::kBadRequest;
    response = make_error_response(Json(), code,
                                   "request line is not valid JSON")
                   .dump();
  } else if (Clock::now() > deadline) {
    // Spent its whole budget waiting in the queue.
    deadline_missed_.fetch_add(1);
    code = ErrorCode::kDeadlineExceeded;
    response = make_error_response(id, code,
                                   "deadline exceeded before dispatch")
                   .dump();
  } else {
    Json envelope = dispatcher_.dispatch(request);
    if (const Json* err = envelope.find("error"); err != nullptr) {
      if (const Json* c = err->find("code"); c != nullptr) {
        code = static_cast<int>(c->as_number());
      }
    }
    if (Clock::now() > deadline) {
      // Computed, but past the budget: the client contract is a 504,
      // even though the work was done (counted as a miss either way).
      deadline_missed_.fetch_add(1);
      code = ErrorCode::kDeadlineExceeded;
      response = make_error_response(
                     id, code, "deadline exceeded during evaluation")
                     .dump();
    } else {
      response = envelope.dump();
    }
  }
  requests_.fetch_add(1);

  const double latency = seconds_between(anchor, Clock::now());
  observe_request(method, code, queue_wait, latency);
  return response;
}

void Server::observe_request(const std::string& method, int code,
                             double queue_wait_seconds,
                             double latency_seconds) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_.record(latency_seconds);
  obs::Observer* ob = config_.obs;
  if (ob == nullptr) return;
  ob->metrics.counter("serve.requests").add(1);
  ob->metrics.counter("serve.code." + std::to_string(code)).add(1);
  const double end = ob->tracer.wall_now();
  const obs::SpanId id =
      ob->tracer.begin(obs::SpanLevel::kServeRequest, method,
                       end - latency_seconds, obs::TimeDomain::kWallSeconds);
  ob->tracer.attr(id, "code", static_cast<double>(code));
  ob->tracer.attr(id, "queue_wait_seconds", queue_wait_seconds);
  ob->tracer.end(id, end);
}

}  // namespace upa::serve
