#include "upa/rbd/importance.hpp"

#include <algorithm>
#include <limits>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::rbd {

std::vector<ComponentImportance> importance_ranking(const Block& block,
                                                    const ParamMap& params) {
  const double a_sys = availability(block, params);
  const double ua_sys = 1.0 - a_sys;

  std::vector<ComponentImportance> result;
  for (const std::string& name : block.component_names()) {
    const auto it = params.find(name);
    UPA_REQUIRE(it != params.end(),
                "no availability provided for component " + name);
    const double a_c = upa::common::clamp_probability(it->second);

    ComponentImportance imp;
    imp.component = name;
    const double up = availability_given(block, params, name, true);
    const double down = availability_given(block, params, name, false);
    imp.birnbaum = up - down;
    imp.criticality =
        ua_sys > 0.0 ? imp.birnbaum * (1.0 - a_c) / ua_sys : 0.0;
    imp.risk_achievement_worth =
        ua_sys > 0.0 ? (1.0 - down) / ua_sys
                     : std::numeric_limits<double>::infinity();
    imp.risk_reduction_worth =
        (1.0 - up) > 0.0 ? ua_sys / (1.0 - up)
                         : std::numeric_limits<double>::infinity();
    result.push_back(imp);
  }
  std::sort(result.begin(), result.end(),
            [](const ComponentImportance& a, const ComponentImportance& b) {
              return a.birnbaum > b.birnbaum;
            });
  return result;
}

}  // namespace upa::rbd
