// upa_cachectl: offline maintenance for a persistent cache directory
// (the --cache-dir tier of upa_cli / upa_served).
//
// Verbs:
//   inspect   walk every *.upaseg: record counts, CRC skips, torn
//             tails, and whether its *.upaidx sidecar is fresh -- read
//             only, writes nothing;
//   index     build or refresh the *.upaidx sidecar of every segment
//             (what a lazy attach would do, paid once up front);
//   compact   merge the segments first-wins into one compact-* segment
//             (duplicates and CRC-bad records dropped), atomically;
//   gc        compact, additionally dropping records with unregistered
//             codec tags and deleting wrong-generation segment files.
//
// Every verb prints one JSON object of stats to stdout. The mutating
// verbs (index/compact/gc) take the directory's single-writer flock
// (`.upalock`) first, so running them against a directory with a live
// upa_served/upa_cli writer fails fast naming the holder's pid instead
// of racing its appends. `inspect` stays lock-free and read-only.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "upa/cache/compact.hpp"
#include "upa/cache/index.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cache/segment.hpp"
#include "upa/cli/args.hpp"
#include "upa/common/error.hpp"

namespace {

namespace cache = upa::cache;
namespace fs = std::filesystem;

void print_usage(std::ostream& os) {
  os << "usage: upa_cachectl <inspect|index|compact|gc> --dir DIR\n"
        "\n"
        "Offline maintenance for a persistent evaluation-cache\n"
        "directory (*.upaseg segments + *.upaidx index sidecars).\n"
        "\n"
        "verbs:\n"
        "  inspect  per-segment record/CRC/torn-tail counts and index\n"
        "           freshness; read-only, takes no lock\n"
        "  index    build or refresh every segment's *.upaidx sidecar\n"
        "  compact  merge segments first-wins into one compact-* file\n"
        "           (drops duplicate and CRC-corrupt records)\n"
        "  gc       compact + drop unknown-codec records and delete\n"
        "           wrong-generation segment files\n"
        "\n"
        "index/compact/gc take the directory's .upalock single-writer\n"
        "lock and fail fast when a live process holds it.\n"
        "\n"
        "options:\n"
        "  --dir DIR   the cache directory (required)\n"
        "  --help      this text\n";
}

std::vector<std::string> list_segments(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == cache::kSegmentExtension) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int cmd_inspect(const std::string& dir) {
  std::uint64_t records = 0, crc_skipped = 0, torn_bytes = 0, bytes = 0;
  std::size_t rejected = 0, fresh_indexes = 0, stale_indexes = 0;
  const std::vector<std::string> segments = list_segments(dir);
  std::cout << "{\n  \"segments\": [\n";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& path = segments[i];
    const cache::MappedFile file(path);
    cache::SegmentLoadStats stats;
    const bool ok =
        cache::load_segment_mapped(file, stats, [](cache::SegmentRecord&&) {});
    // Freshness check without writing: decode the sidecar (when there
    // is one) and compare size + CRC chain against the live segment.
    bool index_fresh = false;
    const std::string index_path = cache::index_path_for(path);
    if (ok && fs::exists(index_path)) {
      const cache::MappedFile index_file(index_path);
      std::string index_bytes;
      if (index_file.ok() &&
          index_file.read_at(0, index_file.size(), &index_bytes)) {
        cache::SegmentIndex index;
        std::uint64_t size = 0;
        std::uint32_t chain = 0;
        index_fresh = cache::decode_index(index_bytes, &index) &&
                      cache::segment_crc_chain(file, &size, &chain) &&
                      index.segment_size == size &&
                      index.segment_crc_chain == chain;
      }
    }
    records += stats.records_loaded;
    crc_skipped += stats.records_skipped_crc;
    torn_bytes += stats.torn_tail_bytes;
    bytes += file.size();
    rejected += ok ? 0 : 1;
    fresh_indexes += index_fresh ? 1 : 0;
    stale_indexes += (ok && !index_fresh) ? 1 : 0;
    std::cout << "    {\"path\": \"" << fs::path(path).filename().string()
              << "\", \"ok\": " << (ok ? 1 : 0)
              << ", \"bytes\": " << file.size()
              << ", \"records\": " << stats.records_loaded
              << ", \"crc_skipped\": " << stats.records_skipped_crc
              << ", \"torn_tail_bytes\": " << stats.torn_tail_bytes
              << ", \"index_fresh\": " << (index_fresh ? 1 : 0) << "}"
              << (i + 1 < segments.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"segment_files\": " << segments.size() << ",\n"
            << "  \"segments_rejected\": " << rejected << ",\n"
            << "  \"bytes\": " << bytes << ",\n"
            << "  \"records\": " << records << ",\n"
            << "  \"records_skipped_crc\": " << crc_skipped << ",\n"
            << "  \"torn_tail_bytes\": " << torn_bytes << ",\n"
            << "  \"indexes_fresh\": " << fresh_indexes << ",\n"
            << "  \"indexes_missing_or_stale\": " << stale_indexes << "\n"
            << "}" << std::endl;
  return 0;
}

int cmd_index(const std::string& dir) {
  std::size_t loaded = 0, rebuilt = 0, written = 0, rejected = 0;
  std::uint64_t entries = 0;
  for (const std::string& path : list_segments(dir)) {
    const cache::MappedFile file(path);
    const cache::IndexLoadResult result =
        cache::load_or_build_index(path, file);
    if (!result.segment_ok) {
      ++rejected;
      continue;
    }
    loaded += result.loaded ? 1 : 0;
    rebuilt += result.rebuilt ? 1 : 0;
    written += result.written ? 1 : 0;
    entries += result.index.entries.size();
  }
  std::cout << "{\"indexes_loaded\": " << loaded
            << ", \"indexes_rebuilt\": " << rebuilt
            << ", \"indexes_written\": " << written
            << ", \"segments_rejected\": " << rejected
            << ", \"records_indexed\": " << entries << "}" << std::endl;
  return 0;
}

int cmd_compact(const std::string& dir, bool gc) {
  cache::CompactionOptions options;
  options.gc = gc;
  const cache::CompactionStats stats = cache::compact_directory(dir, options);
  std::cout << "{\"performed\": " << (stats.performed ? 1 : 0)
            << ", \"segments_in\": " << stats.segments_in
            << ", \"segments_rejected\": " << stats.segments_rejected
            << ", \"segments_removed\": " << stats.segments_removed
            << ", \"records_in\": " << stats.records_in
            << ", \"records_kept\": " << stats.records_kept
            << ", \"records_dropped\": " << stats.records_dropped()
            << ", \"records_dropped_duplicate\": "
            << stats.records_dropped_duplicate
            << ", \"records_dropped_crc\": " << stats.records_dropped_crc
            << ", \"records_dropped_unknown_tag\": "
            << stats.records_dropped_unknown_tag
            << ", \"bytes_in\": " << stats.bytes_in
            << ", \"bytes_out\": " << stats.bytes_out << ", \"output\": \""
            << (stats.performed
                    ? fs::path(stats.output_path).filename().string()
                    : std::string())
            << "\"}" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  upa::cli::Args args(argc, argv);
  if (args.has("help") || args.command() == "help") {
    print_usage(std::cout);
    return 0;
  }
  const std::string verb = args.command();
  if (verb != "inspect" && verb != "index" && verb != "compact" &&
      verb != "gc") {
    std::cerr << "upa_cachectl: unknown verb '" << verb << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unknown =
      upa::cli::unknown_options(args, {"dir"});
  if (!unknown.empty()) {
    std::cerr << "upa_cachectl: unknown option '--" << unknown.front()
              << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  const std::string dir = args.get("dir", "");
  if (dir.empty()) {
    std::cerr << "upa_cachectl: --dir is required\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    UPA_REQUIRE(fs::is_directory(dir),
                "--dir must name an existing directory, got '" + dir + "'");
    if (verb == "inspect") return cmd_inspect(dir);
    // Mutating verbs exclude live writers (and each other) up front;
    // the error names the pid holding the directory.
    const cache::DirectoryLock lock(dir);
    if (verb == "index") return cmd_index(dir);
    return cmd_compact(dir, verb == "gc");
  } catch (const std::exception& e) {
    std::cerr << "upa_cachectl: " << e.what() << "\n";
    return 1;
  }
}
