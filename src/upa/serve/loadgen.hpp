#pragma once
// Load generation against a upa_served instance. Two workloads plus a
// smoke probe:
//
//  - Loss workload (the dogfood experiment): open-loop Poisson arrivals
//    of single-request connections whose `sleep` service times are
//    exponential draws with rate nu. The server under test is then
//    *literally* the paper's M/M/i/K model -- i workers, K admitted
//    connections -- and the measured rejection fraction must match
//    queueing::mmck_loss_probability(lambda, nu, i, K) to statistical
//    tolerance. "Open loop" means arrivals never wait for completions:
//    each arrival fires at its pre-drawn absolute time on its own
//    thread, exactly like the paper's unconditioned request stream.
//
//  - Session replay: open-loop Poisson *session* arrivals, each walking
//    the paper's Table 1 operational profile (class A browsers / class
//    B buyers) as one connection issuing one evaluation RPC per visited
//    function. Admission control applies per session, mirroring how the
//    paper's user either gets the web service or leaves.
//
// All randomness derives from the config seed via the sim layer's
// Xoshiro256, so two runs against the same server issue identical
// request sequences at identical scheduled offsets.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "upa/serve/client.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::serve {

/// Fixed mapping from the paper's user-visible functions to evaluation
/// RPCs (Home->ping, Browse->mmck_metrics, Search->web_farm_availability,
/// Book->user_availability, Pay->composite_availability); unknown
/// functions map to ping.
[[nodiscard]] std::string method_for_function(
    const std::string& function_name);

/// Inverse of method_for_function; empty string for methods outside the
/// session mapping (used by the trace collector's profile mining).
[[nodiscard]] std::string function_for_method(const std::string& method);

struct LossConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Open-loop arrival rate lambda [1/s].
  double lambda = 150.0;
  /// Service rate nu [1/s]: each request asks the server to hold a
  /// worker for an Exp(nu) draw.
  double nu = 100.0;
  std::size_t requests = 1000;
  std::uint64_t seed = 1;
  double connect_timeout_seconds = 5.0;
  /// Per-call receive timeout; 0 inherits connect_timeout_seconds (see
  /// Client::connect). Bounds how long a request waits on a stuck or
  /// killed server before counting as a transport error.
  double call_timeout_seconds = 0.0;
  /// Originate a trace context per request and keep the per-request log
  /// (LossResult.request_log), so bench artifacts are joinable against
  /// collected traces by trace_id. Off by default: the request bytes on
  /// the wire then stay identical to the pre-tracing workload.
  bool trace = false;
};

/// One issued request, kept when LossConfig.trace is set. The trace_id
/// is a pure function of (seed, request index), so a rerun regenerates
/// the same join keys.
struct LossRequestLog {
  std::string trace_id;
  double scheduled_offset_seconds = 0.0;
  std::string method;
  CallOutcome outcome = CallOutcome::kTransportError;
  int code = 0;
  double latency_seconds = 0.0;
};

struct LossResult {
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t rejected = 0;          ///< 503 admission rejections
  std::size_t deadline_missed = 0;   ///< 504 responses
  std::size_t transport_errors = 0;  ///< refused/reset/unparseable
  std::size_t other_errors = 0;      ///< 400/404/500 envelopes
  /// rejected / sent -- the measured counterpart of p_K(i).
  double measured_loss = 0.0;
  double mean_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double wall_seconds = 0.0;
  /// sent / wall_seconds; should approach lambda when the generator
  /// keeps up with its own schedule.
  double offered_rate = 0.0;
  /// One entry per request, in issue order (empty unless config.trace).
  std::vector<LossRequestLog> request_log;
};

/// Runs the loss workload; throws ModelError on a config that cannot be
/// scheduled (non-positive rates, zero requests).
[[nodiscard]] LossResult run_loss_workload(const LossConfig& config);

struct SessionConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  ta::UserClass uclass = ta::UserClass::kB;
  std::size_t sessions = 50;
  /// Open-loop session arrival rate [1/s].
  double session_rate = 20.0;
  std::uint64_t seed = 1;
  double connect_timeout_seconds = 5.0;
  /// Per-call receive timeout; 0 inherits connect_timeout_seconds.
  double call_timeout_seconds = 0.0;
  /// Originate a trace context per invocation and keep the
  /// per-invocation log (SessionResult.invocation_log).
  bool trace = false;
};

/// One session invocation, kept when SessionConfig.trace is set.
struct SessionInvocationLog {
  std::size_t session = 0;
  std::size_t invocation = 0;  ///< 0-based position within the session
  std::string function;        ///< Table 1 function name
  std::string method;          ///< RPC it mapped to
  std::string trace_id;
  CallOutcome outcome = CallOutcome::kTransportError;
  int code = 0;
};

struct SessionResult {
  std::size_t sessions = 0;
  std::size_t completed = 0;  ///< every invocation answered ok
  std::size_t rejected = 0;   ///< session hit admission control (503)
  std::size_t failed = 0;     ///< transport/protocol failure mid-session
  std::size_t invocations = 0;
  std::size_t invocation_failures = 0;
  double mean_invocations_per_session = 0.0;
  /// completed / sessions -- the service-side availability a user of
  /// this class perceives from the evaluation service itself.
  double session_success_fraction = 0.0;
  /// One entry per issued invocation, ordered by (session, invocation)
  /// (empty unless config.trace).
  std::vector<SessionInvocationLog> invocation_log;
};

/// Replays Table 1 sessions against the server; the function -> RPC
/// mapping is fixed (Home->ping, Browse->mmck_metrics, Search->
/// web_farm_availability, Book->user_availability, Pay->
/// composite_availability).
[[nodiscard]] SessionResult run_session_replay(const SessionConfig& config);

/// One request per public RPC method over a single connection.
struct SmokeResult {
  std::vector<std::pair<std::string, bool>> checks;
  bool all_ok = false;
};
[[nodiscard]] SmokeResult run_smoke_probe(const std::string& host,
                                          std::uint16_t port);

}  // namespace upa::serve
