// Tests for the observability subsystem: metrics registry (counters,
// gauges, fixed-bucket histograms), hierarchical trace spans, exporters
// (span JSONL, Chrome trace-event, metric CSV/JSONL), instrumentation of
// the event engine / robust stationary solver / end-to-end simulator /
// campaign runner, and the guarantee that an attached observer never
// changes results (bit-for-bit RNG replay).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "upa/common/csv.hpp"
#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/obs/export.hpp"
#include "upa/obs/metrics.hpp"
#include "upa/obs/observer.hpp"
#include "upa/obs/trace.hpp"
#include "upa/sim/engine.hpp"
#include "upa/ta/end_to_end_sim.hpp"
#include "upa/ta/services.hpp"

namespace uo = upa::obs;
namespace um = upa::markov;
namespace usim = upa::sim;
namespace ut = upa::ta;
namespace inj = upa::inject;
using upa::common::ModelError;

// ----------------------------------------------------------------- Metrics

TEST(ObsMetrics, HistogramUsesLeBucketSemantics) {
  uo::Histogram h({1.0, 2.0, 5.0});
  h.record(0.5);  // -> le=1
  h.record(1.0);  // -> le=1 (boundary values land in their own bucket)
  h.record(1.5);  // -> le=2
  h.record(2.0);  // -> le=2
  h.record(5.0);  // -> le=5
  h.record(5.1);  // -> overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 5.1);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 5.1);
}

TEST(ObsMetrics, EmptyHistogramReportsZeroMinMax) {
  const uo::Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(ObsMetrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(uo::Histogram({}), ModelError);
  EXPECT_THROW(uo::Histogram({1.0, 1.0}), ModelError);
  EXPECT_THROW(uo::Histogram({2.0, 1.0}), ModelError);
  EXPECT_THROW(uo::Histogram({1.0, std::numeric_limits<double>::infinity()}),
               ModelError);
}

TEST(ObsMetrics, GeometricBuckets) {
  const auto bounds = uo::geometric_buckets(1e-3, 10.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-3);
  EXPECT_DOUBLE_EQ(bounds[1], 1e-2);
  EXPECT_DOUBLE_EQ(bounds[2], 1e-1);
}

TEST(ObsMetrics, RegistryCreatesOnceAndKeepsReferencesStable) {
  uo::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  uo::Counter& c = registry.counter("a.count");
  c.add();
  registry.counter("a.count").add(2);
  EXPECT_EQ(c.value(), 3u);

  uo::Gauge& g = registry.gauge("b.gauge");
  g.set(2.0);
  g.max_with(1.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.max_with(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);

  uo::Histogram& h = registry.histogram("c.hist", {1.0, 2.0});
  h.record(1.5);
  EXPECT_EQ(registry.histogram("c.hist", {1.0, 2.0}).count(), 1u);
  // Same name, different meaning: rejected.
  EXPECT_THROW(registry.histogram("c.hist", {1.0, 3.0}), ModelError);

  EXPECT_FALSE(registry.empty());
  registry.clear();
  EXPECT_TRUE(registry.empty());
}

// ------------------------------------------------------------------ Tracer

TEST(ObsTrace, SpanNestingOrderingAndAttributes) {
  uo::Tracer tracer;
  const uo::SpanId session =
      tracer.begin(uo::SpanLevel::kSession, "session", 1.0);
  const uo::SpanId invocation =
      tracer.begin(uo::SpanLevel::kFunctionInvocation, "Search", 1.5,
                   uo::TimeDomain::kModelHours, session);
  const uo::SpanId service =
      tracer.begin(uo::SpanLevel::kServiceCall, "web_service", 1.5,
                   uo::TimeDomain::kModelHours, invocation);
  tracer.end(service, 1.5);
  tracer.end(invocation, 2.0);
  tracer.attr(invocation, "ok", 1.0);
  tracer.end(session, 2.5);
  tracer.attr(session, "user_class", std::string("B"));

  ASSERT_EQ(tracer.spans().size(), 3u);
  // Spans export in begin() order; parents always precede children.
  EXPECT_EQ(tracer.spans()[0].id, session);
  EXPECT_EQ(tracer.spans()[1].id, invocation);
  EXPECT_EQ(tracer.spans()[2].id, service);
  EXPECT_EQ(tracer.span(session).parent, 0u);
  EXPECT_EQ(tracer.span(invocation).parent, session);
  EXPECT_EQ(tracer.span(service).parent, invocation);
  EXPECT_DOUBLE_EQ(tracer.span(session).start, 1.0);
  EXPECT_DOUBLE_EQ(tracer.span(session).end, 2.5);
  ASSERT_EQ(tracer.span(session).attributes.size(), 1u);
  EXPECT_EQ(tracer.span(session).attributes[0].key, "user_class");
  EXPECT_EQ(tracer.span(session).attributes[0].text, "B");
  EXPECT_FALSE(tracer.span(session).attributes[0].is_number);
  ASSERT_EQ(tracer.span(invocation).attributes.size(), 1u);
  EXPECT_TRUE(tracer.span(invocation).attributes[0].is_number);
  EXPECT_DOUBLE_EQ(tracer.span(invocation).attributes[0].number, 1.0);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTrace, EndBeforeStartAndUnknownIdsThrow) {
  uo::Tracer tracer;
  const uo::SpanId id = tracer.begin(uo::SpanLevel::kSession, "s", 2.0);
  EXPECT_THROW(tracer.end(id, 1.0), ModelError);
  EXPECT_THROW(tracer.end(id + 1, 3.0), ModelError);
  EXPECT_THROW(tracer.attr(id + 1, "k", 1.0), ModelError);
  EXPECT_THROW((void)tracer.span(id + 1), ModelError);
}

TEST(ObsTrace, FullTableDropsSpansAndNullIdIsANoOp) {
  uo::Tracer tracer(/*max_spans=*/2);
  const uo::SpanId a = tracer.begin(uo::SpanLevel::kSession, "a", 0.0);
  const uo::SpanId b = tracer.begin(uo::SpanLevel::kSession, "b", 0.0);
  const uo::SpanId c = tracer.begin(uo::SpanLevel::kSession, "c", 0.0);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(tracer.spans().size(), 2u);
  // Operations on the null id degrade to no-ops, not errors.
  tracer.end(0, 1.0);
  tracer.attr(0, "k", 1.0);
  tracer.attr(0, "k", std::string("v"));
}

TEST(ObsTrace, ClearKeepsIdsUnique) {
  uo::Tracer tracer;
  const uo::SpanId a = tracer.begin(uo::SpanLevel::kSession, "a", 0.0);
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  const uo::SpanId b = tracer.begin(uo::SpanLevel::kSession, "b", 0.0);
  EXPECT_GT(b, a);
}

TEST(ObsTrace, ScopedWallSpanIsNullTracerSafe) {
  uo::ScopedWallSpan span(nullptr, uo::SpanLevel::kSolverStage, "stage");
  EXPECT_EQ(span.id(), 0u);
  EXPECT_DOUBLE_EQ(span.elapsed_seconds(), 0.0);
  span.attr("k", 1.0);  // must not crash
}

TEST(ObsTrace, ScopedWallSpanRecordsAWallDomainSpan) {
  uo::Tracer tracer;
  {
    uo::ScopedWallSpan span(&tracer, uo::SpanLevel::kSolverStage, "stage");
    EXPECT_NE(span.id(), 0u);
    span.attr("outcome", std::string("accepted"));
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  const uo::Span& span = tracer.spans()[0];
  EXPECT_EQ(span.domain, uo::TimeDomain::kWallSeconds);
  EXPECT_GE(span.end, span.start);
  ASSERT_EQ(span.attributes.size(), 1u);
  EXPECT_EQ(span.attributes[0].text, "accepted");
}

TEST(ObsTrace, AbsorbRenumbersSpansAndRemapsParents) {
  uo::Tracer parent;
  (void)parent.begin(uo::SpanLevel::kSession, "existing", 0.0);

  uo::Tracer shard = parent.make_shard();
  const uo::SpanId root =
      shard.begin(uo::SpanLevel::kSession, "shard-root", 1.0);
  const uo::SpanId child = shard.begin(
      uo::SpanLevel::kFunctionInvocation, "shard-child",
      1.5, uo::TimeDomain::kModelHours, root);
  shard.end(child, 2.0);
  shard.end(root, 3.0);

  parent.absorb(std::move(shard));
  ASSERT_EQ(parent.spans().size(), 3u);
  const uo::Span& absorbed_root = parent.spans()[1];
  const uo::Span& absorbed_child = parent.spans()[2];
  EXPECT_EQ(absorbed_root.name, "shard-root");
  EXPECT_EQ(absorbed_root.parent, 0u);
  EXPECT_EQ(absorbed_child.parent, absorbed_root.id);
  EXPECT_DOUBLE_EQ(absorbed_child.start, 1.5);
  EXPECT_DOUBLE_EQ(absorbed_child.end, 2.0);
  // Ids keep ascending past the parent's own spans.
  EXPECT_GT(absorbed_root.id, parent.spans()[0].id);
  EXPECT_GT(absorbed_child.id, absorbed_root.id);
}

TEST(ObsTrace, AbsorbHonorsTheCapAndCarriesDropCounts) {
  uo::Tracer parent(2);
  (void)parent.begin(uo::SpanLevel::kSession, "kept", 0.0);

  uo::Tracer shard = parent.make_shard();
  EXPECT_EQ(shard.max_spans(), 2u);
  for (int i = 0; i < 3; ++i) {
    (void)shard.begin(uo::SpanLevel::kSession, "s", double(i));
  }
  EXPECT_EQ(shard.dropped(), 1u);  // shard hit its own cap once

  parent.absorb(std::move(shard));
  // One shard span fits, one is trimmed at the cap, plus the shard's own
  // drop: exactly what a serial tracer would have counted.
  EXPECT_EQ(parent.spans().size(), 2u);
  EXPECT_EQ(parent.dropped(), 2u);
}

TEST(ObsMetrics, RegistryMergeAddsCountersAndMergesHistograms) {
  uo::MetricsRegistry parent;
  parent.counter("events").add(5);
  parent.gauge("depth").set(1.0);
  parent.histogram("lat", {1.0, 2.0}).record(0.5);

  uo::MetricsRegistry shard;
  shard.counter("events").add(3);
  shard.counter("fresh").add(1);
  shard.gauge("depth").set(7.0);
  shard.histogram("lat", {1.0, 2.0}).record(1.5);

  parent.merge_from(shard);
  EXPECT_EQ(parent.counters().at("events").value(), 8u);
  EXPECT_EQ(parent.counters().at("fresh").value(), 1u);
  EXPECT_DOUBLE_EQ(parent.gauges().at("depth").value(), 7.0);
  const uo::Histogram& h = parent.histograms().at("lat");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 0}));

  uo::MetricsRegistry bad;
  bad.histogram("lat", {5.0, 9.0}).record(1.0);
  EXPECT_THROW(parent.merge_from(bad), ModelError);
}

TEST(ObsTrace, LevelNamesAndParsing) {
  EXPECT_EQ(uo::trace_level_name(uo::TraceLevel::kOff), "off");
  EXPECT_EQ(uo::trace_level_name(uo::TraceLevel::kSession), "session");
  EXPECT_EQ(uo::trace_level_name(uo::TraceLevel::kInvocation), "invocation");
  EXPECT_EQ(uo::trace_level_name(uo::TraceLevel::kService), "service");
  for (const char* name : {"off", "session", "invocation", "service"}) {
    EXPECT_EQ(uo::trace_level_name(uo::trace_level_from_name(name)), name);
  }
  EXPECT_THROW((void)uo::trace_level_from_name("verbose"), ModelError);

  uo::Observer observer;
  observer.trace_level = uo::TraceLevel::kInvocation;
  EXPECT_TRUE(observer.wants(uo::TraceLevel::kSession));
  EXPECT_TRUE(observer.wants(uo::TraceLevel::kInvocation));
  EXPECT_FALSE(observer.wants(uo::TraceLevel::kService));
}

// --------------------------------------------------------------- Exporters

TEST(ObsExport, JsonEscape) {
  EXPECT_EQ(uo::json_escape("plain"), "plain");
  EXPECT_EQ(uo::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(uo::json_escape("x\n\r\ty"), "x\\n\\r\\ty");
  EXPECT_EQ(uo::json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(ObsExport, SpansJsonlGolden) {
  uo::Tracer tracer;
  const uo::SpanId id =
      tracer.begin(uo::SpanLevel::kSession, "session", 1.5);
  tracer.end(id, 2.5);
  tracer.attr(id, "user_class", std::string("B"));
  tracer.attr(id, "ok", 1.0);
  EXPECT_EQ(uo::spans_jsonl(tracer),
            "{\"id\":1,\"parent\":0,\"name\":\"session\","
            "\"level\":\"session\",\"domain\":\"model_hours\","
            "\"start\":1.5,\"end\":2.5,"
            "\"attrs\":{\"user_class\":\"B\",\"ok\":1}}\n");
}

TEST(ObsExport, ChromeTraceNestsThreadsByRootSpan) {
  uo::Tracer tracer;
  const uo::SpanId root =
      tracer.begin(uo::SpanLevel::kSession, "session", 1.0);
  const uo::SpanId child =
      tracer.begin(uo::SpanLevel::kFunctionInvocation, "Search", 1.0,
                   uo::TimeDomain::kModelHours, root);
  const uo::SpanId grandchild =
      tracer.begin(uo::SpanLevel::kServiceCall, "lan", 1.0,
                   uo::TimeDomain::kModelHours, child);
  tracer.end(grandchild, 1.0);
  tracer.end(child, 1.5);
  tracer.end(root, 2.0);
  {
    uo::ScopedWallSpan wall(&tracer, uo::SpanLevel::kSolverStage,
                            "dense-lu");
  }
  const std::string json = uo::chrome_trace_json(tracer);
  // Loadable JSON object with the trace-event envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
  // One metadata event per clock domain.
  EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":2"), std::string::npos);
  // Model-domain spans land in process 1, and every span of the session
  // tree renders on the root's thread.
  const std::string tid = std::to_string(root);
  EXPECT_NE(json.find("\"name\":\"session\",\"cat\":\"session\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Search\",\"cat\":\"function_invocation\","
                      "\"ph\":\"X\""),
            std::string::npos);
  std::size_t model_rows = 0;
  for (std::size_t pos = json.find("\"pid\":1,\"tid\":" + tid + ",");
       pos != std::string::npos;
       pos = json.find("\"pid\":1,\"tid\":" + tid + ",", pos + 1)) {
    ++model_rows;
  }
  EXPECT_EQ(model_rows, 3u);  // session + invocation + service share a row
  EXPECT_NE(json.find("\"name\":\"lan\",\"cat\":\"service_call\""),
            std::string::npos);
  // Wall-domain spans live in process 2.
  EXPECT_NE(json.find("\"name\":\"dense-lu\",\"cat\":\"solver_stage\""),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":2,\"tid\":" + std::to_string(grandchild + 1)),
            std::string::npos);
}

TEST(ObsExport, MetricsCsvQuotesBucketSummariesAndRoundTrips) {
  uo::MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(2.5);
  registry.histogram("c.hist", {1.0, 2.0}).record(1.5);
  const std::string csv = uo::metrics_csv(registry).str();
  // The bucket summary contains commas, so the CSV layer must quote it.
  EXPECT_NE(csv.find("\"le=1:0,le=2:1,inf:0\""), std::string::npos);
  EXPECT_NE(csv.find("metric,type,value,count,sum,min,max,buckets"),
            std::string::npos);
  EXPECT_NE(csv.find("a.count,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("b.gauge,gauge,2.5"), std::string::npos);

  const auto rows = upa::common::parse_csv(csv);
  ASSERT_EQ(rows.size(), 4u);  // header + one row per instrument
  EXPECT_EQ(rows[0][0], "metric");
  EXPECT_EQ(rows[1][0], "a.count");
  EXPECT_EQ(rows[3][0], "c.hist");
  EXPECT_EQ(rows[3][1], "histogram");
  EXPECT_EQ(rows[3][3], "1");                    // count
  EXPECT_EQ(rows[3].back(), "le=1:0,le=2:1,inf:0");  // unquoted again
}

TEST(ObsExport, MetricsJsonlEmitsOneObjectPerInstrument) {
  uo::MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.histogram("c.hist", {1.0, 2.0}).record(1.5);
  const std::string jsonl = uo::metrics_jsonl(registry);
  EXPECT_NE(
      jsonl.find(
          "{\"metric\":\"a.count\",\"type\":\"counter\",\"value\":3}"),
      std::string::npos);
  EXPECT_NE(jsonl.find("\"bounds\":[1,2],\"counts\":[0,1,0]"),
            std::string::npos);
  // One JSON object per line, every line non-empty.
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

// ---------------------------------------------------------- Engine batches

TEST(ObsEngine, RunUntilEmitsOneBatchSpanWithCounters) {
  uo::Observer observer;
  usim::Engine engine;
  engine.set_observer(&observer);
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.schedule_at(9.0, [&] { ++fired; });  // beyond the horizon
  engine.run_until(5.0);

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(observer.metrics.counter("sim.events_processed").value(), 2u);
  EXPECT_EQ(observer.metrics.counter("sim.batches").value(), 1u);
  EXPECT_DOUBLE_EQ(observer.metrics.gauge("sim.calendar_depth_max").value(),
                   3.0);
  ASSERT_EQ(observer.tracer.spans().size(), 1u);
  const uo::Span& batch = observer.tracer.spans()[0];
  EXPECT_EQ(batch.level, uo::SpanLevel::kSimEventBatch);
  EXPECT_DOUBLE_EQ(batch.start, 0.0);
  EXPECT_DOUBLE_EQ(batch.end, 5.0);
  ASSERT_GE(batch.attributes.size(), 3u);
  EXPECT_EQ(batch.attributes[0].key, "events");
  EXPECT_DOUBLE_EQ(batch.attributes[0].number, 2.0);

  engine.run_all();  // drains the remaining event -> a second batch
  EXPECT_EQ(observer.metrics.counter("sim.batches").value(), 2u);
  EXPECT_EQ(observer.metrics.counter("sim.events_processed").value(), 3u);
}

// ------------------------------------------------------------ Solver obs

TEST(ObsSolver, DenseStageRecordsSpanAndMetrics) {
  const um::Ctmc chain = um::two_state_availability(0.001, 0.5);
  uo::Observer observer;
  um::StationaryOptions options;
  options.obs = &observer;
  const auto report = chain.steady_state_robust(options);

  ASSERT_EQ(report.stages.size(), 1u);
  const um::StationaryStage& stage = report.stages[0];
  EXPECT_EQ(stage.method, um::StationaryMethod::kDenseLu);
  EXPECT_EQ(stage.outcome, um::StationaryStage::Outcome::kAccepted);
  EXPECT_EQ(stage.iterations, 0u);
  EXPECT_GE(stage.wall_seconds, 0.0);
  // The diagnostic strings are derived from the stage records -- one
  // channel, two views.
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0], um::stage_diagnostic(stage));

  EXPECT_EQ(observer.metrics.counter("solver.dense-lu.attempts").value(), 1u);
  ASSERT_EQ(observer.tracer.spans().size(), 1u);
  const uo::Span& span = observer.tracer.spans()[0];
  EXPECT_EQ(span.level, uo::SpanLevel::kSolverStage);
  EXPECT_EQ(span.name, "dense-lu");
  EXPECT_EQ(span.domain, uo::TimeDomain::kWallSeconds);
  ASSERT_GE(span.attributes.size(), 3u);
  EXPECT_EQ(span.attributes[0].key, "outcome");
  EXPECT_EQ(span.attributes[0].text, "accepted");
}

TEST(ObsSolver, IterativeStagesRecordIterationCountsAndTrajectories) {
  const auto params = ut::web_farm_params(ut::TaParameters::paper_defaults());
  const auto chain = upa::core::imperfect_coverage_chain(params);
  uo::Observer observer;
  um::StationaryOptions options;
  options.max_dense_states = 0;  // force the iterative fallbacks
  options.obs = &observer;
  const auto report = chain.chain.steady_state_robust(options);

  ASSERT_GE(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].outcome, um::StationaryStage::Outcome::kSkipped);
  const um::StationaryStage& accepted = report.stages.back();
  EXPECT_EQ(accepted.outcome, um::StationaryStage::Outcome::kAccepted);
  EXPECT_GT(accepted.iterations, 0u);
  const std::string name = um::stationary_method_name(accepted.method);
  EXPECT_EQ(observer.metrics.counter("solver." + name + ".iterations").value(),
            accepted.iterations);
  // The per-sweep residual trajectory lands in the log-bucketed histogram.
  const auto& histograms = observer.metrics.histograms();
  const auto it = histograms.find("solver." + name + ".residual_trajectory");
  ASSERT_NE(it, histograms.end());
  EXPECT_EQ(it->second.count(), accepted.iterations);

  // Same distribution as the uninstrumented solve of the same stages.
  um::StationaryOptions plain_options;
  plain_options.max_dense_states = 0;
  const auto plain = chain.chain.steady_state_robust(plain_options);
  ASSERT_EQ(plain.distribution.size(), report.distribution.size());
  for (std::size_t i = 0; i < plain.distribution.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.distribution[i], plain.distribution[i]);
  }
}

// ------------------------------------------------------- End-to-end obs

TEST(ObsEndToEnd, ObserverReplaysSeedRngSequenceBitForBit) {
  // Same configuration and seed as the pre-extension regression pin in
  // test_injection.cpp: an attached observer must not shift a single
  // draw, so the pinned constants hold with tracing on.
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 5000.0;
  options.think_time_hours = 0.0;
  options.sessions_per_replication = 8000;
  options.replications = 4;
  options.seed = 777;
  uo::Observer observer;
  observer.trace_level = uo::TraceLevel::kSession;
  options.obs = &observer;
  const auto r = ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  EXPECT_DOUBLE_EQ(r.perceived_availability.mean, 0.94221874999999999);
  EXPECT_DOUBLE_EQ(r.perceived_availability.half_width,
                   0.0068611874999999732);
  EXPECT_DOUBLE_EQ(r.observed_web_service_availability, 0.99999625082558541);
  EXPECT_EQ(observer.metrics.counter("ta.sessions").value(), 32000u);
  EXPECT_EQ(observer.tracer.spans().size(), 32000u);
}

TEST(ObsEndToEnd, ObserverDoesNotChangeResultsUnderRetriesAndFaults) {
  const auto p = ut::TaParameters::paper_defaults();
  ut::EndToEndOptions options;
  options.horizon_hours = 2000.0;
  options.think_time_hours = 0.05;
  options.sessions_per_replication = 1500;
  options.replications = 2;
  options.seed = 2026;
  options.retry.max_retries = 2;
  options.retry.backoff_base_hours = 0.01;
  options.retry.response_timeout_seconds = 0.5;
  options.retry.abandonment_probability = 0.1;
  options.faults = inj::scripted_outage(inj::FaultTarget::kWebFarm, 500.0,
                                        40.0, options.horizon_hours);
  const auto plain = ut::simulate_end_to_end(ut::UserClass::kB, p, options);

  uo::Observer observer;
  observer.trace_level = uo::TraceLevel::kService;
  options.obs = &observer;
  const auto traced = ut::simulate_end_to_end(ut::UserClass::kB, p, options);

  EXPECT_DOUBLE_EQ(traced.perceived_availability.mean,
                   plain.perceived_availability.mean);
  EXPECT_DOUBLE_EQ(traced.perceived_availability.half_width,
                   plain.perceived_availability.half_width);
  EXPECT_DOUBLE_EQ(traced.observed_web_service_availability,
                   plain.observed_web_service_availability);
  EXPECT_DOUBLE_EQ(traced.mean_session_duration_hours,
                   plain.mean_session_duration_hours);
  EXPECT_DOUBLE_EQ(traced.mean_retries_per_session,
                   plain.mean_retries_per_session);
  EXPECT_DOUBLE_EQ(traced.abandonment_fraction, plain.abandonment_fraction);
}

TEST(ObsEndToEnd, SpansNestSessionInvocationServiceWithAttributes) {
  const auto p = ut::TaParameters::paper_defaults();
  ut::EndToEndOptions options;
  options.horizon_hours = 1000.0;
  options.sessions_per_replication = 200;
  options.replications = 2;
  options.seed = 7;
  options.retry.max_retries = 1;
  options.retry.backoff_base_hours = 0.01;
  uo::Observer observer;
  observer.trace_level = uo::TraceLevel::kService;
  options.obs = &observer;
  const auto r = ut::simulate_end_to_end(ut::UserClass::kA, p, options);
  (void)r;

  std::size_t sessions = 0;
  std::size_t invocations = 0;
  std::size_t services = 0;
  for (const uo::Span& span : observer.tracer.spans()) {
    switch (span.level) {
      case uo::SpanLevel::kSession: {
        ++sessions;
        EXPECT_EQ(span.parent, 0u);
        ASSERT_FALSE(span.attributes.empty());
        EXPECT_EQ(span.attributes[0].key, "user_class");
        EXPECT_EQ(span.attributes[0].text, "class A");
        break;
      }
      case uo::SpanLevel::kFunctionInvocation: {
        ++invocations;
        ASSERT_NE(span.parent, 0u);
        EXPECT_EQ(observer.tracer.span(span.parent).level,
                  uo::SpanLevel::kSession);
        EXPECT_GE(span.end, span.start);
        break;
      }
      case uo::SpanLevel::kServiceCall: {
        ++services;
        ASSERT_NE(span.parent, 0u);
        EXPECT_EQ(observer.tracer.span(span.parent).level,
                  uo::SpanLevel::kFunctionInvocation);
        break;
      }
      default:
        FAIL() << "unexpected span level in an end-to-end trace";
    }
  }
  EXPECT_EQ(sessions, 400u);
  EXPECT_EQ(observer.metrics.counter("ta.sessions").value(), 400u);
  EXPECT_EQ(observer.metrics.counter("ta.invocations").value(), invocations);
  EXPECT_GT(services, invocations);  // every attempt consults >= 2 services
  const auto& histograms = observer.metrics.histograms();
  const auto duration = histograms.find("ta.session_duration_hours");
  ASSERT_NE(duration, histograms.end());
  EXPECT_EQ(duration->second.count(), 400u);
}

TEST(ObsEndToEnd, TraceLevelGatesSpanVolume) {
  const auto p = ut::TaParameters::paper_defaults();
  ut::EndToEndOptions options;
  options.horizon_hours = 1000.0;
  options.sessions_per_replication = 100;
  options.replications = 2;
  options.seed = 7;
  uo::Observer observer;
  observer.trace_level = uo::TraceLevel::kOff;
  options.obs = &observer;
  (void)ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  EXPECT_TRUE(observer.tracer.spans().empty());
  // Metrics still flow at level off.
  EXPECT_EQ(observer.metrics.counter("ta.sessions").value(), 200u);

  uo::Observer session_only;
  session_only.trace_level = uo::TraceLevel::kSession;
  options.obs = &session_only;
  (void)ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  EXPECT_EQ(session_only.tracer.spans().size(), 200u);
  for (const uo::Span& span : session_only.tracer.spans()) {
    EXPECT_EQ(span.level, uo::SpanLevel::kSession);
  }
}

// --------------------------------------------------------- Campaign obs

TEST(ObsCampaign, PlanSpansDeltaGaugesAndUnchangedResults) {
  const auto p = ut::TaParameters::paper_defaults();
  inj::CampaignOptions options;
  options.end_to_end.horizon_hours = 1000.0;
  options.end_to_end.sessions_per_replication = 300;
  options.end_to_end.replications = 2;
  options.end_to_end.seed = 11;
  const std::vector<inj::CampaignPlan> plans = {
      {"lan outage",
       inj::scripted_outage(inj::FaultTarget::kLan, 100.0, 50.0, 1000.0)}};

  const auto plain =
      inj::run_campaign(ut::UserClass::kB, p, options.end_to_end, plans);

  uo::Observer observer;
  observer.trace_level = uo::TraceLevel::kOff;
  options.obs = &observer;
  const auto traced = inj::run_campaign(ut::UserClass::kB, p, options, plans);

  ASSERT_EQ(traced.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(traced.entries[1].perceived_availability.mean,
                   plain.entries[1].perceived_availability.mean);
  EXPECT_DOUBLE_EQ(traced.entries[1].delta_vs_baseline,
                   plain.entries[1].delta_vs_baseline);

  EXPECT_EQ(observer.metrics.counter("campaign.plans").value(), 2u);
  EXPECT_DOUBLE_EQ(
      observer.metrics.gauge("campaign.lan outage.delta_vs_baseline").value(),
      traced.entries[1].delta_vs_baseline);
  std::size_t plan_spans = 0;
  for (const uo::Span& span : observer.tracer.spans()) {
    if (span.level == uo::SpanLevel::kCampaignPlan) {
      ++plan_spans;
      EXPECT_EQ(span.domain, uo::TimeDomain::kWallSeconds);
    }
  }
  EXPECT_EQ(plan_spans, 2u);
  const auto& histograms = observer.metrics.histograms();
  ASSERT_NE(histograms.find("campaign.plan_wall_seconds"), histograms.end());
  EXPECT_EQ(histograms.at("campaign.plan_wall_seconds").count(), 2u);
}
