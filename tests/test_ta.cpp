// Tests for the travel-agency instantiation: parameters, Tables 3-6
// service/function availabilities, Table 1 scenario data, and the fitted
// session graphs.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/ta/functions.hpp"
#include "upa/ta/model_builder.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_classes.hpp"

namespace ut = upa::ta;
namespace up = upa::profile;
using upa::common::ModelError;

TEST(Params, PaperDefaultsValidate) {
  const ut::TaParameters p = ut::TaParameters::paper_defaults();
  EXPECT_NO_THROW(p.validate());
  EXPECT_DOUBLE_EQ(p.a_net, 0.9966);
  EXPECT_EQ(p.n_web, 4u);
  EXPECT_DOUBLE_EQ(p.coverage, 0.98);
}

TEST(Params, WithReservationSystems) {
  const auto p = ut::TaParameters::paper_defaults().with_reservation_systems(5);
  EXPECT_EQ(p.n_flight, 5u);
  EXPECT_EQ(p.n_hotel, 5u);
  EXPECT_EQ(p.n_car, 5u);
}

TEST(Params, ValidationCatchesBadBranchProbabilities) {
  auto p = ut::TaParameters::paper_defaults();
  p.q23 = 0.5;  // q23 + q24 != 1
  EXPECT_THROW(p.validate(), ModelError);
}

TEST(Services, ExternalAvailabilityTable3) {
  // 1 - (1 - 0.9)^N.
  EXPECT_NEAR(ut::external_service_availability(0.9, 1), 0.9, 1e-15);
  EXPECT_NEAR(ut::external_service_availability(0.9, 2), 0.99, 1e-12);
  EXPECT_NEAR(ut::external_service_availability(0.9, 5), 1.0 - 1e-5, 1e-12);
}

TEST(Services, Table4BasicArchitecture) {
  auto p = ut::TaParameters::paper_defaults();
  p.architecture = ut::Architecture::kBasic;
  EXPECT_NEAR(ut::application_service_availability(p), 0.996, 1e-15);
  EXPECT_NEAR(ut::database_service_availability(p), 0.996 * 0.9, 1e-15);
}

TEST(Services, Table4RedundantArchitecture) {
  const auto p = ut::TaParameters::paper_defaults();
  EXPECT_NEAR(ut::application_service_availability(p),
              1.0 - 0.004 * 0.004, 1e-15);
  EXPECT_NEAR(ut::database_service_availability(p),
              (1.0 - 0.004 * 0.004) * (1.0 - 0.01), 1e-12);
}

TEST(Services, RedundancyHelps) {
  auto basic = ut::TaParameters::paper_defaults();
  basic.architecture = ut::Architecture::kBasic;
  const auto redundant = ut::TaParameters::paper_defaults();
  EXPECT_GT(ut::application_service_availability(redundant),
            ut::application_service_availability(basic));
  EXPECT_GT(ut::database_service_availability(redundant),
            ut::database_service_availability(basic));
  EXPECT_GT(ut::web_service_availability(redundant),
            ut::web_service_availability(basic));
}

TEST(Services, ComputeServicesBundlesEverything) {
  const auto s = ut::compute_services(ut::TaParameters::paper_defaults());
  EXPECT_DOUBLE_EQ(s.net, 0.9966);
  EXPECT_DOUBLE_EQ(s.lan, 0.9966);
  EXPECT_NEAR(s.web, 0.999995587, 5e-9);
  EXPECT_DOUBLE_EQ(s.payment, 0.9);
  EXPECT_DOUBLE_EQ(s.flight, 0.9);  // N = 1 default
}

TEST(Functions, Table6Formulas) {
  const auto p = ut::TaParameters::paper_defaults();
  const auto s = ut::compute_services(p);
  const double front = s.net * s.lan * s.web;
  EXPECT_NEAR(ut::function_availability(ut::TaFunction::kHome, s, p), front,
              1e-15);
  EXPECT_NEAR(
      ut::function_availability(ut::TaFunction::kSearch, s, p),
      front * s.application * s.database * s.flight * s.hotel * s.car,
      1e-15);
  EXPECT_NEAR(ut::function_availability(ut::TaFunction::kBook, s, p),
              ut::function_availability(ut::TaFunction::kSearch, s, p),
              1e-15);
  EXPECT_NEAR(ut::function_availability(ut::TaFunction::kPay, s, p),
              front * s.application * s.database * s.payment, 1e-15);
  const double browse =
      front * (p.q23 + s.application *
                           (p.q24 * p.q45 + p.q24 * p.q47 * s.database));
  EXPECT_NEAR(ut::function_availability(ut::TaFunction::kBrowse, s, p),
              browse, 1e-15);
}

TEST(Functions, BrowseBetweenHomeAndSearch) {
  const auto p = ut::TaParameters::paper_defaults();
  const auto s = ut::compute_services(p);
  const double home = ut::function_availability(ut::TaFunction::kHome, s, p);
  const double browse =
      ut::function_availability(ut::TaFunction::kBrowse, s, p);
  const double search =
      ut::function_availability(ut::TaFunction::kSearch, s, p);
  EXPECT_LT(browse, home);
  EXPECT_GT(browse, search);
}

TEST(Functions, SymbolicExprMatchesNumeric) {
  const auto p = ut::TaParameters::paper_defaults();
  const auto s = ut::compute_services(p);
  const auto params = ut::service_params(s);
  for (const auto f : ut::kAllFunctions) {
    EXPECT_NEAR(ut::function_expr(f, p).evaluate(params),
                ut::function_availability(f, s, p), 1e-12)
        << ut::function_name(f);
  }
}

TEST(Functions, GradientIdentifiesFirstOrderServices) {
  // The paper: Anet, ALAN, AWS have first-order impact on Search.
  const auto p = ut::TaParameters::paper_defaults();
  const auto s = ut::compute_services(p);
  const auto grad = upa::core::gradient(
      ut::function_expr(ut::TaFunction::kSearch, p), ut::service_params(s));
  EXPECT_GT(grad.at("Anet"), 0.5);
  EXPECT_GT(grad.at("ALAN"), 0.5);
  EXPECT_GT(grad.at("AWS"), 0.5);
}

TEST(UserClasses, Table1SumsToOne) {
  for (const auto uc : {ut::UserClass::kA, ut::UserClass::kB}) {
    const auto table = ut::scenario_table(uc);
    EXPECT_NEAR(table.total_probability(), 1.0, 1e-12);
    EXPECT_EQ(table.scenarios().size(), 12u);
  }
}

TEST(UserClasses, ClassBBuysMore) {
  const auto a = ut::scenario_table(ut::UserClass::kA);
  const auto b = ut::scenario_table(ut::UserClass::kB);
  const std::size_t pay = ut::function_index(ut::TaFunction::kPay);
  EXPECT_NEAR(a.invocation_probability(pay), 0.075, 1e-12);
  EXPECT_NEAR(b.invocation_probability(pay), 0.203, 1e-12);
  // The paper: ~80% of class B sessions invoke Search/Book/Pay vs ~50%
  // for class A.
  const std::size_t search = ut::function_index(ut::TaFunction::kSearch);
  EXPECT_NEAR(b.invocation_probability(search), 0.792, 1e-12);
  EXPECT_NEAR(a.invocation_probability(search), 0.52, 1e-12);
}

TEST(UserClasses, CategoryMapping) {
  const auto table = ut::scenario_table(ut::UserClass::kA);
  int counts[4] = {0, 0, 0, 0};
  for (const auto& sc : table.scenarios()) {
    counts[static_cast<int>(ut::category_of(sc))]++;
  }
  EXPECT_EQ(counts[0], 3);  // SC1: scenarios 1-3
  EXPECT_EQ(counts[1], 3);  // SC2: 4-6
  EXPECT_EQ(counts[2], 3);  // SC3: 7-9
  EXPECT_EQ(counts[3], 3);  // SC4: 10-12
}

TEST(FittedGraph, ReproducesTable1WithinRounding) {
  for (const auto uc : {ut::UserClass::kA, ut::UserClass::kB}) {
    const auto profile = ut::fitted_session_graph(uc);
    const auto table = ut::scenario_table(uc);
    for (const auto& scenario : table.scenarios()) {
      const double computed =
          up::visited_exactly_probability(profile, scenario.functions);
      // Table 1 is printed to 0.1%; allow a little slack on top.
      EXPECT_NEAR(computed, scenario.probability, 2.5e-3)
          << ut::user_class_name(uc) << " scenario " << scenario.label;
    }
  }
}

TEST(FittedGraph, BookReturnProbabilityDoesNotChangeClassProbabilities) {
  // book_back_to_search only redistributes mass among paths *within* the
  // {Se-Bo}* cycle classes, so the visited-set probabilities are exactly
  // invariant to it. (start_home, by contrast, is pinned by the
  // cycle-exit/cycle-search split of Table 1.)
  const auto p1 = ut::fitted_session_graph(ut::UserClass::kA, 0.5, 0.0);
  const auto p2 = ut::fitted_session_graph(ut::UserClass::kA, 0.5, 0.4);
  const auto table = ut::scenario_table(ut::UserClass::kA);
  for (const auto& scenario : table.scenarios()) {
    EXPECT_NEAR(up::visited_exactly_probability(p1, scenario.functions),
                up::visited_exactly_probability(p2, scenario.functions),
                1e-9)
        << scenario.label;
  }
}

TEST(FittedGraph, MeanSessionLengthReasonable) {
  const auto profile = ut::fitted_session_graph(ut::UserClass::kB);
  const double length = profile.mean_session_length();
  EXPECT_GT(length, 1.0);
  EXPECT_LT(length, 10.0);
}

TEST(ModelBuilder, CatalogHasNineServices) {
  const auto [catalog, ids] =
      ut::build_service_catalog(ut::TaParameters::paper_defaults());
  EXPECT_EQ(catalog.size(), 9u);
  EXPECT_EQ(catalog.name(ids.web), "Web service");
  EXPECT_NEAR(catalog.availability(ids.web), 0.999995587, 5e-9);
}

TEST(ModelBuilder, FunctionAvailabilitiesMatchTable6) {
  const auto p = ut::TaParameters::paper_defaults();
  const auto model = ut::build_user_model(ut::UserClass::kA, p);
  const auto s = ut::compute_services(p);
  for (std::size_t i = 0; i < ut::kAllFunctions.size(); ++i) {
    EXPECT_NEAR(model.function(i).availability(model.catalog()),
                ut::function_availability(ut::kAllFunctions[i], s, p), 1e-12)
        << ut::function_name(ut::kAllFunctions[i]);
  }
}
