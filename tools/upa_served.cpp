// upa_served: the travel-agency evaluation service daemon.
//
// Hosts upa::serve::Server -- newline-delimited JSON RPC over TCP with
// explicit M/M/i/K admission control (--workers = i, --capacity = K) --
// until SIGINT/SIGTERM, then drains gracefully and prints a counter
// summary. See docs/modeling-guide.md ("Serving & load generation") for
// the wire protocol; upa_loadgen is the matching client.

#include <csignal>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cli/args.hpp"
#include "upa/common/error.hpp"
#include "upa/obs/observer.hpp"
#include "upa/serve/anti_entropy.hpp"
#include "upa/serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void on_signal(int) { g_stop_requested = 1; }

void print_usage(std::ostream& os) {
  os << "usage: upa_served [options]\n"
        "\n"
        "Serves the travel-agency evaluators as newline-delimited JSON\n"
        "RPC over TCP. Request handling is the paper's M/M/i/K model:\n"
        "--workers threads (i) drain one bounded queue and --capacity (K)\n"
        "bounds admitted connections; on overflow a connection gets an\n"
        "immediate 503 envelope. SIGINT/SIGTERM drains and exits 0.\n"
        "\n"
        "options:\n"
        "  --bind ADDR        bind address        (default 127.0.0.1)\n"
        "  --port N           TCP port, 0 = ephemeral (default 7077)\n"
        "  --workers N        worker threads, the model's i (default 2)\n"
        "  --capacity N       admitted-connection cap, the model's K;\n"
        "                     must be >= workers (default 8)\n"
        "  --deadline-ms N    per-request deadline from admission,\n"
        "                     0 = off (default 0)\n"
        "  --read-timeout S   idle keep-alive recv timeout (default 10)\n"
        "  --cache MODE       evaluation cache: on | off (default on)\n"
        "  --cache-dir DIR    persistent cache tier: pre-warm from DIR's\n"
        "                     segments at startup and write-behind new\n"
        "                     results there (requires --cache on)\n"
        "  --cache-compact-ms N  background compaction sweep interval for\n"
        "                     --cache-dir segments, 0 = off (default 0)\n"
        "  --peers LIST       comma-separated host:port peer replicas for\n"
        "                     anti-entropy warm-set exchange\n"
        "  --anti-entropy-ms N  anti-entropy round interval; every round\n"
        "                     pulls the records a peer has and this\n"
        "                     replica lacks, 0 = off (default 0;\n"
        "                     requires --peers and --cache on)\n"
        "  --trace            record per-request server-side spans\n"
        "                     (serve_request + admission/queue/handler/\n"
        "                     serialize phases) for the subscribe stream\n"
        "  --process NAME     telemetry process label\n"
        "                     (default upa_served:<port>)\n"
        "  --help             this text\n"
        "\n"
        "methods: ping sleep steady_state mmck_metrics\n"
        "         web_farm_availability composite_availability\n"
        "         user_availability run_campaign simulate_end_to_end\n"
        "         cache stats subscribe reconfigure\n"
        "\n"
        "The `reconfigure` RPC retargets --workers/--capacity at runtime\n"
        "(drain-aware shrink; K swaps atomically at admission). upa_ctl\n"
        "drives it as a closed loop from the telemetry stream.\n";
}

const std::vector<std::string> kAllowedOptions = {
    "bind",        "port",         "workers",   "capacity",
    "deadline-ms", "read-timeout", "cache",     "cache-dir",
    "trace",       "process",      "peers",     "anti-entropy-ms",
    "cache-compact-ms",
};

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= list.size()) {
    const std::size_t comma = list.find(',', at);
    const std::string item =
        list.substr(at, comma == std::string::npos ? comma : comma - at);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  cli::Args args(argc, argv);
  if (args.has("help") || args.command() == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (!args.command().empty()) {
    std::cerr << "upa_served: unexpected positional argument '"
              << args.command() << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  // Allowlist check before any side effects: a typo'd flag must not
  // toggle the cache or bind a port.
  const std::vector<std::string> unknown =
      cli::unknown_options(args, kAllowedOptions);
  if (!unknown.empty()) {
    std::cerr << "upa_served: unknown option '--" << unknown.front()
              << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    serve::ServerConfig config;
    config.bind_address = args.get("bind", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(args.get_size("port", 7077));
    config.workers = args.get_size("workers", 2);
    config.capacity = args.get_size("capacity", 8);
    config.deadline_seconds = args.get_double("deadline-ms", 0.0) / 1000.0;
    config.read_timeout_seconds = args.get_double("read-timeout", 10.0);
    config.trace = args.has("trace");
    config.telemetry_process = args.get("process", "");
    const std::string cache_mode = args.get("cache", "on");
    UPA_REQUIRE(cache_mode == "on" || cache_mode == "off",
                "--cache must be 'on' or 'off'");
    const std::string cache_dir = args.get("cache-dir", "");
    UPA_REQUIRE(cache_dir.empty() || cache_mode == "on",
                "--cache-dir requires --cache on");

    const std::vector<std::string> peers = split_csv(args.get("peers", ""));
    const double anti_entropy_ms = args.get_double("anti-entropy-ms", 0.0);
    const double compact_ms = args.get_double("cache-compact-ms", 0.0);
    UPA_REQUIRE(anti_entropy_ms <= 0.0 || !peers.empty(),
                "--anti-entropy-ms requires --peers");
    UPA_REQUIRE((anti_entropy_ms <= 0.0 && peers.empty()) ||
                    cache_mode == "on",
                "--peers/--anti-entropy-ms require --cache on");
    UPA_REQUIRE(compact_ms <= 0.0 || !cache_dir.empty(),
                "--cache-compact-ms requires --cache-dir");

    cache::set_enabled(cache_mode == "on");
    if (!cache_dir.empty()) {
      cache::PersistentCache& tier = cache::attach_global_persistence(cache_dir);
      if (compact_ms > 0.0) {
        tier.start_maintenance(
            std::chrono::milliseconds(static_cast<long>(compact_ms)));
      }
    }
    obs::Observer observer;
    config.obs = &observer;

    serve::Server server(std::move(config));
    server.start();

    // Anti-entropy starts after the server is up so a peer's concurrent
    // pull against US succeeds from the first round.
    std::unique_ptr<serve::AntiEntropyAgent> anti_entropy;
    if (anti_entropy_ms > 0.0) {
      serve::AntiEntropyConfig ae;
      ae.peers = peers;
      ae.interval =
          std::chrono::milliseconds(static_cast<long>(anti_entropy_ms));
      anti_entropy = std::make_unique<serve::AntiEntropyAgent>(ae);
      serve::set_global_anti_entropy(anti_entropy.get());
      anti_entropy->start();
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::cout << "upa_served listening on " << server.config().bind_address
              << ":" << server.port() << " (workers=i="
              << server.config().workers << ", capacity=K="
              << server.config().capacity << ", cache=" << cache_mode
              << ")" << std::endl;

    while (g_stop_requested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    std::cout << "upa_served: draining..." << std::endl;
    if (anti_entropy != nullptr) {
      serve::set_global_anti_entropy(nullptr);
      anti_entropy->stop();
      const serve::AntiEntropyStats as = anti_entropy->stats();
      std::cout << "anti-entropy: rounds=" << as.rounds
                << " pulls_ok=" << as.pulls_ok
                << " pull_errors=" << as.pull_errors
                << " records_pulled=" << as.records_pulled
                << " converged=" << as.rounds_converged
                << " pages=" << as.pages_pulled << std::endl;
    }
    server.stop();

    const serve::ServerStats stats = server.stats();
    std::cout << "upa_served: done. accepted=" << stats.accepted
              << " rejected=" << stats.rejected
              << " completed=" << stats.completed
              << " requests=" << stats.requests
              << " deadline_missed=" << stats.deadline_missed
              << " protocol_errors=" << stats.protocol_errors
              << " max_in_system=" << stats.max_in_system << std::endl;

    const cache::CacheStats cs = cache::global().stats();
    if (cs.lookups() > 0) {
      std::cout << "cache: lookups=" << cs.lookups() << " hits=" << cs.hits
                << " hit_rate=" << cs.hit_rate() << std::endl;
    }
    if (const cache::PersistentCache* p = cache::global_persistence()) {
      const cache::PersistStats ps = p->stats();
      std::cout << "cache persistence: segments_loaded="
                << ps.segments_loaded << " records_replayed="
                << ps.records_replayed << " records_appended="
                << ps.records_appended << " crc_skipped="
                << ps.records_skipped_crc << std::endl;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "upa_served: " << e.what() << "\n";
    return 1;
  }
}
