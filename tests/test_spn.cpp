// Tests for the GSPN engine: enabling/firing semantics, reachability
// exploration, vanishing-marking elimination, and agreement between a
// Petri-net model of a repairable system and its direct CTMC.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/spn/net.hpp"
#include "upa/spn/reachability.hpp"
#include "upa/spn/to_ctmc.hpp"

namespace us = upa::spn;
namespace um = upa::markov;
using upa::common::ModelError;

namespace {

/// Single repairable component: up -(fail)-> down -(repair)-> up.
us::PetriNet repairable_component(double lambda, double mu) {
  us::PetriNet net;
  const auto up = net.add_place("up", 1);
  const auto down = net.add_place("down", 0);
  const auto fail = net.add_timed_transition("fail", lambda);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, down);
  const auto repair = net.add_timed_transition("repair", mu);
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);
  return net;
}

}  // namespace

TEST(PetriNet, EnablingAndFiring) {
  us::PetriNet net;
  const auto p = net.add_place("p", 2);
  const auto q = net.add_place("q", 0);
  const auto t = net.add_timed_transition("t", 1.0);
  net.add_input_arc(t, p, 2);
  net.add_output_arc(t, q, 1);
  const us::Marking m0 = net.initial_marking();
  EXPECT_TRUE(net.is_enabled(t, m0));
  const us::Marking m1 = net.fire(t, m0);
  EXPECT_EQ(m1[p], 0);
  EXPECT_EQ(m1[q], 1);
  EXPECT_FALSE(net.is_enabled(t, m1));
  EXPECT_THROW((void)net.fire(t, m1), ModelError);
}

TEST(PetriNet, InhibitorArcDisables) {
  us::PetriNet net;
  const auto p = net.add_place("p", 1);
  const auto guard = net.add_place("guard", 1);
  const auto t = net.add_timed_transition("t", 1.0);
  net.add_input_arc(t, p);
  net.add_inhibitor_arc(t, guard);
  EXPECT_FALSE(net.is_enabled(t, net.initial_marking()));
}

TEST(PetriNet, InfiniteServerSemanticsScalesRate) {
  us::PetriNet net;
  const auto p = net.add_place("p", 3);
  const auto t = net.add_timed_transition("t", 2.0,
                                          us::ServerSemantics::kInfiniteServer);
  net.add_input_arc(t, p);
  EXPECT_EQ(net.enabling_degree(t, net.initial_marking()), 3);
  EXPECT_DOUBLE_EQ(net.effective_rate(t, net.initial_marking()), 6.0);
}

TEST(PetriNet, ImmediatePriorityOverTimed) {
  us::PetriNet net;
  const auto p = net.add_place("p", 1);
  const auto timed = net.add_timed_transition("timed", 1.0);
  net.add_input_arc(timed, p);
  const auto imm = net.add_immediate_transition("imm", 2.0);
  net.add_input_arc(imm, p);
  const auto eligible = net.eligible_transitions(net.initial_marking());
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_EQ(eligible[0], imm);
  EXPECT_TRUE(net.is_vanishing(net.initial_marking()));
}

TEST(Reachability, RepairableComponentHasTwoMarkings) {
  const us::PetriNet net = repairable_component(0.1, 1.0);
  const us::ReachabilityGraph graph = us::explore(net);
  EXPECT_EQ(graph.markings.size(), 2u);
  EXPECT_EQ(graph.edges.size(), 2u);
  EXPECT_EQ(graph.tangible_count(), 2u);
}

TEST(Reachability, BoundedExplorationThrowsOnUnboundedNet) {
  us::PetriNet net;
  const auto p = net.add_place("p", 0);
  const auto t = net.add_timed_transition("source", 1.0);
  net.add_output_arc(t, p);  // no input: fires forever, unbounded
  us::ReachabilityOptions options;
  options.max_markings = 50;
  EXPECT_THROW((void)us::explore(net, options), ModelError);
}

TEST(ToCtmc, RepairableComponentAvailability) {
  const double lambda = 0.02;
  const double mu = 0.8;
  const us::PetriNet net = repairable_component(lambda, mu);
  const us::TangibleChain tc = us::to_ctmc(net, us::explore(net));
  const double availability = us::steady_state_probability(
      tc, [](const us::Marking& m) { return m[0] >= 1; });
  EXPECT_NEAR(availability, mu / (lambda + mu), 1e-12);
}

TEST(ToCtmc, VanishingMarkingRedistribution) {
  // up -(fail)-> choice -(imm covered w=9)-> down_auto -(repair)-> up
  //                      -(imm uncovered w=1)-> down_manual -(slow)-> up
  us::PetriNet net;
  const auto up = net.add_place("up", 1);
  const auto choice = net.add_place("choice", 0);
  const auto down_a = net.add_place("down_auto", 0);
  const auto down_m = net.add_place("down_manual", 0);
  const auto fail = net.add_timed_transition("fail", 1.0);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, choice);
  const auto cov = net.add_immediate_transition("covered", 9.0);
  net.add_input_arc(cov, choice);
  net.add_output_arc(cov, down_a);
  const auto unc = net.add_immediate_transition("uncovered", 1.0);
  net.add_input_arc(unc, choice);
  net.add_output_arc(unc, down_m);
  const auto repair = net.add_timed_transition("repair", 10.0);
  net.add_input_arc(repair, down_a);
  net.add_output_arc(repair, up);
  const auto manual = net.add_timed_transition("manual", 0.5);
  net.add_input_arc(manual, down_m);
  net.add_output_arc(manual, up);

  const us::ReachabilityGraph graph = us::explore(net);
  EXPECT_EQ(graph.tangible_count(), 3u);  // up, down_auto, down_manual
  const us::TangibleChain tc = us::to_ctmc(net, graph);

  // Equivalent CTMC built by hand: up -> down_a at 0.9, up -> down_m 0.1.
  um::Ctmc direct(3);
  direct.add_rate(0, 1, 0.9);
  direct.add_rate(0, 2, 0.1);
  direct.add_rate(1, 0, 10.0);
  direct.add_rate(2, 0, 0.5);
  const auto direct_pi = direct.steady_state();
  const double up_spn = us::steady_state_probability(
      tc, [up](const us::Marking& m) { return m[up] >= 1; });
  EXPECT_NEAR(up_spn, direct_pi[0], 1e-12);
}

TEST(ToCtmc, DetectsImmediateCycle) {
  us::PetriNet net;
  const auto a = net.add_place("a", 1);
  const auto b = net.add_place("b", 0);
  const auto t1 = net.add_immediate_transition("ab");
  net.add_input_arc(t1, a);
  net.add_output_arc(t1, b);
  const auto t2 = net.add_immediate_transition("ba");
  net.add_input_arc(t2, b);
  net.add_output_arc(t2, a);
  const us::ReachabilityGraph graph = us::explore(net);
  EXPECT_THROW((void)us::to_ctmc(net, graph), ModelError);
}

TEST(ToCtmc, ExpectedTokensMachineRepair) {
  // Two machines, one repairman (M/M/1-like machine-repair model).
  us::PetriNet net;
  const auto working = net.add_place("working", 2);
  const auto broken = net.add_place("broken", 0);
  const auto fail = net.add_timed_transition(
      "fail", 0.5, us::ServerSemantics::kInfiniteServer);
  net.add_input_arc(fail, working);
  net.add_output_arc(fail, broken);
  const auto repair = net.add_timed_transition("repair", 2.0);
  net.add_input_arc(repair, broken);
  net.add_output_arc(repair, working);

  const us::TangibleChain tc = us::to_ctmc(net, us::explore(net));
  ASSERT_EQ(tc.markings.size(), 3u);
  // Birth-death on broken count: rates 2*0.5, 1*0.5 up, repair 2 down.
  // w = {1, 1/2, 1/8} -> E[broken] = (0*1 + 1*.5 + 2*.125)/1.625.
  const double expected = (0.5 + 0.25) / 1.625;
  EXPECT_NEAR(us::expected_tokens(tc, broken), expected, 1e-12);
}
