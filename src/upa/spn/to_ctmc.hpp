#pragma once
// GSPN -> CTMC conversion: eliminates vanishing markings (zero sojourn
// time) by redistributing their immediate-firing probabilities onto
// tangible successors, then assembles the tangible-marking CTMC.

#include <functional>
#include <vector>

#include "upa/markov/ctmc.hpp"
#include "upa/spn/net.hpp"
#include "upa/spn/reachability.hpp"

namespace upa::spn {

/// The CTMC over tangible markings plus the marking of each chain state.
struct TangibleChain {
  markov::Ctmc chain;
  std::vector<Marking> markings;  ///< chain state -> marking
};

/// Converts an explored reachability graph to its tangible CTMC. Throws
/// ModelError on cycles of vanishing markings (zero-time loops) and on
/// nets whose initial tangible set is empty.
[[nodiscard]] TangibleChain to_ctmc(const PetriNet& net,
                                    const ReachabilityGraph& graph);

/// Steady-state probability that the tangible marking satisfies a
/// predicate (e.g. "place up has >= 1 token").
[[nodiscard]] double steady_state_probability(
    const TangibleChain& tc, const std::function<bool(const Marking&)>& pred);

/// Steady-state expected token count of one place.
[[nodiscard]] double expected_tokens(const TangibleChain& tc, PlaceId place);

}  // namespace upa::spn
