#pragma once
// User-level availability of the travel agency: the paper's eq. (10)
// closed form, the hierarchical-model evaluation (which must agree), and
// the Section 5.2 scenario-category breakdown behind Figure 13.

#include <map>

#include "upa/core/hierarchy.hpp"
#include "upa/inject/retry.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::ta {

/// Paper eq. (10): closed-form user-perceived availability for a user
/// class under the given parameters.
[[nodiscard]] double user_availability_eq10(UserClass uc,
                                            const TaParameters& p);

/// Paper eq. (10) evaluated over an arbitrary scenario set -- e.g. a
/// class mix mined from collected traces -- instead of the built-in
/// Table 1. Scenario function indices must follow TaFunction order
/// (Home=0 .. Pay=4). Categories are derived from each scenario's
/// visited set via category_of, so partial tables (mined mixes missing
/// rare classes) evaluate to the availability of the mass they cover;
/// callers wanting a probability should normalize the set first. With
/// scenario_table(uc) this reproduces user_availability_eq10(uc, p)
/// bit for bit.
[[nodiscard]] double user_availability_eq10_scenarios(
    const profile::ScenarioSet& scenarios, const TaParameters& p);

/// The same measure evaluated through the generic four-level hierarchy
/// (core::UserLevelModel) — service-sharing across functions handled by
/// exact conditioning. Equals eq. (10) to floating-point accuracy; kept
/// separate as a structural cross-check.
[[nodiscard]] double user_availability_hierarchical(UserClass uc,
                                                    const TaParameters& p);

/// Success probability of an invocation retried up to `max_retries` times
/// when each attempt succeeds independently with probability
/// `availability` and the user abandons with `abandonment_probability`
/// before each retry:  a * sum_{k=0..R} [(1-a)(1-p_ab)]^k.
/// With p_ab = 0 this is the classic 1 - (1-a)^(R+1).
[[nodiscard]] double retry_adjusted_availability(
    double availability, std::size_t max_retries,
    double abandonment_probability = 0.0);

/// Retry-adjusted analytic user availability: every function invocation of
/// a scenario is retried per `retry` and attempts are assumed INDEPENDENT
/// (sum over scenarios of pi_sc * prod_f retry_adjusted(A_F)). A response
/// deadline in the policy swaps A(WS) for its deadline-aware counterpart.
///
/// Contrast with eq. (10), which freezes the resource state for the whole
/// session (failures positively correlated across invocations, which helps
/// joint success): at R = 0 this function gives the independent-invocation
/// approximation, NOT eq. (10), and the gap to the retry-enabled
/// end-to-end simulator quantifies the frozen-state correlation the paper
/// assumes away.
[[nodiscard]] double user_availability_with_retries(
    UserClass uc, const TaParameters& p, const inject::RetryPolicy& retry);

/// Per-category unavailability contributions UA(SC_i) (probability units;
/// multiply by 8760 for hours/year) plus the total.
struct CategoryBreakdown {
  std::map<ScenarioCategory, double> unavailability;
  double total_unavailability = 0.0;
};
[[nodiscard]] CategoryBreakdown category_breakdown(UserClass uc,
                                                   const TaParameters& p);

}  // namespace upa::ta
