#include "upa/queueing/birth_death_queue.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::queueing {

BirthDeathQueueMetrics solve_birth_death_queue(
    std::size_t capacity,
    const std::function<double(std::size_t)>& arrival_rate,
    const std::function<double(std::size_t)>& service_rate) {
  UPA_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
  UPA_REQUIRE(arrival_rate != nullptr && service_rate != nullptr,
              "rate functions must be provided");

  // Product form: w_j = w_{j-1} * lambda(j-1) / mu(j).
  std::vector<double> w(capacity + 1);
  w[0] = 1.0;
  for (std::size_t j = 1; j <= capacity; ++j) {
    const double lambda = arrival_rate(j - 1);
    const double mu = service_rate(j);
    UPA_REQUIRE(std::isfinite(lambda) && lambda > 0.0,
                "arrival rate must be positive below capacity");
    UPA_REQUIRE(std::isfinite(mu) && mu > 0.0,
                "service rate must be positive above zero");
    w[j] = w[j - 1] * lambda / mu;
  }
  upa::common::normalize(w);

  BirthDeathQueueMetrics m;
  m.state_probabilities = w;
  m.blocking = w[capacity];
  for (std::size_t j = 0; j <= capacity; ++j) {
    m.mean_in_system += static_cast<double>(j) * w[j];
    if (j < capacity) m.throughput += arrival_rate(j) * w[j];
  }
  return m;
}

}  // namespace upa::queueing
