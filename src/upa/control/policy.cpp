#include "upa/control/policy.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"
#include "upa/queueing/mmck.hpp"

namespace upa::control {

AdmissionPolicy::AdmissionPolicy(PolicyOptions options, std::size_t workers,
                                 std::size_t capacity)
    : options_(options), workers_(workers), capacity_(capacity) {
  UPA_REQUIRE(std::isfinite(options_.target_loss) &&
                  options_.target_loss > 0.0 && options_.target_loss < 1.0,
              "target loss must be in (0, 1)");
  UPA_REQUIRE(options_.sizing_fraction > 0.0 &&
                  options_.sizing_fraction <= 1.0,
              "sizing fraction must be in (0, 1]");
  UPA_REQUIRE(options_.lambda_headroom >= 1.0,
              "lambda headroom must be >= 1");
  UPA_REQUIRE(options_.min_workers >= 1 &&
                  options_.max_workers >= options_.min_workers,
              "worker bounds must satisfy 1 <= min <= max");
  UPA_REQUIRE(options_.max_capacity >= options_.max_workers,
              "max capacity must be >= max workers");
  UPA_REQUIRE(workers_ >= 1 && capacity_ >= workers_,
              "seed config must satisfy K >= i >= 1");
}

PolicyDecision AdmissionPolicy::decide(const RateEstimate& estimate,
                                       double now) {
  PolicyDecision d;
  d.workers = workers_;
  d.capacity = capacity_;
  if (!estimate.ready) {
    d.reason = "hold:estimating";
    return d;
  }
  if (!(estimate.nu > 0.0)) {
    d.reason = "hold:no-service-rate";
    return d;
  }
  // Plan for a bit more load than measured; an idle server still plans
  // against a token epsilon rate so the search below stays well-formed
  // (it then proposes the minimum configuration).
  const double alpha =
      std::max(estimate.lambda * options_.lambda_headroom, 1e-3);
  const double sizing_target =
      options_.target_loss * options_.sizing_fraction;
  const queueing::MmckSizing plan = queueing::mmck_smallest_config(
      alpha, estimate.nu, sizing_target, options_.max_workers,
      options_.max_capacity, options_.min_workers);
  d.workers = plan.servers;
  d.capacity = plan.capacity;
  d.predicted_loss = plan.loss;
  d.feasible = plan.feasible;

  if (plan.servers == workers_ && plan.capacity == capacity_) {
    shrink_since_ = -1.0;
    d.reason = "hold:converged";
    return d;
  }

  // Classify against the SLO itself (not the tighter sizing target):
  // would the CURRENT config analytically breach the promise at the
  // planned load? Then the change is urgent.
  const double current_loss = queueing::mmck_loss_probability(
      alpha, estimate.nu, workers_, capacity_);
  if (current_loss > options_.target_loss) {
    shrink_since_ = -1.0;
    if (now - last_change_ < options_.grow_cooldown_seconds) {
      d.reason = "hold:grow-cooldown";
      return d;
    }
    d.act = true;
    d.reason = "grow";
    return d;
  }

  // The current config still meets the SLO -- the proposal is a trim.
  // Track the streak, not the exact proposal: lambda-hat jitter may
  // wiggle the proposed K by one without resetting the clock, and the
  // trim applied is always the freshest plan.
  if (shrink_since_ < 0.0) shrink_since_ = now;
  if (now - shrink_since_ < options_.shrink_cooldown_seconds) {
    d.reason = "hold:shrink-pending";
    return d;
  }
  d.act = true;
  d.reason = "shrink";
  return d;
}

void AdmissionPolicy::applied(std::size_t workers, std::size_t capacity,
                              double now) {
  workers_ = workers;
  capacity_ = capacity;
  last_change_ = now;
  shrink_since_ = -1.0;
}

}  // namespace upa::control
