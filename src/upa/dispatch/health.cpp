#include "upa/dispatch/health.hpp"

#include <chrono>

#include "upa/common/error.hpp"
#include "upa/serve/client.hpp"

namespace upa::dispatch {

void check_health_config(const HealthConfig& config) {
  UPA_REQUIRE(config.probe_interval_seconds > 0.0,
              "probe interval must be > 0");
  UPA_REQUIRE(config.probe_timeout_seconds > 0.0,
              "probe timeout must be > 0");
  UPA_REQUIRE(config.unhealthy_threshold >= 1,
              "unhealthy threshold must be >= 1");
  UPA_REQUIRE(config.healthy_threshold >= 1,
              "healthy threshold must be >= 1");
}

HealthChecker::HealthChecker(UpstreamPool& pool, HealthConfig config)
    : pool_(pool), config_(config) {
  check_health_config(config_);
}

HealthChecker::~HealthChecker() { stop(); }

void HealthChecker::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    UPA_REQUIRE(!running_, "HealthChecker already started");
    running_ = true;
    stop_requested_ = false;
  }
  probe_all();  // first verdict before any traffic is forwarded
  thread_ = std::thread([this] { run(); });
}

void HealthChecker::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void HealthChecker::probe_all() {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const bool ok = probe_one(i);
    pool_.record_probe(i, ok, config_.unhealthy_threshold,
                       config_.healthy_threshold);
  }
}

void HealthChecker::run() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.probe_interval_seconds));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, interval,
                       [this] { return stop_requested_; })) {
        return;
      }
    }
    probe_all();
  }
}

bool HealthChecker::probe_one(std::size_t index) {
  const UpstreamAddress& address = pool_.address(index);
  try {
    serve::Client client;
    client.connect(address.host, address.port,
                   config_.probe_timeout_seconds);
    const serve::CallResult result = client.call("ping", serve::Json());
    // A 503 still proves the process is alive and admitting probes is
    // the server's business; only transport-level failures are
    // unhealthy.
    return result.outcome != serve::CallOutcome::kTransportError;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace upa::dispatch
