// Extension bench (the paper's stated future work, Section 6):
// availability including response-time-threshold failures. Regenerates
// the web-service availability and the user-perceived availability as a
// function of the acceptable response-time threshold tau, for the
// Figure 12 configurations -- the "figure the paper did not get to".

#include "bench_util.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/queueing/response_time.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace uc = upa::core;
namespace ut = upa::ta;
namespace uq = upa::queueing;
namespace cm = upa::common;

void print_deadline() {
  upa::bench::print_header(
      "Future-work extension: response-time thresholds",
      "A request now fails when it is rejected (buffer full) OR served\n"
      "later than tau. tau in units of the mean service time 1/nu = 10ms.");

  cm::Table t({"tau [ms]", "A(WS) N_W=2", "A(WS) N_W=4", "A(WS) N_W=8",
               "P(T>tau) N_W=4"});
  t.set_title(
      "Deadline-extended web-service availability (imperfect coverage,\n"
      "lambda=1e-4/h, alpha=nu=100/s, K=10)");
  const uc::WebQueueParams queue{100.0, 100.0, 10};
  for (double tau_ms : {10.0, 20.0, 30.0, 50.0, 100.0, 200.0, 1000.0}) {
    const double tau = tau_ms / 1000.0;  // queue rates are per second
    std::vector<std::string> row{cm::fmt(tau_ms, 4)};
    for (std::size_t n : {2u, 4u, 8u}) {
      uc::WebFarmParams farm{n, 1e-4, 1.0, 0.98, 12.0};
      row.push_back(cm::fmt(
          uc::web_service_availability_imperfect_with_deadline(farm, queue,
                                                               tau),
          8));
    }
    row.push_back(cm::fmt_sci(
        uq::mmck_response_time_tail(100.0, 100.0, 4, 10, tau), 3));
    t.add_row(std::move(row));
  }
  std::cout << t << "\n";

  cm::Table q({"quantile", "response time [ms], N_W=2", "N_W=4", "N_W=8"});
  q.set_title("Response-time quantiles of accepted requests (alpha=100/s)");
  for (double eps : {0.5, 0.1, 0.01, 0.001}) {
    std::vector<std::string> row{
        cm::fmt((1.0 - eps) * 100.0, 4) + "%"};
    for (std::size_t n : {2u, 4u, 8u}) {
      row.push_back(cm::fmt(
          uq::mmck_response_time_quantile(100.0, 100.0, n, 10, eps) *
              1000.0,
          4));
    }
    q.add_row(std::move(row));
  }
  std::cout << q << "\n";

  std::cout
      << "With tau = 30 ms the N_W=2 farm loses ~"
      << cm::fmt(100.0 * uq::mmck_response_time_tail(100.0, 100.0, 2, 10,
                                                     0.03),
                 3)
      << "% of served requests to deadline misses -- a failure mode the\n"
         "buffer-loss-only measure (Figures 11/12) cannot see.\n\n";
}

void bm_response_time_tail(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uq::mmck_response_time_tail(100.0, 100.0, 4, 10, 0.03));
  }
}
BENCHMARK(bm_response_time_tail);

void bm_response_time_quantile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uq::mmck_response_time_quantile(100.0, 100.0, 4, 10, 0.01));
  }
}
BENCHMARK(bm_response_time_quantile);

void bm_deadline_availability(benchmark::State& state) {
  const uc::WebFarmParams farm{4, 1e-4, 1.0, 0.98, 12.0};
  const uc::WebQueueParams queue{100.0, 100.0, 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uc::web_service_availability_imperfect_with_deadline(farm, queue,
                                                             0.03));
  }
}
BENCHMARK(bm_deadline_availability);

}  // namespace

UPA_BENCH_MAIN(print_deadline)
