#include "upa/sim/batch_means.hpp"

#include "upa/common/error.hpp"

namespace upa::sim {

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  UPA_REQUIRE(batch_size >= 1, "batch size must be positive");
}

void BatchMeans::add(double value) {
  current_sum_ += value;
  if (++in_current_ == batch_size_) {
    batch_averages_.push_back(current_sum_ /
                              static_cast<double>(batch_size_));
    current_sum_ = 0.0;
    in_current_ = 0;
  }
}

double BatchMeans::mean() const {
  UPA_REQUIRE(!batch_averages_.empty(), "no completed batches yet");
  double sum = 0.0;
  for (double b : batch_averages_) sum += b;
  return sum / static_cast<double>(batch_averages_.size());
}

ConfidenceInterval BatchMeans::interval(double level) const {
  return confidence_interval(batch_averages_, level);
}

double BatchMeans::lag1_autocorrelation() const {
  UPA_REQUIRE(batch_averages_.size() >= 3,
              "need at least three batches for autocorrelation");
  const double m = mean();
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < batch_averages_.size(); ++i) {
    const double d = batch_averages_[i] - m;
    denominator += d * d;
    if (i + 1 < batch_averages_.size()) {
      numerator += d * (batch_averages_[i + 1] - m);
    }
  }
  UPA_REQUIRE(denominator > 0.0, "batch averages are constant");
  return numerator / denominator;
}

}  // namespace upa::sim
