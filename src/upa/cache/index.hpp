#pragma once
// Per-segment on-disk key index: the attach-time fast path of the
// persistent tier. A segment's `*.upaidx` sidecar holds a sorted
// (key-digest, record-offset) table, so attaching a directory is
// O(load the indexes) instead of O(decode every value) -- values stay
// on disk and are decoded lazily on first lookup.
//
// Layout (all integers little-endian):
//
//   +--------------------------------------------------------------+
//   | header                                                       |
//   |   magic              8 bytes  "UPACIDX1"                     |
//   |   format_version     u32                                     |
//   |   tag_length         u32                                     |
//   |   tag                bytes    solver-version tag             |
//   |   segment_size       u64      byte size of the segment file  |
//   |   segment_crc_chain  u32      CRC-32 over the segment's      |
//   |                               per-record CRC words, in order |
//   |   record_count       u64                                     |
//   +--------------------------------------------------------------+
//   | entry (repeated, sorted by (digest, offset))                 |
//   |   key_digest         u64      FNV-1a 64 of the key bytes     |
//   |   record_offset      u64      frame start within the segment |
//   +--------------------------------------------------------------+
//   | index_crc            u32      CRC-32 of everything above     |
//   +--------------------------------------------------------------+
//
// Staleness: the index embeds the segment's byte size and a CRC chain
// computed by walking only the segment's frame HEADERS (each record's
// stored payload CRC word feeds the chain, so the walk never decodes a
// value). An appended, truncated, or rewritten segment changes size or
// chain; either mismatch -- or a failed magic/version/tag/index_crc
// check -- marks the index stale and triggers a full-scan rebuild. A
// stale index can therefore delay a lookup (rebuild) but never serve a
// wrong or vanished record.
//
// Offsets index only CRC-valid, structurally valid records; a record
// the segment loader would skip is equally invisible here. Duplicate
// keys keep every offset -- lookups resolve ties lowest-offset-first,
// matching the loader's first-wins replay order within a segment.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "upa/cache/segment.hpp"

namespace upa::cache {

inline constexpr std::string_view kIndexMagic = "UPACIDX1";
inline constexpr std::uint32_t kIndexFormatVersion = 1;
inline constexpr std::string_view kIndexExtension = ".upaidx";

/// `<segment stem>.upaidx` next to the segment file.
[[nodiscard]] std::string index_path_for(const std::string& segment_path);

struct IndexEntry {
  std::uint64_t digest = 0;
  std::uint64_t offset = 0;
};

struct SegmentIndex {
  std::uint64_t segment_size = 0;
  std::uint32_t segment_crc_chain = 0;
  /// Sorted by (digest, offset).
  std::vector<IndexEntry> entries;
};

/// Walks the segment's frame headers (no value decode) and returns the
/// CRC chain + the validated byte size covered by complete frames.
/// False when the segment header itself is invalid.
bool segment_crc_chain(const MappedFile& segment, std::uint64_t* size,
                       std::uint32_t* chain);

/// Builds an index by fully scanning the segment (the slow path an
/// attach pays exactly once per segment, then never again). CRC-bad and
/// undecodable records are counted in `stats` and left out.
[[nodiscard]] SegmentIndex build_index(const MappedFile& segment,
                                       SegmentLoadStats& stats);

[[nodiscard]] std::string encode_index(const SegmentIndex& index);

/// Strict decode: magic, version, tag, and trailing CRC must all match.
bool decode_index(std::string_view bytes, SegmentIndex* out);

struct IndexLoadResult {
  bool segment_ok = false;  ///< the segment header itself was valid
  bool loaded = false;      ///< a fresh index file was read and used
  bool rebuilt = false;     ///< index was rebuilt by scanning the segment
  bool written = false;     ///< the rebuilt index was persisted
  SegmentIndex index;
  SegmentLoadStats scan;    ///< populated only when rebuilt
};

/// Loads `<segment>.upaidx` when present, fresh (size + CRC chain match
/// the segment), and internally valid; otherwise rebuilds from a full
/// scan and atomically rewrites the sidecar (write-temp + rename). An
/// unwritable directory keeps the rebuilt index in memory (`written`
/// stays false) -- the tier still works, it just rescans next attach.
[[nodiscard]] IndexLoadResult load_or_build_index(
    const std::string& segment_path, const MappedFile& segment);

/// Reads and CRC-checks the record framed at `offset` (an offset the
/// index returned). False on any torn/corrupt/out-of-range frame.
bool read_record_at(const MappedFile& segment, std::uint64_t offset,
                    SegmentRecord* out);

/// Binary-search over a sorted entry table: every offset whose digest
/// equals `digest`, in ascending offset order.
[[nodiscard]] std::vector<std::uint64_t> offsets_for_digest(
    const std::vector<IndexEntry>& entries, std::uint64_t digest);

}  // namespace upa::cache
