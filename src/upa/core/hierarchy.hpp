#pragma once
// The paper's four-level hierarchical framework (Figure 1):
//
//   resource level  ->  ServiceCatalog availabilities (from RBDs, Markov
//                       models, composite performability models, or plain
//                       numbers),
//   service level   ->  named services with availabilities,
//   function level  ->  FunctionModel: success probability of one function
//                       given which services are up (interaction-diagram
//                       execution paths with branch probabilities q_ij),
//   user level      ->  UserLevelModel: scenario-set-weighted probability
//                       that every function invoked in a user scenario
//                       succeeds, with shared-service dependence handled
//                       exactly by conditioning on service states.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "upa/profile/scenario.hpp"

namespace upa::core {

using ServiceId = std::size_t;

/// Service level: named services with availabilities. Availabilities can
/// be overwritten later (e.g. after re-solving a resource-level model).
class ServiceCatalog {
 public:
  ServiceId add(std::string name, double availability);

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& name(ServiceId id) const;
  [[nodiscard]] double availability(ServiceId id) const;
  [[nodiscard]] ServiceId id_of(const std::string& name) const;

  void set_availability(ServiceId id, double availability);

 private:
  std::vector<std::string> names_;
  std::vector<double> availability_;
};

/// One execution path of a function's interaction diagram: with
/// probability `probability` the execution takes this path and succeeds
/// iff every service in `services` is up. Path probabilities over a
/// function must sum to one.
struct ExecutionPath {
  double probability = 1.0;
  std::vector<ServiceId> services;
};

/// Function level: a function is a mixture of execution paths. The common
/// case of "needs all of these services" is a single path.
class FunctionModel {
 public:
  FunctionModel(std::string name, std::vector<ExecutionPath> paths);

  /// Convenience: single path requiring all listed services.
  [[nodiscard]] static FunctionModel all_of(std::string name,
                                            std::vector<ServiceId> services);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<ExecutionPath>& paths() const noexcept {
    return paths_;
  }

  /// Distinct services this function can touch (sorted).
  [[nodiscard]] const std::vector<ServiceId>& involved_services()
      const noexcept {
    return involved_;
  }

  /// Success probability given a concrete up/down state per service
  /// (indexed by ServiceId over the whole catalog).
  [[nodiscard]] double success_given(const std::vector<bool>& service_up) const;

  /// Unconditional availability under independent services.
  [[nodiscard]] double availability(const ServiceCatalog& catalog) const;

 private:
  std::string name_;
  std::vector<ExecutionPath> paths_;
  std::vector<ServiceId> involved_;
};

/// User level: functions + a scenario set over them.
class UserLevelModel {
 public:
  /// `functions[i]` models the scenario set's function i (names must
  /// match, guarding against mis-wiring).
  UserLevelModel(ServiceCatalog catalog, std::vector<FunctionModel> functions,
                 profile::ScenarioSet scenarios);

  [[nodiscard]] const ServiceCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] ServiceCatalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] const profile::ScenarioSet& scenarios() const noexcept {
    return scenarios_;
  }
  [[nodiscard]] const FunctionModel& function(std::size_t i) const;

  /// P(every function in `functions` succeeds): exact expectation over the
  /// joint state of the involved services (independent services; shared
  /// services across functions handled by the conditioning).
  [[nodiscard]] double joint_success(
      const std::set<std::size_t>& functions) const;

  /// Availability of one scenario class.
  [[nodiscard]] double scenario_availability(
      const profile::ScenarioClass& scenario) const;

  /// The paper's user-perceived availability: sum_i pi_i * A(scenario_i).
  [[nodiscard]] double user_availability() const;

  /// Per-scenario unavailability contributions pi_i * (1 - A(scenario_i)),
  /// aligned with scenarios().scenarios(). Summing them gives
  /// 1 - user_availability() when the scenario set is complete.
  [[nodiscard]] std::vector<double> unavailability_contributions() const;

 private:
  ServiceCatalog catalog_;
  std::vector<FunctionModel> functions_;
  profile::ScenarioSet scenarios_;
};

}  // namespace upa::core
