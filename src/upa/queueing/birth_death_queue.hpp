#pragma once
// Generic finite birth-death queue: arbitrary state-dependent arrival and
// service rates. Every Markovian queue in this library (M/M/1/K, M/M/c/K,
// Erlang loss) is a special case, which the tests exploit to cross-check
// the closed forms against a single generic solver.

#include <cstddef>
#include <functional>
#include <vector>

namespace upa::queueing {

/// Steady-state description of a generic finite birth-death queue on
/// states 0..capacity.
struct BirthDeathQueueMetrics {
  std::vector<double> state_probabilities;
  double blocking = 0.0;       ///< probability of the full state
  double mean_in_system = 0.0;
  double throughput = 0.0;     ///< sum_j lambda(j) p_j over non-full states
};

/// Solves a finite birth-death queue where `arrival_rate(j)` is the rate
/// from state j to j+1 (j < capacity) and `service_rate(j)` the rate from
/// state j to j-1 (j >= 1). Rates must be positive.
[[nodiscard]] BirthDeathQueueMetrics solve_birth_death_queue(
    std::size_t capacity,
    const std::function<double(std::size_t)>& arrival_rate,
    const std::function<double(std::size_t)>& service_rate);

}  // namespace upa::queueing
