#pragma once
// Minimal JSON value type for the upa_served wire protocol. The
// toolchain ships no JSON library, so the serve layer carries its own:
// a strict recursive-descent parser and a deterministic writer.
//
// Determinism contract: dump() is a pure function of the value tree.
// Object members keep their insertion order (std::map would reorder and
// make responses depend on construction details), and numbers are
// written with std::to_chars shortest round-trip formatting -- the same
// double always serializes to the same bytes, which is what lets the
// serve tests pin "cache-on responses are byte-identical to cache-off".

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace upa::serve {

/// One JSON value: null, bool, number (double), string, array, object.
/// A lightweight regular value type; objects are insertion-ordered
/// vectors of (key, value) pairs with linear lookup -- protocol
/// envelopes have a handful of members, so ordering beats O(log n).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber),
                         number_(static_cast<double>(v)) {}
  Json(std::size_t v) : type_(Type::kNumber),
                        number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors; throw ModelError on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup (nullptr when absent or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const noexcept;

  /// Appends/overwrites an object member (throws unless object).
  Json& set(const std::string& key, Json value);

  /// Appends an array element (throws unless array).
  Json& push_back(Json value);

  /// Serializes to compact single-line JSON (no trailing newline).
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] bool operator==(const Json& rhs) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document; trailing garbage after the value
/// is an error. Throws common::ModelError with a byte offset on
/// malformed input. Numbers out of double range and non-finite literals
/// are rejected (the wire format has no NaN/Infinity).
[[nodiscard]] Json parse_json(const std::string& text);

/// Shortest round-trip formatting of a finite double (std::to_chars).
/// Non-finite values throw ModelError: they are unrepresentable in JSON
/// and a response containing one is a protocol bug, not a formatting
/// choice.
[[nodiscard]] std::string format_number(double value);

}  // namespace upa::serve
