#include "upa/control/controller.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/obs/trace.hpp"

namespace upa::control {

using serve::CallOutcome;
using serve::CallResult;
using serve::Client;
using serve::Json;

namespace {

/// Pulls one serve.* gauge out of a metrics tick; throws ModelError on
/// a tick missing it (an incompatible server).
double gauge_value(const Json& gauges, const char* name) {
  const Json* v = gauges.find(name);
  UPA_REQUIRE(v != nullptr && v->is_number(),
              std::string("telemetry tick lacks gauge '") + name + "'");
  return v->as_number();
}

std::size_t result_size(const Json& result, const char* name) {
  const Json* v = result.find(name);
  UPA_REQUIRE(v != nullptr && v->is_number() && v->as_number() >= 0.0,
              std::string("stats result lacks '") + name + "'");
  return static_cast<std::size_t>(v->as_number());
}

}  // namespace

Controller::Controller(ControllerOptions options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      estimator_(options_.estimator) {
  UPA_REQUIRE(options_.port != 0, "ControllerOptions.port must be set");
  UPA_REQUIRE(options_.tick_interval_seconds >= 0.01 &&
                  options_.tick_interval_seconds <= 60.0,
              "tick interval must be in [0.01, 60] seconds");
  UPA_REQUIRE(options_.apply_attempts >= 1,
              "apply_attempts must be >= 1");
  UPA_REQUIRE(options_.apply_backoff_seconds >= 0.0,
              "apply backoff must be >= 0");
}

Controller::~Controller() { stop(); }

double Controller::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Controller::start() {
  UPA_REQUIRE(!thread_.joinable(), "Controller::start called twice");
  stop_.store(false);

  // Seed the policy's view of (i, K) from the live server, so the first
  // decision diffs against reality instead of an assumed default.
  Client seed;
  seed.connect(options_.host, options_.port,
               options_.connect_timeout_seconds);
  const CallResult stats_result = seed.call("stats", Json::object());
  UPA_REQUIRE(stats_result.ok(),
              "stats RPC failed while seeding the controller: " +
                  stats_result.error_message);
  const Json* result = stats_result.result();
  UPA_REQUIRE(result != nullptr, "stats RPC returned no result");
  const std::size_t workers = result_size(*result, "workers");
  const std::size_t capacity = result_size(*result, "capacity");
  policy_.emplace(options_.policy, workers, capacity);
  seed.close();

  subscription_ = Client();
  subscription_.connect(options_.host, options_.port,
                        options_.connect_timeout_seconds);
  Json params = Json::object();
  params.set("interval_ms",
             Json(options_.tick_interval_seconds * 1000.0));
  const CallResult ack =
      subscription_.call("subscribe", std::move(params));
  UPA_REQUIRE(ack.ok(), "subscribe refused: " + ack.error_message);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = ControllerStats{};
    stats_.workers = workers;
    stats_.capacity = capacity;
    stats_.connected = true;
  }
  estimator_.reset();
  thread_ = std::thread([this] { run(); });
}

void Controller::stop() {
  stop_.store(true);
  if (subscription_.connected()) subscription_.shutdown_both();
  if (thread_.joinable()) thread_.join();
  subscription_.close();
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.connected = false;
}

ControllerStats Controller::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Controller::run() {
  while (!stop_.load()) {
    std::string line;
    try {
      line = subscription_.read_line();
    } catch (const std::exception&) {
      // EOF (server stopped), timeout, or stop()'s shutdown_both.
      break;
    }
    Json parsed;
    try {
      parsed = serve::parse_json(line);
    } catch (const std::exception&) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
      continue;
    }
    if (!parsed.is_object()) continue;
    const Json* kind = parsed.find("telemetry");
    if (kind == nullptr || !kind->is_string() ||
        kind->as_string() != "metrics") {
      continue;  // span lines and acks are not control input
    }
    try {
      handle_metrics_line(parsed);
    } catch (const std::exception&) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.connected = false;
}

void Controller::handle_metrics_line(const Json& line) {
  const Json* gauges = line.find("gauges");
  UPA_REQUIRE(gauges != nullptr && gauges->is_object(),
              "telemetry tick lacks gauges");
  CounterSample sample;
  sample.t = now_seconds();
  const double accepted = gauge_value(*gauges, "serve.accepted");
  sample.rejected = gauge_value(*gauges, "serve.rejected");
  sample.arrivals = accepted + sample.rejected;
  sample.handled = gauge_value(*gauges, "serve.handled_requests");
  sample.busy_seconds = gauge_value(*gauges, "serve.busy_seconds");
  estimator_.observe(sample);
  const RateEstimate estimate = estimator_.estimate();
  const PolicyDecision decision = policy_->decide(estimate, sample.t);

  obs::Observer* ob = options_.obs;
  obs::SpanId span = 0;
  if (ob != nullptr) {
    span = ob->tracer.begin(obs::SpanLevel::kControlDecision,
                            decision.reason, ob->tracer.wall_now(),
                            obs::TimeDomain::kWallSeconds);
    ob->tracer.attr(span, "lambda", estimate.lambda);
    ob->tracer.attr(span, "nu", estimate.nu);
    ob->tracer.attr(span, "loss", estimate.loss);
    ob->tracer.attr(span, "plan_workers",
                    static_cast<double>(decision.workers));
    ob->tracer.attr(span, "plan_capacity",
                    static_cast<double>(decision.capacity));
  }

  bool applied = false;
  if (decision.act) {
    applied = apply(decision.workers, decision.capacity);
    if (applied) {
      policy_->applied(decision.workers, decision.capacity,
                       now_seconds());
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.ticks;
    ++stats_.decisions;
    if (decision.act && applied) ++stats_.applies;
    if (decision.act && !applied) ++stats_.apply_failures;
    stats_.workers = policy_->current_workers();
    stats_.capacity = policy_->current_capacity();
    stats_.lambda = estimate.lambda;
    stats_.nu = estimate.nu;
    stats_.loss = estimate.loss;
  }

  if (ob != nullptr) {
    ob->tracer.attr(span, "applied", applied ? 1.0 : 0.0);
    ob->tracer.end(span, ob->tracer.wall_now());
    const ControllerStats s = stats();
    ob->metrics.gauge("ctl.lambda").set(s.lambda);
    ob->metrics.gauge("ctl.nu").set(s.nu);
    ob->metrics.gauge("ctl.loss").set(s.loss);
    ob->metrics.gauge("ctl.workers").set(static_cast<double>(s.workers));
    ob->metrics.gauge("ctl.capacity")
        .set(static_cast<double>(s.capacity));
    ob->metrics.gauge("ctl.applies").set(static_cast<double>(s.applies));
    ob->metrics.gauge("ctl.ticks").set(static_cast<double>(s.ticks));
  }
}

bool Controller::apply(std::size_t workers, std::size_t capacity) {
  for (std::size_t attempt = 0; attempt < options_.apply_attempts;
       ++attempt) {
    if (stop_.load()) return false;
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.apply_backoff_seconds));
    }
    try {
      Client client;
      client.connect(options_.host, options_.port,
                     options_.connect_timeout_seconds);
      Json params = Json::object();
      params.set("workers", Json(static_cast<double>(workers)));
      params.set("capacity", Json(static_cast<double>(capacity)));
      const CallResult r = client.call("reconfigure", std::move(params));
      if (r.ok()) return true;
      if (r.outcome != CallOutcome::kRejected &&
          r.outcome != CallOutcome::kTransportError) {
        return false;  // 400/500: a retry cannot change the answer
      }
    } catch (const std::exception&) {
      // connect refused/timed out: contention or restart; retry below
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.apply_retries;
  }
  return false;
}

}  // namespace upa::control
