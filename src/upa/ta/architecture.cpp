#include "upa/ta/architecture.hpp"

#include <string>

#include "upa/markov/ctmc.hpp"

namespace upa::ta {
namespace {

using rbd::Block;

/// N named replicas ("prefix#0".."#N-1") in parallel, with availability
/// `a` each recorded into `params`.
Block replicated(const std::string& prefix, std::size_t count, double a,
                 rbd::ParamMap& params) {
  std::vector<Block> replicas;
  replicas.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string name = prefix + "#" + std::to_string(i);
    params[name] = a;
    replicas.push_back(Block::component(name));
  }
  return count == 1 ? replicas[0] : Block::parallel(std::move(replicas));
}

Block external_blocks(const TaParameters& p, rbd::ParamMap& params,
                      std::vector<Block>& into) {
  into.push_back(replicated("flight", p.n_flight, p.a_reservation, params));
  into.push_back(replicated("hotel", p.n_hotel, p.a_reservation, params));
  into.push_back(replicated("car", p.n_car, p.a_reservation, params));
  return Block::series(into);
}

double web_host_availability(const TaParameters& p) {
  return markov::two_state_steady_availability(p.lambda_web, p.mu_web);
}

}  // namespace

ArchitectureRbd basic_architecture_rbd(const TaParameters& p) {
  p.validate();
  ArchitectureRbd arch{Block::component("net"), Block::component("net"), {}};
  rbd::ParamMap& params = arch.availabilities;
  params["net"] = p.a_net;
  params["lan"] = p.a_lan;

  std::vector<Block> internal;
  internal.push_back(Block::component("net"));
  internal.push_back(Block::component("lan"));
  internal.push_back(replicated("ws", 1, web_host_availability(p), params));
  internal.push_back(replicated("cas", 1, p.a_cas, params));
  // Database host in series with its single disk.
  params["cds#0"] = p.a_cds;
  params["disk#0"] = p.a_disk;
  internal.push_back(Block::series(
      {Block::component("cds#0"), Block::component("disk#0")}));
  arch.internal = Block::series(internal);

  std::vector<Block> search = internal;
  external_blocks(p, params, search);
  arch.search_path = Block::series(std::move(search));
  return arch;
}

ArchitectureRbd redundant_architecture_rbd(const TaParameters& p) {
  p.validate();
  ArchitectureRbd arch{Block::component("net"), Block::component("net"), {}};
  rbd::ParamMap& params = arch.availabilities;
  params["net"] = p.a_net;
  params["lan"] = p.a_lan;

  std::vector<Block> internal;
  internal.push_back(Block::component("net"));
  internal.push_back(Block::component("lan"));
  internal.push_back(
      replicated("ws", p.n_web, web_host_availability(p), params));
  internal.push_back(replicated("cas", 2, p.a_cas, params));
  // Two database hosts in parallel, two mirrored disks in parallel
  // (shared storage, matching Table 4's factorized formula).
  internal.push_back(replicated("cds", 2, p.a_cds, params));
  internal.push_back(replicated("disk", 2, p.a_disk, params));
  arch.internal = Block::series(internal);

  std::vector<Block> search = internal;
  external_blocks(p, params, search);
  arch.search_path = Block::series(std::move(search));
  return arch;
}

std::vector<rbd::ComponentImportance> resource_importance_ranking(
    const ArchitectureRbd& architecture) {
  return rbd::importance_ranking(architecture.search_path,
                                 architecture.availabilities);
}

}  // namespace upa::ta
