// Tests for the robustness extension: fault plans and injectors, the
// campaign runner, user retry/timeout/abandonment semantics (including
// the bit-for-bit guarantee that the disabled policy reproduces the seed
// simulator), and the robust stationary-solve fallback chain.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "upa/common/error.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/fault_plan.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/inject/retry.hpp"
#include "upa/linalg/iterative.hpp"
#include "upa/linalg/sparse.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/sim/rng.hpp"
#include "upa/ta/end_to_end_sim.hpp"
#include "upa/ta/user_availability.hpp"

namespace inj = upa::inject;
namespace ul = upa::linalg;
namespace um = upa::markov;
namespace usim = upa::sim;
namespace ut = upa::ta;
using upa::common::ConvergenceError;
using upa::common::ModelError;

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, AddValidatesWindowsAtInsertion) {
  inj::FaultPlan plan;
  EXPECT_THROW(plan.add(inj::FaultTarget::kWebFarm, -1.0, 2.0), ModelError);
  EXPECT_THROW(plan.add(inj::FaultTarget::kWebFarm, 0.0, 0.0), ModelError);
  EXPECT_THROW(plan.add(inj::FaultTarget::kWebFarm, 0.0, -3.0), ModelError);
  const double nan = std::nan("");
  EXPECT_THROW(plan.add(inj::FaultTarget::kWebFarm, nan, 1.0), ModelError);
  EXPECT_TRUE(plan.empty());
  plan.add(inj::FaultTarget::kWebFarm, 10.0, 2.0);
  EXPECT_EQ(plan.size(), 1u);
}

TEST(FaultPlan, ForcedDownUsesHalfOpenWindows) {
  inj::FaultPlan plan;
  plan.add(inj::FaultTarget::kWebFarm, 10.0, 2.0);
  EXPECT_FALSE(plan.forced_down(inj::FaultTarget::kWebFarm, 9.999));
  EXPECT_TRUE(plan.forced_down(inj::FaultTarget::kWebFarm, 10.0));
  EXPECT_TRUE(plan.forced_down(inj::FaultTarget::kWebFarm, 11.999));
  EXPECT_FALSE(plan.forced_down(inj::FaultTarget::kWebFarm, 12.0));
  // Other targets are unaffected.
  EXPECT_FALSE(plan.forced_down(inj::FaultTarget::kDatabase, 11.0));
}

TEST(FaultPlan, MergedWindowsAndDownFraction) {
  inj::FaultPlan plan;
  plan.add(inj::FaultTarget::kInternet, 12.0, 6.0)   // [12, 18)
      .add(inj::FaultTarget::kInternet, 10.0, 4.0)   // [10, 14) overlaps
      .add(inj::FaultTarget::kInternet, 30.0, 1.0)   // [30, 31) disjoint
      .add(inj::FaultTarget::kPayment, 0.0, 50.0);   // other target
  const auto merged = plan.merged_windows(inj::FaultTarget::kInternet);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].first, 10.0);
  EXPECT_DOUBLE_EQ(merged[0].second, 18.0);
  EXPECT_DOUBLE_EQ(merged[1].first, 30.0);
  EXPECT_DOUBLE_EQ(merged[1].second, 31.0);
  EXPECT_NEAR(plan.down_fraction(inj::FaultTarget::kInternet, 100.0),
              9.0 / 100.0, 1e-12);
  // Windows past the horizon are clipped in the fraction.
  EXPECT_NEAR(plan.down_fraction(inj::FaultTarget::kInternet, 15.0),
              5.0 / 15.0, 1e-12);
  EXPECT_DOUBLE_EQ(plan.down_fraction(inj::FaultTarget::kCar, 100.0), 0.0);
}

TEST(FaultPlan, ValidateRejectsWindowsPastHorizon) {
  inj::FaultPlan plan;
  plan.add(inj::FaultTarget::kLan, 90.0, 20.0);  // ends at 110
  EXPECT_NO_THROW(plan.validate(110.0));
  EXPECT_THROW(plan.validate(100.0), ModelError);
  EXPECT_THROW(plan.validate(-1.0), ModelError);
}

TEST(FaultPlan, TargetNamesRoundTrip) {
  for (inj::FaultTarget t : inj::kAllFaultTargets) {
    EXPECT_EQ(inj::fault_target_from_name(inj::fault_target_name(t)), t);
  }
  EXPECT_THROW((void)inj::fault_target_from_name("mainframe"), ModelError);
}

// -------------------------------------------------------------- Injectors

TEST(Injectors, ScriptedOutageClipsToHorizon) {
  const auto plan =
      inj::scripted_outage(inj::FaultTarget::kWebFarm, 90.0, 50.0, 100.0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.windows()[0].end_hours(), 100.0);
  EXPECT_NO_THROW(plan.validate(100.0));
  EXPECT_THROW(
      (void)inj::scripted_outage(inj::FaultTarget::kWebFarm, 100.0, 1.0, 100.0),
      ModelError);
}

TEST(Injectors, SampledPlansAreDeterministicAndContained) {
  inj::OutageProcess process;
  process.targets = {inj::FaultTarget::kWebFarm, inj::FaultTarget::kDatabase};
  process.events_per_hour = 0.01;
  process.mean_duration_hours = 5.0;
  usim::Xoshiro256 a(321);
  usim::Xoshiro256 b(321);
  const auto plan_a = inj::sample_outage_plan(process, 10000.0, a);
  const auto plan_b = inj::sample_outage_plan(process, 10000.0, b);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  EXPECT_GT(plan_a.size(), 10u);  // ~100 events expected
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a.windows()[i].target, plan_b.windows()[i].target);
    EXPECT_DOUBLE_EQ(plan_a.windows()[i].start_hours,
                     plan_b.windows()[i].start_hours);
    EXPECT_DOUBLE_EQ(plan_a.windows()[i].duration_hours,
                     plan_b.windows()[i].duration_hours);
  }
  EXPECT_NO_THROW(plan_a.validate(10000.0));  // durations truncated
}

TEST(Injectors, CommonCauseHitsEveryTarget) {
  inj::OutageProcess process;
  process.targets = {inj::FaultTarget::kWebFarm, inj::FaultTarget::kApplication,
                     inj::FaultTarget::kDatabase};
  process.events_per_hour = 0.005;
  process.common_cause_probability = 1.0;
  usim::Xoshiro256 rng(5);
  const auto plan = inj::sample_outage_plan(process, 5000.0, rng);
  ASSERT_GT(plan.size(), 0u);
  EXPECT_EQ(plan.size() % 3, 0u);  // every event expands to all 3 targets
  // Each shock shares one start/duration across the targets.
  for (std::size_t i = 0; i < plan.size(); i += 3) {
    for (std::size_t j = 1; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(plan.windows()[i].start_hours,
                       plan.windows()[i + j].start_hours);
      EXPECT_DOUBLE_EQ(plan.windows()[i].duration_hours,
                       plan.windows()[i + j].duration_hours);
    }
  }
}

TEST(Injectors, OutageProcessValidation) {
  inj::OutageProcess process;
  process.targets.clear();
  EXPECT_THROW(process.validate(), ModelError);
  process.targets = {inj::FaultTarget::kWebFarm};
  process.events_per_hour = 0.0;
  EXPECT_THROW(process.validate(), ModelError);
  process.events_per_hour = 1.0;
  process.common_cause_probability = 1.5;
  EXPECT_THROW(process.validate(), ModelError);
}

// ------------------------------------------------------------ RetryPolicy

TEST(RetryPolicy, BackoffGrowsGeometrically) {
  inj::RetryPolicy policy;
  policy.backoff_base_hours = 0.5;
  policy.backoff_multiplier = 3.0;
  EXPECT_DOUBLE_EQ(policy.backoff_hours(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_hours(1), 1.5);
  EXPECT_DOUBLE_EQ(policy.backoff_hours(2), 4.5);
}

TEST(RetryPolicy, DefaultPolicyIsDisabled) {
  const inj::RetryPolicy fail_fast;
  EXPECT_FALSE(fail_fast.enabled());
  inj::RetryPolicy retries = fail_fast;
  retries.max_retries = 1;
  EXPECT_TRUE(retries.enabled());
  inj::RetryPolicy deadline = fail_fast;
  deadline.response_timeout_seconds = 30.0;
  EXPECT_TRUE(deadline.enabled());
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  inj::RetryPolicy policy;
  policy.backoff_base_hours = -1.0;
  EXPECT_THROW(policy.validate(), ModelError);
  policy = {};
  policy.backoff_multiplier = 0.5;
  EXPECT_THROW(policy.validate(), ModelError);
  policy = {};
  policy.response_timeout_seconds = -2.0;
  EXPECT_THROW(policy.validate(), ModelError);
  policy = {};
  policy.abandonment_probability = 1.2;
  EXPECT_THROW(policy.validate(), ModelError);
}

// ---------------------------------------------------- Retry analytic model

TEST(RetryAnalytic, MatchesClosedFormWithoutAbandonment) {
  EXPECT_DOUBLE_EQ(ut::retry_adjusted_availability(0.9, 0), 0.9);
  EXPECT_NEAR(ut::retry_adjusted_availability(0.9, 2),
              1.0 - std::pow(0.1, 3), 1e-15);
  EXPECT_NEAR(ut::retry_adjusted_availability(0.5, 4),
              1.0 - std::pow(0.5, 5), 1e-15);
  // Retries can only help.
  EXPECT_GT(ut::retry_adjusted_availability(0.7, 1), 0.7);
}

TEST(RetryAnalytic, AbandonmentDiscountsEachRetry) {
  // a * sum_k [(1-a)(1-p)]^k with a = 0.8, p = 0.5, R = 2.
  const double a = 0.8;
  const double q = 0.2 * 0.5;
  const double expected = a * (1.0 + q + q * q);
  EXPECT_NEAR(ut::retry_adjusted_availability(0.8, 2, 0.5), expected, 1e-15);
  // Certain abandonment degenerates to the fail-fast user.
  EXPECT_DOUBLE_EQ(ut::retry_adjusted_availability(0.8, 5, 1.0), 0.8);
}

TEST(RetryAnalytic, RejectsOutOfDomainArguments) {
  EXPECT_THROW((void)ut::retry_adjusted_availability(-0.1, 1), ModelError);
  EXPECT_THROW((void)ut::retry_adjusted_availability(1.1, 1), ModelError);
  EXPECT_THROW((void)ut::retry_adjusted_availability(0.5, 1, -0.2),
               ModelError);
}

// -------------------------------------------- End-to-end with faults/retry

TEST(EndToEndInject, DisabledExtensionsReproduceSeedBitForBit) {
  // Regression pin: with an empty fault plan and the default fail-fast
  // retry policy the simulator must replay the pre-extension RNG draw
  // sequence exactly. These constants were captured from the seed
  // implementation (same configuration, same seed) before the injection
  // code was added; any extra or reordered draw changes them.
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 5000.0;
  options.think_time_hours = 0.0;
  options.sessions_per_replication = 8000;
  options.replications = 4;
  options.seed = 777;
  const auto r = ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  EXPECT_DOUBLE_EQ(r.perceived_availability.mean, 0.94221874999999999);
  EXPECT_DOUBLE_EQ(r.perceived_availability.half_width,
                   0.0068611874999999732);
  EXPECT_DOUBLE_EQ(r.observed_web_service_availability, 0.99999625082558541);
  EXPECT_DOUBLE_EQ(r.mean_retries_per_session, 0.0);
  EXPECT_DOUBLE_EQ(r.abandonment_fraction, 0.0);

  options.think_time_hours = 0.05;
  const auto r2 = ut::simulate_end_to_end(ut::UserClass::kA, p, options);
  EXPECT_DOUBLE_EQ(r2.perceived_availability.mean, 0.96290624999999996);
  EXPECT_DOUBLE_EQ(r2.perceived_availability.half_width,
                   0.0061434351321272649);
  // The duration sum is accumulated per replication and the partials are
  // merged in replication order (the parallel execution layer's fixed
  // summation tree), which moved this pin by a few ULPs relative to the
  // original single-accumulator loop.
  EXPECT_DOUBLE_EQ(r2.mean_session_duration_hours, 0.10125782121582998);
}

TEST(EndToEndInject, WebFarmOutageRemovesItsShareOfTheHorizon) {
  // A scripted total web-farm outage of d hours over an H-hour horizon
  // must lower the observed web-service availability by ~d/H and drag
  // the perceived availability down with it.
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 20000.0;
  options.sessions_per_replication = 20000;
  options.replications = 4;
  options.seed = 4242;
  const auto baseline = ut::simulate_end_to_end(ut::UserClass::kB, p, options);

  const double d = 2000.0;
  options.faults =
      inj::scripted_outage(inj::FaultTarget::kWebFarm, 9000.0, d, 20000.0);
  const auto faulted = ut::simulate_end_to_end(ut::UserClass::kB, p, options);

  const double share = d / options.horizon_hours;  // 0.1
  EXPECT_NEAR(baseline.observed_web_service_availability -
                  faulted.observed_web_service_availability,
              share, 1e-3);
  // Sessions start uniformly on [0, 0.8 H] (headroom for long sessions),
  // so the fraction of otherwise-successful sessions that now start inside
  // the outage and fail outright is d / (0.8 H).
  const double session_share = d / (0.8 * options.horizon_hours);
  const double drop = baseline.perceived_availability.mean -
                      faulted.perceived_availability.mean;
  EXPECT_NEAR(drop, session_share * baseline.perceived_availability.mean,
              baseline.perceived_availability.half_width +
                  faulted.perceived_availability.half_width + 0.01);
}

TEST(EndToEndInject, RetrySimulatorMatchesIndependentAnalytic) {
  // With instantaneous sessions and a backoff much longer than the mean
  // repair time, successive attempts sample effectively independent
  // resource states, so the retry-enabled simulator should agree with the
  // independence-based analytic within its confidence interval.
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 20000.0;
  options.think_time_hours = 0.0;
  options.sessions_per_replication = 20000;
  options.replications = 6;
  options.seed = 1234;
  options.retry.max_retries = 2;
  options.retry.backoff_base_hours = 6.0;  // >> 1/mu = 1 h repair time
  const auto sim = ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  const double analytic =
      ut::user_availability_with_retries(ut::UserClass::kB, p, options.retry);
  EXPECT_NEAR(sim.perceived_availability.mean, analytic,
              sim.perceived_availability.half_width + 0.01);
  EXPECT_GT(sim.mean_retries_per_session, 0.0);
  // Retries must beat the fail-fast user on the same configuration.
  ut::EndToEndOptions fail_fast = options;
  fail_fast.retry = {};
  const auto base = ut::simulate_end_to_end(ut::UserClass::kB, p, fail_fast);
  EXPECT_GT(sim.perceived_availability.mean,
            base.perceived_availability.mean);
}

TEST(EndToEndInject, ImpatientUsersAbandonSessions) {
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 10000.0;
  options.sessions_per_replication = 10000;
  options.replications = 3;
  options.seed = 9;
  options.retry.max_retries = 3;
  options.retry.abandonment_probability = 0.5;
  const auto r = ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  EXPECT_GT(r.abandonment_fraction, 0.0);
  EXPECT_LT(r.abandonment_fraction, 0.2);  // only failed attempts abandon
}

TEST(EndToEndInject, OptionsValidateRejectsBadExtensions) {
  ut::EndToEndOptions options;
  options.horizon_hours = 100.0;
  // Fault window past the horizon.
  options.faults.add(inj::FaultTarget::kWebFarm, 90.0, 20.0);
  EXPECT_THROW(options.validate(), ModelError);
  options.faults = {};
  options.retry.backoff_multiplier = 0.0;
  EXPECT_THROW(options.validate(), ModelError);
  options.retry = {};
  options.think_time_hours = -0.5;
  EXPECT_THROW(options.validate(), ModelError);
  options.think_time_hours = 0.0;
  EXPECT_NO_THROW(options.validate());
}

// ---------------------------------------------------------------- Campaign

TEST(Campaign, BaselineReproducesPlainSimulatorBitForBit) {
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 5000.0;
  options.sessions_per_replication = 4000;
  options.replications = 3;
  options.seed = 31337;

  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"farm outage", inj::scripted_outage(
                                      inj::FaultTarget::kWebFarm, 1000.0,
                                      500.0, options.horizon_hours)});
  const auto campaign =
      inj::run_campaign(ut::UserClass::kB, p, options, plans);
  ASSERT_EQ(campaign.entries.size(), 2u);

  const auto direct = ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  EXPECT_DOUBLE_EQ(campaign.baseline().perceived_availability.mean,
                   direct.perceived_availability.mean);
  EXPECT_DOUBLE_EQ(campaign.baseline().perceived_availability.half_width,
                   direct.perceived_availability.half_width);
  EXPECT_DOUBLE_EQ(campaign.baseline().delta_vs_baseline, 0.0);
  // The injected plan must cost availability.
  EXPECT_LT(campaign.entries[1].delta_vs_baseline, 0.0);
  EXPECT_DOUBLE_EQ(campaign.entries[1].perceived_availability.mean -
                       campaign.baseline().perceived_availability.mean,
                   campaign.entries[1].delta_vs_baseline);
}

TEST(Campaign, CsvRoundTrips) {
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 2000.0;
  options.sessions_per_replication = 1000;
  options.replications = 2;
  options.seed = 7;
  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"lan outage", inj::scripted_outage(
                                     inj::FaultTarget::kLan, 100.0, 200.0,
                                     options.horizon_hours)});
  const auto campaign =
      inj::run_campaign(ut::UserClass::kA, p, options, plans);

  const std::string csv = campaign.csv();
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "plan,availability_mean,ci_half_width,ci_low,ci_high,"
            "delta_vs_baseline,observed_web_availability,"
            "mean_retries_per_session,abandonment_fraction");
  std::string row;
  std::size_t rows = 0;
  while (std::getline(lines, row)) {
    if (!row.empty()) ++rows;
  }
  EXPECT_EQ(rows, campaign.entries.size());

  const std::string path = ::testing::TempDir() + "upa_campaign_test.csv";
  campaign.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), csv);
  std::remove(path.c_str());
}

// -------------------------------------------- Robust stationary fallback

TEST(StationaryRobust, AgreesWithDenseLuOnIrreducibleChain) {
  const auto chain = um::two_state_availability(0.25, 1.0);
  const auto report = chain.steady_state_robust();
  EXPECT_EQ(report.method, um::StationaryMethod::kDenseLu);
  EXPECT_NEAR(report.distribution[0], 0.8, 1e-12);
  EXPECT_LE(report.residual, 1e-8);
  EXPECT_FALSE(report.diagnostics.empty());
}

TEST(StationaryRobust, FallsBackWhenDenseIsDisallowed) {
  // Cap the dense stage below the chain size: the solve must come from an
  // iterative stage and still hit the two-state closed form.
  const auto chain = um::two_state_availability(0.5, 2.0);
  um::StationaryOptions options;
  options.max_dense_states = 1;
  const auto report = chain.steady_state_robust(options);
  EXPECT_NE(report.method, um::StationaryMethod::kDenseLu);
  EXPECT_NEAR(report.distribution[0],
              um::two_state_steady_availability(0.5, 2.0), 1e-9);
  EXPECT_LE(report.residual, options.residual_tolerance);
  // The skipped dense stage must leave a diagnostic trace.
  ASSERT_GE(report.diagnostics.size(), 2u);
}

TEST(StationaryRobust, SurvivesReducibleChainThatBreaksLu) {
  // Two disconnected 2-state components: the balance equations are
  // singular, so the dense LU solve throws -- but any convex mixture of
  // the component stationary vectors satisfies pi Q = 0, and an iterative
  // stage finds one.
  um::Ctmc chain(4);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(2, 3, 2.0);
  chain.add_rate(3, 2, 2.0);
  EXPECT_THROW((void)chain.steady_state(), ModelError);

  const auto report = chain.steady_state_robust();
  EXPECT_NE(report.method, um::StationaryMethod::kDenseLu);
  EXPECT_LE(report.residual, 1e-8);
  double sum = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(report.distribution[i], 0.0);
    sum += report.distribution[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Within each component the two states are symmetric.
  EXPECT_NEAR(report.distribution[0], report.distribution[1], 1e-8);
  EXPECT_NEAR(report.distribution[2], report.distribution[3], 1e-8);
}

TEST(StationaryRobust, LargerChainMatchesDirectSolver) {
  um::Ctmc chain(24);
  for (std::size_t i = 0; i + 1 < 24; ++i) {
    chain.add_rate(i, i + 1, 1.0 + 0.1 * static_cast<double>(i));
    chain.add_rate(i + 1, i, 2.0);
  }
  const auto direct = chain.steady_state();
  um::StationaryOptions options;
  options.max_dense_states = 4;  // force the fallback
  const auto report = chain.steady_state_robust(options);
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_NEAR(report.distribution[i], direct[i], 1e-8);
  }
}

TEST(ConvergenceDiagnostics, CarriesIterationCountAndResidual) {
  // A system Gauss-Seidel cannot finish in one sweep: the error must name
  // the algorithm and carry structured diagnostics for fallback chains.
  const ul::SparseMatrix a(
      2, 2, {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  const ul::Vector b{1.0, 2.0};
  ul::IterativeOptions options;
  options.max_iterations = 1;
  options.tolerance = 1e-15;
  try {
    (void)ul::gauss_seidel(a, b, options);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_EQ(e.iterations(), 1u);
    EXPECT_GT(e.final_residual(), 0.0);
    const std::string what = e.what();
    EXPECT_NE(what.find("gauss_seidel"), std::string::npos);
    EXPECT_NE(what.find("did not converge"), std::string::npos);
    EXPECT_NE(what.find("2 unknowns"), std::string::npos);
  }
}
