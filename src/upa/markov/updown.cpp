#include "upa/markov/updown.hpp"

#include <vector>

#include "upa/common/error.hpp"

namespace upa::markov {

UpDownMeasures up_down_measures(const Ctmc& chain,
                                const std::vector<std::size_t>& up_states) {
  const std::size_t n = chain.state_count();
  UPA_REQUIRE(!up_states.empty(), "need at least one up state");
  std::vector<bool> is_up(n, false);
  for (std::size_t s : up_states) {
    UPA_REQUIRE(s < n, "up-state index out of range");
    is_up[s] = true;
  }
  bool has_down = false;
  for (std::size_t s = 0; s < n; ++s) {
    if (!is_up[s]) has_down = true;
  }
  UPA_REQUIRE(has_down, "every state is up; the partition is trivial");

  const linalg::Vector pi = chain.steady_state();
  const linalg::SparseMatrix q = chain.sparse_generator();

  UpDownMeasures m;
  for (std::size_t s = 0; s < n; ++s) {
    if (is_up[s]) m.availability += pi[s];
  }
  // Crossing rate of the cut: sum over up states of pi_s * rate(s -> down).
  for (std::size_t s = 0; s < n; ++s) {
    if (!is_up[s]) continue;
    const auto cols = q.row_cols(s);
    const auto vals = q.row_values(s);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != s && !is_up[cols[k]]) {
        m.failure_frequency += pi[s] * vals[k];
      }
    }
  }
  UPA_REQUIRE(m.failure_frequency > 0.0,
              "no up->down transitions are reachable at steady state");
  m.mean_up_time = m.availability / m.failure_frequency;
  m.mean_down_time = (1.0 - m.availability) / m.failure_frequency;
  m.equivalent_failure_rate = 1.0 / m.mean_up_time;
  m.equivalent_repair_rate = 1.0 / m.mean_down_time;
  return m;
}

}  // namespace upa::markov
