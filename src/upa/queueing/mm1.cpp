#include "upa/queueing/mm1.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::queueing {
namespace {

void check_rates(double alpha, double nu) {
  UPA_REQUIRE(std::isfinite(alpha) && alpha > 0.0,
              "arrival rate must be positive");
  UPA_REQUIRE(std::isfinite(nu) && nu > 0.0, "service rate must be positive");
}

}  // namespace

Mm1Metrics mm1_metrics(double alpha, double nu) {
  check_rates(alpha, nu);
  const double rho = alpha / nu;
  UPA_REQUIRE(rho < 1.0, "M/M/1 requires rho < 1 for stability");
  Mm1Metrics m;
  m.rho = rho;
  m.mean_in_system = rho / (1.0 - rho);
  m.mean_in_queue = rho * rho / (1.0 - rho);
  m.mean_response = 1.0 / (nu - alpha);
  m.mean_wait = m.mean_response - 1.0 / nu;
  return m;
}

double mm1k_loss_probability(double alpha, double nu, std::size_t capacity) {
  check_rates(alpha, nu);
  UPA_REQUIRE(capacity >= 1, "capacity must be at least 1");
  const double rho = alpha / nu;
  const auto k = static_cast<double>(capacity);
  if (std::abs(rho - 1.0) < 1e-12) {
    // Limit of rho^K (1-rho) / (1 - rho^{K+1}) as rho -> 1.
    return 1.0 / (k + 1.0);
  }
  return std::pow(rho, k) * (1.0 - rho) / (1.0 - std::pow(rho, k + 1.0));
}

Mm1kMetrics mm1k_metrics(double alpha, double nu, std::size_t capacity) {
  check_rates(alpha, nu);
  UPA_REQUIRE(capacity >= 1, "capacity must be at least 1");
  const double rho = alpha / nu;
  Mm1kMetrics m;
  m.rho = rho;
  m.state_probabilities.resize(capacity + 1);
  if (std::abs(rho - 1.0) < 1e-12) {
    const double uniform = 1.0 / static_cast<double>(capacity + 1);
    for (double& p : m.state_probabilities) p = uniform;
  } else {
    const double p0 =
        (1.0 - rho) / (1.0 - std::pow(rho, static_cast<double>(capacity) + 1));
    for (std::size_t j = 0; j <= capacity; ++j) {
      m.state_probabilities[j] = p0 * std::pow(rho, static_cast<double>(j));
    }
  }
  m.blocking = m.state_probabilities[capacity];
  for (std::size_t j = 0; j <= capacity; ++j) {
    m.mean_in_system += static_cast<double>(j) * m.state_probabilities[j];
  }
  m.throughput = alpha * (1.0 - m.blocking);
  m.mean_response = m.mean_in_system / m.throughput;  // Little's law
  return m;
}

}  // namespace upa::queueing
