#pragma once
// Internal node layout of rbd::Block, shared between the block, eval and
// paths translation units. Not part of the public API.

#include <string>
#include <vector>

#include "upa/rbd/block.hpp"

namespace upa::rbd {

struct Block::Node {
  BlockKind kind = BlockKind::kComponent;
  std::string name;           // kComponent only
  std::size_t k = 0;          // kKofN only
  std::vector<Block> children;
};

class BlockAccess {
 public:
  [[nodiscard]] static const Block::Node& node(const Block& b) {
    return *b.node_;
  }
  [[nodiscard]] static Block make(std::shared_ptr<const Block::Node> node) {
    return Block(std::move(node));
  }

  /// Builds a node of any kind (factory used by block.cpp helpers).
  [[nodiscard]] static Block create(BlockKind kind, std::string name,
                                    std::size_t k, std::vector<Block> children);
};

}  // namespace upa::rbd
