#pragma once
// Symbolic form of the paper's eq. (10): the user-perceived availability
// as a core::Expr over the nine named service availabilities. Evaluating
// it reproduces user_availability_eq10; differentiating it yields the
// exact first-order sensitivities behind the paper's remark that
// "the availabilities of the LAN, the net and the web service are the
// most influential ones".

#include <map>
#include <string>

#include "upa/core/expr.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::ta {

/// eq. (10) as an expression over parameters
/// "Anet","ALAN","AWS","AAS","ADS","AFlight","AHotel","ACar","APS"
/// (scenario probabilities and q_ij baked in as constants).
[[nodiscard]] core::Expr user_availability_expr(UserClass uc,
                                                const TaParameters& p);

/// Exact gradient of eq. (10) at the configured service availabilities:
/// service parameter name -> dA(user)/dA(service).
[[nodiscard]] std::map<std::string, double> user_availability_gradient(
    UserClass uc, const TaParameters& p);

}  // namespace upa::ta
