#include "upa/cache/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>

#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"

namespace upa::cache {

namespace {

/// Eight slice-by-8 tables for the reflected IEEE polynomial: table 0
/// is the classic bytewise table, table k folds a byte that sits k
/// positions further ahead, so eight lookups advance the CRC a full
/// 64-bit word. Same polynomial, bit-identical digests -- attach-time
/// index/chain verification runs over megabytes, so the byte-at-a-time
/// loop was the hot spot.
std::array<std::array<std::uint32_t, 256>, 8> build_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::size_t slice = 1; slice < 8; ++slice) {
      const std::uint32_t prev = tables[slice - 1][i];
      tables[slice][i] = tables[0][prev & 0xffu] ^ (prev >> 8);
    }
  }
  return tables;
}

/// Reads the little-endian u32 at `at` (caller checks bounds).
std::uint32_t read_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(
                               bytes[at + static_cast<std::size_t>(i)]);
  }
  return value;
}

}  // namespace

bool parse_record_payload(std::string_view payload, SegmentRecord* out) {
  try {
    ByteReader r(payload);
    out->type_tag = r.get_string();
    out->key_bytes = r.get_string();
    out->value_bytes = r.get_string();
    r.expect_end();
  } catch (const common::ModelError&) {
    return false;
  }
  return true;
}

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      build_crc_tables();
  const auto& t = tables;
  std::uint32_t crc = 0xFFFFFFFFu;
  const char* p = data.data();
  std::size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    // Slice-by-8: fold one aligned-load word per step instead of one
    // byte. The XOR trick (word ^ crc) only lines up the CRC with the
    // word's low bytes on a little-endian host.
    while (n >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      word ^= crc;
      crc = t[7][word & 0xffu] ^ t[6][(word >> 8) & 0xffu] ^
            t[5][(word >> 16) & 0xffu] ^ t[4][(word >> 24) & 0xffu] ^
            t[3][(word >> 32) & 0xffu] ^ t[2][(word >> 40) & 0xffu] ^
            t[1][(word >> 48) & 0xffu] ^ t[0][(word >> 56) & 0xffu];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; ++p, --n) {
    crc = t[0][(crc ^ static_cast<std::uint8_t>(*p)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string segment_header(std::uint32_t format_version,
                           std::string_view tag) {
  ByteWriter w;
  std::string out(kSegmentMagic);
  w.put_u32(format_version);
  w.put_u32(static_cast<std::uint32_t>(tag.size()));
  out += w.bytes();
  out.append(tag.data(), tag.size());
  return out;
}

std::string encode_record(const SegmentRecord& record) {
  ByteWriter payload;
  payload.put_string(record.type_tag);
  payload.put_string(record.key_bytes);
  payload.put_string(record.value_bytes);
  const std::string body = std::move(payload).take();
  ByteWriter frame;
  frame.put_u32(static_cast<std::uint32_t>(body.size()));
  frame.put_u32(crc32(body));
  std::string out = std::move(frame).take();
  out += body;
  return out;
}

bool load_segment_bytes(
    std::string_view bytes, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record) {
  // Header: magic, format version, tag.
  const std::size_t fixed = kSegmentMagic.size() + 8;
  if (bytes.size() < fixed ||
      bytes.substr(0, kSegmentMagic.size()) != kSegmentMagic) {
    ++stats.segments_rejected;
    return false;
  }
  const std::uint32_t version = read_u32(bytes, kSegmentMagic.size());
  const std::uint32_t tag_length =
      read_u32(bytes, kSegmentMagic.size() + 4);
  if (version != kSegmentFormatVersion || tag_length > bytes.size() - fixed ||
      bytes.substr(fixed, tag_length) != kSolverVersionTag) {
    ++stats.segments_rejected;
    return false;
  }

  std::size_t at = fixed + tag_length;
  while (at < bytes.size()) {
    if (bytes.size() - at < 8) {
      stats.torn_tail_bytes += bytes.size() - at;
      break;  // torn frame header
    }
    const std::uint32_t length = read_u32(bytes, at);
    const std::uint32_t expected_crc = read_u32(bytes, at + 4);
    if (bytes.size() - at - 8 < length) {
      stats.torn_tail_bytes += bytes.size() - at;
      break;  // torn payload
    }
    const std::string_view payload = bytes.substr(at + 8, length);
    at += 8 + length;
    if (crc32(payload) != expected_crc) {
      ++stats.records_skipped_crc;
      continue;
    }
    SegmentRecord record;
    if (!parse_record_payload(payload, &record)) {
      ++stats.records_skipped_crc;
      continue;
    }
    ++stats.records_loaded;
    on_record(std::move(record));
  }
  ++stats.segments_loaded;
  return true;
}

MappedFile::MappedFile(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) return;
  struct stat st{};
  if (::fstat(fd_, &st) != 0 || st.st_size < 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ == 0) return;  // nothing to map; view() is empty
  void* map = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ,
                     MAP_PRIVATE, fd_, 0);
  if (map != MAP_FAILED) map_ = map;  // else: pread fallback via read_at
}

void MappedFile::reset() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(size_));
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      map_(std::exchange(other.map_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
    map_ = std::exchange(other.map_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

std::string_view MappedFile::view() const noexcept {
  if (map_ == nullptr) return {};
  return {static_cast<const char*>(map_), static_cast<std::size_t>(size_)};
}

bool MappedFile::read_at(std::uint64_t offset, void* out,
                         std::size_t length) const {
  if (!ok() || offset > size_ || size_ - offset < length) return false;
  if (map_ != nullptr) {
    std::memcpy(out, static_cast<const char*>(map_) + offset, length);
    return true;
  }
  std::size_t done = 0;
  while (done < length) {
    const ::ssize_t n =
        ::pread(fd_, static_cast<char*>(out) + done, length - done,
                static_cast<::off_t>(offset + done));
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool MappedFile::read_at(std::uint64_t offset, std::size_t length,
                         std::string* out) const {
  out->resize(length);
  return read_at(offset, out->data(), length);
}

bool load_segment_mapped(
    const MappedFile& file, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record) {
  if (!file.ok()) {
    ++stats.segments_rejected;
    return false;
  }
  if (file.mapped() || file.size() == 0) {
    return load_segment_bytes(file.view(), stats, on_record);
  }

  // pread fallback: same parse, one bounded record buffer at a time.
  const std::size_t fixed = kSegmentMagic.size() + 8;
  std::string head;
  if (file.size() < fixed || !file.read_at(0, fixed, &head) ||
      std::string_view(head).substr(0, kSegmentMagic.size()) !=
          kSegmentMagic) {
    ++stats.segments_rejected;
    return false;
  }
  const std::uint32_t version = read_u32(head, kSegmentMagic.size());
  const std::uint32_t tag_length = read_u32(head, kSegmentMagic.size() + 4);
  std::string tag;
  if (version != kSegmentFormatVersion || tag_length > file.size() - fixed ||
      !file.read_at(fixed, tag_length, &tag) || tag != kSolverVersionTag) {
    ++stats.segments_rejected;
    return false;
  }

  std::uint64_t at = fixed + tag_length;
  std::string payload;
  while (at < file.size()) {
    char frame[8];
    if (file.size() - at < 8 || !file.read_at(at, frame, 8)) {
      stats.torn_tail_bytes += file.size() - at;
      break;
    }
    const std::string_view frame_view(frame, 8);
    const std::uint32_t length = read_u32(frame_view, 0);
    const std::uint32_t expected_crc = read_u32(frame_view, 4);
    if (file.size() - at - 8 < length ||
        !file.read_at(at + 8, length, &payload)) {
      stats.torn_tail_bytes += file.size() - at;
      break;
    }
    at += 8 + length;
    if (crc32(payload) != expected_crc) {
      ++stats.records_skipped_crc;
      continue;
    }
    SegmentRecord record;
    if (!parse_record_payload(payload, &record)) {
      ++stats.records_skipped_crc;
      continue;
    }
    ++stats.records_loaded;
    on_record(std::move(record));
  }
  ++stats.segments_loaded;
  return true;
}

bool load_segment_file(
    const std::string& path, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record) {
  const MappedFile file(path);
  return load_segment_mapped(file, stats, on_record);
}

SegmentFile::SegmentFile(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  UPA_REQUIRE(file_ != nullptr, "cannot create cache segment '" + path_ +
                                    "': " + std::strerror(errno));
  const std::string header = segment_header();
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), file_) == header.size() &&
      std::fflush(file_) == 0;
  if (!ok) {
    std::fclose(file_);
    file_ = nullptr;
    throw common::ModelError("cannot write cache segment header to '" +
                             path_ + "'");
  }
}

SegmentFile::~SegmentFile() {
  if (file_ != nullptr) std::fclose(file_);
}

void SegmentFile::append(const SegmentRecord& record) {
  UPA_REQUIRE(file_ != nullptr,
              "cache segment '" + path_ + "' is not open for append");
  const std::string frame = encode_record(record);
  const bool ok =
      std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size() &&
      std::fflush(file_) == 0;
  UPA_REQUIRE(ok, "cannot append to cache segment '" + path_ + "'");
  ++records_;
}

}  // namespace upa::cache
