#pragma once
// Batch-means confidence intervals: output analysis from a SINGLE long
// simulation run (complementing the independent-replications route in
// stats.hpp). The observation stream is split into contiguous batches;
// batch averages are approximately independent when batches are long
// relative to the autocorrelation time.

#include <cstddef>
#include <vector>

#include "upa/sim/stats.hpp"

namespace upa::sim {

/// Accumulates a stream of observations and produces a batch-means CI.
class BatchMeans {
 public:
  /// `batch_size` observations per batch (fixed-size batching).
  explicit BatchMeans(std::size_t batch_size);

  void add(double value);

  [[nodiscard]] std::size_t completed_batches() const noexcept {
    return batch_averages_.size();
  }
  [[nodiscard]] const std::vector<double>& batch_averages() const noexcept {
    return batch_averages_;
  }

  /// Overall mean of all completed batches.
  [[nodiscard]] double mean() const;

  /// CI over the batch averages; requires >= 2 completed batches.
  [[nodiscard]] ConfidenceInterval interval(double level = 0.95) const;

  /// Lag-1 autocorrelation of the batch averages — a diagnostic: values
  /// near 0 indicate the batches are long enough to be treated as
  /// independent. Requires >= 3 completed batches.
  [[nodiscard]] double lag1_autocorrelation() const;

 private:
  std::size_t batch_size_;
  std::size_t in_current_ = 0;
  double current_sum_ = 0.0;
  std::vector<double> batch_averages_;
};

}  // namespace upa::sim
