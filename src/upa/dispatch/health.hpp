#pragma once
// Active health checker: one background thread that pings every
// upstream each probe interval and feeds verdicts into the pool's
// ejection/readmission thresholds. Detection delay -- the window in
// which a killed replica still receives forwarded attempts -- is
// `probe_interval_seconds * unhealthy_threshold`; the farm experiment
// maps that delay onto the composite model's coverage parameter
// (an undetected kill is exactly an *uncovered* failure) and onto the
// reconfiguration rate beta = 1 / delay.

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

#include "upa/dispatch/upstream.hpp"

namespace upa::dispatch {

struct HealthConfig {
  double probe_interval_seconds = 0.2;
  double probe_timeout_seconds = 1.0;   ///< connect + call timeout
  std::size_t unhealthy_threshold = 2;  ///< consecutive failures to eject
  std::size_t healthy_threshold = 1;    ///< consecutive successes to readmit
};

/// Validates the config (positive intervals/timeouts, thresholds >= 1);
/// throws ModelError otherwise.
void check_health_config(const HealthConfig& config);

class HealthChecker {
 public:
  /// The pool must outlive the checker. Probing starts on start().
  HealthChecker(UpstreamPool& pool, HealthConfig config);
  ~HealthChecker();

  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  void start();
  void stop();

  /// One synchronous probe sweep over all upstreams (used by tests and
  /// by start() so the first verdict never waits a full interval).
  void probe_all();

  [[nodiscard]] const HealthConfig& config() const noexcept {
    return config_;
  }

 private:
  void run();
  [[nodiscard]] bool probe_one(std::size_t index);

  UpstreamPool& pool_;
  HealthConfig config_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace upa::dispatch
