#pragma once
// User operational profiles (paper Table 1): the twelve scenario classes
// and their activation probabilities for customer classes A (browsers)
// and B (buyers), plus the reconstruction of a full p_ij session graph
// whose exact visited-set analysis reproduces Table 1.

#include "upa/profile/operational_profile.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/ta/functions.hpp"

namespace upa::ta {

/// The two customer profiles of Table 1.
enum class UserClass { kA, kB };

[[nodiscard]] std::string user_class_name(UserClass uc);

/// Function indices within TA scenario sets (Home=0 ... Pay=4), matching
/// TaFunction order.
[[nodiscard]] std::size_t function_index(TaFunction f);

/// The scenario-category grouping of Section 5.2.
enum class ScenarioCategory {
  kSC1,  ///< Home/Browse only (scenarios 1-3)
  kSC2,  ///< reaches Search but not Book (scenarios 4-6)
  kSC3,  ///< reaches Book but not Pay (scenarios 7-9)
  kSC4,  ///< reaches Pay (scenarios 10-12)
};

[[nodiscard]] std::string category_name(ScenarioCategory c);

/// Category of a scenario class by the functions it invokes.
[[nodiscard]] ScenarioCategory category_of(
    const profile::ScenarioClass& scenario);

/// Table 1 as data: twelve scenario classes with the paper's labels and
/// probabilities (percent values divided by 100; they sum to 1).
[[nodiscard]] profile::ScenarioSet scenario_table(UserClass uc);

/// Reconstructs a full operational-profile graph (Figure 2 shape: Start ->
/// {Home, Browse}; Home <-> Browse; {Home, Browse} -> Search; Search <->
/// Book; Book -> Pay -> Exit; exits from Home/Browse/Search/Book) whose
/// p_ij are fitted in closed form to the Table 1 probabilities.
/// `book_back_to_search` = P(Book -> Search) is not identified by Table 1
/// (it only moves mass within the {Se-Bo}* cycle classes) and may be
/// chosen freely in [0, 1). `start_home` = P(Start -> Home) is *almost*
/// free: Table 1's cycle-exit/cycle-search split pins it near 0.5, the
/// default. The fit is exact up to Table 1's rounding.
[[nodiscard]] profile::OperationalProfile fitted_session_graph(
    UserClass uc, double start_home = 0.5, double book_back_to_search = 0.2);

}  // namespace upa::ta
