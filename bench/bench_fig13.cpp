// Regenerates Figure 13 and the Section 5.2 business-impact example:
// per-category unavailability contributions UA(SC1..SC4) in hours/year
// for user classes A and B as the external replication N grows, plus the
// lost-transaction / lost-revenue arithmetic.

#include "bench_util.hpp"
#include "upa/ta/revenue.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ut = upa::ta;
namespace cm = upa::common;

void print_fig13() {
  upa::bench::print_header(
      "Figure 13 + Section 5.2",
      "Per-category unavailability UA(SC_i) [hours/year] and the revenue\n"
      "impact of SC4 (payment scenarios). Paper anchor: UA(SC4) ratio\n"
      "B:A = 0.203/0.075 ~ 2.71 (the absolute hours in the paper imply\n"
      "A(PS) ~ 0.99, inconsistent with Table 7's 0.9; see EXPERIMENTS.md).");
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    cm::Table t({"N", "UA(SC1) h/yr", "UA(SC2) h/yr", "UA(SC3) h/yr",
                 "UA(SC4) h/yr", "total h/yr"});
    t.set_title("UA(SC_i), " + ut::user_class_name(uclass));
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 10u}) {
      const auto breakdown =
          ut::category_breakdown(uclass, upa::bench::paper_params(n));
      auto hours = [&](ut::ScenarioCategory c) {
        return cm::fmt_fixed(breakdown.unavailability.at(c) * 8760.0, 1);
      };
      t.add_row({std::to_string(n), hours(ut::ScenarioCategory::kSC1),
                 hours(ut::ScenarioCategory::kSC2),
                 hours(ut::ScenarioCategory::kSC3),
                 hours(ut::ScenarioCategory::kSC4),
                 cm::fmt_fixed(breakdown.total_unavailability * 8760.0, 1)});
    }
    std::cout << t << "\n";
  }

  const auto a4 = ut::category_breakdown(ut::UserClass::kA,
                                         upa::bench::paper_params(5));
  const auto b4 = ut::category_breakdown(ut::UserClass::kB,
                                         upa::bench::paper_params(5));
  std::cout << "UA(SC4) ratio class B : class A = "
            << cm::fmt(b4.unavailability.at(ut::ScenarioCategory::kSC4) /
                           a4.unavailability.at(ut::ScenarioCategory::kSC4),
                       4)
            << "  (paper's 43h : 16h ~ 2.69; scenario-mass ratio "
            << cm::fmt(0.203 / 0.075, 4) << ")\n\n";

  cm::Table r({"class", "SC4 downtime h/yr", "lost transactions/yr",
               "lost revenue $/yr"});
  r.set_title(
      "Section 5.2 revenue example (100 tx/s, $100 per transaction)");
  r.set_align(0, cm::Align::kLeft);
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    const auto loss =
        ut::revenue_loss(uclass, upa::bench::paper_params(5), {});
    r.add_row({ut::user_class_name(uclass),
               cm::fmt_fixed(loss.pay_downtime_hours_per_year, 1),
               cm::fmt_sci(loss.lost_transactions_per_year, 3),
               cm::fmt_sci(loss.lost_revenue_per_year, 3)});
  }
  std::cout << r << "\n";
}

void bm_category_breakdown(benchmark::State& state) {
  const auto p = upa::bench::paper_params(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ut::category_breakdown(ut::UserClass::kB, p));
  }
}
BENCHMARK(bm_category_breakdown);

void bm_revenue_loss(benchmark::State& state) {
  const auto p = upa::bench::paper_params(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ut::revenue_loss(ut::UserClass::kB, p, {}));
  }
}
BENCHMARK(bm_revenue_loss);

}  // namespace

UPA_BENCH_MAIN(print_fig13)
