#pragma once
// Exporters for the observability subsystem:
//  * span JSON-lines -- one JSON object per span, greppable/jq-able;
//  * Chrome trace-event JSON -- loadable in chrome://tracing or Perfetto,
//    with model time mapped to one trace microsecond per model second;
//  * metric snapshots -- CSV (via common/csv) and JSON-lines.
// All output is deterministic for deterministic inputs: spans export in
// begin() order, metrics in name order.

#include <string>

#include "upa/common/csv.hpp"
#include "upa/obs/metrics.hpp"
#include "upa/obs/trace.hpp"

namespace upa::obs {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes added).
[[nodiscard]] std::string json_escape(const std::string& text);

/// One span per line: {"id":..,"parent":..,"name":"..","level":"..",
/// "domain":"..","start":..,"end":..,"attrs":{..}}.
[[nodiscard]] std::string spans_jsonl(const Tracer& tracer);
void write_spans_jsonl(const Tracer& tracer, const std::string& path);

/// Chrome trace-event file: complete ("ph":"X") events, one process per
/// clock domain, one thread per root span so concurrent sessions render
/// on separate rows. Model hours scale at 1 model second = 1 trace
/// microsecond; wall seconds at 1 s = 1e6 us.
[[nodiscard]] std::string chrome_trace_json(const Tracer& tracer);
void write_chrome_trace(const Tracer& tracer, const std::string& path);

/// Metric snapshot as CSV with columns metric,type,value,count,sum,min,
/// max,buckets (buckets formatted "le=B:N,..,inf:N" -- deliberately
/// comma-separated, so this exporter leans on CsvWriter's quoting).
[[nodiscard]] common::CsvWriter metrics_csv(const MetricsRegistry& registry);
void write_metrics_csv(const MetricsRegistry& registry,
                       const std::string& path);

/// One metric per line: {"metric":"..","type":"..",..}.
[[nodiscard]] std::string metrics_jsonl(const MetricsRegistry& registry);
void write_metrics_jsonl(const MetricsRegistry& registry,
                         const std::string& path);

}  // namespace upa::obs
