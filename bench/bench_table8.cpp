// Regenerates Table 8: user-perceived availability for user classes A and
// B as the number of reservation systems N_F = N_H = N_C grows, side by
// side with the paper's published cells. The shape (monotone rise,
// saturation beyond N ~ 4, class A above class B, step deltas) reproduces;
// the class-B absolute cells are not derivable from Table 7 (see
// EXPERIMENTS.md for the reverse-engineering).

#include <array>

#include "bench_util.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ut = upa::ta;
namespace cm = upa::common;

constexpr std::array<std::size_t, 6> kN = {1, 2, 3, 4, 5, 10};
constexpr std::array<double, 6> kPaperA = {0.84235, 0.96509, 0.97867,
                                           0.98004, 0.98018, 0.98020};
constexpr std::array<double, 6> kPaperB = {0.76875, 0.95529, 0.97593,
                                           0.97802, 0.97822, 0.97825};

void print_table8() {
  upa::bench::print_header(
      "Table 8",
      "User-perceived availability vs N_F = N_H = N_C, classes A and B.\n"
      "'ours' = eq. (10) with Table 7 parameters taken literally.");
  cm::Table t({"N", "A(class A) ours", "paper", "diff", "A(class B) ours",
               "paper", "diff"});
  for (std::size_t i = 0; i < kN.size(); ++i) {
    const auto p = upa::bench::paper_params(kN[i]);
    const double a = ut::user_availability_eq10(ut::UserClass::kA, p);
    const double b = ut::user_availability_eq10(ut::UserClass::kB, p);
    t.add_row({std::to_string(kN[i]), cm::fmt_fixed(a, 5),
               cm::fmt_fixed(kPaperA[i], 5), cm::fmt_fixed(a - kPaperA[i], 5),
               cm::fmt_fixed(b, 5), cm::fmt_fixed(kPaperB[i], 5),
               cm::fmt_fixed(b - kPaperB[i], 5)});
  }
  std::cout << t << "\n";

  cm::Table d({"step", "delta A ours", "delta A paper", "delta B ours",
               "delta B paper"});
  d.set_title(
      "Step deltas (isolate the N-dependent external-service term, which\n"
      "IS consistent between Table 7 and Table 8)");
  for (std::size_t i = 1; i < kN.size(); ++i) {
    const auto lo = upa::bench::paper_params(kN[i - 1]);
    const auto hi = upa::bench::paper_params(kN[i]);
    const double da = ut::user_availability_eq10(ut::UserClass::kA, hi) -
                      ut::user_availability_eq10(ut::UserClass::kA, lo);
    const double db = ut::user_availability_eq10(ut::UserClass::kB, hi) -
                      ut::user_availability_eq10(ut::UserClass::kB, lo);
    d.add_row({std::to_string(kN[i - 1]) + "->" + std::to_string(kN[i]),
               cm::fmt_sci(da, 3), cm::fmt_sci(kPaperA[i] - kPaperA[i - 1], 3),
               cm::fmt_sci(db, 3),
               cm::fmt_sci(kPaperB[i] - kPaperB[i - 1], 3)});
  }
  std::cout << d << "\n";

  std::cout << "Hierarchical-model cross-check (must equal eq. 10):\n";
  const auto p = upa::bench::paper_params(5);
  std::cout << "  class A: eq10 = "
            << cm::fmt(ut::user_availability_eq10(ut::UserClass::kA, p), 10)
            << ", hierarchy = "
            << cm::fmt(
                   ut::user_availability_hierarchical(ut::UserClass::kA, p),
                   10)
            << "\n\n";
}

void bm_eq10(benchmark::State& state) {
  const auto p = upa::bench::paper_params(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ut::user_availability_eq10(ut::UserClass::kB, p));
  }
}
BENCHMARK(bm_eq10);

void bm_hierarchical(benchmark::State& state) {
  const auto p = upa::bench::paper_params(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ut::user_availability_hierarchical(ut::UserClass::kB, p));
  }
}
BENCHMARK(bm_hierarchical);

void bm_table8_full(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t n : kN) {
      const auto p = upa::bench::paper_params(n);
      acc += ut::user_availability_eq10(ut::UserClass::kA, p);
      acc += ut::user_availability_eq10(ut::UserClass::kB, p);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_table8_full);

}  // namespace

UPA_BENCH_MAIN(print_table8)
