#include "upa/spn/net.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "upa/common/error.hpp"

namespace upa::spn {

void PetriNet::check_place(PlaceId p) const {
  UPA_REQUIRE(p < places_.size(), "place id out of range");
}

void PetriNet::check_transition(TransitionId t) const {
  UPA_REQUIRE(t < transitions_.size(), "transition id out of range");
}

PlaceId PetriNet::add_place(std::string name, int initial_tokens) {
  UPA_REQUIRE(!name.empty(), "place name must not be empty");
  UPA_REQUIRE(initial_tokens >= 0, "initial tokens must be non-negative");
  places_.push_back({std::move(name), initial_tokens});
  return places_.size() - 1;
}

TransitionId PetriNet::add_timed_transition(std::string name, double rate,
                                            ServerSemantics semantics) {
  UPA_REQUIRE(!name.empty(), "transition name must not be empty");
  UPA_REQUIRE(std::isfinite(rate) && rate > 0.0, "rate must be positive");
  transitions_.push_back(
      {std::move(name), TransitionKind::kTimed, rate, semantics, {}, {}, {}});
  return transitions_.size() - 1;
}

TransitionId PetriNet::add_immediate_transition(std::string name,
                                                double weight) {
  UPA_REQUIRE(!name.empty(), "transition name must not be empty");
  UPA_REQUIRE(std::isfinite(weight) && weight > 0.0,
              "weight must be positive");
  transitions_.push_back({std::move(name), TransitionKind::kImmediate, weight,
                          ServerSemantics::kSingleServer, {}, {}, {}});
  return transitions_.size() - 1;
}

void PetriNet::add_input_arc(TransitionId t, PlaceId p, int multiplicity) {
  check_transition(t);
  check_place(p);
  UPA_REQUIRE(multiplicity >= 1, "arc multiplicity must be positive");
  transitions_[t].inputs.push_back({p, multiplicity});
}

void PetriNet::add_output_arc(TransitionId t, PlaceId p, int multiplicity) {
  check_transition(t);
  check_place(p);
  UPA_REQUIRE(multiplicity >= 1, "arc multiplicity must be positive");
  transitions_[t].outputs.push_back({p, multiplicity});
}

void PetriNet::add_inhibitor_arc(TransitionId t, PlaceId p, int multiplicity) {
  check_transition(t);
  check_place(p);
  UPA_REQUIRE(multiplicity >= 1, "inhibitor threshold must be positive");
  transitions_[t].inhibitors.push_back({p, multiplicity});
}

const std::string& PetriNet::place_name(PlaceId p) const {
  check_place(p);
  return places_[p].name;
}

const std::string& PetriNet::transition_name(TransitionId t) const {
  check_transition(t);
  return transitions_[t].name;
}

TransitionKind PetriNet::transition_kind(TransitionId t) const {
  check_transition(t);
  return transitions_[t].kind;
}

Marking PetriNet::initial_marking() const {
  Marking m(places_.size());
  for (std::size_t p = 0; p < places_.size(); ++p) {
    m[p] = places_[p].initial;
  }
  return m;
}

bool PetriNet::is_enabled(TransitionId t, const Marking& m) const {
  check_transition(t);
  UPA_REQUIRE(m.size() == places_.size(), "marking size mismatch");
  const Transition& tr = transitions_[t];
  for (const Arc& arc : tr.inputs) {
    if (m[arc.place] < arc.multiplicity) return false;
  }
  for (const Arc& arc : tr.inhibitors) {
    if (m[arc.place] >= arc.multiplicity) return false;
  }
  return true;
}

int PetriNet::enabling_degree(TransitionId t, const Marking& m) const {
  if (!is_enabled(t, m)) return 0;
  const Transition& tr = transitions_[t];
  int degree = std::numeric_limits<int>::max();
  for (const Arc& arc : tr.inputs) {
    degree = std::min(degree, m[arc.place] / arc.multiplicity);
  }
  return tr.inputs.empty() ? 1 : degree;
}

double PetriNet::effective_rate(TransitionId t, const Marking& m) const {
  UPA_REQUIRE(is_enabled(t, m),
              "effective_rate on a disabled transition " +
                  transitions_[t].name);
  const Transition& tr = transitions_[t];
  if (tr.kind == TransitionKind::kImmediate) return tr.rate_or_weight;
  if (tr.semantics == ServerSemantics::kInfiniteServer) {
    return tr.rate_or_weight * enabling_degree(t, m);
  }
  return tr.rate_or_weight;
}

Marking PetriNet::fire(TransitionId t, const Marking& m) const {
  UPA_REQUIRE(is_enabled(t, m),
              "firing a disabled transition " + transitions_[t].name);
  Marking next = m;
  const Transition& tr = transitions_[t];
  for (const Arc& arc : tr.inputs) next[arc.place] -= arc.multiplicity;
  for (const Arc& arc : tr.outputs) next[arc.place] += arc.multiplicity;
  return next;
}

std::vector<TransitionId> PetriNet::eligible_transitions(
    const Marking& m) const {
  std::vector<TransitionId> timed;
  std::vector<TransitionId> immediate;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (!is_enabled(t, m)) continue;
    if (transitions_[t].kind == TransitionKind::kImmediate) {
      immediate.push_back(t);
    } else {
      timed.push_back(t);
    }
  }
  return immediate.empty() ? timed : immediate;
}

bool PetriNet::is_vanishing(const Marking& m) const {
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].kind == TransitionKind::kImmediate &&
        is_enabled(t, m)) {
      return true;
    }
  }
  return false;
}

}  // namespace upa::spn
