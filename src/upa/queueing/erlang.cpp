#include "upa/queueing/erlang.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::queueing {

double erlang_b(double offered_load, std::size_t servers) {
  UPA_REQUIRE(std::isfinite(offered_load) && offered_load > 0.0,
              "offered load must be positive");
  UPA_REQUIRE(servers >= 1, "need at least one server");
  // B(0) = 1; B(c) = a B(c-1) / (c + a B(c-1)).
  double b = 1.0;
  for (std::size_t c = 1; c <= servers; ++c) {
    b = offered_load * b / (static_cast<double>(c) + offered_load * b);
  }
  return b;
}

double erlang_c(double offered_load, std::size_t servers) {
  UPA_REQUIRE(offered_load < static_cast<double>(servers),
              "Erlang C requires offered load below the server count");
  const double b = erlang_b(offered_load, servers);
  const double rho = offered_load / static_cast<double>(servers);
  return b / (1.0 - rho * (1.0 - b));
}

MmcMetrics mmc_metrics(double alpha, double nu, std::size_t servers) {
  UPA_REQUIRE(std::isfinite(alpha) && alpha > 0.0,
              "arrival rate must be positive");
  UPA_REQUIRE(std::isfinite(nu) && nu > 0.0, "service rate must be positive");
  UPA_REQUIRE(servers >= 1, "need at least one server");
  const double a = alpha / nu;
  const double c = static_cast<double>(servers);
  UPA_REQUIRE(a < c, "M/M/c requires alpha < c * nu for stability");

  MmcMetrics m;
  m.utilization = a / c;
  m.wait_probability = erlang_c(a, servers);
  m.mean_in_queue = m.wait_probability * m.utilization / (1.0 - m.utilization);
  m.mean_in_system = m.mean_in_queue + a;
  m.mean_wait = m.mean_in_queue / alpha;      // Little's law
  m.mean_response = m.mean_wait + 1.0 / nu;
  return m;
}

}  // namespace upa::queueing
