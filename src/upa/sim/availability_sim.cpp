#include "upa/sim/availability_sim.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/sim/distributions.hpp"
#include "upa/sim/engine.hpp"
#include "upa/sim/rng.hpp"

namespace upa::sim {
namespace {

void check_options(const MonteCarloOptions& options) {
  UPA_REQUIRE(options.horizon > 0.0, "horizon must be positive");
  UPA_REQUIRE(options.warmup >= 0.0 && options.warmup < options.horizon,
              "warmup must lie inside the horizon");
  UPA_REQUIRE(options.replications >= 2,
              "need at least two replications for a confidence interval");
}

MonteCarloEstimate finish(std::vector<double> values, double level) {
  MonteCarloEstimate estimate;
  estimate.interval = confidence_interval(values, level);
  estimate.replication_values = std::move(values);
  return estimate;
}

}  // namespace

MonteCarloEstimate simulate_system_availability(
    const std::vector<ComponentSpec>& components,
    const std::function<bool(const std::vector<bool>&)>& system_up,
    const MonteCarloOptions& options) {
  UPA_REQUIRE(!components.empty(), "need at least one component");
  UPA_REQUIRE(system_up != nullptr, "structure function must be provided");
  for (const ComponentSpec& c : components) {
    UPA_REQUIRE(c.failure_rate > 0.0 && c.repair_rate > 0.0,
                "component " + c.name + " needs positive rates");
  }
  check_options(options);

  Xoshiro256 master(options.seed);
  std::vector<double> replication_values;
  replication_values.reserve(options.replications);

  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    Xoshiro256 rng = master.split();
    Engine engine;
    engine.set_observer(options.obs);
    std::vector<bool> up(components.size(), true);
    bool system_state = true;
    double last_change = 0.0;
    double up_time = 0.0;  // observed up-time within [warmup, horizon]

    // Adds the elapsed segment [last_change, now] clipped to the
    // observation window when the system was up during it.
    auto account = [&](double now) {
      if (system_state) {
        const double from = std::max(last_change, options.warmup);
        const double to = std::min(now, options.horizon);
        if (to > from) up_time += to - from;
      }
      last_change = now;
    };

    // One alternating-renewal process per component; the system indicator
    // is re-evaluated at every component state change.
    std::function<void(std::size_t)> toggle = [&](std::size_t i) {
      up[i] = !up[i];
      const bool new_state = system_up(up);
      if (new_state != system_state) {
        account(engine.now());
        system_state = new_state;
      }
      const double rate = up[i] ? components[i].failure_rate
                                : components[i].repair_rate;
      engine.schedule_in(-std::log(rng.uniform01_open_left()) / rate,
                         [&toggle, i] { toggle(i); });
    };
    for (std::size_t i = 0; i < components.size(); ++i) {
      engine.schedule_in(
          -std::log(rng.uniform01_open_left()) / components[i].failure_rate,
          [&toggle, i] { toggle(i); });
    }
    engine.run_until(options.horizon);
    account(options.horizon);
    replication_values.push_back(up_time /
                                 (options.horizon - options.warmup));
  }
  return finish(std::move(replication_values), options.confidence_level);
}

MonteCarloEstimate simulate_ctmc_reward(const markov::Ctmc& chain,
                                        const std::vector<double>& state_rewards,
                                        std::size_t initial_state,
                                        const MonteCarloOptions& options) {
  UPA_REQUIRE(state_rewards.size() == chain.state_count(),
              "one reward per state required");
  UPA_REQUIRE(initial_state < chain.state_count(),
              "initial state out of range");
  check_options(options);

  // Precompute per-state exit rates and successor distributions from the
  // sparse generator (off-diagonal entries).
  const linalg::SparseMatrix q = chain.sparse_generator();
  const std::size_t n = chain.state_count();
  std::vector<std::vector<std::pair<std::size_t, double>>> successors(n);
  std::vector<double> exit(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto cols = q.row_cols(r);
    const auto vals = q.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r) continue;
      successors[r].emplace_back(cols[k], vals[k]);
      exit[r] += vals[k];
    }
  }

  Xoshiro256 master(options.seed);
  std::vector<double> replication_values;
  replication_values.reserve(options.replications);

  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    Xoshiro256 rng = master.split();
    double t = 0.0;
    std::size_t state = initial_state;
    double weighted = 0.0;
    double observed = 0.0;
    while (t < options.horizon) {
      UPA_REQUIRE(exit[state] > 0.0,
                  "absorbing state reached during trajectory simulation");
      const double sojourn =
          -std::log(rng.uniform01_open_left()) / exit[state];
      const double leave = std::min(t + sojourn, options.horizon);
      const double from = std::max(t, options.warmup);
      if (leave > from) {
        weighted += state_rewards[state] * (leave - from);
        observed += leave - from;
      }
      t += sojourn;
      if (t >= options.horizon) break;
      // Draw the successor proportionally to its rate.
      double u = rng.uniform01() * exit[state];
      std::size_t next = successors[state].back().first;
      for (const auto& [candidate, rate] : successors[state]) {
        if (u < rate) {
          next = candidate;
          break;
        }
        u -= rate;
      }
      state = next;
    }
    UPA_REQUIRE(observed > 0.0, "no observation time after warmup");
    replication_values.push_back(weighted / observed);
  }
  return finish(std::move(replication_values), options.confidence_level);
}

}  // namespace upa::sim
