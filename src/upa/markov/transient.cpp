#include "upa/markov/transient.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::markov {
namespace {

/// Uniformized DTMC P = I + Q/Lambda as a sparse matrix plus the Lambda
/// actually used.
struct Uniformized {
  linalg::SparseMatrix p;
  double lambda;
};

Uniformized uniformize(const Ctmc& chain) {
  const double lambda = std::max(chain.max_exit_rate(), 1e-300) * 1.02;
  const linalg::SparseMatrix q = chain.sparse_generator();
  std::vector<linalg::Triplet> triplets;
  for (std::size_t r = 0; r < q.rows(); ++r) {
    const auto cols = q.row_cols(r);
    const auto vals = q.row_values(r);
    double diag = 1.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r) {
        diag += vals[k] / lambda;
      } else {
        triplets.push_back({r, cols[k], vals[k] / lambda});
      }
    }
    triplets.push_back({r, r, diag});
  }
  return {linalg::SparseMatrix(q.rows(), q.cols(), std::move(triplets)),
          lambda};
}

void check_initial(const Ctmc& chain, const linalg::Vector& initial) {
  UPA_REQUIRE(initial.size() == chain.state_count(),
              "initial distribution size mismatch");
  double sum = 0.0;
  for (double p : initial) {
    UPA_REQUIRE(upa::common::is_probability(p), "bad initial probability");
    sum += p;
  }
  UPA_REQUIRE(std::abs(sum - 1.0) <= 1e-9,
              "initial distribution must sum to 1");
}

}  // namespace

linalg::Vector transient_distribution(const Ctmc& chain,
                                      linalg::Vector initial, double t,
                                      const UniformizationOptions& options) {
  check_initial(chain, initial);
  UPA_REQUIRE(std::isfinite(t) && t >= 0.0, "time must be non-negative");
  if (t == 0.0) return initial;

  const Uniformized u = uniformize(chain);
  const double rate = u.lambda * t;

  // Accumulate sum_k pmf(k) v_k with v_{k+1} = v_k P, stopping when the
  // remaining Poisson tail is below epsilon. pmf computed iteratively in
  // log-safe fashion starting from e^{-rate}.
  linalg::Vector result(initial.size(), 0.0);
  linalg::Vector v = std::move(initial);
  double log_pmf = -rate;  // log pmf(0)
  double cumulative = 0.0;
  for (std::size_t k = 0; k < options.max_terms; ++k) {
    const double pmf = std::exp(log_pmf);
    if (pmf > 0.0) {
      for (std::size_t i = 0; i < result.size(); ++i) {
        result[i] += pmf * v[i];
      }
      cumulative += pmf;
    }
    // Truncate once the remaining Poisson tail is negligible: either the
    // accumulated mass says so, or (for very large rates, where the
    // cumulative sum saturates in floating point) the per-term mass has
    // fallen far below epsilon past the mode.
    const bool past_mode = static_cast<double>(k) >= rate;
    if (past_mode && (1.0 - cumulative <= options.epsilon ||
                      pmf < options.epsilon * 1e-3)) {
      upa::common::normalize(result);
      return result;
    }
    v = u.p.left_multiply(v);
    log_pmf += std::log(rate) - std::log(static_cast<double>(k + 1));
  }
  throw upa::common::ConvergenceError(
      "uniformization: Poisson series not truncated within max_terms");
}

double point_availability(const Ctmc& chain, linalg::Vector initial, double t,
                          const std::vector<std::size_t>& up_states,
                          const UniformizationOptions& options) {
  const linalg::Vector pi =
      transient_distribution(chain, std::move(initial), t, options);
  double mass = 0.0;
  for (std::size_t s : up_states) {
    UPA_REQUIRE(s < pi.size(), "up-state index out of range");
    mass += pi[s];
  }
  return mass;
}

double interval_availability(const Ctmc& chain, linalg::Vector initial,
                             double t,
                             const std::vector<std::size_t>& up_states,
                             std::size_t steps,
                             const UniformizationOptions& options) {
  UPA_REQUIRE(steps >= 1, "need at least one integration step");
  UPA_REQUIRE(std::isfinite(t) && t > 0.0, "horizon must be positive");
  // Trapezoidal rule over point availabilities. Re-propagating from the
  // previous grid point keeps total work linear in `steps`.
  const double dt = t / static_cast<double>(steps);
  double integral = 0.0;
  linalg::Vector current = std::move(initial);
  double previous = point_availability(chain, current, 0.0, up_states);
  for (std::size_t k = 1; k <= steps; ++k) {
    current = transient_distribution(chain, std::move(current), dt, options);
    double mass = 0.0;
    for (std::size_t s : up_states) mass += current[s];
    integral += 0.5 * (previous + mass) * dt;
    previous = mass;
  }
  return integral / t;
}

}  // namespace upa::markov
