#pragma once
// Semi-Markov processes: an embedded jump chain plus arbitrary mean
// sojourn times per state. Steady-state occupancy depends on the sojourn
// distributions only through their means,
//   pi_i = nu_i m_i / sum_j nu_j m_j,
// which proves an insensitivity result relevant to the paper: the
// web-farm availability does not change if the manual reconfiguration
// time (1/beta) is deterministic, Erlang, or anything else with the same
// mean. This module computes SMP occupancies and converts CTMCs to their
// semi-Markov form for cross-checking.

#include <vector>

#include "upa/linalg/matrix.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/markov/dtmc.hpp"

namespace upa::markov {

/// A semi-Markov process: embedded transition probabilities (row-
/// stochastic) and mean sojourn time per state.
class SemiMarkovProcess {
 public:
  SemiMarkovProcess(linalg::Matrix embedded_transitions,
                    std::vector<double> mean_sojourns);

  [[nodiscard]] std::size_t state_count() const noexcept {
    return embedded_.state_count();
  }

  /// Long-run fraction of time in each state (requires an irreducible
  /// embedded chain).
  [[nodiscard]] linalg::Vector steady_state_occupancy() const;

  /// The embedded chain's stationary distribution nu.
  [[nodiscard]] linalg::Vector embedded_stationary() const;

  /// Occupancy mass of a set of states.
  [[nodiscard]] double occupancy_mass(
      const std::vector<std::size_t>& states) const;

 private:
  Dtmc embedded_;
  std::vector<double> sojourns_;
};

/// The semi-Markov view of a CTMC: embedded jump probabilities
/// q_ij / q_i and mean sojourns 1 / q_i. Its occupancy equals the CTMC
/// steady state (cross-check used in tests).
[[nodiscard]] SemiMarkovProcess to_semi_markov(const Ctmc& chain);

}  // namespace upa::markov
