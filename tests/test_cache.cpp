// Evaluation-cache subsystem: key canonicalization, single-flight
// concurrency, eviction, statistics/metrics publication, and the
// bit-for-bit replay contract across the cached analytic entry points
// (cache on/off x sweep threads 1/8 must produce identical bytes).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/obs/observer.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/sensitivity/sweep.hpp"

namespace {

namespace cache = upa::cache;
using upa::common::ModelError;

cache::CacheKey key_of(double value) {
  cache::KeyBuilder kb("test.solver", 1);
  kb.add(value);
  return std::move(kb).finish();
}

TEST(KeyBuilder, NegativeZeroHashesEqualToPositiveZero) {
  const cache::CacheKey neg = key_of(-0.0);
  const cache::CacheKey pos = key_of(0.0);
  EXPECT_EQ(neg.bytes, pos.bytes);
  EXPECT_EQ(neg.digest, pos.digest);
}

TEST(KeyBuilder, DistinctValuesProduceDistinctBytes) {
  EXPECT_NE(key_of(1.0).bytes, key_of(2.0).bytes);
  // Denormals, infinities, and ordinary values all key on their exact
  // bit pattern.
  EXPECT_NE(key_of(std::numeric_limits<double>::infinity()).bytes,
            key_of(std::numeric_limits<double>::max()).bytes);
  EXPECT_NE(key_of(5e-324).bytes, key_of(0.0).bytes);
}

TEST(KeyBuilder, RejectsNanWithStructuredError) {
  cache::KeyBuilder kb("test.solver", 1);
  EXPECT_THROW(kb.add(std::numeric_limits<double>::quiet_NaN()), ModelError);
  cache::KeyBuilder kv("test.solver", 1);
  EXPECT_THROW(kv.add(std::vector<double>{1.0, std::nan("")}), ModelError);
}

TEST(KeyBuilder, VersionTagAndSolverIdAreInTheKey) {
  cache::KeyBuilder v1("test.solver", 1);
  v1.add(1.0);
  cache::KeyBuilder v2("test.solver", 2);
  v2.add(1.0);
  cache::KeyBuilder other("test.other", 1);
  other.add(1.0);
  const auto k1 = std::move(v1).finish();
  const auto k2 = std::move(v2).finish();
  const auto k3 = std::move(other).finish();
  EXPECT_NE(k1.bytes, k2.bytes);
  EXPECT_NE(k1.bytes, k3.bytes);
  EXPECT_EQ(k1.solver_id, "test.solver");
}

TEST(KeyBuilder, LengthPrefixingPreventsConcatenationCollisions) {
  cache::KeyBuilder a("test.solver", 1);
  a.add(std::string("ab")).add(std::string("c"));
  cache::KeyBuilder b("test.solver", 1);
  b.add(std::string("a")).add(std::string("bc"));
  EXPECT_NE(std::move(a).finish().bytes, std::move(b).finish().bytes);

  cache::KeyBuilder c("test.solver", 1);
  c.add(std::vector<double>{1.0, 2.0});
  cache::KeyBuilder d("test.solver", 1);
  d.add(std::vector<double>{1.0}).add(std::vector<double>{2.0});
  EXPECT_NE(std::move(c).finish().bytes, std::move(d).finish().bytes);
}

TEST(EvalCache, StoresRepaysAndCountsStats) {
  cache::EvalCache ec;
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 42.0;
  };
  EXPECT_EQ(*ec.get_or_compute<double>(key_of(1.0), compute), 42.0);
  EXPECT_EQ(*ec.get_or_compute<double>(key_of(1.0), compute), 42.0);
  EXPECT_EQ(computes, 1);
  const cache::CacheStats s = ec.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
  EXPECT_EQ(ec.solver_stats("test.solver").hits, 1u);
  EXPECT_EQ(ec.solver_stats("never.seen").lookups(), 0u);
  EXPECT_EQ(ec.size(), 1u);
}

TEST(EvalCache, EightThreadHammeringComputesEachKeyOnce) {
  cache::EvalCache ec;
  constexpr int kThreads = 8;
  constexpr int kKeys = 5;
  constexpr int kRounds = 50;
  std::atomic<int> computes{0};
  std::vector<std::thread> workers;
  std::atomic<bool> wrong_value{false};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          const double expected = 100.0 + k;
          const auto value =
              ec.get_or_compute<double>(key_of(double(k)), [&] {
                computes.fetch_add(1);
                return expected;
              });
          if (*value != expected) wrong_value = true;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(computes.load(), kKeys);  // exactly one solve per distinct key
  EXPECT_FALSE(wrong_value.load());
  const cache::CacheStats s = ec.stats();
  EXPECT_EQ(s.lookups(),
            std::uint64_t(kThreads) * std::uint64_t(kKeys) * kRounds);
  EXPECT_EQ(s.misses, std::uint64_t(kKeys));
}

TEST(EvalCache, ExceptionPropagatesToCallerAndEntryRetries) {
  cache::EvalCache ec;
  int calls = 0;
  const auto failing = [&]() -> double {
    ++calls;
    throw ModelError("solver exploded");
  };
  EXPECT_THROW((void)ec.get_or_compute<double>(key_of(7.0), failing),
               ModelError);
  // The failed entry is removed: the next call recomputes instead of
  // replaying a poisoned future.
  EXPECT_EQ(*ec.get_or_compute<double>(key_of(7.0), [&] { return 9.0; }),
            9.0);
  EXPECT_EQ(calls, 1);
}

TEST(EvalCache, FifoEvictionRespectsCapacity) {
  cache::EvalCache::Config config;
  config.shards = 1;
  config.max_entries_per_shard = 2;
  cache::EvalCache ec(config);
  int computes = 0;
  const auto value_for = [&](double x) {
    return *ec.get_or_compute<double>(key_of(x), [&] {
      ++computes;
      return 10.0 * x;
    });
  };
  EXPECT_EQ(value_for(1.0), 10.0);
  EXPECT_EQ(value_for(2.0), 20.0);
  EXPECT_EQ(value_for(3.0), 30.0);  // evicts the oldest entry (1.0)
  EXPECT_LE(ec.size(), 2u);
  EXPECT_GE(ec.stats().evictions, 1u);
  EXPECT_EQ(value_for(1.0), 10.0);  // recomputed, not replayed
  EXPECT_EQ(computes, 4);
}

TEST(EvalCache, PublishesMetricsAndRecordsLookupSpans) {
  cache::EvalCache ec;
  upa::obs::Observer ob;
  (void)ec.get_or_compute<double>(key_of(1.0), [] { return 1.0; }, &ob);
  (void)ec.get_or_compute<double>(key_of(1.0), [] { return 1.0; }, &ob);

  // Live counters plus one wall-domain cache_lookup span per lookup with
  // the hit attribute.
  EXPECT_EQ(ob.metrics.counters().at("cache.hits").value(), 1u);
  EXPECT_EQ(ob.metrics.counters().at("cache.misses").value(), 1u);
  ASSERT_EQ(ob.tracer.spans().size(), 2u);
  const upa::obs::Span& miss = ob.tracer.spans()[0];
  const upa::obs::Span& hit = ob.tracer.spans()[1];
  EXPECT_EQ(miss.level, upa::obs::SpanLevel::kCacheLookup);
  EXPECT_EQ(miss.domain, upa::obs::TimeDomain::kWallSeconds);
  EXPECT_EQ(miss.name, "test.solver");
  ASSERT_FALSE(miss.attributes.empty());
  EXPECT_EQ(miss.attributes.back().key, "hit");
  EXPECT_EQ(miss.attributes.back().number, 0.0);
  EXPECT_EQ(hit.attributes.back().number, 1.0);

  upa::obs::MetricsRegistry snapshot;
  ec.publish_metrics(snapshot);
  EXPECT_DOUBLE_EQ(snapshot.gauges().at("cache.hits").value(), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.gauges().at("cache.hit_rate").value(), 0.5);
  EXPECT_DOUBLE_EQ(
      snapshot.gauges().at("cache.test.solver.hit_rate").value(), 0.5);
}

TEST(EvalCache, ClearDropsEntriesAndStats) {
  cache::EvalCache ec;
  (void)ec.get_or_compute<double>(key_of(1.0), [] { return 1.0; });
  ec.clear();
  EXPECT_EQ(ec.size(), 0u);
  EXPECT_EQ(ec.stats().lookups(), 0u);
  EXPECT_TRUE(ec.per_solver_stats().empty());
}

TEST(EvalCache, ResetStatsKeepsEntriesButZeroesCounters) {
  // reset_stats is a measurement-window reset: after it, stored values
  // still replay (no recompute), but hit/miss counters restart at zero.
  cache::EvalCache ec;
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 7.0;
  };
  (void)ec.get_or_compute<double>(key_of(1.0), compute);
  (void)ec.get_or_compute<double>(key_of(1.0), compute);
  ASSERT_EQ(ec.stats().lookups(), 2u);

  ec.reset_stats();
  EXPECT_EQ(ec.size(), 1u);  // entry survives, unlike clear()
  EXPECT_EQ(ec.stats().lookups(), 0u);
  EXPECT_EQ(ec.stats().inserts, 0u);
  EXPECT_TRUE(ec.per_solver_stats().empty());

  // The stored value replays without recomputation and the fresh window
  // counts it as a pure hit.
  EXPECT_EQ(*ec.get_or_compute<double>(key_of(1.0), compute), 7.0);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(ec.stats().hits, 1u);
  EXPECT_EQ(ec.stats().misses, 0u);
  EXPECT_EQ(ec.solver_stats("test.solver").hits, 1u);
}

TEST(EvalCache, ScopedEnableRestoresPreviousState) {
  ASSERT_FALSE(cache::enabled());  // library default: off
  {
    cache::ScopedEnable on;
    EXPECT_TRUE(cache::enabled());
    {
      cache::ScopedEnable off(false);
      EXPECT_FALSE(cache::enabled());
    }
    EXPECT_TRUE(cache::enabled());
  }
  EXPECT_FALSE(cache::enabled());
}

TEST(CtmcCacheKey, RateInsertionOrderDoesNotSplitEntries) {
  upa::markov::Ctmc forward(3);
  forward.add_rate(0, 1, 1.0);
  forward.add_rate(1, 2, 2.0);
  forward.add_rate(2, 0, 3.0);
  upa::markov::Ctmc backward(3);
  backward.add_rate(2, 0, 3.0);
  backward.add_rate(1, 2, 2.0);
  backward.add_rate(0, 1, 1.0);

  cache::KeyBuilder ka("markov.steady_state", 1);
  forward.append_cache_key(ka);
  cache::KeyBuilder kb("markov.steady_state", 1);
  backward.append_cache_key(kb);
  EXPECT_EQ(std::move(ka).finish().bytes, std::move(kb).finish().bytes);
}

TEST(CachedSolvers, SteadyStateReplaysBitForBit) {
  upa::core::WebFarmParams farm{4, 1e-3, 1.0, 0.98, 12.0};
  const auto chain = upa::core::imperfect_coverage_chain(farm);
  const auto uncached = chain.chain.steady_state();

  cache::global().clear();
  cache::ScopedEnable on;
  const auto first = chain.chain.steady_state();
  const auto replay = chain.chain.steady_state();
  EXPECT_EQ(uncached, first);
  EXPECT_EQ(first, replay);
  EXPECT_EQ(cache::global().solver_stats("markov.steady_state").hits, 1u);
  EXPECT_EQ(cache::global().solver_stats("markov.steady_state").misses, 1u);
}

TEST(CachedSolvers, RobustSolveReplaysReportAndRecordsLookupSpan) {
  upa::core::WebFarmParams farm{4, 1e-3, 1.0, 0.98, 12.0};
  const auto chain = upa::core::imperfect_coverage_chain(farm);
  upa::markov::StationaryOptions options;
  const auto uncached = chain.chain.steady_state_robust(options);

  cache::global().clear();
  cache::ScopedEnable on;
  upa::obs::Observer ob;
  options.obs = &ob;
  const auto first = chain.chain.steady_state_robust(options);
  const auto replay = chain.chain.steady_state_robust(options);
  EXPECT_EQ(uncached.distribution, first.distribution);
  EXPECT_EQ(first.distribution, replay.distribution);
  EXPECT_EQ(first.method, replay.method);
  EXPECT_EQ(first.diagnostics, replay.diagnostics);

  std::size_t lookup_spans = 0;
  for (const auto& span : ob.tracer.spans()) {
    if (span.level == upa::obs::SpanLevel::kCacheLookup) ++lookup_spans;
  }
  EXPECT_EQ(lookup_spans, 2u);  // one per steady_state_robust call
}

TEST(CachedSolvers, MmckMetricsReplayBitForBit) {
  const auto uncached = upa::queueing::mmck_metrics(100.0, 100.0, 4, 10);
  cache::global().clear();
  cache::ScopedEnable on;
  const auto first = upa::queueing::mmck_metrics(100.0, 100.0, 4, 10);
  const auto replay = upa::queueing::mmck_metrics(100.0, 100.0, 4, 10);
  EXPECT_EQ(uncached.blocking, first.blocking);
  EXPECT_EQ(uncached.state_probabilities, first.state_probabilities);
  EXPECT_EQ(first.blocking, replay.blocking);
  EXPECT_EQ(first.state_probabilities, replay.state_probabilities);
}

/// The acceptance matrix: the Figure 11/12-style availability sweep must
/// produce byte-identical series across cache off/on x threads 1/8.
TEST(CachedSolvers, SweepIdenticalAcrossCacheAndThreadMatrix) {
  const auto measure = [](double n, double lambda) {
    upa::core::WebFarmParams farm{std::size_t(n), lambda, 1.0, 0.98, 12.0};
    upa::core::WebQueueParams queue{100.0, 100.0, 10};
    return upa::core::web_service_availability_imperfect(farm, queue) +
           upa::core::composite_imperfect(farm, queue).availability();
  };
  std::vector<double> xs;
  for (std::size_t n = 1; n <= 8; ++n) xs.push_back(double(n));
  const std::vector<double> lambdas{1e-2, 1e-3, 1e-4};
  const std::vector<std::string> labels{"1e-2", "1e-3", "1e-4"};

  std::vector<std::vector<upa::sensitivity::Series>> results;
  for (const bool cache_on : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      cache::global().clear();
      cache::ScopedEnable scoped(cache_on);
      upa::sensitivity::SweepOptions options;
      options.threads = threads;
      results.push_back(upa::sensitivity::sweep_family(xs, lambdas, labels,
                                                       measure, options));
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0].size(), results[i].size());
    for (std::size_t s = 0; s < results[0].size(); ++s) {
      EXPECT_EQ(results[0][s].label, results[i][s].label);
      EXPECT_EQ(results[0][s].x, results[i][s].x);
      EXPECT_EQ(results[0][s].y, results[i][s].y) << "variant " << i;
    }
  }
}

TEST(CachedSolvers, CampaignReplaysBitForBit) {
  const auto params = upa::ta::TaParameters::paper_defaults();
  upa::inject::CampaignOptions options;
  options.threads = 1;
  options.end_to_end.horizon_hours = 500.0;
  options.end_to_end.sessions_per_replication = 200;
  options.end_to_end.replications = 2;
  options.end_to_end.seed = 7;
  options.end_to_end.threads = 1;
  std::vector<upa::inject::CampaignPlan> plans;
  plans.push_back({"web farm outage",
                   upa::inject::scripted_outage(
                       upa::inject::FaultTarget::kWebFarm, 100.0, 8.0,
                       options.end_to_end.horizon_hours)});

  const auto uncached = upa::inject::run_campaign(upa::ta::UserClass::kB,
                                                  params, options, plans);
  cache::global().clear();
  cache::ScopedEnable on;
  const auto first = upa::inject::run_campaign(upa::ta::UserClass::kB, params,
                                               options, plans);
  const auto replay = upa::inject::run_campaign(upa::ta::UserClass::kB,
                                                params, options, plans);
  ASSERT_EQ(first.entries.size(), uncached.entries.size());
  for (std::size_t i = 0; i < first.entries.size(); ++i) {
    const auto& u = uncached.entries[i];
    const auto& f = first.entries[i];
    const auto& r = replay.entries[i];
    EXPECT_EQ(u.name, f.name);
    EXPECT_EQ(u.perceived_availability.mean, f.perceived_availability.mean);
    EXPECT_EQ(u.delta_vs_baseline, f.delta_vs_baseline);
    EXPECT_EQ(f.name, r.name);
    EXPECT_EQ(f.perceived_availability.mean, r.perceived_availability.mean);
    EXPECT_EQ(f.perceived_availability.half_width,
              r.perceived_availability.half_width);
    EXPECT_EQ(f.delta_vs_baseline, r.delta_vs_baseline);
    EXPECT_EQ(f.observed_web_service_availability,
              r.observed_web_service_availability);
  }
  const auto stats = cache::global().solver_stats("inject.campaign_entry");
  EXPECT_EQ(stats.misses, plans.size() + 1);  // first campaign simulates
  EXPECT_EQ(stats.hits, plans.size() + 1);    // second campaign replays
}

}  // namespace
