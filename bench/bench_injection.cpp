// Extension bench: fault-injection campaigns and user resilience. The
// analytic model can only answer "what does the stochastic steady state
// look like"; this harness injects scripted and correlated outages into
// the end-to-end simulator and measures what users perceive -- with and
// without retries -- plus the retry-adjusted analytic reference.

#include "bench_util.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/sim/rng.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ut = upa::ta;
namespace cm = upa::common;
namespace inj = upa::inject;

constexpr double kHorizon = 20000.0;

std::vector<inj::CampaignPlan> build_plans() {
  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"web farm down 48 h",
                   inj::scripted_outage(inj::FaultTarget::kWebFarm, 1000.0,
                                        48.0, kHorizon)});
  plans.push_back({"internet down 200 h",
                   inj::scripted_outage(inj::FaultTarget::kInternet, 5000.0,
                                        200.0, kHorizon)});
  plans.push_back({"payment down 500 h",
                   inj::scripted_outage(inj::FaultTarget::kPayment, 9000.0,
                                        500.0, kHorizon)});
  // A correlated shock process: rare events that take the whole internal
  // stack down at once (power loss / operator error).
  inj::OutageProcess process;
  process.targets = {inj::FaultTarget::kWebFarm,
                     inj::FaultTarget::kApplication,
                     inj::FaultTarget::kDatabase};
  process.events_per_hour = 5e-4;
  process.mean_duration_hours = 12.0;
  process.common_cause_probability = 1.0;
  upa::sim::Xoshiro256 rng(20260806);
  plans.push_back(
      {"common-cause shocks", inj::sample_outage_plan(process, kHorizon, rng)});
  return plans;
}

void print_campaign() {
  upa::bench::print_header(
      "Fault-injection campaigns (robustness extension)",
      "Scripted and correlated outages replayed against the end-to-end\n"
      "simulator at a common seed; per-plan perceived-availability deltas\n"
      "for the fail-fast user (R = 0) and a retrying user (R = 2,\n"
      "exponential backoff). N_F=N_H=N_C=2, class B.");

  const auto p = upa::bench::paper_params(2);
  const auto plans = build_plans();

  for (const std::size_t retries : {std::size_t{0}, std::size_t{2}}) {
    ut::EndToEndOptions options;
    options.horizon_hours = kHorizon;
    options.sessions_per_replication = 12000;
    options.replications = 4;
    options.seed = 1903;
    options.retry.max_retries = retries;
    options.retry.backoff_base_hours = 4.0;

    const auto campaign =
        inj::run_campaign(ut::UserClass::kB, p, options, plans);
    cm::Table t({"plan", "A(user)", "95% CI +/-", "delta vs baseline",
                 "retries/session"});
    t.set_align(0, cm::Align::kLeft);
    t.set_title("R = " + std::to_string(retries) +
                " (analytic indep. reference = " +
                cm::fmt(ut::user_availability_with_retries(
                            ut::UserClass::kB, p, options.retry),
                        6) +
                ")");
    for (const auto& e : campaign.entries) {
      t.add_row({e.name, cm::fmt(e.perceived_availability.mean, 6),
                 cm::fmt(e.perceived_availability.half_width, 4),
                 cm::fmt(e.delta_vs_baseline, 5),
                 cm::fmt(e.mean_retries_per_session, 4)});
    }
    std::cout << t << "\n";
  }
  std::cout
      << "Scripted outages cost availability proportional to their length\n"
         "(a d-hour total outage over an H-hour horizon removes ~d/H);\n"
         "retries claw back the stochastic short outages but not the\n"
         "scripted windows that outlast the backoff schedule.\n\n";
}

void bm_campaign(benchmark::State& state) {
  const auto p = upa::bench::paper_params(2);
  std::vector<inj::CampaignPlan> plans;
  plans.push_back({"web farm down 48 h",
                   inj::scripted_outage(inj::FaultTarget::kWebFarm, 1000.0,
                                        48.0, kHorizon)});
  ut::EndToEndOptions options;
  options.horizon_hours = kHorizon;
  options.sessions_per_replication = 2000;
  options.replications = 2;
  options.retry.max_retries = 2;
  options.retry.backoff_base_hours = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inj::run_campaign(ut::UserClass::kB, p, options, plans));
  }
}
BENCHMARK(bm_campaign);

void bm_fault_plan_query(benchmark::State& state) {
  upa::sim::Xoshiro256 rng(7);
  inj::OutageProcess process;
  process.events_per_hour = 0.01;
  const auto plan = inj::sample_outage_plan(process, kHorizon, rng);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.37;
    if (t >= kHorizon) t = 0.0;
    benchmark::DoNotOptimize(
        plan.forced_down(inj::FaultTarget::kWebFarm, t));
  }
}
BENCHMARK(bm_fault_plan_query);

void bm_steady_state_robust(benchmark::State& state) {
  // The iterative fallback path on a mid-size chain.
  upa::markov::Ctmc chain(64);
  for (std::size_t i = 0; i + 1 < 64; ++i) {
    chain.add_rate(i, i + 1, 1.0 + 0.01 * static_cast<double>(i));
    chain.add_rate(i + 1, i, 2.0);
  }
  upa::markov::StationaryOptions options;
  options.max_dense_states = 8;  // force the fallback stages
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.steady_state_robust(options));
  }
}
BENCHMARK(bm_steady_state_robust);

}  // namespace

UPA_BENCH_MAIN(print_campaign)
