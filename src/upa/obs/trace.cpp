#include "upa/obs/trace.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::obs {

std::string span_level_name(SpanLevel level) {
  switch (level) {
    case SpanLevel::kSession: return "session";
    case SpanLevel::kFunctionInvocation: return "function_invocation";
    case SpanLevel::kServiceCall: return "service_call";
    case SpanLevel::kSolverStage: return "solver_stage";
    case SpanLevel::kSimEventBatch: return "sim_event_batch";
    case SpanLevel::kCampaignPlan: return "campaign_plan";
    case SpanLevel::kCacheLookup: return "cache_lookup";
    case SpanLevel::kServeRequest: return "serve_request";
    case SpanLevel::kDispatchRequest: return "dispatch_request";
    case SpanLevel::kDispatchAttempt: return "dispatch_attempt";
    case SpanLevel::kServePhase: return "serve_phase";
    case SpanLevel::kControlDecision: return "control_decision";
  }
  UPA_ASSERT(false);
  return {};
}

std::string time_domain_name(TimeDomain domain) {
  switch (domain) {
    case TimeDomain::kModelHours: return "model_hours";
    case TimeDomain::kWallSeconds: return "wall_seconds";
  }
  UPA_ASSERT(false);
  return {};
}

Tracer::Tracer(std::size_t max_spans)
    : max_spans_(max_spans), epoch_(std::chrono::steady_clock::now()) {
  UPA_REQUIRE(max_spans >= 1, "tracer needs room for at least one span");
}

SpanId Tracer::begin(SpanLevel level, std::string name, double start,
                     TimeDomain domain, SpanId parent) {
  UPA_REQUIRE(std::isfinite(start), "span start must be finite");
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  const SpanId id = next_id_++;
  Span span;
  span.id = id;
  span.parent = parent;
  span.name = std::move(name);
  span.level = level;
  span.domain = domain;
  span.start = start;
  span.end = start;
  index_.emplace(id, spans_.size());
  spans_.push_back(std::move(span));
  return id;
}

void Tracer::end(SpanId id, double end_time) {
  if (id == 0) return;
  const auto it = index_.find(id);
  UPA_REQUIRE(it != index_.end(),
              "unknown span id " + std::to_string(id));
  Span& span = spans_[it->second];
  UPA_REQUIRE(std::isfinite(end_time) && end_time >= span.start,
              "span must end at or after its start");
  span.end = end_time;
}

void Tracer::attr(SpanId id, std::string key, std::string value) {
  if (id == 0) return;
  const auto it = index_.find(id);
  UPA_REQUIRE(it != index_.end(),
              "unknown span id " + std::to_string(id));
  SpanAttribute attribute;
  attribute.key = std::move(key);
  attribute.text = std::move(value);
  spans_[it->second].attributes.push_back(std::move(attribute));
}

void Tracer::attr(SpanId id, std::string key, double value) {
  if (id == 0) return;
  const auto it = index_.find(id);
  UPA_REQUIRE(it != index_.end(),
              "unknown span id " + std::to_string(id));
  SpanAttribute attribute;
  attribute.key = std::move(key);
  attribute.number = value;
  attribute.is_number = true;
  spans_[it->second].attributes.push_back(std::move(attribute));
}

const Span& Tracer::span(SpanId id) const {
  const auto it = index_.find(id);
  UPA_REQUIRE(it != index_.end(),
              "unknown span id " + std::to_string(id));
  return spans_[it->second];
}

double Tracer::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Tracer Tracer::make_shard() const {
  Tracer shard(max_spans_);
  shard.epoch_ = epoch_;
  return shard;
}

void Tracer::absorb(Tracer&& shard) {
  dropped_ += shard.dropped_;
  std::unordered_map<SpanId, SpanId> remap;
  remap.reserve(shard.spans_.size());
  for (Span& span : shard.spans_) {
    // Capacity only ever fills, so once one span is trimmed every later
    // one is too -- children of a trimmed parent can never be admitted,
    // exactly as with direct begin() calls after the cap.
    if (spans_.size() >= max_spans_) {
      ++dropped_;
      continue;
    }
    const SpanId id = next_id_++;
    remap.emplace(span.id, id);
    span.id = id;
    const auto parent = remap.find(span.parent);
    span.parent = parent == remap.end() ? 0 : parent->second;
    index_.emplace(id, spans_.size());
    spans_.push_back(std::move(span));
  }
  shard.clear();
}

void Tracer::clear() {
  spans_.clear();
  index_.clear();
  dropped_ = 0;
  // next_id_ keeps counting: ids stay unique across clears.
}

ScopedWallSpan::ScopedWallSpan(Tracer* tracer, SpanLevel level,
                               std::string name, SpanId parent)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  start_ = tracer_->wall_now();
  id_ = tracer_->begin(level, std::move(name), start_,
                       TimeDomain::kWallSeconds, parent);
}

ScopedWallSpan::~ScopedWallSpan() {
  if (tracer_ != nullptr && id_ != 0) {
    tracer_->end(id_, tracer_->wall_now());
  }
}

double ScopedWallSpan::elapsed_seconds() const {
  return tracer_ == nullptr ? 0.0 : tracer_->wall_now() - start_;
}

void ScopedWallSpan::attr(std::string key, std::string value) {
  if (tracer_ != nullptr) tracer_->attr(id_, std::move(key), std::move(value));
}

void ScopedWallSpan::attr(std::string key, double value) {
  if (tracer_ != nullptr) tracer_->attr(id_, std::move(key), value);
}

}  // namespace upa::obs
