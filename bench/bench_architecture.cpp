// Resource-level analysis of the paper's two architectures (Figures 7/8)
// through the RBD engine: structural availabilities, minimal cut sets of
// the internal infrastructure, physical-resource importance ranking, the
// web farm summarized as an equivalent two-state component (MUT/MDT), and
// the exact first-order sensitivities of eq. (10).

#include <sstream>

#include "bench_util.hpp"
#include "upa/markov/updown.hpp"
#include "upa/rbd/paths.hpp"
#include "upa/ta/architecture.hpp"
#include "upa/ta/symbolic.hpp"

namespace {

namespace ut = upa::ta;
namespace cm = upa::common;

std::string set_to_string(const upa::rbd::ComponentSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& name : s) {
    if (!first) os << ", ";
    os << name;
    first = false;
  }
  os << "}";
  return os.str();
}

void print_architecture() {
  upa::bench::print_header(
      "Figures 7/8 resource level",
      "Structural (RBD) view of the basic and redundant architectures.");

  auto basic_params = upa::bench::paper_params(1);
  basic_params.architecture = ut::Architecture::kBasic;
  const auto basic = ut::basic_architecture_rbd(basic_params);
  const auto redundant =
      ut::redundant_architecture_rbd(upa::bench::paper_params(1));

  cm::Table t({"block", "basic (Fig. 7)", "redundant (Fig. 8)"});
  t.set_align(0, cm::Align::kLeft);
  t.set_title("Structural availability (hardware/software failures only)");
  t.add_row({"internal infrastructure",
             cm::fmt(upa::rbd::availability(basic.internal,
                                            basic.availabilities),
                     8),
             cm::fmt(upa::rbd::availability(redundant.internal,
                                            redundant.availabilities),
                     8)});
  t.add_row({"full Search path (N=1)",
             cm::fmt(upa::rbd::availability(basic.search_path,
                                            basic.availabilities),
                     8),
             cm::fmt(upa::rbd::availability(redundant.search_path,
                                            redundant.availabilities),
                     8)});
  std::cout << t << "\n";

  const auto cuts = upa::rbd::minimal_cut_sets(redundant.internal);
  cm::Table c({"minimal cut set (redundant internal)", "order"});
  c.set_align(0, cm::Align::kLeft);
  for (const auto& cut : cuts) {
    c.add_row({set_to_string(cut), std::to_string(cut.size())});
  }
  std::cout << c << "\n";

  cm::Table imp({"resource", "Birnbaum", "criticality", "RAW"});
  imp.set_align(0, cm::Align::kLeft);
  imp.set_title(
      "Importance ranking, Search path, redundant architecture, N=1\n"
      "(single-point externals dominate; N>=4 hands dominance to net/LAN)");
  for (const auto& entry : ut::resource_importance_ranking(redundant)) {
    imp.add_row({entry.component, cm::fmt(entry.birnbaum, 5),
                 cm::fmt(entry.criticality, 5),
                 cm::fmt(entry.risk_achievement_worth, 5)});
  }
  std::cout << imp << "\n";

  // Web farm as an equivalent component.
  upa::core::WebFarmParams farm{4, 1e-4, 1.0, 0.98, 12.0};
  const auto chain = upa::core::imperfect_coverage_chain(farm);
  std::vector<std::size_t> up;
  for (std::size_t i = 1; i <= farm.servers; ++i) up.push_back(i);
  const auto eq = upa::markov::up_down_measures(chain.chain, up);
  cm::Table e({"equivalent-component measure", "value"});
  e.set_align(0, cm::Align::kLeft);
  e.set_title("The N_W=4 imperfect-coverage farm as one component");
  e.add_row({"availability", cm::fmt(eq.availability, 10)});
  e.add_row({"failure frequency [1/h]", cm::fmt_sci(eq.failure_frequency, 3)});
  e.add_row({"mean up time [h]", cm::fmt_sci(eq.mean_up_time, 3)});
  e.add_row({"mean down time [h]", cm::fmt(eq.mean_down_time, 4)});
  e.add_row({"equivalent lambda [1/h]",
             cm::fmt_sci(eq.equivalent_failure_rate, 3)});
  e.add_row({"equivalent mu [1/h]", cm::fmt(eq.equivalent_repair_rate, 4)});
  std::cout << e << "\n";

  // Symbolic gradient of eq. (10).
  const auto grad = ut::user_availability_gradient(
      ut::UserClass::kB, upa::bench::paper_params(5));
  cm::Table g({"service parameter", "dA(user)/dA(service)"});
  g.set_align(0, cm::Align::kLeft);
  g.set_title(
      "Exact first-order sensitivities of eq. (10), class B, N=5\n"
      "(the paper's 'net, LAN and web service are the most influential')");
  for (const auto& [name, value] : grad) {
    g.add_row({name, cm::fmt(value, 6)});
  }
  std::cout << g << "\n";
}

void bm_rbd_full_search_path(benchmark::State& state) {
  const auto arch = ut::redundant_architecture_rbd(
      upa::bench::paper_params(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        upa::rbd::availability(arch.search_path, arch.availabilities));
  }
}
BENCHMARK(bm_rbd_full_search_path)->Arg(1)->Arg(4)->Arg(10);

void bm_importance_ranking(benchmark::State& state) {
  const auto arch =
      ut::redundant_architecture_rbd(upa::bench::paper_params(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ut::resource_importance_ranking(arch));
  }
}
BENCHMARK(bm_importance_ranking);

void bm_symbolic_gradient(benchmark::State& state) {
  const auto p = upa::bench::paper_params(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ut::user_availability_gradient(ut::UserClass::kB, p));
  }
}
BENCHMARK(bm_symbolic_gradient);

}  // namespace

UPA_BENCH_MAIN(print_architecture)
