#include "upa/sensitivity/sweep.hpp"

#include <cmath>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/exec/parallel.hpp"

namespace upa::sensitivity {

Series sweep(std::string label, const std::vector<double>& xs,
             const std::function<double(double)>& measure,
             const SweepOptions& options) {
  UPA_REQUIRE(measure != nullptr, "measure must be provided");
  UPA_REQUIRE(!xs.empty(), "sweep needs at least one point");
  Series s;
  s.label = std::move(label);
  s.x = xs;
  // exec::parallel_sweep returns input-ordered results and degenerates to
  // an inline serial loop for a single worker, so threads = 1 is exactly
  // the historical evaluation order.
  s.y = exec::parallel_sweep(
      xs, [&measure](double x) { return measure(x); }, options.threads);
  return s;
}

Series sweep(std::string label, const std::vector<double>& xs,
             const std::function<double(double)>& measure) {
  return sweep(std::move(label), xs, measure, SweepOptions{});
}

std::vector<Series> sweep_family(
    const std::vector<double>& xs, const std::vector<double>& series_params,
    const std::vector<std::string>& series_labels,
    const std::function<double(double, double)>& measure,
    const SweepOptions& options) {
  UPA_REQUIRE(measure != nullptr, "measure must be provided");
  UPA_REQUIRE(series_params.size() == series_labels.size(),
              "one label per series parameter required");
  if (series_params.empty()) return {};
  UPA_REQUIRE(!xs.empty(), "sweep needs at least one point");
  // Flatten to one series-major (s, x) grid so the fan-out sees the whole
  // family at once; index order matches the historical nested serial
  // loops, so threads = 1 evaluates in the exact same sequence.
  struct GridPoint {
    double x;
    double p;
  };
  std::vector<GridPoint> grid;
  grid.reserve(series_params.size() * xs.size());
  for (double p : series_params) {
    for (double x : xs) grid.push_back({x, p});
  }
  const std::vector<double> ys = exec::parallel_sweep(
      grid, [&measure](const GridPoint& g) { return measure(g.x, g.p); },
      options.threads);

  std::vector<Series> family;
  family.reserve(series_params.size());
  for (std::size_t i = 0; i < series_params.size(); ++i) {
    Series s;
    s.label = series_labels[i];
    s.x = xs;
    s.y.assign(ys.begin() + static_cast<std::ptrdiff_t>(i * xs.size()),
               ys.begin() + static_cast<std::ptrdiff_t>((i + 1) * xs.size()));
    family.push_back(std::move(s));
  }
  return family;
}

std::vector<Series> sweep_family(
    const std::vector<double>& xs, const std::vector<double>& series_params,
    const std::vector<std::string>& series_labels,
    const std::function<double(double, double)>& measure) {
  return sweep_family(xs, series_params, series_labels, measure,
                      SweepOptions{});
}

double derivative_at(const std::function<double(double)>& measure, double x,
                     double relative_step) {
  UPA_REQUIRE(measure != nullptr, "measure must be provided");
  UPA_REQUIRE(relative_step > 0.0, "step must be positive");
  const double h = std::abs(x) > 0.0 ? std::abs(x) * relative_step
                                     : relative_step;
  return (measure(x + h) - measure(x - h)) / (2.0 * h);
}

std::ptrdiff_t first_increase(const Series& series) {
  for (std::size_t i = 1; i < series.y.size(); ++i) {
    if (series.y[i] > series.y[i - 1]) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

}  // namespace upa::sensitivity
