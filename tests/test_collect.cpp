// Trace collection and profile mining (upa/obs/collect): JSONL ingest,
// cross-process reassembly from out-of-order multi-process streams,
// Chrome-trace merging, and the trace-mined operational profile vs the
// hand-specified Table 1 inputs through eq. (10).
//
// The CollectLive suite runs the full pipeline in-process: a traced
// server behind a traced front, a session-replay workload, live
// `subscribe` channels drained into a TraceCollector, and the
// reassembled traces checked against the loadgen's own request log --
// the acceptance gate for the traced farm.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/dispatch/front.hpp"
#include "upa/linalg/matrix.hpp"
#include "upa/obs/collect.hpp"
#include "upa/obs/observer.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/json.hpp"
#include "upa/serve/loadgen.hpp"
#include "upa/serve/server.hpp"
#include "upa/ta/functions.hpp"
#include "upa/ta/user_availability.hpp"
#include "upa/ta/user_classes.hpp"

namespace {

using upa::common::ModelError;
using upa::obs::AssembledTrace;
using upa::obs::MinedProfile;
using upa::obs::ProfileComparison;
using upa::obs::ReassemblyReport;
using upa::obs::TraceCollector;
using upa::serve::Json;

/// Builds one telemetry span line. `attrs` alternates key/value where a
/// value starting with '#' is emitted as a number.
std::string span_line(const std::string& process, std::uint64_t id,
                      std::uint64_t parent, const std::string& name,
                      const std::string& level, double start, double end,
                      const std::vector<std::pair<std::string, std::string>>&
                          attrs) {
  Json line = Json::object();
  line.set("telemetry", Json("span"));
  line.set("process", Json(process));
  line.set("id", Json(static_cast<double>(id)));
  line.set("parent", Json(static_cast<double>(parent)));
  line.set("name", Json(name));
  line.set("level", Json(level));
  line.set("domain", Json("wall_seconds"));
  line.set("start", Json(start));
  line.set("end", Json(end));
  Json a = Json::object();
  for (const auto& [key, value] : attrs) {
    if (!value.empty() && value.front() == '#') {
      a.set(key, Json(std::stod(value.substr(1))));
    } else {
      a.set(key, Json(value));
    }
  }
  line.set("attrs", std::move(a));
  return line.dump();
}

std::string metrics_line(const std::string& process, std::uint64_t seq,
                         std::uint64_t dropped) {
  std::ostringstream out;
  out << "{\"telemetry\":\"metrics\",\"process\":\"" << process
      << "\",\"seq\":" << seq << ",\"dropped_spans\":" << dropped
      << ",\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  return out.str();
}

// --- Ingest --------------------------------------------------------------

TEST(Collect, IngestClassifiesLinesAndTracksSeqGaps) {
  TraceCollector collector;
  EXPECT_TRUE(collector.ingest_line(metrics_line("served:1", 0, 0)));
  EXPECT_TRUE(collector.ingest_line(metrics_line("served:1", 1, 0)));
  // Missing ticks 2 and 3: a slow subscriber or a dropped connection.
  EXPECT_TRUE(collector.ingest_line(metrics_line("served:1", 4, 2)));
  EXPECT_TRUE(collector.ingest_line(span_line(
      "served:1", 7, 0, "ping", "serve_request", 1.0, 1.5, {})));

  EXPECT_FALSE(collector.ingest_line("not json at all"));
  EXPECT_FALSE(collector.ingest_line("{\"telemetry\":\"span\"}"));
  EXPECT_FALSE(collector.ingest_line("{\"other\":\"shape\"}"));
  EXPECT_FALSE(collector.ingest_line("   "));
  EXPECT_EQ(collector.unrecognized_lines(), 3u);

  const auto processes = collector.processes();
  ASSERT_EQ(processes.size(), 1u);
  EXPECT_EQ(processes[0].process, "served:1");
  EXPECT_EQ(processes[0].metrics_lines, 3u);
  EXPECT_EQ(processes[0].span_lines, 1u);
  EXPECT_EQ(processes[0].seq_gaps, 2u);
  EXPECT_EQ(processes[0].dropped_spans, 2u);
  EXPECT_EQ(collector.dropped_spans_total(), 2u);
}

TEST(Collect, IngestJsonlCountsRecognizedLines) {
  TraceCollector collector;
  const std::string blob = metrics_line("p", 0, 0) + "\n" + "garbage\n" +
                           span_line("p", 1, 0, "ping", "serve_request",
                                     0.0, 0.1, {}) +
                           "\n";
  EXPECT_EQ(collector.ingest_jsonl(blob), 2u);
  EXPECT_EQ(collector.spans().size(), 1u);
}

// --- Reassembly ----------------------------------------------------------

/// One traced request through a front and one replica, delivered as the
/// kind of out-of-order interleaving two independent subscription
/// channels produce: server-side spans first, attempt children before
/// their root.
std::vector<std::string> crossed_trace_lines() {
  return {
      // Replica channel arrives first; its clock is offset by +100 s.
      span_line("served:b", 6, 5, "admission_wait", "serve_phase", 105.02,
                105.03, {}),
      span_line("served:b", 7, 5, "handler", "serve_phase", 105.03, 105.08,
                {}),
      span_line("served:b", 5, 0, "ping", "serve_request", 105.02, 105.09,
                {{"trace_id", "00000000000000ab"},
                 {"parent_span", "#102"},
                 {"conn", "#3"},
                 {"seq", "#0"},
                 {"code", "#200"}}),
      // Front channel: the second attempt's span precedes the root.
      span_line("front:a", 12, 10, "attempt", "dispatch_attempt", 5.03,
                5.10,
                {{"ref", "#102"},
                 {"upstream", "127.0.0.1:7102"},
                 {"outcome", "ok"}}),
      span_line("front:a", 11, 10, "attempt", "dispatch_attempt", 5.00,
                5.02,
                {{"ref", "#101"},
                 {"upstream", "127.0.0.1:7101"},
                 {"outcome", "transport_error"}}),
      span_line("front:a", 10, 0, "ping", "dispatch_request", 5.00, 5.10,
                {{"trace_id", "00000000000000ab"},
                 {"parent_span", "#0"},
                 {"conn", "#1"},
                 {"seq", "#0"},
                 {"outcome", "ok"},
                 {"attempts", "#2"}}),
  };
}

TEST(Collect, ReassemblesCrossProcessTraceFromOutOfOrderStreams) {
  TraceCollector collector;
  for (const std::string& line : crossed_trace_lines()) {
    ASSERT_TRUE(collector.ingest_line(line));
  }

  const ReassemblyReport report = collector.reassemble();
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_EQ(report.complete_traces, 1u);
  EXPECT_EQ(report.orphan_server_roots, 0u);

  const AssembledTrace& trace = report.traces.front();
  EXPECT_EQ(trace.trace_id, "00000000000000ab");
  EXPECT_TRUE(trace.complete);
  ASSERT_EQ(trace.requests.size(), 1u);
  const upa::obs::TraceRequest& request = trace.requests.front();
  EXPECT_TRUE(request.complete);
  EXPECT_EQ(request.method, "ping");
  EXPECT_EQ(request.outcome, "ok");
  ASSERT_EQ(request.attempts.size(), 2u);

  // Attempts come back in span-id (begin) order even though the stream
  // delivered them reversed.
  EXPECT_EQ(request.attempts[0].ref, 101u);
  EXPECT_EQ(request.attempts[0].outcome, "transport_error");
  EXPECT_EQ(request.attempts[0].server_root, nullptr);
  EXPECT_EQ(request.attempts[1].ref, 102u);
  EXPECT_EQ(request.attempts[1].outcome, "ok");
  ASSERT_NE(request.attempts[1].server_root, nullptr);
  EXPECT_EQ(request.attempts[1].server_root->process, "served:b");
  ASSERT_EQ(request.attempts[1].server_phases.size(), 2u);
  EXPECT_EQ(request.attempts[1].server_phases[0]->name, "admission_wait");
  EXPECT_EQ(request.attempts[1].server_phases[1]->name, "handler");

  EXPECT_DOUBLE_EQ(
      TraceCollector::accounted_fraction(report, {"00000000000000ab"}),
      1.0);
  EXPECT_DOUBLE_EQ(TraceCollector::accounted_fraction(
                       report, {"00000000000000ab", "missing"}),
                   0.5);
  EXPECT_DOUBLE_EQ(TraceCollector::accounted_fraction(report, {}), 1.0);
}

TEST(Collect, MissingServerSpanAndMissingAttemptAreIncomplete) {
  TraceCollector collector;
  // Root declares two attempts but only one child span arrived, and
  // that attempt's outcome (ok) demands a server span that never came.
  ASSERT_TRUE(collector.ingest_line(span_line(
      "front:a", 10, 0, "ping", "dispatch_request", 5.0, 5.1,
      {{"trace_id", "00000000000000cd"},
       {"parent_span", "#0"},
       {"conn", "#1"},
       {"seq", "#0"},
       {"outcome", "ok"},
       {"attempts", "#2"}})));
  ASSERT_TRUE(collector.ingest_line(span_line(
      "front:a", 11, 10, "attempt", "dispatch_attempt", 5.0, 5.1,
      {{"ref", "#101"},
       {"upstream", "127.0.0.1:7101"},
       {"outcome", "ok"}})));

  ReassemblyReport report = collector.reassemble();
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_EQ(report.complete_traces, 0u);
  EXPECT_FALSE(report.traces.front().complete);
  EXPECT_NE(report.traces.front().requests.front().incompleteness.find(
                "attempt spans missing"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(
      TraceCollector::accounted_fraction(report, {"00000000000000cd"}),
      0.0);

  // The second attempt span shows up: still incomplete, now for the
  // missing server-side span.
  ASSERT_TRUE(collector.ingest_line(span_line(
      "front:a", 12, 10, "attempt", "dispatch_attempt", 5.0, 5.1,
      {{"ref", "#102"},
       {"upstream", "127.0.0.1:7102"},
       {"outcome", "ok"}})));
  report = collector.reassemble();
  EXPECT_EQ(report.complete_traces, 0u);
  EXPECT_NE(report.traces.front().requests.front().incompleteness.find(
                "no server span"),
            std::string::npos);

  // A rejected attempt, by contrast, is complete without one: the
  // acceptor writes its 503 without ever reading the request.
  TraceCollector rejected;
  ASSERT_TRUE(rejected.ingest_line(span_line(
      "front:a", 10, 0, "ping", "dispatch_request", 5.0, 5.1,
      {{"trace_id", "00000000000000ef"},
       {"parent_span", "#0"},
       {"conn", "#1"},
       {"seq", "#0"},
       {"outcome", "rejected"},
       {"attempts", "#1"}})));
  ASSERT_TRUE(rejected.ingest_line(span_line(
      "front:a", 11, 10, "attempt", "dispatch_attempt", 5.0, 5.1,
      {{"ref", "#101"},
       {"upstream", "127.0.0.1:7101"},
       {"outcome", "rejected"}})));
  EXPECT_EQ(rejected.reassemble().complete_traces, 1u);
}

TEST(Collect, ServerSpanWithUnknownRefIsAnOrphan) {
  TraceCollector collector;
  ASSERT_TRUE(collector.ingest_line(span_line(
      "served:b", 5, 0, "ping", "serve_request", 1.0, 1.1,
      {{"trace_id", "00000000000000ab"},
       {"parent_span", "#999"},
       {"conn", "#1"},
       {"seq", "#0"},
       {"code", "#200"}})));
  const ReassemblyReport report = collector.reassemble();
  EXPECT_EQ(report.orphan_server_roots, 1u);
  EXPECT_EQ(report.complete_traces, 0u);
}

TEST(Collect, DirectServeRequestWithZeroParentIsACompleteRequest) {
  TraceCollector collector;
  ASSERT_TRUE(collector.ingest_line(span_line(
      "served:b", 5, 0, "mmck_metrics", "serve_request", 1.0, 1.1,
      {{"trace_id", "00000000000000ab"},
       {"parent_span", "#0"},
       {"conn", "#2"},
       {"seq", "#0"},
       {"code", "#503"}})));
  const ReassemblyReport report = collector.reassemble();
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_EQ(report.complete_traces, 1u);
  const upa::obs::TraceRequest& request =
      report.traces.front().requests.front();
  EXPECT_EQ(request.method, "mmck_metrics");
  EXPECT_EQ(request.outcome, "rejected");
  EXPECT_TRUE(request.attempts.empty());
}

// --- Exports -------------------------------------------------------------

TEST(Collect, MergedChromeTraceAlignsReplicaClockOntoFrontTimeline) {
  TraceCollector collector;
  for (const std::string& line : crossed_trace_lines()) {
    ASSERT_TRUE(collector.ingest_line(line));
  }
  const std::string trace =
      collector.merged_chrome_trace(collector.reassemble());

  // Valid JSON with one metadata event per process and one X event per
  // span.
  const Json parsed = upa::serve::parse_json(trace);
  const Json* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->as_array().size(), 2u + 6u);

  // The serve_request span (replica clock 105.02) must land near the
  // matched attempt's window (front clock 5.03..5.10), i.e. the +100 s
  // skew is gone in the merged timeline.
  bool found = false;
  for (const Json& event : events->as_array()) {
    const Json* cat = event.find("cat");
    if (cat == nullptr || !cat->is_string() ||
        cat->as_string() != "serve_request") {
      continue;
    }
    found = true;
    const double ts = event.find("ts")->as_number();
    EXPECT_NEAR(ts, 5.02e6, 0.05e6);
  }
  EXPECT_TRUE(found);
}

TEST(Collect, MergedSpansJsonlIsDeterministicallyOrdered) {
  // Ingest in two different orders; the merged export must not care.
  TraceCollector forward;
  TraceCollector reverse;
  const std::vector<std::string> lines = crossed_trace_lines();
  for (const std::string& line : lines) {
    ASSERT_TRUE(forward.ingest_line(line));
  }
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    ASSERT_TRUE(reverse.ingest_line(*it));
  }
  const std::string merged = forward.merged_spans_jsonl();
  EXPECT_EQ(merged, reverse.merged_spans_jsonl());
  // (process, id) order: front spans 10,11,12 then served spans 5,6,7.
  EXPECT_LT(merged.find("\"id\":10"), merged.find("\"id\":11"));
  EXPECT_LT(merged.find("\"id\":12"), merged.find("\"id\":5,"));
  // Every line re-ingests (the export round-trips).
  TraceCollector again;
  EXPECT_EQ(again.ingest_jsonl(merged), 6u);
}

// --- Profile mining ------------------------------------------------------

/// Emits synthetic direct serve_request spans for `walks` sessions per
/// scenario class of the Table 1 mix: one connection per session, one
/// span per visited function, methods mapped like the session loadgen.
void emit_table_sessions(TraceCollector& collector, upa::ta::UserClass uc,
                         std::size_t walks_per_mill) {
  const upa::profile::ScenarioSet table = upa::ta::scenario_table(uc);
  std::uint64_t conn = 0;
  std::uint64_t id = 1;
  for (const upa::profile::ScenarioClass& sc : table.scenarios()) {
    const auto walks = static_cast<std::size_t>(
        std::llround(sc.probability * 1000.0) * walks_per_mill);
    for (std::size_t w = 0; w < walks; ++w) {
      ++conn;
      std::uint64_t seq = 0;
      for (const std::size_t f : sc.functions) {
        const std::string function =
            table.function_names()[f];
        std::ostringstream trace_id;
        trace_id << "t" << conn << "x" << seq;
        ASSERT_TRUE(collector.ingest_line(span_line(
            "served:mine", id, 0,
            upa::serve::method_for_function(function), "serve_request",
            static_cast<double>(id) * 0.01,
            static_cast<double>(id) * 0.01 + 0.005,
            {{"trace_id", trace_id.str()},
             {"parent_span", "#0"},
             {"conn", "#" + std::to_string(conn)},
             {"seq", "#" + std::to_string(seq)},
             {"code", "#200"}})));
        ++id;
        ++seq;
      }
    }
  }
}

TEST(Collect, MinedProfileReproducesHandSpecifiedAvailability) {
  TraceCollector collector;
  emit_table_sessions(collector, upa::ta::UserClass::kB, 1);
  const ReassemblyReport report = collector.reassemble();
  const MinedProfile mined = TraceCollector::mine_profile(report);

  // One walk per mill of scenario mass: the mix is the table up to the
  // 1/1000 rounding.
  EXPECT_EQ(mined.walks, 1000u);
  EXPECT_EQ(mined.skipped_invocations, 0u);
  const upa::profile::ScenarioSet table =
      upa::ta::scenario_table(upa::ta::UserClass::kB);
  double table_mass = 0.0;
  for (const upa::profile::ScenarioClass& sc : table.scenarios()) {
    table_mass += sc.probability;
  }
  double mined_mass = 0.0;
  for (const upa::profile::ScenarioClass& sc : mined.classes.scenarios()) {
    mined_mass += sc.probability;
  }
  EXPECT_NEAR(mined_mass, table_mass, 1e-9);

  // Each synthetic walk starts at its scenario's lowest-index function,
  // so Start splits between Home (rows 1,3,4,6,7,9,10,12: 567 per mill)
  // and Browse (rows 2,5,8,11: 433 per mill) -- exactly, since the
  // mined DTMC is plain row-normalized counts.
  const upa::linalg::Matrix& p = mined.profile.transition_matrix();
  EXPECT_NEAR(p(upa::profile::NodeIndex::kStart, 1), 0.567, 1e-12);
  EXPECT_NEAR(p(upa::profile::NodeIndex::kStart, 2), 0.433, 1e-12);

  const ProfileComparison cmp = TraceCollector::compare_with_hand_specified(
      mined, upa::ta::UserClass::kB);
  EXPECT_TRUE(cmp.within_tolerance);
  EXPECT_LT(cmp.difference, 0.01);
  EXPECT_EQ(cmp.walks, 1000u);
  EXPECT_DOUBLE_EQ(
      cmp.hand_availability,
      upa::ta::user_availability_eq10(
          upa::ta::UserClass::kB,
          upa::ta::TaParameters::paper_defaults()));
}

TEST(Collect, Eq10OverScenariosMatchesTableFormBitForBit) {
  for (const upa::ta::UserClass uc :
       {upa::ta::UserClass::kA, upa::ta::UserClass::kB}) {
    const upa::ta::TaParameters params =
        upa::ta::TaParameters::paper_defaults();
    EXPECT_EQ(upa::ta::user_availability_eq10_scenarios(
                  upa::ta::scenario_table(uc), params),
              upa::ta::user_availability_eq10(uc, params));
  }
}

TEST(Collect, MiningWithoutMappedWalksThrows) {
  TraceCollector collector;
  // A lone `sleep` request (loss workload) maps to no Table 1 function.
  ASSERT_TRUE(collector.ingest_line(span_line(
      "served:b", 5, 0, "sleep", "serve_request", 1.0, 1.1,
      {{"trace_id", "00000000000000ab"},
       {"parent_span", "#0"},
       {"conn", "#1"},
       {"seq", "#0"},
       {"code", "#200"}})));
  const ReassemblyReport report = collector.reassemble();
  EXPECT_THROW((void)TraceCollector::mine_profile(report), ModelError);
}

// --- Live end-to-end -----------------------------------------------------

TEST(CollectLive, SubscribedFarmReassemblesEverySessionRequest) {
  using upa::dispatch::Front;
  using upa::dispatch::FrontConfig;
  using upa::serve::Server;
  using upa::serve::ServerConfig;

  upa::obs::Observer server_obs;
  ServerConfig server_config;
  server_config.port = 0;
  server_config.workers = 2;
  server_config.capacity = 32;
  server_config.trace = true;
  server_config.telemetry_process = "served:live";
  server_config.obs = &server_obs;
  Server server(std::move(server_config));
  server.start();

  upa::obs::Observer front_obs;
  FrontConfig front_config;
  front_config.port = 0;
  front_config.upstreams = {{"127.0.0.1", server.port()}};
  front_config.trace = true;
  front_config.telemetry_process = "front:live";
  front_config.obs = &front_obs;
  front_config.health.probe_interval_seconds = 30.0;
  front_config.health.unhealthy_threshold = 1000;
  Front front(std::move(front_config));
  front.start();

  // Subscribe to both processes; one reader thread per channel, exactly
  // like upa_tracecol.
  TraceCollector collector;
  upa::serve::Client server_sub;
  upa::serve::Client front_sub;
  server_sub.connect("127.0.0.1", server.port(), 5.0, 10.0);
  front_sub.connect("127.0.0.1", front.port(), 5.0, 10.0);
  const std::string subscribe =
      "{\"id\":1,\"method\":\"subscribe\",\"params\":{\"interval_ms\":50}}";
  server_sub.send_line(subscribe);
  front_sub.send_line(subscribe);
  const auto reader = [&collector](upa::serve::Client& client) {
    try {
      const std::string ack = client.read_line();
      EXPECT_NE(ack.find("\"subscribed\":true"), std::string::npos);
      while (true) collector.ingest_line(client.read_line());
    } catch (const std::exception&) {
      // shutdown_both below: the drain is the exit path.
    }
  };
  std::thread server_reader([&] { reader(server_sub); });
  std::thread front_reader([&] { reader(front_sub); });

  upa::serve::SessionConfig sessions;
  sessions.port = front.port();
  sessions.sessions = 40;
  sessions.session_rate = 100.0;
  sessions.uclass = upa::ta::UserClass::kB;
  sessions.trace = true;
  const upa::serve::SessionResult replay =
      upa::serve::run_session_replay(sessions);
  ASSERT_GT(replay.invocations, 0u);

  // Two telemetry ticks past the last request flushes every span batch.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  server_sub.shutdown_both();
  front_sub.shutdown_both();
  server_reader.join();
  front_reader.join();
  front.stop();
  server.stop();

  EXPECT_EQ(collector.dropped_spans_total(), 0u);
  const ReassemblyReport report = collector.reassemble();
  EXPECT_EQ(report.orphan_server_roots, 0u);

  // The acceptance gate: every request the loadgen issued reassembles
  // into a complete cross-process trace.
  std::vector<std::string> expected;
  for (const upa::serve::SessionInvocationLog& log : replay.invocation_log) {
    expected.push_back(log.trace_id);
  }
  ASSERT_EQ(expected.size(), replay.invocations);
  EXPECT_DOUBLE_EQ(TraceCollector::accounted_fraction(report, expected),
                   1.0);

  // And the mined workload model closes the loop through eq. (10).
  const MinedProfile mined = TraceCollector::mine_profile(report);
  EXPECT_EQ(mined.walks, replay.sessions);
  const ProfileComparison cmp = TraceCollector::compare_with_hand_specified(
      mined, upa::ta::UserClass::kB);
  EXPECT_TRUE(cmp.within_tolerance)
      << "mined=" << cmp.mined_availability
      << " hand=" << cmp.hand_availability
      << " tolerance=" << cmp.tolerance;
}

}  // namespace
