// Closed-loop control plane: the rate estimator's windowed finite
// differences, the admission policy's grow/shrink hysteresis, the
// inverse M/M/i/K searches it plans with, and the serve layer's
// `reconfigure` actuator -- drain-aware worker retirement, atomic
// capacity re-bounding, and serialization of concurrent reconfigures.
//
// Naming note: the Control* / Reconfigure* suites run under the ASan
// and TSan CI jobs (their ctest regexes include "Control|Reconfigure").
// The loss-free flip-flop test at the bottom is the TSan acceptance
// test for the elastic worker pool: continuous load while the pool
// grows and shrinks must complete every admitted request.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/control/estimator.hpp"
#include "upa/control/policy.hpp"
#include "upa/control/scenario.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/server.hpp"

namespace {

using upa::control::AdmissionPolicy;
using upa::control::CounterSample;
using upa::control::PolicyDecision;
using upa::control::PolicyOptions;
using upa::control::RateEstimate;
using upa::control::RateEstimator;
using upa::serve::CallOutcome;
using upa::serve::CallResult;
using upa::serve::Client;
using upa::serve::ErrorCode;
using upa::serve::Json;
using upa::serve::Server;
using upa::serve::ServerConfig;

// --- Estimator -----------------------------------------------------------

/// Feeds `estimator` a constant-rate counter stream: `lambda` arrivals
/// per second of which `loss` rejects, handlers busy `utilization`
/// seconds per second, for `seconds` at 4 Hz.
void feed_constant(RateEstimator& estimator, double lambda, double loss,
                   double utilization, double seconds, double t0 = 0.0) {
  for (double t = t0; t <= t0 + seconds + 1e-9; t += 0.25) {
    CounterSample s;
    s.t = t;
    s.arrivals = lambda * t;
    s.rejected = lambda * loss * t;
    s.handled = lambda * (1.0 - loss) * t;
    s.busy_seconds = utilization * t;
    estimator.observe(s);
  }
}

TEST(ControlEstimator, NotReadyUntilTheWindowSpansEnough) {
  RateEstimator estimator;
  EXPECT_FALSE(estimator.estimate().ready);
  CounterSample s;
  s.t = 0.1;
  estimator.observe(s);
  // One sample (or a too-short span) cannot be differenced.
  EXPECT_FALSE(estimator.estimate().ready);
}

TEST(ControlEstimator, RecoversConstantRatesFromCumulativeCounters) {
  RateEstimator estimator;
  // 12/s offered, 25% rejected, handlers busy 0.75 s per second: with
  // 9 completions/s that is nu = 9 / 0.75 = 12 per server-second.
  feed_constant(estimator, 12.0, 0.25, 0.75, 5.0);
  const RateEstimate est = estimator.estimate();
  ASSERT_TRUE(est.ready);
  EXPECT_NEAR(est.lambda, 12.0, 0.5);
  EXPECT_NEAR(est.lambda_window, 12.0, 1e-6);
  EXPECT_NEAR(est.loss, 0.25, 1e-6);
  EXPECT_NEAR(est.nu, 12.0, 1e-6);
  EXPECT_GT(est.loss_stddev, 0.0);
  // The window is bounded: five seconds of samples, two-second span.
  EXPECT_LE(est.window_seconds, 2.0 + 0.25 + 1e-9);
}

TEST(ControlEstimator, ServiceRateStaysStickyThroughIdleWindows) {
  RateEstimator estimator;
  feed_constant(estimator, 10.0, 0.0, 0.5, 4.0);
  ASSERT_NEAR(estimator.estimate().nu, 20.0, 1e-6);

  // Arrivals stop: the window sees zero completions and zero busy
  // time, but nu-hat must hold its last observed value -- the planner
  // still needs a service rate to size against when load returns.
  CounterSample frozen;
  frozen.arrivals = 10.0 * 4.0;
  frozen.handled = 10.0 * 4.0;
  frozen.busy_seconds = 0.5 * 4.0;
  for (double t = 4.25; t <= 9.0; t += 0.25) {
    frozen.t = t;
    estimator.observe(frozen);
  }
  const RateEstimate idle = estimator.estimate();
  ASSERT_TRUE(idle.ready);
  EXPECT_NEAR(idle.lambda_window, 0.0, 1e-9);
  EXPECT_NEAR(idle.nu, 20.0, 1e-6);
}

TEST(ControlEstimator, ResetForgetsSmoothingAndWindow) {
  RateEstimator estimator;
  feed_constant(estimator, 30.0, 0.5, 1.0, 4.0);
  ASSERT_TRUE(estimator.estimate().ready);
  estimator.reset();
  EXPECT_FALSE(estimator.estimate().ready);
  // After a server restart the counters start over; the estimator must
  // track the fresh stream, not difference against pre-reset samples.
  feed_constant(estimator, 5.0, 0.0, 0.25, 4.0);
  const RateEstimate est = estimator.estimate();
  ASSERT_TRUE(est.ready);
  EXPECT_NEAR(est.lambda_window, 5.0, 1e-6);
  EXPECT_NEAR(est.loss, 0.0, 1e-9);
}

// --- Inverse M/M/i/K searches --------------------------------------------

TEST(ControlSearch, CapacityForLossFindsTheSmallestFeasibleK) {
  const double alpha = 36.0, nu = 12.0, target = 0.04;
  const upa::queueing::MmckSizing sized =
      upa::queueing::mmck_capacity_for_loss(alpha, nu, 4, target, 64);
  ASSERT_TRUE(sized.feasible);
  EXPECT_EQ(sized.servers, 4u);
  EXPECT_LE(sized.loss, target);
  // Smallest: one slot less must breach the target.
  ASSERT_GT(sized.capacity, 4u);
  EXPECT_GT(upa::queueing::mmck_loss_probability(alpha, nu, 4,
                                                 sized.capacity - 1),
            target);
}

TEST(ControlSearch, SmallestConfigPrefersFewerServers) {
  const double alpha = 36.0, nu = 12.0, target = 0.04;
  const upa::queueing::MmckSizing plan =
      upa::queueing::mmck_smallest_config(alpha, nu, target, 8, 64, 1);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.loss, target);
  // No smaller server count can meet the target within the K cap.
  for (std::size_t fewer = 1; fewer < plan.servers; ++fewer) {
    EXPECT_GT(upa::queueing::mmck_loss_probability(alpha, nu, fewer, 64),
              target);
  }
}

TEST(ControlSearch, InfeasibleSearchReturnsTheCapCorner) {
  // Overload far past what the caps can absorb: the search must still
  // return the best available corner so a controller under overload
  // applies SOMETHING rather than holding a hopeless config.
  const upa::queueing::MmckSizing plan =
      upa::queueing::mmck_smallest_config(1e4, 1.0, 0.01, 4, 16, 1);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.servers, 4u);
  EXPECT_EQ(plan.capacity, 16u);
  EXPECT_GT(plan.loss, 0.01);
}

// --- Policy hysteresis ---------------------------------------------------

RateEstimate ready_estimate(double lambda, double nu, double loss = 0.0) {
  RateEstimate est;
  est.lambda = lambda;
  est.lambda_window = lambda;
  est.nu = nu;
  est.loss = loss;
  est.window_seconds = 2.0;
  est.window_arrivals = lambda * 2.0;
  est.ready = true;
  return est;
}

TEST(ControlPolicy, HoldsWhileEstimating) {
  AdmissionPolicy policy(PolicyOptions{}, 1, 3);
  RateEstimate not_ready;
  const PolicyDecision d = policy.decide(not_ready, 0.0);
  EXPECT_FALSE(d.act);
  EXPECT_EQ(d.reason, "hold:estimating");

  // Ready but no completion ever observed: nu = 0 cannot be planned on.
  const PolicyDecision no_nu = policy.decide(ready_estimate(10.0, 0.0), 1.0);
  EXPECT_FALSE(no_nu.act);
  EXPECT_EQ(no_nu.reason, "hold:no-service-rate");
}

TEST(ControlPolicy, GrowsPromptlyWhenTheCurrentConfigWouldBreach) {
  PolicyOptions options;
  options.target_loss = 0.08;
  AdmissionPolicy policy(options, 1, 3);
  // A flash crowd at 3x the service rate: (1, 3) analytically loses
  // far more than the SLO, so the very first ready tick must grow.
  const PolicyDecision d = policy.decide(ready_estimate(36.0, 12.0), 1.0);
  ASSERT_TRUE(d.act);
  EXPECT_EQ(d.reason, "grow");
  EXPECT_GT(d.workers, 1u);
  EXPECT_GE(d.capacity, d.workers);
  EXPECT_TRUE(d.feasible);
  // The plan meets the sizing target analytically.
  EXPECT_LE(d.predicted_loss, options.target_loss * options.sizing_fraction);

  policy.applied(d.workers, d.capacity, 1.0);
  // Immediately after an applied change, another grow is in cooldown.
  const PolicyDecision again =
      policy.decide(ready_estimate(80.0, 12.0), 1.1);
  EXPECT_FALSE(again.act);
  EXPECT_EQ(again.reason, "hold:grow-cooldown");
}

TEST(ControlPolicy, ShrinkMustStandForTheFullCooldown) {
  PolicyOptions options;
  options.shrink_cooldown_seconds = 5.0;
  AdmissionPolicy policy(options, 6, 32);
  const RateEstimate light = ready_estimate(4.0, 12.0);

  // A cheaper plan exists immediately, but the policy must sit on it.
  PolicyDecision d = policy.decide(light, 0.0);
  EXPECT_FALSE(d.act);
  EXPECT_EQ(d.reason, "hold:shrink-pending");
  d = policy.decide(light, 3.0);
  EXPECT_FALSE(d.act);

  // A grow in between (load spike) resets the shrink streak entirely.
  const PolicyDecision spike = policy.decide(ready_estimate(200.0, 12.0), 3.5);
  EXPECT_TRUE(spike.act);
  policy.applied(spike.workers, spike.capacity, 3.5);
  d = policy.decide(light, 4.0);
  EXPECT_FALSE(d.act) << d.reason;

  // Only after standing continuously for the cooldown does it trim.
  d = policy.decide(light, 9.6);
  ASSERT_TRUE(d.act) << d.reason;
  EXPECT_EQ(d.reason, "shrink");
  EXPECT_LT(d.workers, spike.workers);
  policy.applied(d.workers, d.capacity, 9.6);
  EXPECT_EQ(policy.current_workers(), d.workers);
  EXPECT_EQ(policy.current_capacity(), d.capacity);
}

TEST(ControlPolicy, ConvergedConfigurationHolds) {
  AdmissionPolicy policy(PolicyOptions{}, 2, 7);
  const RateEstimate est = ready_estimate(12.0, 12.0);
  // Walk the policy to its fixed point for this load (grows apply
  // immediately, shrinks after the cooldown elapses tick by tick)...
  double now = 0.0;
  for (int tick = 0; tick < 100; ++tick, now += 1.0) {
    const PolicyDecision d = policy.decide(est, now);
    if (d.act) policy.applied(d.workers, d.capacity, now);
  }
  // ...after which every tick holds: the plan IS the configuration.
  const PolicyDecision steady = policy.decide(est, now);
  EXPECT_FALSE(steady.act);
  EXPECT_EQ(steady.reason, "hold:converged");
}

// --- Scenario phase table ------------------------------------------------

TEST(ControlScenario, FaultPlanOverlayBrownsOutTheOutagePhase) {
  upa::control::ControlScenarioConfig config;
  config.scenario = "full";
  const auto phases = upa::control::control_phases(config);
  ASSERT_EQ(phases.size(), 5u);
  bool saw_fault = false;
  for (const auto& phase : phases) {
    if (!phase.faulted) continue;
    saw_fault = true;
    // The FaultPlan window degrades service, never kills it: the
    // faulted phase runs at a reduced nu, and the workload still
    // offers load (that is what the controller must absorb).
    EXPECT_LT(phase.nu, config.nu);
    EXPECT_GT(phase.nu, 0.0);
    EXPECT_GE(phase.requests, 1u);
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_THROW(
      (void)upa::control::control_phases(
          upa::control::ControlScenarioConfig{.scenario = "nope"}),
      upa::common::ModelError);
}

// --- Reconfigure actuator (loopback TCP) ---------------------------------

ServerConfig loopback_config(std::size_t workers, std::size_t capacity) {
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = workers;
  config.capacity = capacity;
  return config;
}

/// Polls until the server settles at `workers` live workers (retiring
/// drains asynchronously) or the deadline passes.
void wait_for_workers(Server& server, std::size_t workers,
                      double timeout_seconds = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto stats = server.stats();
    if (stats.workers == workers && stats.retiring == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.workers, workers);
  EXPECT_EQ(stats.retiring, 0u);
}

TEST(Reconfigure, ShrinkBelowInflightDrainsWithoutKillingRequests) {
  Server server(loopback_config(4, 8));
  server.start();

  // Four in-flight sleeps occupy every worker.
  std::vector<std::thread> holders;
  std::atomic<int> completed{0};
  for (int k = 0; k < 4; ++k) {
    holders.emplace_back([&] {
      Client c;
      c.connect("127.0.0.1", server.port());
      Json params = Json::object();
      params.set("seconds", Json(0.4));
      const CallResult r = c.call("sleep", std::move(params));
      EXPECT_TRUE(r.ok()) << r.error_message;
      if (r.ok()) ++completed;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Shrink to one worker while all four are mid-request: the result
  // reports the retire debt, and NO in-flight request may be killed --
  // workers only retire between requests.
  const auto result = server.reconfigure(1, 0);
  EXPECT_EQ(result.previous_workers, 4u);
  EXPECT_EQ(result.workers, 1u);
  EXPECT_EQ(result.capacity, 8u);  // 0 = keep
  EXPECT_EQ(result.retiring, 3u);

  for (auto& t : holders) t.join();
  EXPECT_EQ(completed.load(), 4);
  wait_for_workers(server, 1);

  // The shrunken pool still serves.
  Client check;
  check.connect("127.0.0.1", server.port());
  EXPECT_TRUE(check.call("ping", Json()).ok());
  server.stop();
}

TEST(Reconfigure, GrowUnderFullQueueAddsServiceImmediately) {
  // One worker, four slots: three sleeps saturate it -- one in service,
  // two queued. Growing to four workers must pick the queued work up
  // without waiting for the first sleep to finish.
  Server server(loopback_config(1, 4));
  server.start();

  std::vector<std::thread> holders;
  std::atomic<int> completed{0};
  const auto begin = std::chrono::steady_clock::now();
  for (int k = 0; k < 3; ++k) {
    holders.emplace_back([&] {
      Client c;
      c.connect("127.0.0.1", server.port());
      Json params = Json::object();
      params.set("seconds", Json(0.5));
      const CallResult r = c.call("sleep", std::move(params));
      EXPECT_TRUE(r.ok()) << r.error_message;
      if (r.ok()) ++completed;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto result = server.reconfigure(4, 8);
  EXPECT_EQ(result.workers, 4u);
  EXPECT_EQ(result.capacity, 8u);
  EXPECT_EQ(result.retiring, 0u);

  for (auto& t : holders) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_EQ(completed.load(), 3);
  // Serial draining would need ~1.5 s; parallel pickup finishes the two
  // queued sleeps concurrently after the grow (~0.65 s + slack).
  EXPECT_LT(elapsed, 1.3) << "grow did not add service to a full queue";
  server.stop();
}

TEST(Reconfigure, CapacityBelowOccupancyGatesAdmissionOnly) {
  Server server(loopback_config(2, 8));
  server.start();

  // Four connections in the system, then K drops to 2 below them.
  std::vector<std::thread> holders;
  std::atomic<int> completed{0};
  for (int k = 0; k < 4; ++k) {
    holders.emplace_back([&] {
      Client c;
      c.connect("127.0.0.1", server.port());
      Json params = Json::object();
      params.set("seconds", Json(0.5));
      const CallResult r = c.call("sleep", std::move(params));
      EXPECT_TRUE(r.ok()) << r.error_message;
      if (r.ok()) ++completed;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto result = server.reconfigure(0, 2);
  EXPECT_EQ(result.workers, 2u);  // 0 = keep
  EXPECT_EQ(result.capacity, 2u);
  EXPECT_EQ(result.previous_capacity, 8u);

  // The four admitted connections are NOT evicted...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(completed.load(), 0);
  // ...but a new connection sees the new bound immediately.
  Client rejected;
  rejected.connect("127.0.0.1", server.port());
  const CallResult r = rejected.call("ping", Json());
  EXPECT_EQ(r.outcome, CallOutcome::kRejected);
  EXPECT_EQ(r.code, ErrorCode::kQueueFull);

  for (auto& t : holders) t.join();
  EXPECT_EQ(completed.load(), 4);
  server.stop();
  EXPECT_EQ(server.stats().deadline_missed, 0u);
}

TEST(Reconfigure, RpcValidatesAndReportsThePreviousConfig) {
  Server server(loopback_config(2, 4));
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  // Both-absent is a 400: "keep everything" is not a reconfigure.
  const CallResult nothing = client.call("reconfigure", Json::object());
  EXPECT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.code, ErrorCode::kBadRequest);

  // K < i is rejected before anything changes.
  Json bad = Json::object();
  bad.set("workers", Json(4.0));
  bad.set("capacity", Json(2.0));
  EXPECT_FALSE(client.call("reconfigure", std::move(bad)).ok());
  EXPECT_EQ(server.stats().workers, 2u);
  EXPECT_EQ(server.stats().capacity, 4u);

  Json grow = Json::object();
  grow.set("workers", Json(3.0));
  const CallResult r = client.call("reconfigure", std::move(grow));
  ASSERT_TRUE(r.ok()) << r.error_message;
  const Json* result = r.result();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("workers")->as_number(), 3.0);
  EXPECT_EQ(result->find("capacity")->as_number(), 4.0);
  EXPECT_EQ(result->find("previous_workers")->as_number(), 2.0);
  EXPECT_EQ(result->find("previous_capacity")->as_number(), 4.0);

  const auto stats = server.stats();
  EXPECT_EQ(stats.workers, 3u);
  EXPECT_EQ(stats.reconfigures, 1u);
  client.close();
  server.stop();
}

TEST(Reconfigure, ConcurrentReconfiguresSerialize) {
  Server server(loopback_config(2, 16));
  server.start();

  // Hammer the actuator from many threads with conflicting targets.
  // Serialization means every call sees a consistent before/after pair
  // and the server never wedges or leaks workers.
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 10;
  std::vector<std::thread> threads;
  std::atomic<int> applied{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kCallsPerThread; ++k) {
        const std::size_t target = 1 + ((t + k) % 4);
        const auto result = server.reconfigure(target, 0);
        EXPECT_EQ(result.workers, target);
        EXPECT_GE(result.capacity, result.workers);
        ++applied;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(applied.load(), kThreads * kCallsPerThread);
  EXPECT_EQ(server.stats().reconfigures,
            static_cast<std::uint64_t>(kThreads * kCallsPerThread));

  // Settle to a known target; the pool must land exactly there.
  (void)server.reconfigure(2, 16);
  wait_for_workers(server, 2);
  Client check;
  check.connect("127.0.0.1", server.port());
  EXPECT_TRUE(check.call("ping", Json()).ok());
  check.close();
  server.stop();
}

TEST(Reconfigure, FlipFlopUnderContinuousLoadLosesNothing) {
  // The elastic-pool acceptance test: clients hammer a keep-alive-free
  // request loop while the pool flip-flops 1 <-> 4 workers. Every
  // admitted request must complete (capacity is ample, so none are
  // rejected) and no transport error may ever surface -- a killed
  // in-flight request would show up as exactly that.
  Server server(loopback_config(2, 32));
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        try {
          Client client;
          client.connect("127.0.0.1", server.port(), 5.0);
          Json params = Json::object();
          params.set("seconds", Json(0.005));
          const CallResult r = client.call("sleep", std::move(params));
          if (r.ok()) {
            ++ok;
          } else {
            ++failed;
          }
          client.close();
        } catch (const std::exception&) {
          ++failed;
        }
      }
    });
  }

  for (int flip = 0; flip < 12; ++flip) {
    (void)server.reconfigure((flip % 2 == 0) ? 4 : 1, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(failed.load(), 0);
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.reconfigures, 12u);
}

TEST(Reconfigure, RejectedWhileStoppedOrStopping) {
  Server server(loopback_config(1, 2));
  EXPECT_THROW((void)server.reconfigure(2, 4), upa::common::ModelError);
  server.start();
  (void)server.reconfigure(2, 4);
  server.stop();
  EXPECT_THROW((void)server.reconfigure(1, 2), upa::common::ModelError);
  // A restart resumes at the last configured targets, not the ctor's.
  server.start();
  const auto stats = server.stats();
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.capacity, 4u);
  server.stop();
}

}  // namespace
