// Persistent cache tier: segment framing (CRC, torn tails, version
// gates), the value codecs' bit-for-bit round-trip contract, key-byte
// reconstruction, the PersistentCache warm-restart path, and the
// export/import blob transfer the farm uses to warm a restarted
// replica from a healthy peer.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cache/segment.hpp"
#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/queueing/mmck.hpp"

namespace {

namespace cache = upa::cache;
namespace fs = std::filesystem;
using upa::common::ModelError;

/// Unique on-disk directory per test: gtest_discover_tests runs each
/// TEST as its own process, so tests sharing a fixed path would race.
struct TempDir {
  TempDir() {
    std::string path = (fs::temp_directory_path() / "upa_persist_XXXXXX");
    if (mkdtemp(path.data()) == nullptr) {
      throw ModelError("mkdtemp failed for " + path);
    }
    dir = path;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string dir;
};

cache::CacheKey key_of(double value) {
  cache::KeyBuilder kb("test.solver", 1);
  kb.add(value);
  return std::move(kb).finish();
}

std::string double_value_bytes(double value) {
  cache::ByteWriter w;
  w.put_double(value);
  return std::move(w).take();
}

cache::SegmentRecord double_record(double key_param, double value) {
  return {"f64", key_of(key_param).bytes, double_value_bytes(value)};
}

std::vector<cache::SegmentRecord> load_all(std::string_view bytes,
                                           cache::SegmentLoadStats& stats,
                                           bool* accepted = nullptr) {
  std::vector<cache::SegmentRecord> records;
  const bool ok = cache::load_segment_bytes(
      bytes, stats,
      [&](cache::SegmentRecord&& r) { records.push_back(std::move(r)); });
  if (accepted != nullptr) *accepted = ok;
  return records;
}

TEST(PersistSegment, RecordsRoundTripThroughTheFraming) {
  std::string bytes = cache::segment_header();
  bytes += cache::encode_record(double_record(1.0, 10.0));
  bytes += cache::encode_record(double_record(2.0, 20.0));

  cache::SegmentLoadStats stats;
  bool accepted = false;
  const auto records = load_all(bytes, stats, &accepted);
  EXPECT_TRUE(accepted);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type_tag, "f64");
  EXPECT_EQ(records[0].key_bytes, key_of(1.0).bytes);
  EXPECT_EQ(records[0].value_bytes, double_value_bytes(10.0));
  EXPECT_EQ(records[1].value_bytes, double_value_bytes(20.0));
  EXPECT_EQ(stats.records_loaded, 2u);
  EXPECT_EQ(stats.records_skipped_crc, 0u);
  EXPECT_EQ(stats.torn_tail_bytes, 0u);
}

TEST(PersistSegment, TornTailLoadsEveryCompleteRecord) {
  std::string bytes = cache::segment_header();
  bytes += cache::encode_record(double_record(1.0, 10.0));
  const std::string full_second = cache::encode_record(double_record(2.0, 20.0));
  // A kill -9 mid-append leaves an arbitrary prefix of the last record;
  // every cut point must recover the first record and nothing else.
  for (std::size_t cut = 1; cut < full_second.size(); ++cut) {
    std::string torn = bytes + full_second.substr(0, cut);
    cache::SegmentLoadStats stats;
    bool accepted = false;
    const auto records = load_all(torn, stats, &accepted);
    EXPECT_TRUE(accepted);
    ASSERT_EQ(records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(records[0].value_bytes, double_value_bytes(10.0));
    EXPECT_EQ(stats.torn_tail_bytes, cut);
  }
}

TEST(PersistSegment, FlippedByteLosesOneRecordNotTheFile) {
  const std::string header = cache::segment_header();
  const std::string first = cache::encode_record(double_record(1.0, 10.0));
  std::string bytes = header + first;
  bytes += cache::encode_record(double_record(2.0, 20.0));
  bytes[header.size() + first.size() - 1] ^= 0x01;  // corrupt record 1's tail

  cache::SegmentLoadStats stats;
  bool accepted = false;
  const auto records = load_all(bytes, stats, &accepted);
  EXPECT_TRUE(accepted);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].value_bytes, double_value_bytes(20.0));
  EXPECT_EQ(stats.records_loaded, 1u);
  EXPECT_EQ(stats.records_skipped_crc, 1u);
}

TEST(PersistSegment, VersionOrTagMismatchRejectsTheWholeSegment) {
  const std::string record = cache::encode_record(double_record(1.0, 10.0));
  const std::string wrong_version =
      cache::segment_header(cache::kSegmentFormatVersion + 1) + record;
  const std::string wrong_tag =
      cache::segment_header(cache::kSegmentFormatVersion, "upa-solvers-v0") +
      record;
  std::string wrong_magic = cache::segment_header() + record;
  wrong_magic[0] = 'X';

  for (const std::string* bytes : std::initializer_list<const std::string*>{
           &wrong_version, &wrong_tag, &wrong_magic}) {
    cache::SegmentLoadStats stats;
    bool accepted = true;
    const auto records = load_all(*bytes, stats, &accepted);
    EXPECT_FALSE(accepted);
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(stats.segments_rejected, 1u);
    EXPECT_EQ(stats.records_loaded, 0u);
  }
}

TEST(PersistSegment, SegmentFileAppendsAreReadBack) {
  TempDir tmp;
  const std::string path = tmp.dir + "/active.upaseg";
  {
    cache::SegmentFile file(path);
    file.append(double_record(1.0, 10.0));
    file.append(double_record(2.0, 20.0));
    EXPECT_EQ(file.records_written(), 2u);
  }
  cache::SegmentLoadStats stats;
  std::vector<cache::SegmentRecord> records;
  EXPECT_TRUE(cache::load_segment_file(
      path, stats,
      [&](cache::SegmentRecord&& r) { records.push_back(std::move(r)); }));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].key_bytes, key_of(2.0).bytes);
  EXPECT_EQ(stats.segments_loaded, 1u);
}

TEST(PersistKeyBytes, CanonicalBytesReconstructTheKey) {
  cache::KeyBuilder kb("markov.steady_state", 3);
  kb.add(-0.0).add(std::uint64_t{7}).add(std::string("ab"));
  const cache::CacheKey original = std::move(kb).finish();

  // What the loader does with bytes read off disk.
  EXPECT_EQ(cache::solver_id_from_key_bytes(original.bytes),
            "markov.steady_state");
  EXPECT_EQ(cache::key_digest(original.bytes), original.digest);

  // -0.0 normalizes on the KEY side, so the reconstructed key is
  // identical to the +0.0 key...
  cache::KeyBuilder pos("markov.steady_state", 3);
  pos.add(0.0).add(std::uint64_t{7}).add(std::string("ab"));
  EXPECT_EQ(original.bytes, std::move(pos).finish().bytes);

  // ...and length-prefixing keeps concatenation-colliding keys distinct
  // after a disk round-trip of their bytes.
  cache::KeyBuilder a("test.solver", 1);
  a.add(std::string("ab")).add(std::string("c"));
  cache::KeyBuilder b("test.solver", 1);
  b.add(std::string("a")).add(std::string("bc"));
  const std::string bytes_a = std::move(a).finish().bytes;
  const std::string bytes_b = std::move(b).finish().bytes;
  EXPECT_NE(bytes_a, bytes_b);
  EXPECT_NE(cache::key_digest(bytes_a), cache::key_digest(bytes_b));

  EXPECT_THROW(cache::solver_id_from_key_bytes(std::string("\x03", 1)),
               ModelError);
}

TEST(PersistCodec, RegistryHoldsTheFiveCachedTypes)  {
  const std::vector<std::string> tags = cache::registered_codec_tags();
  const std::vector<std::string> expected{
      "campaign_entry", "f64", "f64_vec", "mmck_metrics",
      "stationary_report"};
  EXPECT_EQ(tags, expected);
  for (const std::string& tag : tags) {
    EXPECT_NE(cache::codec_for_tag(tag), nullptr);
  }
  EXPECT_EQ(cache::codec_for_tag("unknown"), nullptr);
  EXPECT_EQ(cache::codec_for_type(typeid(int)), nullptr);
}

TEST(PersistCodec, DoublesRoundTripBitForBit) {
  const cache::ValueCodec* codec = cache::codec_for_type(typeid(double));
  ASSERT_NE(codec, nullptr);
  // Value-side encoding preserves exact bit patterns: -0.0 stays
  // negative (only KEYS normalize it) and denormals/infinities survive.
  for (const double v : {-0.0, 5e-324, std::numeric_limits<double>::max(),
                         -std::numeric_limits<double>::infinity(), 1.25}) {
    const std::string bytes = codec->serialize(&v);
    const cache::StoredValue back = codec->deserialize(bytes);
    ASSERT_EQ(*back.type, typeid(double));
    const double decoded = *static_cast<const double*>(back.value.get());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded),
              std::bit_cast<std::uint64_t>(v));
  }

  const cache::ValueCodec* vec_codec =
      cache::codec_for_type(typeid(std::vector<double>));
  ASSERT_NE(vec_codec, nullptr);
  const std::vector<double> vec{1.0, -0.0, 3.5};
  const cache::StoredValue back =
      vec_codec->deserialize(vec_codec->serialize(&vec));
  EXPECT_EQ(*static_cast<const std::vector<double>*>(back.value.get()), vec);
}

TEST(PersistCodec, MmckMetricsRoundTripBitForBit) {
  const auto metrics = upa::queueing::mmck_metrics(95.0, 100.0, 4, 10);
  const cache::ValueCodec* codec =
      cache::codec_for_type(typeid(upa::queueing::MmckMetrics));
  ASSERT_NE(codec, nullptr);
  const cache::StoredValue back =
      codec->deserialize(codec->serialize(&metrics));
  const auto& decoded =
      *static_cast<const upa::queueing::MmckMetrics*>(back.value.get());
  EXPECT_EQ(decoded.rho, metrics.rho);
  EXPECT_EQ(decoded.blocking, metrics.blocking);
  EXPECT_EQ(decoded.mean_in_system, metrics.mean_in_system);
  EXPECT_EQ(decoded.mean_in_queue, metrics.mean_in_queue);
  EXPECT_EQ(decoded.throughput, metrics.throughput);
  EXPECT_EQ(decoded.mean_response, metrics.mean_response);
  EXPECT_EQ(decoded.mean_busy_servers, metrics.mean_busy_servers);
  EXPECT_EQ(decoded.state_probabilities, metrics.state_probabilities);
}

TEST(PersistCodec, StationaryReportRoundTripsAndGatesEnums) {
  upa::core::WebFarmParams farm{4, 1e-3, 1.0, 0.98, 12.0};
  const auto chain = upa::core::imperfect_coverage_chain(farm);
  const auto report =
      chain.chain.steady_state_robust(upa::markov::StationaryOptions{});
  const cache::ValueCodec* codec =
      cache::codec_for_type(typeid(upa::markov::StationaryReport));
  ASSERT_NE(codec, nullptr);
  const std::string bytes = codec->serialize(&report);
  const cache::StoredValue back = codec->deserialize(bytes);
  const auto& decoded =
      *static_cast<const upa::markov::StationaryReport*>(back.value.get());
  EXPECT_EQ(decoded.distribution, report.distribution);
  EXPECT_EQ(decoded.method, report.method);
  EXPECT_EQ(decoded.residual, report.residual);
  EXPECT_EQ(decoded.diagnostics, report.diagnostics);
  ASSERT_EQ(decoded.stages.size(), report.stages.size());
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    EXPECT_EQ(decoded.stages[i].method, report.stages[i].method);
    EXPECT_EQ(decoded.stages[i].outcome, report.stages[i].outcome);
    EXPECT_EQ(decoded.stages[i].iterations, report.stages[i].iterations);
    EXPECT_EQ(decoded.stages[i].note, report.stages[i].note);
  }

  // A payload naming an out-of-range method enum is a decode error, not
  // a garbage report.
  cache::ByteWriter w;
  w.put_doubles({1.0});
  w.put_u8(250);  // no such StationaryMethod
  EXPECT_THROW((void)codec->deserialize(w.bytes()), ModelError);
}

TEST(PersistCodec, CampaignEntryRoundTripsBitForBit) {
  upa::inject::CampaignEntry entry;
  entry.name = "web farm outage";
  entry.perceived_availability.mean = 0.987654321;
  entry.perceived_availability.half_width = 1.5e-4;
  entry.perceived_availability.low = 0.9875;
  entry.perceived_availability.high = 0.9878;
  entry.delta_vs_baseline = -2.5e-3;
  entry.observed_web_service_availability = 0.9991;
  entry.mean_retries_per_session = 0.125;
  entry.abandonment_fraction = 0.0625;
  const cache::ValueCodec* codec =
      cache::codec_for_type(typeid(upa::inject::CampaignEntry));
  ASSERT_NE(codec, nullptr);
  const cache::StoredValue back = codec->deserialize(codec->serialize(&entry));
  const auto& decoded =
      *static_cast<const upa::inject::CampaignEntry*>(back.value.get());
  EXPECT_EQ(decoded.name, entry.name);
  EXPECT_EQ(decoded.perceived_availability.mean,
            entry.perceived_availability.mean);
  EXPECT_EQ(decoded.perceived_availability.half_width,
            entry.perceived_availability.half_width);
  EXPECT_EQ(decoded.delta_vs_baseline, entry.delta_vs_baseline);
  EXPECT_EQ(decoded.observed_web_service_availability,
            entry.observed_web_service_availability);
  EXPECT_EQ(decoded.mean_retries_per_session, entry.mean_retries_per_session);
  EXPECT_EQ(decoded.abandonment_fraction, entry.abandonment_fraction);
}

TEST(PersistCodec, HexTransportRoundTripsAndRejectsGarbage) {
  const std::string bytes("\x00\xff\x10 ab", 6);
  const std::string hex = cache::to_hex(bytes);
  EXPECT_EQ(hex, "00ff10206162");
  EXPECT_EQ(cache::from_hex(hex), bytes);
  EXPECT_EQ(cache::from_hex("00FF10206162"), bytes);  // upper-case accepted
  EXPECT_THROW((void)cache::from_hex("abc"), ModelError);   // odd length
  EXPECT_THROW((void)cache::from_hex("zz"), ModelError);    // non-hex
}

TEST(PersistentCacheTier, WarmRestartReplaysWithoutRecompute) {
  TempDir tmp;
  const cache::CacheKey key = key_of(42.0);
  {
    cache::EvalCache first_run;
    cache::PersistentCache tier(first_run, tmp.dir);
    EXPECT_EQ(tier.stats().segments_loaded, 0u);
    (void)first_run.get_or_compute<double>(key, [] { return 6.25; });
    EXPECT_EQ(tier.stats().records_appended, 1u);
  }

  // "Restart": a fresh cache attached to the same directory must
  // replay the stored value -- the compute callback must never run.
  // The default (lazy) attach only indexes at construction; the value
  // decodes on first lookup and counts as a disk hit.
  cache::EvalCache second_run;
  cache::PersistentCache tier(second_run, tmp.dir);
  EXPECT_EQ(tier.stats().segments_loaded, 1u);
  EXPECT_EQ(tier.stats().records_indexed, 1u);
  EXPECT_EQ(tier.stats().records_replayed, 0u);  // nothing decoded yet
  const auto value = second_run.get_or_compute<double>(key, []() -> double {
    throw ModelError("cold compute ran after a warm restart");
  });
  EXPECT_EQ(*value, 6.25);
  EXPECT_EQ(tier.stats().records_replayed, 1u);
  EXPECT_EQ(tier.stats().disk_hits, 1u);
  EXPECT_EQ(second_run.stats().disk_hits, 1u);
  EXPECT_EQ(second_run.stats().misses, 0u);
  EXPECT_GT(second_run.stats().hit_rate(), 0.99);

  // The second lookup is a plain in-memory hit: lazy decode happens
  // once per key per process.
  (void)second_run.get_or_compute<double>(key, []() -> double {
    throw ModelError("disk-served value did not stay in memory");
  });
  EXPECT_EQ(second_run.stats().hits, 1u);
  EXPECT_EQ(tier.stats().disk_hits, 1u);
}

TEST(PersistentCacheTier, EagerAttachStillSeedsEverythingUpFront) {
  TempDir tmp;
  const cache::CacheKey key = key_of(42.0);
  {
    cache::EvalCache first_run;
    cache::PersistentCache tier(first_run, tmp.dir);
    (void)first_run.get_or_compute<double>(key, [] { return 6.25; });
  }
  cache::EvalCache second_run;
  cache::PersistConfig config;
  config.attach = cache::PersistConfig::Attach::kEager;
  cache::PersistentCache tier(second_run, tmp.dir, config);
  EXPECT_EQ(tier.stats().records_replayed, 1u);  // decoded at construct
  EXPECT_EQ(second_run.size(), 1u);
  const auto value = second_run.get_or_compute<double>(key, []() -> double {
    throw ModelError("cold compute ran after an eager warm restart");
  });
  EXPECT_EQ(*value, 6.25);
  EXPECT_EQ(second_run.stats().hits, 1u);
}

TEST(PersistentCacheTier, RerunAgainstSameDirectoryAppendsNothing) {
  TempDir tmp;
  const auto run_workload = [&tmp] {
    cache::EvalCache ec;
    cache::PersistentCache tier(ec, tmp.dir);
    for (double x : {1.0, 2.0, 3.0}) {
      (void)ec.get_or_compute<double>(key_of(x), [x] { return 10.0 * x; });
    }
    return tier.stats();
  };
  const cache::PersistStats first = run_workload();
  EXPECT_EQ(first.records_appended, 3u);
  const cache::PersistStats second = run_workload();
  EXPECT_EQ(second.records_replayed, 3u);
  EXPECT_EQ(second.records_appended, 0u);  // dedupe: nothing recomputed
  EXPECT_EQ(second.write_errors, 0u);
}

TEST(PersistentCacheTier, ExportImportBlobWarmsAPeerCache) {
  cache::EvalCache warm;
  for (double x : {1.0, 2.0}) {
    (void)warm.get_or_compute<double>(key_of(x), [x] { return 100.0 + x; });
  }
  cache::ExportStats exported;
  const std::string blob = cache::export_segment_blob(warm, &exported);
  EXPECT_EQ(exported.records, 2u);
  EXPECT_EQ(exported.skipped_no_codec, 0u);

  cache::EvalCache restarted;
  const cache::ImportStats imported =
      cache::import_segment_blob(restarted, blob);
  EXPECT_FALSE(imported.segment_rejected);
  EXPECT_EQ(imported.records_seeded, 2u);
  EXPECT_EQ(imported.records_skipped, 0u);
  const auto value =
      restarted.get_or_compute<double>(key_of(2.0), []() -> double {
        throw ModelError("import did not warm this key");
      });
  EXPECT_EQ(*value, 102.0);

  // Importing the same blob again is a no-op, counted as duplicates.
  const cache::ImportStats again = cache::import_segment_blob(restarted, blob);
  EXPECT_EQ(again.records_seeded, 0u);
  EXPECT_EQ(again.records_duplicate, 2u);
}

TEST(PersistentCacheTier, ImportGatesVersionTagAndUnknownTags) {
  cache::EvalCache ec;
  // Foreign solver generation: the whole blob is refused.
  const std::string foreign =
      cache::segment_header(cache::kSegmentFormatVersion, "other-solvers") +
      cache::encode_record(double_record(1.0, 10.0));
  EXPECT_TRUE(cache::import_segment_blob(ec, foreign).segment_rejected);
  EXPECT_EQ(ec.size(), 0u);

  // Unknown codec tag (a newer build's type): that record skips, the
  // rest of the blob still seeds.
  std::string mixed = cache::segment_header();
  mixed += cache::encode_record(
      {"from_the_future", key_of(1.0).bytes, double_value_bytes(1.0)});
  mixed += cache::encode_record(double_record(2.0, 20.0));
  const cache::ImportStats imported = cache::import_segment_blob(ec, mixed);
  EXPECT_FALSE(imported.segment_rejected);
  EXPECT_EQ(imported.records_seeded, 1u);
  EXPECT_EQ(imported.records_skipped, 1u);
}

TEST(PersistentCacheTier, HammeredInsertsAllReachTheActiveSegment) {
  TempDir tmp;
  constexpr int kThreads = 8;
  constexpr int kKeys = 24;
  {
    cache::EvalCache ec;
    cache::PersistentCache tier(ec, tmp.dir);
    std::atomic<bool> stop{false};
    // A stats() poller runs concurrently: the snapshot takes every
    // shard lock in one pass, so it must neither deadlock against the
    // insert path nor observe torn per-shard counters.
    std::thread poller([&] {
      while (!stop.load()) {
        const cache::CacheStats s = ec.stats();
        if (s.inserts > std::uint64_t(kKeys)) {
          stop = true;  // impossible value: fail fast below
        }
      }
    });
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int k = 0; k < kKeys; ++k) {
          (void)ec.get_or_compute<double>(key_of(double(k)),
                                          [k] { return double(k); });
        }
      });
    }
    for (auto& w : workers) w.join();
    stop = true;
    poller.join();
    EXPECT_EQ(ec.stats().inserts, std::uint64_t(kKeys));
    EXPECT_EQ(tier.stats().records_appended, std::uint64_t(kKeys));
    EXPECT_EQ(tier.stats().write_errors, 0u);
  }
  // Single-flight + sink dedupe: the segment holds each key once, and a
  // restart indexes exactly the distinct keys, each of which replays
  // from disk without recomputing.
  cache::EvalCache replayed;
  cache::PersistentCache tier(replayed, tmp.dir);
  EXPECT_EQ(tier.stats().records_indexed, std::uint64_t(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    (void)replayed.get_or_compute<double>(key_of(double(k)),
                                          []() -> double {
                                            throw ModelError(
                                                "restart lost a record");
                                          });
  }
  EXPECT_EQ(tier.stats().records_replayed, std::uint64_t(kKeys));
  EXPECT_EQ(replayed.size(), std::size_t(kKeys));
}

TEST(PersistentCacheTier, UnwritableDirectoryCountsErrorsNotThrows) {
  TempDir tmp;
  cache::EvalCache ec;
  cache::PersistentCache tier(ec, tmp.dir);
  fs::permissions(tmp.dir, fs::perms::owner_read | fs::perms::owner_exec);
  struct RestorePermissions {
    const std::string& dir;
    ~RestorePermissions() {
      std::error_code ec;
      fs::permissions(dir, fs::perms::owner_all, ec);
    }
  } restore{tmp.dir};
  if (geteuid() == 0) {
    GTEST_SKIP() << "running as root: directory permissions not enforced";
  }
  // The workload must not see disk trouble -- the value computes and
  // returns; only the tier's error counter moves.
  const auto value = ec.get_or_compute<double>(key_of(7.0), [] { return 7.0; });
  EXPECT_EQ(*value, 7.0);
  EXPECT_EQ(tier.stats().records_appended, 0u);
  EXPECT_EQ(tier.stats().write_errors, 1u);
}

TEST(PersistentCacheTier, DirectoryLockRefusesASecondWriter) {
  TempDir tmp;
  cache::EvalCache ec;
  auto first = std::make_unique<cache::PersistentCache>(ec, tmp.dir);

  // A second attach -- same process, new open file description -- must
  // fail fast naming the holder instead of interleaving appends.
  cache::EvalCache other;
  try {
    cache::PersistentCache second(other, tmp.dir);
    FAIL() << "second writer attached to a locked directory";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("already has a writer"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(std::to_string(getpid())),
              std::string::npos)
        << e.what();
  }

  // The bare lock class conflicts the same way, and releasing the
  // first writer frees the directory for the next one.
  EXPECT_THROW(cache::DirectoryLock{tmp.dir}, ModelError);
  first.reset();
  cache::PersistentCache reopened(other, tmp.dir);
  (void)other.get_or_compute<double>(key_of(1.0), [] { return 1.5; });
  EXPECT_EQ(reopened.stats().records_appended, 1u);
}

TEST(PersistentCacheTier, DirectoryLockIsFlockNotStaleStampDetection) {
  // The pid stamp is diagnostics only: a lock file left behind by a
  // crashed process holds no flock, so the next writer just takes it.
  TempDir tmp;
  {
    const cache::DirectoryLock lock(tmp.dir);
    EXPECT_TRUE(lock.held());
  }
  EXPECT_TRUE(
      fs::exists(tmp.dir + "/" + cache::DirectoryLock::kLockFileName));
  const cache::DirectoryLock relocked(tmp.dir);
  EXPECT_TRUE(relocked.held());
}

TEST(AntiEntropy, FingerprintDetectsConvergenceInO1) {
  cache::EvalCache a;
  cache::EvalCache b;
  for (const double k : {1.0, 2.0, 3.0}) {
    (void)a.get_or_compute<double>(key_of(k), [k] { return 10.0 * k; });
  }
  // Insertion order must not matter (replicas converge via different
  // histories), so feed b the same keys reversed.
  for (const double k : {3.0, 2.0, 1.0}) {
    (void)b.get_or_compute<double>(key_of(k), [k] { return 10.0 * k; });
  }
  EXPECT_EQ(cache::digest_fingerprint(a), cache::digest_fingerprint(b));
  EXPECT_EQ(cache::digest_fingerprint(a).count, 3u);

  // One extra key flips both the count and the fold.
  (void)b.get_or_compute<double>(key_of(4.0), [] { return 40.0; });
  const cache::DigestFingerprint fa = cache::digest_fingerprint(a);
  const cache::DigestFingerprint fb = cache::digest_fingerprint(b);
  EXPECT_NE(fa.count, fb.count);
  EXPECT_NE(fa.fold, fb.fold);
}

TEST(AntiEntropy, PagedDeltaCoversTheFullSetInBoundedPages) {
  cache::EvalCache from;
  constexpr int kKeys = 25;
  for (int k = 0; k < kKeys; ++k) {
    (void)from.get_or_compute<double>(key_of(double(k)),
                                      [k] { return double(k); });
  }
  // A page budget far below the full export forces many pages; every
  // page still carries at least one record, so the cursor walk always
  // terminates with the union equal to the unpaged delta.
  const std::size_t max_bytes =
      cache::export_segment_blob(from).size() / 6;
  cache::EvalCache into;
  std::uint64_t cursor = 0;
  std::size_t pages = 0;
  std::uint64_t total_records = 0;
  for (;;) {
    const cache::DeltaPage page =
        cache::export_delta_page(from, {}, cursor, max_bytes);
    EXPECT_LE(page.blob.size(), max_bytes);
    const cache::ImportStats imported =
        cache::import_segment_blob(into, page.blob);
    EXPECT_FALSE(imported.segment_rejected);
    total_records += page.records;
    ++pages;
    ASSERT_LT(pages, std::size_t(kKeys) + 2) << "cursor walk diverged";
    if (page.complete) break;
    ASSERT_GT(page.records, 0u) << "incomplete page made no progress";
    cursor = page.next_cursor;
  }
  EXPECT_GT(pages, 2u);
  EXPECT_EQ(total_records, std::uint64_t(kKeys));
  EXPECT_EQ(cache::digest_summary(into), cache::digest_summary(from));
  EXPECT_EQ(cache::digest_fingerprint(into), cache::digest_fingerprint(from));

  // `have` filtering composes with paging: a caller holding everything
  // pulls one empty, complete page.
  const cache::DeltaPage none = cache::export_delta_page(
      from, cache::digest_summary(into), 0, max_bytes);
  EXPECT_TRUE(none.complete);
  EXPECT_EQ(none.records, 0u);

  // A budget smaller than any single record still ships one record per
  // page -- progress is never sacrificed to the bound.
  const cache::DeltaPage tiny = cache::export_delta_page(from, {}, 0, 1);
  EXPECT_EQ(tiny.records, 1u);
  EXPECT_FALSE(tiny.complete);
}

TEST(PersistentCacheTier, SeededEntriesSurviveClearOnlyOnDisk) {
  TempDir tmp;
  cache::EvalCache ec;
  cache::PersistentCache tier(ec, tmp.dir);
  (void)ec.get_or_compute<double>(key_of(1.0), [] { return 1.5; });
  ec.clear();
  int computes = 0;
  // After clear() the value recomputes: the record sits in this
  // process's own ACTIVE segment, which only becomes index-addressable
  // at the next attach (lazy lookups serve sealed segments)...
  (void)ec.get_or_compute<double>(key_of(1.0), [&] {
    ++computes;
    return 1.5;
  });
  EXPECT_EQ(computes, 1);
  // ...but the recompute is NOT appended again: the persisted-digest
  // set outlives clear(), so the directory stays single-copy.
  EXPECT_EQ(tier.stats().records_appended, 1u);
}

}  // namespace
