#pragma once
// PersistentCache: the disk-backed second tier of EvalCache.
//
// Construction loads every *.upaseg file in the directory (sorted by
// name, so replay order is deterministic), decodes each record through
// the codec registry, and seeds the in-memory shards -- a restarted
// process starts warm. The instance then installs itself as the
// cache's insert sink, so every freshly computed value is
// write-behind-appended to a per-process active segment; a key already
// persisted (loaded from disk or appended earlier) is never appended
// twice, so re-running the same workload against the same directory
// leaves it the same size.
//
// Free functions export_segment_blob / import_segment_blob carry the
// same segment bytes over the wire: `cache export` on a warm replica
// plus `cache import` on a freshly restarted one is the farm's
// warm-transfer path (dispatch::run_farm_experiment drives it).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/segment.hpp"

namespace upa::cache {

struct PersistStats {
  std::size_t segments_loaded = 0;
  std::size_t segments_rejected = 0;  ///< version/tag mismatch, unreadable
  std::uint64_t records_replayed = 0;  ///< decoded and seeded into memory
  std::uint64_t records_skipped_crc = 0;
  std::uint64_t records_skipped_decode = 0;  ///< unknown tag / bad payload
  std::uint64_t records_appended = 0;  ///< written to the active segment
  std::uint64_t write_errors = 0;  ///< appends lost to I/O failure
};

struct ImportStats {
  bool segment_rejected = false;
  std::uint64_t records_seeded = 0;     ///< new in-memory entries
  std::uint64_t records_duplicate = 0;  ///< key was already in memory
  std::uint64_t records_skipped = 0;    ///< CRC or decode failures
  std::uint64_t records_appended = 0;   ///< persisted to the active segment
};

class PersistentCache final : public CacheSink {
 public:
  /// Creates `directory` when missing, pre-warms `cache` from its
  /// segments, and installs itself as the cache's sink. Throws
  /// ModelError when the directory cannot be created or listed.
  PersistentCache(EvalCache& cache, std::string directory);
  ~PersistentCache() override;

  void on_insert(const CacheKey& key, const StoredValue& value) override;

  /// Decodes a segment blob (the `cache import` RPC payload), seeds the
  /// cache, and appends previously unseen records to the active segment
  /// so the imported warmth survives the NEXT restart too.
  ImportStats import_blob(std::string_view segment_bytes);

  [[nodiscard]] PersistStats stats() const;
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

 private:
  void load_directory();
  /// Seeds one decoded record; returns false on decode failure.
  bool seed_record(const SegmentRecord& record, bool* inserted);
  void append_record(const std::string& type_tag,
                     const std::string& key_bytes,
                     const std::string& value_bytes);

  EvalCache& cache_;
  std::string directory_;

  mutable std::mutex mutex_;
  std::unique_ptr<SegmentFile> active_;  // created lazily on first append
  std::unordered_set<std::string> persisted_keys_;
  PersistStats stats_;
};

/// Serializes every completed in-memory entry that has a registered
/// codec into one segment blob (the `cache export` RPC payload).
struct ExportStats {
  std::uint64_t records = 0;
  std::uint64_t skipped_no_codec = 0;
};
[[nodiscard]] std::string export_segment_blob(EvalCache& cache,
                                              ExportStats* stats = nullptr);

/// Seeds `cache` from a segment blob without touching any disk tier
/// (the import path of a replica running without --cache-dir).
ImportStats import_segment_blob(EvalCache& cache,
                                std::string_view segment_bytes);

/// Attaches the process-global persistence tier (what --cache-dir
/// does): pre-warms cache::global() from `directory` and write-behinds
/// its inserts there for the rest of the process lifetime. Idempotent
/// for the same directory; throws ModelError when already attached to a
/// different one.
PersistentCache& attach_global_persistence(const std::string& directory);

/// The attached tier, or nullptr when the process runs memory-only.
[[nodiscard]] PersistentCache* global_persistence() noexcept;

}  // namespace upa::cache
