#include "upa/cache/persist.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <vector>

#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"

namespace upa::cache {

namespace fs = std::filesystem;

PersistentCache::PersistentCache(EvalCache& cache, std::string directory)
    : cache_(cache), directory_(std::move(directory)) {
  UPA_REQUIRE(!directory_.empty(), "cache directory must be non-empty");
  std::error_code ec;
  fs::create_directories(directory_, ec);
  UPA_REQUIRE(!ec, "cannot create cache directory '" + directory_ +
                       "': " + ec.message());
  load_directory();
  cache_.set_sink(this);
}

PersistentCache::~PersistentCache() { cache_.set_sink(nullptr); }

void PersistentCache::load_directory() {
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::directory_iterator it(directory_, ec), end;
       !ec && it != end; it.increment(ec)) {
    const fs::path& path = it->path();
    if (path.extension() == kSegmentExtension) {
      paths.push_back(path.string());
    }
  }
  UPA_REQUIRE(!ec, "cannot list cache directory '" + directory_ +
                       "': " + ec.message());
  std::sort(paths.begin(), paths.end());

  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& path : paths) {
    SegmentLoadStats file_stats;
    load_segment_file(path, file_stats, [&](SegmentRecord&& record) {
      bool inserted = false;
      if (seed_record(record, &inserted)) {
        ++stats_.records_replayed;
        persisted_keys_.insert(record.key_bytes);
      } else {
        ++stats_.records_skipped_decode;
      }
    });
    stats_.segments_loaded += file_stats.segments_loaded;
    stats_.segments_rejected += file_stats.segments_rejected;
    stats_.records_skipped_crc += file_stats.records_skipped_crc;
  }
}

bool PersistentCache::seed_record(const SegmentRecord& record,
                                  bool* inserted) {
  const ValueCodec* codec = codec_for_tag(record.type_tag);
  if (codec == nullptr) return false;
  CacheKey key;
  key.bytes = record.key_bytes;
  key.digest = key_digest(key.bytes);
  try {
    key.solver_id = solver_id_from_key_bytes(key.bytes);
    StoredValue value = codec->deserialize(record.value_bytes);
    *inserted = cache_.seed(key, std::move(value));
  } catch (const common::ModelError&) {
    return false;
  }
  return true;
}

void PersistentCache::append_record(const std::string& type_tag,
                                    const std::string& key_bytes,
                                    const std::string& value_bytes) {
  // Callers hold mutex_. The active segment is named after the process
  // so concurrent processes sharing a directory never clobber each
  // other's file; a suffix probe handles pid reuse across runs.
  try {
    if (active_ == nullptr) {
      const std::string stem =
          directory_ + "/segment-p" + std::to_string(::getpid());
      std::string path = stem + std::string(kSegmentExtension);
      for (int n = 1; fs::exists(path); ++n) {
        path = stem + "-" + std::to_string(n) +
               std::string(kSegmentExtension);
      }
      active_ = std::make_unique<SegmentFile>(path);
    }
    active_->append(SegmentRecord{type_tag, key_bytes, value_bytes});
    ++stats_.records_appended;
  } catch (const std::exception&) {
    // An unwritable tier must never take the workload down; the value
    // stays cached in memory and simply will not survive a restart.
    ++stats_.write_errors;
  }
}

void PersistentCache::on_insert(const CacheKey& key,
                                const StoredValue& value) {
  const ValueCodec* codec = codec_for_type(*value.type);
  if (codec == nullptr) return;  // unknown type: memory-only
  std::lock_guard<std::mutex> lock(mutex_);
  if (!persisted_keys_.insert(key.bytes).second) return;  // already on disk
  append_record(std::string(codec->type_tag), key.bytes,
                codec->serialize(value.value.get()));
}

ImportStats PersistentCache::import_blob(std::string_view segment_bytes) {
  ImportStats import;
  SegmentLoadStats blob_stats;
  std::lock_guard<std::mutex> lock(mutex_);
  const bool accepted =
      load_segment_bytes(segment_bytes, blob_stats,
                         [&](SegmentRecord&& record) {
                           bool inserted = false;
                           if (!seed_record(record, &inserted)) {
                             ++import.records_skipped;
                             ++stats_.records_skipped_decode;
                             return;
                           }
                           ++stats_.records_replayed;
                           if (inserted) {
                             ++import.records_seeded;
                           } else {
                             ++import.records_duplicate;
                           }
                           if (persisted_keys_.insert(record.key_bytes)
                                   .second) {
                             const std::uint64_t before =
                                 stats_.records_appended;
                             append_record(record.type_tag,
                                           record.key_bytes,
                                           record.value_bytes);
                             import.records_appended +=
                                 stats_.records_appended - before;
                           }
                         });
  import.segment_rejected = !accepted;
  import.records_skipped += blob_stats.records_skipped_crc;
  stats_.records_skipped_crc += blob_stats.records_skipped_crc;
  if (!accepted) ++stats_.segments_rejected;
  return import;
}

PersistStats PersistentCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string export_segment_blob(EvalCache& cache, ExportStats* stats) {
  ExportStats local;
  std::string blob = segment_header();
  for (const EvalCache::SnapshotEntry& entry : cache.snapshot()) {
    const ValueCodec* codec = codec_for_type(*entry.value.type);
    if (codec == nullptr) {
      ++local.skipped_no_codec;
      continue;
    }
    blob += encode_record(SegmentRecord{
        std::string(codec->type_tag), entry.key_bytes,
        codec->serialize(entry.value.value.get())});
    ++local.records;
  }
  if (stats != nullptr) *stats = local;
  return blob;
}

ImportStats import_segment_blob(EvalCache& cache,
                                std::string_view segment_bytes) {
  ImportStats import;
  SegmentLoadStats blob_stats;
  const bool accepted = load_segment_bytes(
      segment_bytes, blob_stats, [&](SegmentRecord&& record) {
        const ValueCodec* codec = codec_for_tag(record.type_tag);
        if (codec == nullptr) {
          ++import.records_skipped;
          return;
        }
        CacheKey key;
        key.bytes = std::move(record.key_bytes);
        key.digest = key_digest(key.bytes);
        try {
          key.solver_id = solver_id_from_key_bytes(key.bytes);
          StoredValue value = codec->deserialize(record.value_bytes);
          if (cache.seed(key, std::move(value))) {
            ++import.records_seeded;
          } else {
            ++import.records_duplicate;
          }
        } catch (const common::ModelError&) {
          ++import.records_skipped;
        }
      });
  import.segment_rejected = !accepted;
  import.records_skipped += blob_stats.records_skipped_crc;
  return import;
}

namespace {
std::mutex g_persist_mutex;
std::unique_ptr<PersistentCache> g_persist_owner;
std::atomic<PersistentCache*> g_persist{nullptr};
}  // namespace

PersistentCache& attach_global_persistence(const std::string& directory) {
  std::lock_guard<std::mutex> lock(g_persist_mutex);
  if (g_persist_owner != nullptr) {
    UPA_REQUIRE(g_persist_owner->directory() == directory,
                "cache persistence is already attached to '" +
                    g_persist_owner->directory() +
                    "'; cannot re-attach to '" + directory + "'");
    return *g_persist_owner;
  }
  g_persist_owner =
      std::make_unique<PersistentCache>(global(), directory);
  g_persist.store(g_persist_owner.get(), std::memory_order_release);
  return *g_persist_owner;
}

PersistentCache* global_persistence() noexcept {
  return g_persist.load(std::memory_order_acquire);
}

}  // namespace upa::cache
