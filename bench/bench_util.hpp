#pragma once
// Shared plumbing for the reproduction harnesses. Every bench binary
// first prints the paper artifact it regenerates (table rows / figure
// series, paper value vs reproduced value where applicable), then runs
// google-benchmark timings of the underlying kernels.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "upa/common/table.hpp"
#include "upa/ta/params.hpp"

namespace upa::bench {

/// Paper configuration shortcuts.
[[nodiscard]] inline ta::TaParameters paper_params(std::size_t n_reservation) {
  return ta::TaParameters::paper_defaults().with_reservation_systems(
      n_reservation);
}

namespace detail {

/// Splits a one-level JSON object ("{ "k": <raw>, ... }") into its
/// (key, raw value text) pairs in file order. The scanner is
/// string-aware (escapes included) and depth-counting, which is all the
/// structure the bench files use -- there is no JSON library in the
/// toolchain to lean on. Malformed input yields whatever prefix parsed
/// cleanly, which for a bench artifact means the file gets rewritten.
inline std::vector<std::pair<std::string, std::string>> json_sections(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> sections;
  std::size_t i = text.find('{');
  if (i == std::string::npos) return sections;
  ++i;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
            text[i] == '\r' || text[i] == ','))
      ++i;
  };
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] != '"') break;
    std::string key;
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) key.push_back(text[i++]);
      key.push_back(text[i++]);
    }
    if (i >= text.size()) break;
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') break;
    ++i;
    skip_ws();
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    while (i < text.size()) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\')
          ++i;
        else if (c == '"')
          in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
      ++i;
    }
    std::size_t value_end = i;
    while (value_end > value_start &&
           (text[value_end - 1] == ' ' || text[value_end - 1] == '\n' ||
            text[value_end - 1] == '\t' || text[value_end - 1] == '\r'))
      --value_end;
    sections.emplace_back(std::move(key),
                          text.substr(value_start, value_end - value_start));
  }
  return sections;
}

}  // namespace detail

/// Writes (or updates) one named section of a flat JSON benchmark
/// artifact such as BENCH_parallel.json. Existing sections written by
/// other bench binaries are preserved; a section with the same name is
/// replaced in place, a new one is appended -- so the fig11 and
/// injection harnesses can each contribute their own timings to the
/// same file in any order.
inline void write_bench_json(
    const std::string& path, const std::string& section,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      sections = detail::json_sections(buf.str());
    }
  }

  std::ostringstream body;
  body << "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) body << ",";
    body << "\n    \"" << fields[i].first << "\": "
         << std::setprecision(std::numeric_limits<double>::max_digits10)
         << fields[i].second;
  }
  body << "\n  }";

  bool replaced = false;
  for (auto& [name, raw] : sections) {
    if (name == section) {
      raw = body.str();
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, body.str());

  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out << "  \"" << sections[i].first << "\": " << sections[i].second
        << (i + 1 < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

/// Wall-clock seconds spent in fn().
template <typename Fn>
[[nodiscard]] inline double wall_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline void print_header(const char* artifact, const char* description) {
  std::cout << "==============================================================="
               "=\n"
            << "Reproduction of " << artifact << "\n"
            << description << "\n"
            << "==============================================================="
               "=\n\n";
}

}  // namespace upa::bench

/// Prints the reproduction output, then runs registered benchmarks.
#define UPA_BENCH_MAIN(print_fn)                      \
  int main(int argc, char** argv) {                   \
    print_fn();                                       \
    benchmark::Initialize(&argc, argv);               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();              \
    benchmark::Shutdown();                            \
    return 0;                                         \
  }
