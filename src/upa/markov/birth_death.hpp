#pragma once
// Birth-death processes in closed form. Both the paper's web-farm
// availability chains (Figures 9/10 restricted to operational states) and
// every M/M/c/K queue are birth-death chains, so this module provides the
// product-form steady state once and the other modules specialize it.

#include <cstddef>
#include <vector>

#include "upa/linalg/matrix.hpp"
#include "upa/markov/ctmc.hpp"

namespace upa::markov {

/// A finite birth-death chain on states 0..n with per-state birth rates
/// b[i] (i -> i+1, size n) and death rates d[i] (i+1 -> i, size n).
class BirthDeath {
 public:
  BirthDeath(std::vector<double> birth_rates, std::vector<double> death_rates);

  [[nodiscard]] std::size_t state_count() const noexcept {
    return birth_.size() + 1;
  }

  /// Product-form steady state: pi[i] proportional to
  /// prod_{k<i} b[k]/d[k], normalized (computed in log domain for
  /// robustness against the huge rate ratios of availability models).
  [[nodiscard]] linalg::Vector steady_state() const;

  /// The same chain as an explicit CTMC (for cross-checking solvers).
  [[nodiscard]] Ctmc to_ctmc() const;

 private:
  std::vector<double> birth_;
  std::vector<double> death_;
};

}  // namespace upa::markov
