#include "upa/linalg/iterative.hpp"

#include <cmath>
#include <string>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::linalg {
namespace {

double update_norm(const Vector& a, const Vector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

[[noreturn]] void fail(const char* algo, std::size_t iters, double residual,
                       const IterativeOptions& options, std::size_t unknowns) {
  throw upa::common::ConvergenceError(
      std::string(algo) + " did not converge after " + std::to_string(iters) +
          " iterations on " + std::to_string(unknowns) +
          " unknowns: final update norm " + std::to_string(residual) +
          " is above the tolerance " + std::to_string(options.tolerance) +
          " (raise max_iterations or loosen the tolerance)",
      iters, residual);
}

/// Applies IterativeOptions::initial_guess over `fallback` (the solver's
/// historical flat start). An empty guess keeps the fallback bit for bit;
/// a sized guess must match the system.
Vector starting_vector(const IterativeOptions& options, Vector fallback,
                       const char* algo) {
  if (options.initial_guess.empty()) return fallback;
  UPA_REQUIRE(options.initial_guess.size() == fallback.size(),
              std::string(algo) + ": initial guess has " +
                  std::to_string(options.initial_guess.size()) +
                  " entries but the system has " +
                  std::to_string(fallback.size()));
  return options.initial_guess;
}

}  // namespace

IterativeResult power_iteration(const SparseMatrix& p,
                                const IterativeOptions& options) {
  UPA_REQUIRE(p.rows() == p.cols(), "power iteration needs a square matrix");
  const std::size_t n = p.rows();
  Vector pi = starting_vector(
      options, Vector(n, 1.0 / static_cast<double>(n)), "power_iteration");
  if (!options.initial_guess.empty()) upa::common::normalize(pi);
  double residual = 0.0;
  std::vector<double> history;
  for (std::size_t it = 1; it <= options.max_iterations; ++it) {
    Vector next = p.left_multiply(pi);
    upa::common::normalize(next);
    residual = update_norm(next, pi);
    pi = std::move(next);
    if (options.record_residual_history) history.push_back(residual);
    if (residual <= options.tolerance) {
      return {std::move(pi), it, residual, std::move(history)};
    }
  }
  fail("power_iteration", options.max_iterations, residual, options, n);
}

IterativeResult gauss_seidel(const SparseMatrix& a, const Vector& b,
                             const IterativeOptions& options) {
  UPA_REQUIRE(a.rows() == a.cols(), "gauss_seidel needs a square matrix");
  UPA_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();
  Vector x = starting_vector(options, Vector(n, 0.0), "gauss_seidel");
  double residual = 0.0;
  std::vector<double> history;
  for (std::size_t it = 1; it <= options.max_iterations; ++it) {
    double max_update = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const auto cols = a.row_cols(r);
      const auto vals = a.row_values(r);
      double sum = b[r];
      double diag = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == r) {
          diag = vals[k];
        } else {
          sum -= vals[k] * x[cols[k]];
        }
      }
      UPA_REQUIRE(diag != 0.0,
                  "gauss_seidel: zero diagonal at row " + std::to_string(r));
      const double next = sum / diag;
      max_update = std::max(max_update, std::abs(next - x[r]));
      x[r] = next;
    }
    residual = max_update;
    if (options.record_residual_history) history.push_back(residual);
    if (residual <= options.tolerance) {
      return {std::move(x), it, residual, std::move(history)};
    }
  }
  fail("gauss_seidel", options.max_iterations, residual, options, n);
}

IterativeResult jacobi(const SparseMatrix& a, const Vector& b,
                       const IterativeOptions& options) {
  UPA_REQUIRE(a.rows() == a.cols(), "jacobi needs a square matrix");
  UPA_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();
  Vector x = starting_vector(options, Vector(n, 0.0), "jacobi");
  Vector next(n, 0.0);
  double residual = 0.0;
  std::vector<double> history;
  for (std::size_t it = 1; it <= options.max_iterations; ++it) {
    for (std::size_t r = 0; r < n; ++r) {
      const auto cols = a.row_cols(r);
      const auto vals = a.row_values(r);
      double sum = b[r];
      double diag = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == r) {
          diag = vals[k];
        } else {
          sum -= vals[k] * x[cols[k]];
        }
      }
      UPA_REQUIRE(diag != 0.0,
                  "jacobi: zero diagonal at row " + std::to_string(r));
      next[r] = sum / diag;
    }
    residual = update_norm(next, x);
    x.swap(next);
    if (options.record_residual_history) history.push_back(residual);
    if (residual <= options.tolerance) {
      return {std::move(x), it, residual, std::move(history)};
    }
  }
  fail("jacobi", options.max_iterations, residual, options, n);
}

}  // namespace upa::linalg
