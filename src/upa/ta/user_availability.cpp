#include "upa/ta/user_availability.hpp"

#include "upa/common/error.hpp"
#include "upa/ta/model_builder.hpp"
#include "upa/ta/services.hpp"

namespace upa::ta {

double user_availability_eq10(UserClass uc, const TaParameters& p) {
  const ServiceAvailabilities s = compute_services(p);
  const profile::ScenarioSet table = scenario_table(uc);

  // Accumulate the per-category scenario masses of Table 1.
  double pi_sc1_home_only = 0.0;   // pi_1
  double pi_sc1_browse = 0.0;      // pi_2 + pi_3 (Browse invoked)
  double pi_search_no_pay = 0.0;   // pi_4..pi_9
  double pi_pay = 0.0;             // pi_10..pi_12
  for (const profile::ScenarioClass& sc : table.scenarios()) {
    switch (category_of(sc)) {
      case ScenarioCategory::kSC1:
        if (sc.functions.contains(function_index(TaFunction::kBrowse))) {
          pi_sc1_browse += sc.probability;
        } else {
          pi_sc1_home_only += sc.probability;
        }
        break;
      case ScenarioCategory::kSC2:
      case ScenarioCategory::kSC3:
        pi_search_no_pay += sc.probability;
        break;
      case ScenarioCategory::kSC4:
        pi_pay += sc.probability;
        break;
    }
  }

  const double browse_bracket =
      p.q23 + s.application * (p.q24 * p.q45 + p.q24 * p.q47 * s.database);
  const double search_factor =
      s.application * s.database * s.flight * s.hotel * s.car;
  return s.net * s.lan * s.web *
         (pi_sc1_home_only + pi_sc1_browse * browse_bracket +
          search_factor * (pi_search_no_pay + pi_pay * s.payment));
}

double user_availability_hierarchical(UserClass uc, const TaParameters& p) {
  return build_user_model(uc, p).user_availability();
}

CategoryBreakdown category_breakdown(UserClass uc, const TaParameters& p) {
  const core::UserLevelModel model = build_user_model(uc, p);
  const std::vector<double> contributions =
      model.unavailability_contributions();
  const auto& scenarios = model.scenarios().scenarios();
  UPA_ASSERT(contributions.size() == scenarios.size());

  CategoryBreakdown breakdown;
  breakdown.unavailability = {
      {ScenarioCategory::kSC1, 0.0},
      {ScenarioCategory::kSC2, 0.0},
      {ScenarioCategory::kSC3, 0.0},
      {ScenarioCategory::kSC4, 0.0},
  };
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    breakdown.unavailability[category_of(scenarios[i])] += contributions[i];
    breakdown.total_unavailability += contributions[i];
  }
  return breakdown;
}

}  // namespace upa::ta
