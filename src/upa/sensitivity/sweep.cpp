#include "upa/sensitivity/sweep.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::sensitivity {

Series sweep(std::string label, const std::vector<double>& xs,
             const std::function<double(double)>& measure) {
  UPA_REQUIRE(measure != nullptr, "measure must be provided");
  UPA_REQUIRE(!xs.empty(), "sweep needs at least one point");
  Series s;
  s.label = std::move(label);
  s.x = xs;
  s.y.reserve(xs.size());
  for (double x : xs) s.y.push_back(measure(x));
  return s;
}

std::vector<Series> sweep_family(
    const std::vector<double>& xs, const std::vector<double>& series_params,
    const std::vector<std::string>& series_labels,
    const std::function<double(double, double)>& measure) {
  UPA_REQUIRE(measure != nullptr, "measure must be provided");
  UPA_REQUIRE(series_params.size() == series_labels.size(),
              "one label per series parameter required");
  std::vector<Series> family;
  family.reserve(series_params.size());
  for (std::size_t i = 0; i < series_params.size(); ++i) {
    const double p = series_params[i];
    family.push_back(sweep(series_labels[i], xs,
                           [&measure, p](double x) { return measure(x, p); }));
  }
  return family;
}

double derivative_at(const std::function<double(double)>& measure, double x,
                     double relative_step) {
  UPA_REQUIRE(measure != nullptr, "measure must be provided");
  UPA_REQUIRE(relative_step > 0.0, "step must be positive");
  const double h = std::abs(x) > 0.0 ? std::abs(x) * relative_step
                                     : relative_step;
  return (measure(x + h) - measure(x - h)) / (2.0 * h);
}

std::ptrdiff_t first_increase(const Series& series) {
  for (std::size_t i = 1; i < series.y.size(); ++i) {
    if (series.y[i] > series.y[i - 1]) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

}  // namespace upa::sensitivity
