#pragma once
// Output analysis for simulations: Welford online moments, time-weighted
// averages (for availability = fraction of time up), and replication
// statistics with Student-t confidence intervals.

#include <cstddef>
#include <vector>

namespace upa::sim {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Integrates a piecewise-constant signal over time; time_average() is the
/// integral divided by the observation span (e.g. availability when the
/// signal is the 0/1 "system up" indicator).
class TimeWeightedStats {
 public:
  explicit TimeWeightedStats(double start_time = 0.0,
                             double initial_value = 0.0);

  /// Records that the signal changed to `value` at time `t` (>= last t).
  void update(double t, double value);

  /// Closes the observation window at time `t` and returns the average.
  [[nodiscard]] double time_average(double end_time) const;

 private:
  double last_time_;
  double value_;
  double integral_ = 0.0;
  double start_time_;
};

/// A (low, high) confidence interval.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double low = 0.0;
  double high = 0.0;

  [[nodiscard]] bool contains(double value) const noexcept {
    return value >= low && value <= high;
  }
};

/// Two-sided Student-t critical value for the given degrees of freedom at
/// confidence `level` in {0.90, 0.95, 0.99} (interpolated table; normal
/// approximation beyond 120 dof).
[[nodiscard]] double student_t_critical(std::size_t dof, double level);

/// Confidence interval over independent replications.
[[nodiscard]] ConfidenceInterval confidence_interval(
    const std::vector<double>& replications, double level = 0.95);

}  // namespace upa::sim
