#pragma once
// The Observer bundles one tracer and one metrics registry and is what
// instrumented code takes a (non-owning) pointer to: EndToEndOptions,
// StationaryOptions, MonteCarloOptions, CampaignOptions all carry an
// `obs::Observer*` that defaults to nullptr. With no observer attached
// every hook reduces to a null-pointer test, and instrumented runs are
// guaranteed to replay the exact RNG draw sequence of uninstrumented
// ones (pinned in tests/test_obs.cpp): hooks record, they never draw.

#include <string>

#include "upa/obs/metrics.hpp"
#include "upa/obs/trace.hpp"

namespace upa::obs {

/// How deep into the paper's hierarchy the end-to-end simulator traces.
/// Metrics and solver/engine spans are always recorded when an observer
/// is attached; this level only gates the per-session span volume.
enum class TraceLevel {
  kOff,         ///< metrics only, no session spans
  kSession,     ///< one span per user session
  kInvocation,  ///< + one span per function invocation
  kService,     ///< + one span per service consulted per attempt
};

[[nodiscard]] std::string trace_level_name(TraceLevel level);

/// Parses "off" | "session" | "invocation" | "service"; throws ModelError
/// on anything else (with the valid list in the message).
[[nodiscard]] TraceLevel trace_level_from_name(const std::string& name);

struct Observer {
  TraceLevel trace_level = TraceLevel::kSession;
  MetricsRegistry metrics;
  Tracer tracer;

  [[nodiscard]] bool wants(TraceLevel needed) const noexcept {
    return static_cast<int>(trace_level) >= static_cast<int>(needed);
  }

  /// A fresh observer for one parallel worker: same trace level, same
  /// span cap, same wall epoch, empty tables. Workers record into their
  /// shard without synchronization; the parent absorbs the shards back
  /// in a fixed order (replication index, campaign-plan index), which
  /// makes the merged tables identical at every thread count -- and
  /// identical to a serial run.
  [[nodiscard]] Observer make_shard() const;

  /// Folds one shard back in: counters and histograms add, gauges take
  /// the shard's last write, spans are renumbered and appended in call
  /// order with capacity and dropped-span accounting preserved.
  void absorb(Observer&& shard);
};

}  // namespace upa::obs
