#pragma once
// End-to-end "measurement" of the travel agency: simulate the physical
// resources (two-state components, the coverage-aware web farm) over a
// long horizon, then run user sessions through the operational profile at
// real timestamps with think times between function invocations.
//
// With instantaneous sessions this reproduces eq. (10) (every invocation
// sees the same resource snapshot). With realistic think times the
// invocations decorrelate, testing the paper's implicit frozen-state-per-
// session assumption -- an experiment the analytic model cannot run.

#include <cstdint>

#include "upa/sim/stats.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::ta {

/// Controls for the end-to-end simulation. Time unit: hours.
struct EndToEndOptions {
  double horizon_hours = 50000.0;
  /// Mean think time between consecutive function invocations within a
  /// session (exponential); 0 = instantaneous sessions (eq. 10 regime).
  double think_time_hours = 0.0;
  /// Repair rate assumed for the black-box resources whose availability
  /// (not dynamics) Table 7 specifies; their failure rate is derived as
  /// mu (1 - A) / A.
  double black_box_repair_rate = 1.0;
  std::uint64_t sessions_per_replication = 40000;
  std::size_t replications = 6;
  std::uint64_t seed = 42;
  double confidence_level = 0.95;
};

/// Results of the end-to-end measurement.
struct EndToEndResult {
  sim::ConfidenceInterval perceived_availability;
  /// Observed time-average availability of the web farm trajectory
  /// (diagnostic: should approach the analytic A(WS)).
  double observed_web_service_availability = 0.0;
  double mean_session_duration_hours = 0.0;
};

/// Runs the measurement for one user class under the given parameters.
[[nodiscard]] EndToEndResult simulate_end_to_end(
    UserClass uclass, const TaParameters& params,
    const EndToEndOptions& options = {});

}  // namespace upa::ta
