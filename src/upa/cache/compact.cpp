#include "upa/cache/compact.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <system_error>
#include <unordered_set>

#include "upa/cache/index.hpp"
#include "upa/cache/segment.hpp"
#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"

namespace upa::cache {

namespace fs = std::filesystem;

CompactionStats compact_segments(
    const std::vector<std::string>& segment_paths,
    const std::string& output_path, const CompactionOptions& options) {
  CompactionStats stats;
  if (segment_paths.empty()) return stats;
  stats.performed = true;
  stats.output_path = output_path;

  const std::string tmp = output_path + ".tmp";
  std::vector<std::string> rejected;
  {
    SegmentFile out(tmp);  // throws when the directory is unwritable
    std::unordered_set<std::string> seen;
    for (const std::string& path : segment_paths) {
      ++stats.segments_in;
      const MappedFile file(path);
      stats.bytes_in += file.size();
      SegmentLoadStats file_stats;
      const bool accepted = load_segment_mapped(
          file, file_stats, [&](SegmentRecord&& record) {
            if (options.gc &&
                codec_for_tag(record.type_tag) == nullptr) {
              ++stats.records_dropped_unknown_tag;
              return;
            }
            if (!seen.insert(record.key_bytes).second) {
              ++stats.records_dropped_duplicate;
              return;
            }
            out.append(record);
            ++stats.records_kept;
          });
      stats.records_in +=
          file_stats.records_loaded + file_stats.records_skipped_crc;
      stats.records_dropped_crc += file_stats.records_skipped_crc;
      if (!accepted) {
        ++stats.segments_rejected;
        rejected.push_back(path);
      }
    }
  }  // seal the output before the rename

  std::error_code ec;
  UPA_REQUIRE(std::rename(tmp.c_str(), output_path.c_str()) == 0,
              "cannot move compacted segment into place at '" +
                  output_path + "'");
  stats.bytes_out = fs::file_size(output_path, ec);
  if (ec) stats.bytes_out = 0;

  // Index the merged segment now so the next attach is O(index load).
  {
    const MappedFile merged(output_path);
    (void)load_or_build_index(output_path, merged);
  }

  if (!options.keep_inputs) {
    for (const std::string& path : segment_paths) {
      // A rejected (wrong-generation) input is only deleted under GC;
      // plain compaction leaves it for a build that can still read it.
      const bool was_rejected =
          std::find(rejected.begin(), rejected.end(), path) !=
          rejected.end();
      if (was_rejected && !options.gc) continue;
      if (fs::remove(path, ec)) ++stats.segments_removed;
      fs::remove(index_path_for(path), ec);  // sidecar, best-effort
    }
  }
  return stats;
}

CompactionStats compact_directory(const std::string& directory,
                                  const CompactionOptions& options) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::directory_iterator it(directory, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& path = it->path();
    if (path.extension() == kSegmentExtension) {
      paths.push_back(path.string());
    }
  }
  UPA_REQUIRE(!ec, "cannot list cache directory '" + directory +
                       "': " + ec.message());
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) return CompactionStats{};
  return compact_segments(paths, next_compact_path(directory), options);
}

std::string next_compact_path(const std::string& directory) {
  unsigned next = 1;
  std::error_code ec;
  for (fs::directory_iterator it(directory, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (!name.starts_with("compact-")) continue;
    const unsigned n =
        static_cast<unsigned>(std::atoi(name.c_str() + 8));
    if (n >= next) next = n + 1;
  }
  char buf[16];
  std::snprintf(buf, sizeof buf, "%06u", next);
  return directory + "/compact-" + buf +
         std::string(kSegmentExtension);
}

}  // namespace upa::cache
