// upa_dispatch: health-checked, retrying front end for a farm of
// upa_served replicas.
//
// Hosts upa::dispatch::Front -- same newline-delimited JSON RPC wire
// protocol as upa_served, fanned out over --upstreams with a pluggable
// balancing policy, active ping health checks, and bounded failover
// retries -- until SIGINT/SIGTERM, then drains and prints per-upstream
// counters. See docs/modeling-guide.md ("Serving & load generation").

#include <csignal>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "upa/cli/args.hpp"
#include "upa/common/error.hpp"
#include "upa/dispatch/front.hpp"
#include "upa/obs/observer.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void on_signal(int) { g_stop_requested = 1; }

void print_usage(std::ostream& os) {
  os << "usage: upa_dispatch --upstreams HOST:PORT[,HOST:PORT...] "
        "[options]\n"
        "\n"
        "Front end for N upa_served replicas: forwards each request line\n"
        "verbatim to one upstream, retries 503/504/transport failures on\n"
        "a different replica (bounded budget, exponential backoff +\n"
        "jitter), and ejects/readmits upstreams via periodic ping\n"
        "probes. Serves `dispatch_stats` locally; everything else is\n"
        "forwarded byte-for-byte. SIGINT/SIGTERM drains and exits 0.\n"
        "\n"
        "options:\n"
        "  --upstreams LIST        comma-separated host:port replicas\n"
        "                          (required)\n"
        "  --bind ADDR             bind address     (default 127.0.0.1)\n"
        "  --port N                TCP port, 0 = ephemeral (default 7070)\n"
        "  --policy NAME           round-robin | least-outstanding |\n"
        "                          consistent-hash (default\n"
        "                          least-outstanding)\n"
        "  --workers N             forwarding threads (default 16)\n"
        "  --max-clients N         admitted client connections\n"
        "                          (default 256)\n"
        "  --read-timeout S        client idle timeout (default 10)\n"
        "  --connect-timeout S     per-attempt upstream connect timeout\n"
        "                          (default 1)\n"
        "  --call-timeout S        per-attempt upstream response timeout\n"
        "                          (default 10)\n"
        "  --retries N             attempt budget per request, first try\n"
        "                          included (default 3)\n"
        "  --backoff-ms MS         initial retry backoff (default 5)\n"
        "  --backoff-max-ms MS     backoff ceiling (default 50)\n"
        "  --jitter F              backoff jitter fraction in [0,1]\n"
        "                          (default 0.5)\n"
        "  --probe-interval S      health probe period (default 0.2)\n"
        "  --probe-timeout S       health probe timeout (default 1)\n"
        "  --unhealthy-threshold N consecutive probe failures to eject\n"
        "                          (default 2)\n"
        "  --healthy-threshold N   consecutive probe successes to\n"
        "                          readmit (default 1)\n"
        "  --trace                 record dispatch_request/attempt spans\n"
        "                          and propagate trace contexts upstream\n"
        "  --process NAME          telemetry process label\n"
        "                          (default upa_dispatch:<port>)\n"
        "  --help                  this text\n";
}

const std::vector<std::string> kAllowedOptions = {
    "upstreams",       "bind",
    "port",            "policy",
    "workers",         "max-clients",
    "read-timeout",    "connect-timeout",
    "call-timeout",    "retries",
    "backoff-ms",      "backoff-max-ms",
    "jitter",          "probe-interval",
    "probe-timeout",   "unhealthy-threshold",
    "healthy-threshold", "trace",
    "process",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  cli::Args args(argc, argv);
  if (args.has("help") || args.command() == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (!args.command().empty()) {
    std::cerr << "upa_dispatch: unexpected positional argument '"
              << args.command() << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  // Allowlist check before any side effects: a typo'd flag must not
  // bind a port or start probing upstreams.
  const std::vector<std::string> unknown =
      cli::unknown_options(args, kAllowedOptions);
  if (!unknown.empty()) {
    std::cerr << "upa_dispatch: unknown option '--" << unknown.front()
              << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    dispatch::FrontConfig config;
    const std::string upstreams = args.get("upstreams", "");
    if (upstreams.empty()) {
      std::cerr << "upa_dispatch: --upstreams is required\n\n";
      print_usage(std::cerr);
      return 2;
    }
    config.upstreams = dispatch::parse_upstream_list(upstreams);
    config.bind_address = args.get("bind", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(args.get_size("port", 7070));
    config.policy =
        dispatch::parse_balance_policy(args.get("policy",
                                                "least-outstanding"));
    config.workers = args.get_size("workers", 16);
    config.max_clients = args.get_size("max-clients", 256);
    config.read_timeout_seconds = args.get_double("read-timeout", 10.0);
    config.upstream_connect_timeout_seconds =
        args.get_double("connect-timeout", 1.0);
    config.upstream_call_timeout_seconds =
        args.get_double("call-timeout", 10.0);
    config.retry.max_attempts = args.get_size("retries", 3);
    config.retry.backoff_initial_seconds =
        args.get_double("backoff-ms", 5.0) / 1000.0;
    config.retry.backoff_max_seconds =
        args.get_double("backoff-max-ms", 50.0) / 1000.0;
    config.retry.jitter = args.get_double("jitter", 0.5);
    config.health.probe_interval_seconds =
        args.get_double("probe-interval", 0.2);
    config.health.probe_timeout_seconds =
        args.get_double("probe-timeout", 1.0);
    config.health.unhealthy_threshold =
        args.get_size("unhealthy-threshold", 2);
    config.health.healthy_threshold = args.get_size("healthy-threshold", 1);
    config.trace = args.has("trace");
    config.telemetry_process = args.get("process", "");

    obs::Observer observer;
    config.obs = &observer;

    dispatch::Front front(std::move(config));
    front.start();

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::cout << "upa_dispatch listening on "
              << front.config().bind_address << ":" << front.port()
              << " (policy=" << balance_policy_name(front.config().policy)
              << ", upstreams=" << front.config().upstreams.size()
              << ", retries=" << front.config().retry.max_attempts << ")"
              << std::endl;

    while (g_stop_requested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    std::cout << "upa_dispatch: draining..." << std::endl;
    front.stop();

    const dispatch::FrontStats stats = front.stats();
    std::cout << "upa_dispatch: done. requests=" << stats.requests
              << " ok=" << stats.forwarded_ok
              << " rejected=" << stats.forwarded_rejected
              << " deadline=" << stats.forwarded_deadline
              << " error=" << stats.forwarded_error
              << " transport=" << stats.forwarded_transport
              << " retries=" << stats.retries
              << " failovers=" << stats.failovers
              << " exhausted=" << stats.retries_exhausted << std::endl;
    for (const dispatch::UpstreamSnapshot& u : front.upstreams()) {
      std::cout << "upstream " << u.address.label()
                << (u.healthy ? " [healthy]" : " [ejected]")
                << " attempts=" << u.attempts << " ok=" << u.ok
                << " rejected=" << u.rejected
                << " transport=" << u.transport
                << " ejections=" << u.ejections
                << " readmissions=" << u.readmissions << std::endl;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "upa_dispatch: " << e.what() << "\n";
    return 1;
  }
}
