#pragma once
// Online estimation of the paper's model parameters from a live
// upa_served counter stream. The controller samples the server's
// cumulative counters (via the telemetry `subscribe` channel) and this
// estimator turns consecutive snapshots into the three quantities the
// M/M/i/K planner needs:
//
//   lambda-hat  offered arrival rate  = d(accepted + rejected) / dt
//   nu-hat      per-server service rate = d(handled) / d(busy_seconds)
//   loss-hat    measured rejection fraction = d(rejected) / d(arrivals)
//
// All three are windowed finite differences over a short sliding window
// (robust to the counters being cumulative and to missed ticks), and
// lambda-hat is additionally EWMA-smoothed so a single bursty tick does
// not flap the planner. nu-hat divides handler wall time, not
// end-to-end latency, so queue-wait bias never contaminates the service
// rate (see ServerStats::busy_seconds). The loss estimate carries its
// binomial standard deviation so consumers can tell a real SLO breach
// from small-sample noise.

#include <cstddef>
#include <deque>

namespace upa::control {

/// One cumulative counter snapshot, timestamped by the sampler. All
/// values are monotone nondecreasing across samples from one server run.
struct CounterSample {
  double t = 0.0;             ///< sample time [s], any monotone clock
  double arrivals = 0.0;      ///< cumulative accepted + rejected
  double rejected = 0.0;      ///< cumulative admission rejections (503)
  double handled = 0.0;       ///< cumulative requests that ran a handler
  double busy_seconds = 0.0;  ///< cumulative handler wall time
};

/// Point-in-time estimate. `ready` is false until the window spans
/// enough time to difference; nu falls back to the last observed value
/// (sticky) when the window saw no completions, and to 0 when no
/// completion was ever seen -- consumers must check nu > 0.
struct RateEstimate {
  double lambda = 0.0;         ///< EWMA-smoothed arrival rate [1/s]
  double lambda_window = 0.0;  ///< raw windowed arrival rate [1/s]
  double nu = 0.0;             ///< per-server service rate [1/s]
  double loss = 0.0;           ///< windowed rejection fraction
  double loss_stddev = 0.0;    ///< binomial sigma of `loss`
  double window_seconds = 0.0;
  double window_arrivals = 0.0;
  bool ready = false;
};

class RateEstimator {
 public:
  struct Options {
    /// Sliding window the finite differences span.
    double window_seconds = 2.0;
    /// EWMA half-life for lambda: the old estimate's weight halves
    /// every this many seconds of new evidence.
    double ewma_halflife_seconds = 0.5;
    /// Estimates are not `ready` before the window spans this much.
    double min_window_seconds = 0.5;
  };

  RateEstimator() : RateEstimator(Options{}) {}
  explicit RateEstimator(Options options);

  /// Feeds one snapshot. Samples must arrive in nondecreasing t order;
  /// a sample older than the newest one is dropped.
  void observe(const CounterSample& sample);

  [[nodiscard]] RateEstimate estimate() const;

  /// Forgets all samples and smoothing state (e.g. after the observed
  /// server restarted and its counters reset).
  void reset();

 private:
  Options options_;
  std::deque<CounterSample> window_;
  double lambda_ewma_ = 0.0;
  bool lambda_seeded_ = false;
  double last_nu_ = 0.0;  ///< sticky service rate across idle windows
};

}  // namespace upa::control
