#pragma once
// Segment compaction and garbage collection for the persistent tier.
//
// An append-only directory accumulates one segment per process run plus
// whatever `cache import` replicated in; over months that means many
// files, duplicate keys (the same design point computed by different
// runs), CRC-damaged records, and -- after a solver-stack bump --
// whole segments with a stale version tag. Compaction merges a set of
// segments into one, keeping exactly one record per distinct key:
//
//   - inputs are processed in sorted-name order and records in file
//     order, and the FIRST occurrence of a key wins -- the same replay
//     order PersistentCache::load uses, so a compacted directory seeds
//     byte-for-byte the same values as the original;
//   - records the loader would skip (bad CRC, undecodable payload) are
//     dropped, not copied;
//   - in GC mode, records with an unregistered codec tag and whole
//     segments with a mismatched header are dropped too (a stale
//     generation can never be replayed, so its bytes are pure waste).
//
// Crash safety: the merged segment is written to `<name>.tmp`, flushed,
// renamed into place, and only then are the inputs deleted. A crash in
// between leaves duplicates, which the loader's and the next
// compaction's first-wins rule both tolerate. The output name sorts
// BEFORE the `segment-*` actives ("compact-" < "segment-"), preserving
// oldest-first replay priority for the merged records.

#include <cstdint>
#include <string>
#include <vector>

namespace upa::cache {

struct CompactionOptions {
  /// GC mode: additionally drop records whose codec tag is unknown and
  /// DELETE input segments whose header (magic/version/tag) mismatches.
  bool gc = false;
  /// Keep input files after the merge (inspection / dry runs).
  bool keep_inputs = false;
};

struct CompactionStats {
  bool performed = false;  ///< false when there was nothing to merge
  std::size_t segments_in = 0;
  std::size_t segments_rejected = 0;  ///< header mismatch (GC deletes)
  std::size_t segments_removed = 0;   ///< input files deleted
  std::uint64_t records_in = 0;       ///< records read from inputs
  std::uint64_t records_kept = 0;
  std::uint64_t records_dropped_duplicate = 0;
  std::uint64_t records_dropped_crc = 0;
  std::uint64_t records_dropped_unknown_tag = 0;  ///< GC only
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::string output_path;  ///< empty when !performed

  [[nodiscard]] std::uint64_t records_dropped() const noexcept {
    return records_dropped_duplicate + records_dropped_crc +
           records_dropped_unknown_tag;
  }
};

/// Merges `segment_paths` (already sorted in replay order) into one
/// segment at `output_path` (+ its `.upaidx`), then deletes the inputs
/// and their index sidecars unless options.keep_inputs. Throws
/// ModelError when the output cannot be written.
CompactionStats compact_segments(const std::vector<std::string>& segment_paths,
                                 const std::string& output_path,
                                 const CompactionOptions& options = {});

/// Compacts every `*.upaseg` in `directory` into a fresh
/// `compact-NNNNNN.upaseg` (numbered past any existing compact file).
/// Segments named `segment-p*` belonging to live processes are still
/// merged -- call sites that must spare an active file (the online
/// maintenance pass) use compact_segments with an explicit list.
CompactionStats compact_directory(const std::string& directory,
                                  const CompactionOptions& options = {});

/// The next free `compact-NNNNNN.upaseg` path in `directory`.
[[nodiscard]] std::string next_compact_path(const std::string& directory);

}  // namespace upa::cache
