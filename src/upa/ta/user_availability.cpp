#include "upa/ta/user_availability.hpp"

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/ta/functions.hpp"
#include "upa/ta/model_builder.hpp"
#include "upa/ta/services.hpp"

namespace upa::ta {

double user_availability_eq10(UserClass uc, const TaParameters& p) {
  const ServiceAvailabilities s = compute_services(p);
  const profile::ScenarioSet table = scenario_table(uc);

  // Accumulate the per-category scenario masses of Table 1.
  double pi_sc1_home_only = 0.0;   // pi_1
  double pi_sc1_browse = 0.0;      // pi_2 + pi_3 (Browse invoked)
  double pi_search_no_pay = 0.0;   // pi_4..pi_9
  double pi_pay = 0.0;             // pi_10..pi_12
  for (const profile::ScenarioClass& sc : table.scenarios()) {
    switch (category_of(sc)) {
      case ScenarioCategory::kSC1:
        if (sc.functions.contains(function_index(TaFunction::kBrowse))) {
          pi_sc1_browse += sc.probability;
        } else {
          pi_sc1_home_only += sc.probability;
        }
        break;
      case ScenarioCategory::kSC2:
      case ScenarioCategory::kSC3:
        pi_search_no_pay += sc.probability;
        break;
      case ScenarioCategory::kSC4:
        pi_pay += sc.probability;
        break;
    }
  }

  const double browse_bracket =
      p.q23 + s.application * (p.q24 * p.q45 + p.q24 * p.q47 * s.database);
  const double search_factor =
      s.application * s.database * s.flight * s.hotel * s.car;
  return s.net * s.lan * s.web *
         (pi_sc1_home_only + pi_sc1_browse * browse_bracket +
          search_factor * (pi_search_no_pay + pi_pay * s.payment));
}

double user_availability_eq10_scenarios(
    const profile::ScenarioSet& scenarios, const TaParameters& p) {
  const ServiceAvailabilities s = compute_services(p);

  // Same accumulation as user_availability_eq10, over the supplied set.
  double pi_sc1_home_only = 0.0;
  double pi_sc1_browse = 0.0;
  double pi_search_no_pay = 0.0;
  double pi_pay = 0.0;
  for (const profile::ScenarioClass& sc : scenarios.scenarios()) {
    switch (category_of(sc)) {
      case ScenarioCategory::kSC1:
        if (sc.functions.contains(function_index(TaFunction::kBrowse))) {
          pi_sc1_browse += sc.probability;
        } else {
          pi_sc1_home_only += sc.probability;
        }
        break;
      case ScenarioCategory::kSC2:
      case ScenarioCategory::kSC3:
        pi_search_no_pay += sc.probability;
        break;
      case ScenarioCategory::kSC4:
        pi_pay += sc.probability;
        break;
    }
  }

  const double browse_bracket =
      p.q23 + s.application * (p.q24 * p.q45 + p.q24 * p.q47 * s.database);
  const double search_factor =
      s.application * s.database * s.flight * s.hotel * s.car;
  return s.net * s.lan * s.web *
         (pi_sc1_home_only + pi_sc1_browse * browse_bracket +
          search_factor * (pi_search_no_pay + pi_pay * s.payment));
}

double user_availability_hierarchical(UserClass uc, const TaParameters& p) {
  return build_user_model(uc, p).user_availability();
}

double retry_adjusted_availability(double availability,
                                   std::size_t max_retries,
                                   double abandonment_probability) {
  UPA_REQUIRE(availability >= 0.0 && availability <= 1.0,
              "availability must lie in [0, 1]");
  UPA_REQUIRE(abandonment_probability >= 0.0 &&
                  abandonment_probability <= 1.0,
              "abandonment probability must lie in [0, 1]");
  const double q = (1.0 - availability) * (1.0 - abandonment_probability);
  double reach = 1.0;  // probability the (k+1)-th attempt is issued
  double success = 0.0;
  for (std::size_t k = 0; k <= max_retries; ++k) {
    success += reach * availability;
    reach *= q;
  }
  return success;
}

double user_availability_with_retries(UserClass uc, const TaParameters& p,
                                      const inject::RetryPolicy& retry) {
  retry.validate();
  ServiceAvailabilities s = compute_services(p);
  if (retry.response_timeout_seconds > 0.0) {
    // A request that misses the deadline is perceived as failed, so the
    // web service contributes its deadline-aware availability.
    const core::WebFarmParams farm = web_farm_params(p);
    const core::WebQueueParams queue = web_queue_params(p);
    const bool perfect = p.coverage_model == CoverageModel::kPerfect ||
                         p.architecture == Architecture::kBasic;
    s.web = perfect
                ? core::web_service_availability_perfect_with_deadline(
                      farm, queue, retry.response_timeout_seconds)
                : core::web_service_availability_imperfect_with_deadline(
                      farm, queue, retry.response_timeout_seconds);
  }
  const profile::ScenarioSet table = scenario_table(uc);
  double total = 0.0;
  for (const profile::ScenarioClass& sc : table.scenarios()) {
    double product = 1.0;
    for (TaFunction f : kAllFunctions) {
      if (!sc.functions.contains(function_index(f))) continue;
      product *= retry_adjusted_availability(
          function_availability(f, s, p), retry.max_retries,
          retry.abandonment_probability);
    }
    total += sc.probability * product;
  }
  return total;
}

CategoryBreakdown category_breakdown(UserClass uc, const TaParameters& p) {
  const core::UserLevelModel model = build_user_model(uc, p);
  const std::vector<double> contributions =
      model.unavailability_contributions();
  const auto& scenarios = model.scenarios().scenarios();
  UPA_ASSERT(contributions.size() == scenarios.size());

  CategoryBreakdown breakdown;
  breakdown.unavailability = {
      {ScenarioCategory::kSC1, 0.0},
      {ScenarioCategory::kSC2, 0.0},
      {ScenarioCategory::kSC3, 0.0},
      {ScenarioCategory::kSC4, 0.0},
  };
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    breakdown.unavailability[category_of(scenarios[i])] += contributions[i];
    breakdown.total_unavailability += contributions[i];
  }
  return breakdown;
}

}  // namespace upa::ta
