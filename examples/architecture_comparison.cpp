// Architecture comparison (the paper's Figures 7/8 at the user level):
// quantify what the redundant server-farm architecture buys each user
// class, and decompose the web service's unavailability into performance
// loss vs downtime (the composite-model view).
//
//   $ ./architecture_comparison

#include <iostream>

#include "upa/common/table.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ta = upa::ta;
namespace uc = upa::core;
namespace cm = upa::common;

}  // namespace

int main() {
  const auto base =
      ta::TaParameters::paper_defaults().with_reservation_systems(4);

  // 1. Architecture gap at every level of the hierarchy.
  cm::Table t({"measure", "basic (Fig. 7)", "redundant (Fig. 8)"});
  t.set_align(0, cm::Align::kLeft);
  t.set_title("Availability by level: basic vs redundant architecture");
  auto basic = base;
  basic.architecture = ta::Architecture::kBasic;
  const auto sb = ta::compute_services(basic);
  const auto sr = ta::compute_services(base);
  t.add_row({"A(Web service)", cm::fmt(sb.web, 8), cm::fmt(sr.web, 8)});
  t.add_row({"A(Application service)", cm::fmt(sb.application, 8),
             cm::fmt(sr.application, 8)});
  t.add_row({"A(Database service)", cm::fmt(sb.database, 8),
             cm::fmt(sr.database, 8)});
  for (const auto f : {ta::TaFunction::kBrowse, ta::TaFunction::kSearch,
                       ta::TaFunction::kPay}) {
    t.add_row({"A(" + ta::function_name(f) + ")",
               cm::fmt(ta::function_availability(f, sb, basic), 8),
               cm::fmt(ta::function_availability(f, sr, base), 8)});
  }
  for (const auto uclass : {ta::UserClass::kA, ta::UserClass::kB}) {
    t.add_row({"A(user, " + ta::user_class_name(uclass) + ")",
               cm::fmt(ta::user_availability_eq10(uclass, basic), 8),
               cm::fmt(ta::user_availability_eq10(uclass, base), 8)});
  }
  std::cout << t << "\n";

  // 2. Composite-model decomposition of the web farm: how much of the
  //    unavailability is requests bouncing off a full buffer vs the farm
  //    being down?
  cm::Table d({"alpha [req/s]", "UA total", "performance loss",
               "downtime loss"});
  d.set_title(
      "Web-farm unavailability decomposition (redundant, imperfect\n"
      "coverage, N_W=4): performance-related vs failure-related loss");
  for (double alpha : {50.0, 100.0, 150.0}) {
    auto p = base;
    p.alpha = alpha;
    const auto model = uc::composite_imperfect(ta::web_farm_params(p),
                                               ta::web_queue_params(p));
    const auto breakdown = model.breakdown();
    d.add_row({cm::fmt(alpha, 3),
               cm::fmt_sci(1.0 - breakdown.availability, 3),
               cm::fmt_sci(breakdown.performance_loss, 3),
               cm::fmt_sci(breakdown.downtime_loss, 3)});
  }
  std::cout << d << "\n";

  std::cout
      << "Two regimes: under overload (alpha >= nu) the buffer dominates\n"
         "and redundancy pays for itself through capacity; under light\n"
         "load the uncovered-failure downtime dominates and coverage\n"
         "quality matters more than farm size.\n";
  return 0;
}
