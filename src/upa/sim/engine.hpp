#pragma once
// Discrete-event simulation core: a future-event calendar with stable
// FIFO tie-breaking, cancellation, and a bounded run loop.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace upa::obs {
struct Observer;
}  // namespace upa::obs

namespace upa::sim {

/// Handle to a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// Event calendar + clock. Handlers are void() callables that may schedule
/// further events; time never moves backwards.
class Engine {
 public:
  Engine() = default;

  [[nodiscard]] double now() const noexcept { return now_; }

  /// Attaches an observer (non-owning, may be nullptr to detach): each
  /// run_until/run_all emits one `sim_event_batch` span (events
  /// processed, calendar high-water, virtual-time rate) plus engine
  /// counters. With no observer every hook is a null-pointer test.
  void set_observer(obs::Observer* observer) noexcept { obs_ = observer; }

  /// Schedules `handler` at absolute time `at` (>= now). Returns an id
  /// that can be cancelled.
  EventId schedule_at(double at, std::function<void()> handler);

  /// Schedules after a delay (>= 0) from the current time.
  EventId schedule_in(double delay, std::function<void()> handler);

  /// Cancels a pending event; false when already fired/cancelled/unknown.
  bool cancel(EventId id);

  /// Runs until the calendar is empty or the clock passes `horizon`.
  /// Events scheduled beyond the horizon stay unprocessed; the clock is
  /// left clamped at the horizon.
  void run_until(double horizon);

  /// Runs until the calendar empties (caller must guarantee termination).
  void run_all();

  /// Events processed so far (diagnostics, regression tests).
  [[nodiscard]] std::uint64_t processed_count() const noexcept {
    return processed_;
  }
  [[nodiscard]] std::size_t pending_count() const noexcept;

  /// High-water mark of the calendar size (cancelled-but-unpopped entries
  /// included: they occupy calendar memory until popped).
  [[nodiscard]] std::size_t max_calendar_depth() const noexcept {
    return max_depth_;
  }

 private:
  struct Entry {
    double time;
    EventId id;  // also the FIFO tie-breaker
    bool operator>(const Entry& other) const noexcept {
      return time != other.time ? time > other.time : id > other.id;
    }
  };

  /// Emits the per-batch span and counters after a run loop finished.
  void record_batch(double batch_start, std::uint64_t processed_before,
                    double wall_start);

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t max_depth_ = 0;
  obs::Observer* obs_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> calendar_;
  // id -> handler; erased on fire/cancel (cancelled ids become tombstones
  // in the priority queue and are skipped when popped).
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace upa::sim
