#pragma once
// The closed-loop dogfood experiment: replay a diurnal lambda(t) with a
// flash crowd and a scripted service-degradation outage against a live
// in-process upa_served, once under Controller management and once at a
// fixed trough-sized (i, K) baseline, and gate the measured per-phase
// loss against the SLO. The controlled run must hold the SLO through
// every transient with zero transport errors (reconfigures never kill a
// request); the baseline -- provisioned for the overnight trough --
// must violate it during the flash crowd and the outage, demonstrating
// that the control loop, not over-provisioning, keeps the promise.
//
// The outage window rides on inject::FaultPlan -- the same scripted-
// outage machinery the simulation campaigns replay -- with plan hours
// mapped 1:3600 onto experiment seconds. A phase inside the window has
// its service rate collapsed to nu / 3 (the workload's `sleep` draws
// stretch), modeling a backend brown-out rather than a process kill.

#include <cstdint>
#include <string>
#include <vector>

#include "upa/control/controller.hpp"
#include "upa/inject/fault_plan.hpp"

namespace upa::control {

struct ControlScenarioConfig {
  /// "full" = night / morning / flash / outage / recovery;
  /// "flash" = morning / flash only (the CI-sized subset).
  std::string scenario = "full";
  /// Healthy per-server service rate [1/s] (~83 ms mean services keep
  /// container scheduling noise small against the service time).
  double nu = 12.0;
  /// The loss SLO the controller must hold.
  double target_loss = 0.08;
  /// Scales every phase duration (and with it the request counts).
  double duration_scale = 1.0;
  std::uint64_t seed = 1;
  /// The fixed baseline AND the controlled run's starting point: sized
  /// for the overnight trough, deliberately too small for the peaks.
  std::size_t initial_workers = 1;
  std::size_t initial_capacity = 3;
  /// Controller caps (the search space of the planner).
  std::size_t max_workers = 8;
  std::size_t max_capacity = 64;
  double tick_interval_seconds = 0.25;
  /// Optional observer handed to the Controller (control_decision
  /// spans + ctl.* gauges); exclusive to the control thread.
  obs::Observer* obs = nullptr;
};

/// One segment of the replayed day.
struct ControlPhase {
  std::string name;
  double lambda = 0.0;            ///< offered arrival rate [1/s]
  double nu = 0.0;                ///< service rate of the phase's draws
  double duration_seconds = 0.0;
  std::size_t requests = 0;       ///< round(lambda * duration), >= 1
  bool faulted = false;           ///< inside the FaultPlan outage window
};

/// The phase list a config expands to (exposed for tests and the CLI's
/// dry-run printing). Applies the FaultPlan overlay.
[[nodiscard]] std::vector<ControlPhase> control_phases(
    const ControlScenarioConfig& config);

/// The scripted outage behind the "outage" phase; empty for scenarios
/// without one.
[[nodiscard]] inject::FaultPlan control_fault_plan(
    const ControlScenarioConfig& config);

/// Measured outcome of one phase of one pass.
struct ControlPhaseOutcome {
  std::string name;
  double lambda = 0.0;
  double nu = 0.0;
  std::size_t requests = 0;
  std::size_t rejected = 0;
  std::size_t transport_errors = 0;
  double measured_loss = 0.0;
  /// One-sided gate: target_loss + 4-sigma binomial half-width at the
  /// phase's sample size + a 0.02 scheduling allowance.
  double gate = 0.0;
  bool within_gate = false;
  bool faulted = false;
  std::size_t workers_after = 0;   ///< server's (i, K) when the phase ended
  std::size_t capacity_after = 0;
};

struct ControlRunSummary {
  std::vector<ControlPhaseOutcome> phases;
  std::size_t transport_errors = 0;  ///< summed over phases
  bool all_within = true;            ///< every phase under its gate
  bool any_violation = false;        ///< at least one phase over its gate
};

struct ControlExperimentResult {
  ControlRunSummary controlled;
  ControlRunSummary baseline;
  ControllerStats controller;  ///< final stats of the controlled pass
  double target_loss = 0.0;
  /// Controlled pass held every gate, saw zero transport errors, and
  /// the controller actually reconfigured at least once.
  bool control_ok = false;
  /// The fixed trough-sized baseline broke at least one gate -- the
  /// control loop is doing work over-provisioning is not.
  bool baseline_violates = false;
};

/// Runs both passes back to back (controlled first). Wall clock is
/// roughly twice the summed phase durations.
[[nodiscard]] ControlExperimentResult run_control_experiment(
    const ControlScenarioConfig& config);

}  // namespace upa::control
