// Tests for the CLI argument parser used by tools/upa_cli.

#include <gtest/gtest.h>

#include "upa/cli/args.hpp"
#include "upa/common/error.hpp"

using upa::cli::Args;
using upa::common::ModelError;

TEST(CliArgs, CommandAndOptions) {
  const Args args({"user", "--class", "B", "--n", "5"});
  EXPECT_EQ(args.command(), "user");
  EXPECT_EQ(args.get("class", "A"), "B");
  EXPECT_EQ(args.get_size("n", 1), 5u);
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const Args args({"farm"});
  EXPECT_EQ(args.get("class", "A"), "A");
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 1e-4), 1e-4);
  EXPECT_FALSE(args.has("basic"));
}

TEST(CliArgs, BooleanFlags) {
  const Args args({"user", "--basic", "--n", "3", "--perfect"});
  EXPECT_TRUE(args.has("basic"));
  EXPECT_TRUE(args.has("perfect"));
  EXPECT_EQ(args.get_size("n", 1), 3u);
}

TEST(CliArgs, NoCommandOnlyOptions) {
  const Args args({"--x", "1"});
  EXPECT_TRUE(args.command().empty());
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 1.0);
}

TEST(CliArgs, ScientificNumbers) {
  const Args args({"farm", "--lambda", "1e-3"});
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0.0), 1e-3);
}

TEST(CliArgs, RejectsNonNumeric) {
  const Args args({"farm", "--lambda", "fast"});
  EXPECT_THROW((void)args.get_double("lambda", 0.0), ModelError);
}

TEST(CliArgs, RejectsNonIntegerSize) {
  const Args args({"farm", "--nw", "2.5"});
  EXPECT_THROW((void)args.get_size("nw", 1), ModelError);
}

TEST(CliArgs, RejectsDuplicatesAndStray) {
  EXPECT_THROW(Args({"x", "--a", "1", "--a", "2"}), ModelError);
  EXPECT_THROW(Args({"cmd", "stray"}), ModelError);
}

TEST(CliArgs, NamesListsEveryProvidedOption) {
  const Args args({"user", "--class", "B", "--basic", "--n", "3"});
  const auto names = args.names();
  ASSERT_EQ(names.size(), 3u);  // sorted (map order)
  EXPECT_EQ(names[0], "basic");
  EXPECT_EQ(names[1], "class");
  EXPECT_EQ(names[2], "n");
  EXPECT_TRUE(Args({"farm"}).names().empty());
}

TEST(CliArgs, UnusedDetection) {
  const Args args({"user", "--class", "B", "--typo", "1"});
  (void)args.get("class", "A");
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliArgs, ArgvConstructor) {
  const char* argv[] = {"prog", "design", "--target-minutes", "10"};
  const Args args(4, argv);
  EXPECT_EQ(args.command(), "design");
  EXPECT_DOUBLE_EQ(args.get_double("target-minutes", 5.0), 10.0);
}
