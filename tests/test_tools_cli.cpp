// Black-box checks of the tool binaries' exit-code contract: unknown
// subcommands and unknown/unused flags must fail loudly (exit 2 plus a
// usage message) instead of warning and carrying on -- and BEFORE any
// side effect (starting a server, spawning replicas, writing bench
// artifacts). Binary paths are injected by CMake as UPA_CLI_BINARY,
// UPA_SERVED_BINARY, UPA_LOADGEN_BINARY, and UPA_DISPATCH_BINARY.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_tool(const std::string& binary,
                   const std::string& arguments) {
  const std::string command = binary + " " + arguments + " 2>&1";
  RunResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> chunk{};
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
    result.output.append(chunk.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

RunResult run_cli(const std::string& arguments) {
  return run_tool(UPA_CLI_BINARY, arguments);
}

TEST(ToolsCli, HelpExitsZeroAndListsCompanionTools) {
  const RunResult r = run_cli("help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("commands:"), std::string::npos);
  // The serve-layer entry points are registered in the help text.
  EXPECT_NE(r.output.find("upa_served"), std::string::npos);
  EXPECT_NE(r.output.find("upa_loadgen"), std::string::npos);
}

TEST(ToolsCli, UnknownSubcommandExitsTwoWithUsage) {
  const RunResult r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(ToolsCli, UnknownFlagExitsTwoWithUsage) {
  const RunResult r = run_cli("services --frobnicate 3");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option --frobnicate"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  // Fail fast: the typo is caught before the command runs, so no
  // results were computed or printed before the failure.
  EXPECT_EQ(r.output.find("Web service"), std::string::npos);
}

TEST(ToolsCli, FlagForWrongCommandExitsTwo) {
  // --target-minutes belongs to `design`; passing it to `user` is a
  // typo'd invocation, not a soft warning.
  const RunResult r = run_cli("user --target-minutes 5");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option --target-minutes"),
            std::string::npos);
  EXPECT_EQ(r.output.find("user-perceived availability"), std::string::npos);
}

TEST(ToolsCli, MisspelledOptionalFlagFailsBeforeAnyWork) {
  // The regression this pins: --abandon is an inject option, not a
  // trace one. Before the pre-dispatch check, `trace --abandon 0.5`
  // ran the whole instrumented simulation, printed its results, and
  // only then exited 2 with the flag silently ignored.
  const RunResult r = run_cli("trace --abandon 0.5 --sessions 5 --reps 1");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option --abandon"), std::string::npos);
  EXPECT_EQ(r.output.find("instrumented run"), std::string::npos);
}

TEST(ToolsCli, ValidCommandStillExitsZero) {
  const RunResult r = run_cli("services");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("Web service"), std::string::npos);
}

TEST(ToolsCli, ValidOverridesAreAccepted) {
  const RunResult r = run_cli("user --class A --nw 3 --cache on");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("user-perceived availability"), std::string::npos);
  EXPECT_NE(r.output.find("evaluation cache"), std::string::npos);
}

// Everything except the run-dependent cache summary lines: the model
// output must be byte-identical between a cold run and a warm-from-disk
// re-run of the same command.
std::string without_cache_lines(const std::string& output) {
  std::string kept;
  std::size_t start = 0;
  while (start <= output.size()) {
    const std::size_t end = output.find('\n', start);
    const std::string line =
        output.substr(start, end == std::string::npos ? end : end - start);
    if (line.find("cache") == std::string::npos &&
        line.find("hits /") == std::string::npos) {
      kept += line;
      kept += '\n';
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return kept;
}

TEST(ToolsCliPersist, InjectRerunWarmsFromDiskAndMatchesByteForByte) {
  std::string dir = "/tmp/upa_cli_persist_XXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  const std::string command =
      "inject --sessions 200 --reps 2 --cache-dir " + dir;

  const RunResult cold = run_cli(command);
  EXPECT_EQ(cold.exit_code, 0);
  // First run found an empty directory and wrote the active segment.
  EXPECT_NE(cold.output.find("0 records replayed"), std::string::npos);
  EXPECT_EQ(cold.output.find("0 records appended"), std::string::npos);

  const RunResult warm = run_cli(command);
  EXPECT_EQ(warm.exit_code, 0);
  // Second run pre-warmed from the segment: every stored value replays,
  // nothing new is appended (the dedupe keeps the directory stable).
  EXPECT_NE(warm.output.find("1 segments loaded"), std::string::npos);
  EXPECT_EQ(warm.output.find("0 records replayed"), std::string::npos);
  EXPECT_NE(warm.output.find("0 records appended"), std::string::npos);
  // The replay contract, black-box: identical model output.
  EXPECT_EQ(without_cache_lines(cold.output),
            without_cache_lines(warm.output));

  const RunResult cleanup = run_tool("rm", "-rf " + dir);
  EXPECT_EQ(cleanup.exit_code, 0);
}

TEST(ToolsCliPersist, CacheDirWithCacheOffIsAnError) {
  const RunResult r = run_cli("inject --cache off --cache-dir /tmp/nope");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--cache-dir requires --cache on"),
            std::string::npos);
}

// --- Serve-layer tools share the same allowlist contract ----------------

TEST(ToolsCli, ServedTypoFlagExitsTwoBeforeBinding) {
  // A typo'd flag must not start a server: no listening line, no bound
  // port, just the diagnostic and usage.
  const RunResult r = run_tool(UPA_SERVED_BINARY, "--workerz 2");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--workerz'"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  EXPECT_EQ(r.output.find("listening on"), std::string::npos);
}

TEST(ToolsCli, LoadgenTypoFlagExitsTwoBeforeSpawning) {
  // --replicaz on farm mode: caught before any replica is spawned or a
  // bench artifact written, even though --served-bin is present.
  const RunResult r = run_tool(
      UPA_LOADGEN_BINARY,
      "--mode farm --served-bin " + std::string(UPA_SERVED_BINARY) +
          " --replicaz 5");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--replicaz'"),
            std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  EXPECT_EQ(r.output.find("sent="), std::string::npos);
}

TEST(ToolsCli, LoadgenFlagFromAnotherModeExitsTwo) {
  // --kill-at belongs to farm mode; smoke mode must reject it rather
  // than silently ignore it.
  const RunResult r =
      run_tool(UPA_LOADGEN_BINARY, "--mode smoke --kill-at 2");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--kill-at'"),
            std::string::npos);
}

TEST(ToolsCli, DispatchTypoFlagExitsTwoBeforeListening) {
  const RunResult r = run_tool(
      UPA_DISPATCH_BINARY, "--upstreams 127.0.0.1:1 --retrees 5");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--retrees'"),
            std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  EXPECT_EQ(r.output.find("listening on"), std::string::npos);
}

}  // namespace
