#include "upa/cache/segment.hpp"

#include <array>
#include <cerrno>
#include <cstring>

#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"

namespace upa::cache {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Reads the little-endian u32 at `at` (caller checks bounds).
std::uint32_t read_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(
                               bytes[at + static_cast<std::size_t>(i)]);
  }
  return value;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(c)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string segment_header(std::uint32_t format_version,
                           std::string_view tag) {
  ByteWriter w;
  std::string out(kSegmentMagic);
  w.put_u32(format_version);
  w.put_u32(static_cast<std::uint32_t>(tag.size()));
  out += w.bytes();
  out.append(tag.data(), tag.size());
  return out;
}

std::string encode_record(const SegmentRecord& record) {
  ByteWriter payload;
  payload.put_string(record.type_tag);
  payload.put_string(record.key_bytes);
  payload.put_string(record.value_bytes);
  const std::string body = std::move(payload).take();
  ByteWriter frame;
  frame.put_u32(static_cast<std::uint32_t>(body.size()));
  frame.put_u32(crc32(body));
  std::string out = std::move(frame).take();
  out += body;
  return out;
}

bool load_segment_bytes(
    std::string_view bytes, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record) {
  // Header: magic, format version, tag.
  const std::size_t fixed = kSegmentMagic.size() + 8;
  if (bytes.size() < fixed ||
      bytes.substr(0, kSegmentMagic.size()) != kSegmentMagic) {
    ++stats.segments_rejected;
    return false;
  }
  const std::uint32_t version = read_u32(bytes, kSegmentMagic.size());
  const std::uint32_t tag_length =
      read_u32(bytes, kSegmentMagic.size() + 4);
  if (version != kSegmentFormatVersion || tag_length > bytes.size() - fixed ||
      bytes.substr(fixed, tag_length) != kSolverVersionTag) {
    ++stats.segments_rejected;
    return false;
  }

  std::size_t at = fixed + tag_length;
  while (at < bytes.size()) {
    if (bytes.size() - at < 8) {
      stats.torn_tail_bytes += bytes.size() - at;
      break;  // torn frame header
    }
    const std::uint32_t length = read_u32(bytes, at);
    const std::uint32_t expected_crc = read_u32(bytes, at + 4);
    if (bytes.size() - at - 8 < length) {
      stats.torn_tail_bytes += bytes.size() - at;
      break;  // torn payload
    }
    const std::string_view payload = bytes.substr(at + 8, length);
    at += 8 + length;
    if (crc32(payload) != expected_crc) {
      ++stats.records_skipped_crc;
      continue;
    }
    SegmentRecord record;
    try {
      ByteReader r(payload);
      record.type_tag = r.get_string();
      record.key_bytes = r.get_string();
      record.value_bytes = r.get_string();
      r.expect_end();
    } catch (const common::ModelError&) {
      // CRC-valid but structurally wrong: same bucket as corruption.
      ++stats.records_skipped_crc;
      continue;
    }
    ++stats.records_loaded;
    on_record(std::move(record));
  }
  ++stats.segments_loaded;
  return true;
}

bool load_segment_file(
    const std::string& path, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    ++stats.segments_rejected;
    return false;
  }
  std::string bytes;
  char chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.append(chunk, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    ++stats.segments_rejected;
    return false;
  }
  return load_segment_bytes(bytes, stats, on_record);
}

SegmentFile::SegmentFile(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  UPA_REQUIRE(file_ != nullptr, "cannot create cache segment '" + path_ +
                                    "': " + std::strerror(errno));
  const std::string header = segment_header();
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), file_) == header.size() &&
      std::fflush(file_) == 0;
  if (!ok) {
    std::fclose(file_);
    file_ = nullptr;
    throw common::ModelError("cannot write cache segment header to '" +
                             path_ + "'");
  }
}

SegmentFile::~SegmentFile() {
  if (file_ != nullptr) std::fclose(file_);
}

void SegmentFile::append(const SegmentRecord& record) {
  UPA_REQUIRE(file_ != nullptr,
              "cache segment '" + path_ + "' is not open for append");
  const std::string frame = encode_record(record);
  const bool ok =
      std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size() &&
      std::fflush(file_) == 0;
  UPA_REQUIRE(ok, "cannot append to cache segment '" + path_ + "'");
  ++records_;
}

}  // namespace upa::cache
