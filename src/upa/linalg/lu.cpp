#include "upa/linalg/lu.hpp"

#include <cmath>
#include <string>

#include "upa/common/error.hpp"

namespace upa::linalg {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  UPA_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    UPA_REQUIRE(pivot_mag > 0.0 && std::isfinite(pivot_mag),
                "singular matrix at column " + std::to_string(k));
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(piv_[k], piv_[pivot_row]);
      pivot_sign_ = -pivot_sign_;
    }

    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / pivot;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(i, c) -= factor * lu_(k, c);
      }
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  UPA_REQUIRE(b.size() == n, "rhs size mismatch in LU solve");

  // Apply permutation, then forward substitution (L has unit diagonal).
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  UPA_REQUIRE(b.rows() == size(), "rhs rows mismatch in LU solve");
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    const Vector sol = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(Matrix a, const Vector& b) {
  return LuDecomposition(std::move(a)).solve(b);
}

Matrix inverse(Matrix a) {
  const std::size_t n = a.rows();
  return LuDecomposition(std::move(a)).solve(Matrix::identity(n));
}

}  // namespace upa::linalg
