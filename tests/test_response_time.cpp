// Tests for the response-time-threshold extension (the paper's stated
// future work): M/M/c/K sojourn-time tails, quantiles, the deadline-aware
// web-service availability, and validation against the DES queue.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/queueing/response_time.hpp"
#include "upa/sim/queue_sim.hpp"

namespace uq = upa::queueing;
namespace uc = upa::core;
namespace usim = upa::sim;
using upa::common::ModelError;

TEST(ResponseTime, TailIsOneAtZeroAndDecreases) {
  EXPECT_DOUBLE_EQ(uq::mmck_response_time_tail(90.0, 100.0, 2, 10, 0.0),
                   1.0);
  double previous = 1.0;
  for (double tau : {0.005, 0.01, 0.02, 0.05, 0.1, 0.5}) {
    const double tail =
        uq::mmck_response_time_tail(90.0, 100.0, 2, 10, tau);
    EXPECT_LT(tail, previous);
    previous = tail;
  }
  EXPECT_LT(previous, 1e-15);  // far beyond the mean
}

TEST(ResponseTime, LightTrafficReducesToServiceTime) {
  // alpha -> 0: an arrival almost always finds an empty system, so
  // P(T > tau) -> e^{-nu tau}.
  const double nu = 100.0;
  const double tau = 0.02;
  const double tail =
      uq::mmck_response_time_tail(1e-6, nu, 4, 10, tau);
  EXPECT_NEAR(tail, std::exp(-nu * tau), 1e-8);
}

TEST(ResponseTime, SingleServerErlangForm) {
  // c = 1: an accepted arrival seeing j has T = Erlang(j+1, nu). With
  // alpha very small only j = 0 matters -> exponential tail.
  const double tail = uq::mmck_response_time_tail(1e-9, 50.0, 1, 5, 0.01);
  EXPECT_NEAR(tail, std::exp(-0.5), 1e-6);
}

TEST(ResponseTime, MeanMatchesLittlesLaw) {
  for (double alpha : {30.0, 90.0, 100.0, 150.0}) {
    for (std::size_t c : {1u, 2u, 4u}) {
      const double direct =
          uq::mmck_mean_response_time(alpha, 100.0, c, 10);
      const double little =
          uq::mmck_metrics(alpha, 100.0, c, 10).mean_response;
      EXPECT_NEAR(direct, little, 1e-12)
          << "alpha=" << alpha << " c=" << c;
    }
  }
}

TEST(ResponseTime, MeanEqualsIntegralOfTail) {
  // E[T] = int_0^inf P(T > t) dt; trapezoid over a fine grid.
  const double alpha = 120.0;
  const double nu = 100.0;
  const std::size_t c = 2;
  const std::size_t k = 10;
  double integral = 0.0;
  const double dt = 2e-4;
  double prev = 1.0;
  for (double t = dt; t < 2.0; t += dt) {
    const double tail = uq::mmck_response_time_tail(alpha, nu, c, k, t);
    integral += 0.5 * (prev + tail) * dt;
    prev = tail;
    if (tail < 1e-12) break;
  }
  EXPECT_NEAR(integral, uq::mmck_mean_response_time(alpha, nu, c, k),
              1e-4);
}

TEST(ResponseTime, QuantileInvertsTail) {
  const double q =
      uq::mmck_response_time_quantile(100.0, 100.0, 4, 10, 0.01);
  EXPECT_NEAR(uq::mmck_response_time_tail(100.0, 100.0, 4, 10, q), 0.01,
              1e-6);
  // 99th percentile beyond the mean.
  EXPECT_GT(q, uq::mmck_mean_response_time(100.0, 100.0, 4, 10));
}

TEST(ResponseTime, ServedWithinCombinesLossAndDeadline) {
  const double alpha = 100.0;
  const double nu = 100.0;
  const double tau = 0.05;
  const double served = uq::mmck_served_within(alpha, nu, 4, 10, tau);
  const double blocking = uq::mmck_loss_probability(alpha, nu, 4, 10);
  const double tail = uq::mmck_response_time_tail(alpha, nu, 4, 10, tau);
  EXPECT_NEAR(served, (1.0 - blocking) * (1.0 - tail), 1e-15);
  EXPECT_LT(served, 1.0 - blocking);
}

TEST(ResponseTime, RejectsBadArguments) {
  EXPECT_THROW((void)uq::mmck_response_time_tail(1.0, 1.0, 1, 1, -1.0),
               ModelError);
  EXPECT_THROW((void)uq::mmck_response_time_quantile(1.0, 1.0, 1, 1, 1.5),
               ModelError);
}

TEST(ResponseTimeSim, TailMatchesDesQueue) {
  // M/M/2/10, rho = 0.9 overall: measure P(T > tau) by simulation.
  const double alpha = 180.0;
  const double nu = 100.0;
  const double tau = 0.03;
  usim::QueueSpec spec;
  spec.interarrival = usim::Exponential{alpha};
  spec.service = usim::Exponential{nu};
  spec.servers = 2;
  spec.capacity = 10;
  usim::QueueSimOptions options;
  options.arrivals_per_replication = 120000;
  options.warmup_arrivals = 5000;
  options.replications = 8;
  options.seed = 20260705;
  options.deadline = tau;
  const auto result = usim::simulate_queue(spec, options);
  const double analytic =
      uq::mmck_response_time_tail(alpha, nu, 2, 10, tau);
  EXPECT_NEAR(result.deadline_miss.mean, analytic,
              result.deadline_miss.half_width + 0.003);
}

TEST(ResponseTimeSim, MeanResponseMatchesFormula) {
  const double alpha = 150.0;
  const double nu = 100.0;
  usim::QueueSpec spec;
  spec.interarrival = usim::Exponential{alpha};
  spec.service = usim::Exponential{nu};
  spec.servers = 2;
  spec.capacity = 8;
  usim::QueueSimOptions options;
  options.arrivals_per_replication = 100000;
  options.warmup_arrivals = 5000;
  options.replications = 6;
  options.seed = 777;
  const auto result = usim::simulate_queue(spec, options);
  EXPECT_NEAR(result.mean_response.mean,
              uq::mmck_mean_response_time(alpha, nu, 2, 8),
              result.mean_response.half_width + 5e-4);
}

TEST(DeadlineAvailability, RecoversPlainMeasureForLargeDeadline) {
  uc::WebFarmParams farm{4, 1e-4, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{100.0, 100.0, 10};
  EXPECT_NEAR(uc::web_service_availability_imperfect_with_deadline(
                  farm, queue, 1e6),
              uc::web_service_availability_imperfect(farm, queue), 1e-12);
  EXPECT_NEAR(uc::web_service_availability_perfect_with_deadline(farm, queue,
                                                                 1e6),
              uc::web_service_availability_perfect(farm, queue), 1e-12);
}

TEST(DeadlineAvailability, TightDeadlineLowersAvailability) {
  uc::WebFarmParams farm{4, 1e-4, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{100.0, 100.0, 10};
  const double plain = uc::web_service_availability_imperfect(farm, queue);
  double previous = plain;
  for (double tau : {1.0, 0.1, 0.05, 0.02, 0.01}) {
    const double a = uc::web_service_availability_imperfect_with_deadline(
        farm, queue, tau);
    EXPECT_LE(a, previous + 1e-15) << "tau = " << tau;
    previous = a;
  }
  // At tau = 10 ms (= mean service time), a large share of requests are
  // "failed" despite the farm being up.
  EXPECT_LT(previous, 0.7);
}

TEST(DeadlineAvailability, MoreServersHelpUnderTightDeadlines) {
  // Deadline pressure comes from queueing delay, which extra servers
  // remove: the deadline measure rises with N_W (until coverage bites).
  uc::WebQueueParams queue{100.0, 100.0, 10};
  const double tau = 0.03;
  double previous = 0.0;
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    uc::WebFarmParams farm{n, 1e-4, 1.0, 0.98, 12.0};
    const double a = uc::web_service_availability_imperfect_with_deadline(
        farm, queue, tau);
    EXPECT_GT(a, previous) << "n = " << n;
    previous = a;
  }
}
