#include "upa/ta/model_builder.hpp"

#include "upa/ta/services.hpp"

namespace upa::ta {

std::pair<core::ServiceCatalog, TaServiceIds> build_service_catalog(
    const TaParameters& p) {
  const ServiceAvailabilities s = compute_services(p);
  core::ServiceCatalog catalog;
  TaServiceIds ids;
  ids.net = catalog.add("Internet access", s.net);
  ids.lan = catalog.add("LAN", s.lan);
  ids.web = catalog.add("Web service", s.web);
  ids.application = catalog.add("Application service", s.application);
  ids.database = catalog.add("Database service", s.database);
  ids.flight = catalog.add("Flight reservation", s.flight);
  ids.hotel = catalog.add("Hotel reservation", s.hotel);
  ids.car = catalog.add("Car reservation", s.car);
  ids.payment = catalog.add("Payment", s.payment);
  return {std::move(catalog), ids};
}

std::vector<core::FunctionModel> build_function_models(const TaServiceIds& ids,
                                                       const TaParameters& p) {
  using core::ExecutionPath;
  using core::FunctionModel;
  const std::vector<core::ServiceId> front{ids.net, ids.lan, ids.web};

  std::vector<core::FunctionModel> functions;
  functions.push_back(FunctionModel::all_of("Home", front));

  // Browse (Figure 3): cache hit (q23), application-only (q24*q45),
  // application + database (q24*q47).
  functions.push_back(FunctionModel(
      "Browse",
      {
          ExecutionPath{p.q23, front},
          ExecutionPath{p.q24 * p.q45,
                        {ids.net, ids.lan, ids.web, ids.application}},
          ExecutionPath{p.q24 * p.q47,
                        {ids.net, ids.lan, ids.web, ids.application,
                         ids.database}},
      }));

  const std::vector<core::ServiceId> search_services{
      ids.net,    ids.lan,   ids.web, ids.application,
      ids.database, ids.flight, ids.hotel, ids.car};
  functions.push_back(FunctionModel::all_of("Search", search_services));
  // Book uses a subset of Search's resources (paper Section 4.2).
  functions.push_back(FunctionModel::all_of("Book", search_services));
  functions.push_back(FunctionModel::all_of(
      "Pay",
      {ids.net, ids.lan, ids.web, ids.application, ids.database,
       ids.payment}));
  return functions;
}

core::UserLevelModel build_user_model(UserClass uc, const TaParameters& p) {
  auto [catalog, ids] = build_service_catalog(p);
  std::vector<core::FunctionModel> functions = build_function_models(ids, p);
  return core::UserLevelModel(std::move(catalog), std::move(functions),
                              scenario_table(uc));
}

}  // namespace upa::ta
