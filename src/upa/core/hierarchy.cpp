#include "upa/core/hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::core {

ServiceId ServiceCatalog::add(std::string name, double availability) {
  UPA_REQUIRE(!name.empty(), "service name must not be empty");
  for (const std::string& existing : names_) {
    UPA_REQUIRE(existing != name, "duplicate service " + name);
  }
  names_.push_back(std::move(name));
  availability_.push_back(upa::common::clamp_probability(availability));
  return names_.size() - 1;
}

const std::string& ServiceCatalog::name(ServiceId id) const {
  UPA_REQUIRE(id < names_.size(), "service id out of range");
  return names_[id];
}

double ServiceCatalog::availability(ServiceId id) const {
  UPA_REQUIRE(id < availability_.size(), "service id out of range");
  return availability_[id];
}

ServiceId ServiceCatalog::id_of(const std::string& name) const {
  for (ServiceId id = 0; id < names_.size(); ++id) {
    if (names_[id] == name) return id;
  }
  throw upa::common::ModelError("unknown service " + name);
}

void ServiceCatalog::set_availability(ServiceId id, double availability) {
  UPA_REQUIRE(id < availability_.size(), "service id out of range");
  availability_[id] = upa::common::clamp_probability(availability);
}

FunctionModel::FunctionModel(std::string name,
                             std::vector<ExecutionPath> paths)
    : name_(std::move(name)), paths_(std::move(paths)) {
  UPA_REQUIRE(!name_.empty(), "function name must not be empty");
  UPA_REQUIRE(!paths_.empty(), "function needs at least one execution path");
  double total = 0.0;
  for (const ExecutionPath& path : paths_) {
    UPA_REQUIRE(upa::common::is_probability(path.probability),
                "path probability out of range in function " + name_);
    total += path.probability;
    for (ServiceId s : path.services) involved_.push_back(s);
  }
  UPA_REQUIRE(std::abs(total - 1.0) <= 1e-9,
              "path probabilities of function " + name_ + " sum to " +
                  std::to_string(total));
  std::sort(involved_.begin(), involved_.end());
  involved_.erase(std::unique(involved_.begin(), involved_.end()),
                  involved_.end());
}

FunctionModel FunctionModel::all_of(std::string name,
                                    std::vector<ServiceId> services) {
  return FunctionModel(std::move(name),
                       {ExecutionPath{1.0, std::move(services)}});
}

double FunctionModel::success_given(
    const std::vector<bool>& service_up) const {
  double success = 0.0;
  for (const ExecutionPath& path : paths_) {
    bool all_up = true;
    for (ServiceId s : path.services) {
      UPA_REQUIRE(s < service_up.size(), "service id out of range");
      if (!service_up[s]) {
        all_up = false;
        break;
      }
    }
    if (all_up) success += path.probability;
  }
  return success;
}

double FunctionModel::availability(const ServiceCatalog& catalog) const {
  // Paths may share services, so compute the expectation by conditioning
  // on the involved services' joint state (independent services).
  double total = 0.0;
  const std::size_t m = involved_.size();
  UPA_REQUIRE(m <= 20, "too many services for exact enumeration");
  std::vector<bool> state(catalog.size(), false);
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    double weight = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      const bool up = mask & (std::size_t{1} << i);
      const double a = catalog.availability(involved_[i]);
      weight *= up ? a : 1.0 - a;
      state[involved_[i]] = up;
    }
    if (weight == 0.0) continue;
    total += weight * success_given(state);
  }
  return total;
}

UserLevelModel::UserLevelModel(ServiceCatalog catalog,
                               std::vector<FunctionModel> functions,
                               profile::ScenarioSet scenarios)
    : catalog_(std::move(catalog)),
      functions_(std::move(functions)),
      scenarios_(std::move(scenarios)) {
  UPA_REQUIRE(functions_.size() == scenarios_.function_names().size(),
              "one FunctionModel per scenario-set function required");
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    UPA_REQUIRE(functions_[i].name() == scenarios_.function_names()[i],
                "function model '" + functions_[i].name() +
                    "' does not match scenario function '" +
                    scenarios_.function_names()[i] + "'");
  }
}

const FunctionModel& UserLevelModel::function(std::size_t i) const {
  UPA_REQUIRE(i < functions_.size(), "function index out of range");
  return functions_[i];
}

double UserLevelModel::joint_success(
    const std::set<std::size_t>& functions) const {
  UPA_REQUIRE(!functions.empty(), "need at least one function");
  // Union of involved services across the invoked functions.
  std::vector<ServiceId> involved;
  for (std::size_t f : functions) {
    UPA_REQUIRE(f < functions_.size(), "function index out of range");
    const auto& services = functions_[f].involved_services();
    involved.insert(involved.end(), services.begin(), services.end());
  }
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()),
                 involved.end());
  const std::size_t m = involved.size();
  UPA_REQUIRE(m <= 20, "too many services for exact enumeration");

  double total = 0.0;
  std::vector<bool> state(catalog_.size(), false);
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    double weight = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      const bool up = mask & (std::size_t{1} << i);
      const double a = catalog_.availability(involved[i]);
      weight *= up ? a : 1.0 - a;
      state[involved[i]] = up;
    }
    if (weight == 0.0) continue;
    double joint = 1.0;
    for (std::size_t f : functions) {
      joint *= functions_[f].success_given(state);
      if (joint == 0.0) break;
    }
    total += weight * joint;
  }
  return total;
}

double UserLevelModel::scenario_availability(
    const profile::ScenarioClass& scenario) const {
  return joint_success(scenario.functions);
}

double UserLevelModel::user_availability() const {
  scenarios_.validate_complete();
  double total = 0.0;
  for (const profile::ScenarioClass& scenario : scenarios_.scenarios()) {
    total += scenario.probability * scenario_availability(scenario);
  }
  return total;
}

std::vector<double> UserLevelModel::unavailability_contributions() const {
  std::vector<double> contributions;
  contributions.reserve(scenarios_.scenarios().size());
  for (const profile::ScenarioClass& scenario : scenarios_.scenarios()) {
    contributions.push_back(scenario.probability *
                            (1.0 - scenario_availability(scenario)));
  }
  return contributions;
}

}  // namespace upa::core
