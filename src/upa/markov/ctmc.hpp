#pragma once
// Continuous-time Markov chains: generator assembly, steady-state solution
// (dense direct and sparse iterative), and absorption-time analysis. This
// is the engine behind the paper's Figure 9 / Figure 10 availability models
// and the GSPN backend.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "upa/linalg/iterative.hpp"
#include "upa/linalg/matrix.hpp"
#include "upa/linalg/sparse.hpp"

namespace upa::obs {
struct Observer;
}  // namespace upa::obs

namespace upa::cache {
class KeyBuilder;
}  // namespace upa::cache

namespace upa::markov {

/// Stage of the robust stationary-solve fallback chain.
enum class StationaryMethod { kDenseLu, kGaussSeidel, kPowerIteration };

[[nodiscard]] std::string stationary_method_name(StationaryMethod m);

/// Controls for Ctmc::steady_state_robust.
struct StationaryOptions {
  /// Dense LU is O(n^3) in time and O(n^2) in memory; chains larger than
  /// this skip straight to the iterative stages.
  std::size_t max_dense_states = 2048;
  /// Iteration budget and tolerance shared by the iterative stages.
  linalg::IterativeOptions iterative;
  /// A candidate solution is accepted when ||pi Q||_inf is at most this.
  double residual_tolerance = 1e-8;
  /// Optional observability sink (non-owning): every stage attempt emits
  /// one `solver_stage` wall-time span plus iteration/residual/wall-time
  /// metrics, and residual trajectories are recorded per stage.
  obs::Observer* obs = nullptr;
};

/// One attempted stage of the fallback chain -- THE record of what the
/// stage did. The human-readable diagnostics lines, the obs spans, and
/// the obs metrics are all derived from this struct, so every channel
/// reports the same numbers.
struct StationaryStage {
  enum class Outcome { kAccepted, kRejected, kFailed, kSkipped };

  StationaryMethod method = StationaryMethod::kDenseLu;
  Outcome outcome = Outcome::kSkipped;
  std::size_t iterations = 0;  ///< 0 for the direct solve / skipped stages
  /// Balance residual ||pi Q||_inf for accepted/rejected stages; the
  /// final update norm for failed iterative stages.
  double residual = 0.0;
  double wall_seconds = 0.0;
  std::string note;  ///< outcome detail (skip reason, rejection cause, ...)
};

/// Formats one stage record as the canonical diagnostic line.
[[nodiscard]] std::string stage_diagnostic(const StationaryStage& stage);

/// Result of a robust stationary solve: the distribution, the stage that
/// produced it, its balance residual, and -- per stage attempted -- one
/// structured record plus the diagnostic line derived from it.
struct StationaryReport {
  linalg::Vector distribution;
  StationaryMethod method = StationaryMethod::kDenseLu;
  double residual = 0.0;  ///< ||pi Q||_inf of the returned distribution
  /// Structured per-stage records, in attempt order.
  std::vector<StationaryStage> stages;
  /// stage_diagnostic() of each entry of `stages` (kept for callers that
  /// print the report).
  std::vector<std::string> diagnostics;
};

/// A CTMC under construction: add transition rates between states, then
/// query steady-state or transient measures. States are dense indices
/// [0, n); optional labels improve diagnostics. Value type; evaluation
/// methods are const and pure.
class Ctmc {
 public:
  explicit Ctmc(std::size_t state_count);

  /// Adds `rate` from state `from` to state `to` (accumulates when called
  /// twice for the same pair). Rates must be positive and finite;
  /// self-loops are rejected (meaningless in a CTMC).
  void add_rate(std::size_t from, std::size_t to, double rate);

  void set_label(std::size_t state, std::string label);
  [[nodiscard]] const std::string& label(std::size_t state) const;

  [[nodiscard]] std::size_t state_count() const noexcept { return n_; }

  /// Infinitesimal generator Q as a dense matrix (row sums are zero).
  [[nodiscard]] linalg::Matrix generator() const;

  /// Q in CSR form, including the diagonal.
  [[nodiscard]] linalg::SparseMatrix sparse_generator() const;

  /// Total exit rate of a state.
  [[nodiscard]] double exit_rate(std::size_t state) const;

  /// Largest exit rate (the uniformization constant Lambda).
  [[nodiscard]] double max_exit_rate() const;

  /// Appends this chain's canonical content -- state count plus the rate
  /// triplets sorted by (row, col, value bit pattern) -- to a cache key,
  /// so chains describing the same rates hash equal regardless of the
  /// order add_rate was called in. Labels are excluded (they never affect
  /// a solve).
  void append_cache_key(cache::KeyBuilder& kb) const;

  /// Steady-state distribution pi with pi Q = 0, sum(pi) = 1, solved by
  /// dense LU on the transposed balance equations. Requires an irreducible
  /// chain (singular otherwise -> ModelError). When the evaluation cache
  /// is enabled (cache::set_enabled), identical chains replay the exact
  /// distribution computed on first solve.
  [[nodiscard]] linalg::Vector steady_state() const;

  /// Steady state via power iteration on the uniformized DTMC
  /// P = I + Q / Lambda. Cross-checks steady_state() and scales to the
  /// sparse chains produced by the GSPN module.
  [[nodiscard]] linalg::Vector steady_state_iterative(
      double tolerance = 1e-13) const;

  /// Stationary distribution through a fallback chain -- dense LU, then
  /// Gauss-Seidel on the normalized balance equations, then power
  /// iteration on the uniformized chain -- accepting the first stage whose
  /// solution satisfies ||pi Q||_inf <= residual_tolerance. Large or
  /// ill-conditioned chains (e.g. injected-failure state spaces) degrade
  /// gracefully instead of throwing on the first solver. Throws ModelError
  /// carrying every stage diagnostic when no stage produces a valid
  /// stationary vector.
  ///
  /// Warm starts: options.iterative.initial_guess seeds the Gauss-Seidel
  /// and power-iteration stages (e.g. from the nearest previously-solved
  /// grid point of a sweep); empty (the default) keeps the historical
  /// flat starts bit for bit.
  ///
  /// When the evaluation cache is enabled, identical (chain, options)
  /// pairs replay the exact report computed on the first solve; on a
  /// replay only a cache_lookup span is recorded into options.obs (the
  /// per-stage solver spans and metrics were emitted by the first miss).
  [[nodiscard]] StationaryReport steady_state_robust(
      const StationaryOptions& options = {}) const;

  /// Expected time to hit any state in `absorbing`, starting from `from`
  /// (mean time to absorption via the fundamental system). Used for MTTF:
  /// absorbing = failure states.
  [[nodiscard]] double mean_time_to_absorption(
      std::size_t from, const std::vector<std::size_t>& absorbing) const;

  /// Steady-state probability mass of a set of states.
  [[nodiscard]] double steady_state_mass(
      const std::vector<std::size_t>& states) const;

 private:
  void check_state(std::size_t s) const;

  /// The uncached solver bodies behind the (optionally) cached fronts.
  [[nodiscard]] linalg::Vector steady_state_uncached() const;
  [[nodiscard]] StationaryReport steady_state_robust_uncached(
      const StationaryOptions& options) const;

  /// Uniformized DTMC P = I + Q / Lambda (Lambda slightly above the
  /// largest exit rate so every diagonal stays positive).
  [[nodiscard]] linalg::SparseMatrix uniformized_transition() const;

  std::size_t n_;
  std::vector<linalg::Triplet> rates_;  // off-diagonal entries only
  std::vector<std::string> labels_;
};

/// Builds the two-state repairable-component chain (up=0, down=1) with
/// failure rate lambda and repair rate mu; its steady availability is
/// mu / (lambda + mu).
[[nodiscard]] Ctmc two_state_availability(double lambda, double mu);

/// Steady availability of the two-state model in closed form.
[[nodiscard]] double two_state_steady_availability(double lambda, double mu);

}  // namespace upa::markov
