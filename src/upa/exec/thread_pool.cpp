#include "upa/exec/thread_pool.hpp"

#include <exception>

#include "upa/common/error.hpp"

namespace upa::exec {
namespace {

/// The pool a thread is currently executing a parallel_for body for;
/// used to reject nested submission to the same pool (which would
/// deadlock a fixed-size pool once all workers wait on the inner join).
thread_local const ThreadPool* g_current_pool = nullptr;

class PoolScope {
 public:
  explicit PoolScope(const ThreadPool* pool) noexcept
      : previous_(g_current_pool) {
    g_current_pool = pool;
  }
  ~PoolScope() { g_current_pool = previous_; }
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  const ThreadPool* previous_;
};

}  // namespace

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t width = resolve_threads(threads);
  workers_.reserve(width - 1);
  for (std::size_t i = 0; i + 1 < width; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const PoolScope scope(this);
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  UPA_REQUIRE(g_current_pool != this,
              "nested parallel_for on the same ThreadPool would deadlock; "
              "use a separate pool or run the inner level serially");

  if (workers_.empty() || n == 1) {
    // Serial path: a plain inline loop, no queue handshake.
    const PoolScope scope(this);
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Join state lives on this frame; every task's epilogue runs under
  // `done_mutex`, so once `pending` hits zero no task touches it again
  // and the frame may safely unwind.
  std::mutex done_mutex;
  std::condition_variable done;
  std::size_t pending = n;                        // guarded by done_mutex
  std::vector<std::exception_ptr> errors(n, nullptr);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      queue_.emplace_back([&, i] {
        try {
          body(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        const std::lock_guard<std::mutex> done_lock(done_mutex);
        if (--pending == 0) done.notify_all();
      });
    }
  }
  wake_.notify_all();

  // The submitting thread drains the queue alongside the workers.
  for (;;) {
    std::function<void()> task;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const PoolScope scope(this);
    task();
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done.wait(lock, [&pending] { return pending == 0; });
  }

  // Serial loops surface the error of the earliest failing index first;
  // reproduce that regardless of which worker hit an error when.
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace upa::exec
