// upa_loadgen: load-generation client for upa_served.
//
// Modes:
//   smoke    one connection, one request per public RPC method; exit 0
//            only if every check passes (the CI liveness gate).
//   loss     open-loop Poisson single-request connections with Exp(nu)
//            `sleep` service draws against an external server -- the
//            measured rejection fraction of the paper's M/M/i/K model.
//   session  open-loop Poisson session arrivals replaying the Table 1
//            operational profile (class A browsers / class B buyers),
//            one evaluation RPC per visited function.
//   bench    self-hosted dogfood experiment: for several (lambda, i, K)
//            design points, start an in-process Server with i workers
//            and capacity K, drive the loss workload, and record
//            measured vs analytic p_K(i) into BENCH_serve.json.

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "upa/cli/args.hpp"
#include "upa/common/bench_json.hpp"
#include "upa/common/error.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/serve/loadgen.hpp"
#include "upa/serve/server.hpp"
#include "upa/ta/user_classes.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: upa_loadgen --mode MODE [options]\n"
        "\n"
        "modes:\n"
        "  smoke     one request per RPC method; exit 0 iff all pass\n"
        "  loss      open-loop Poisson `sleep` workload; reports the\n"
        "            measured rejection fraction (and the analytic\n"
        "            M/M/i/K loss when --workers/--capacity are given)\n"
        "  session   replay Table 1 user sessions (--class A|B)\n"
        "  bench     self-hosted (lambda, i, K) design sweep; writes\n"
        "            measured vs analytic loss to --out\n"
        "\n"
        "options:\n"
        "  --host ADDR      server address      (default 127.0.0.1)\n"
        "  --port N         server port         (default 7077)\n"
        "  --lambda R       arrival rate [1/s]  (default 150)\n"
        "  --nu R           service rate [1/s]  (default 100)\n"
        "  --requests N     loss-mode requests  (default 1000)\n"
        "  --sessions N     session-mode count  (default 50)\n"
        "  --session-rate R session arrivals/s  (default 20)\n"
        "  --class A|B      user class          (default B)\n"
        "  --workers N      analytic i for loss comparison\n"
        "  --capacity N     analytic K for loss comparison\n"
        "  --seed N         RNG seed            (default 1)\n"
        "  --out PATH       bench artifact      (default BENCH_serve.json)\n"
        "  --help           this text\n";
}

/// Thrown once a mode has read every option it understands and
/// something is left over; main prints usage and exits 2.
struct UnknownOption {
  std::string name;
};

void require_all_options_used(const upa::cli::Args& args) {
  const std::vector<std::string> unused = args.unused();
  if (!unused.empty()) throw UnknownOption{unused.front()};
}

int run_smoke(const upa::cli::Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_size("port", 7077));
  require_all_options_used(args);
  const upa::serve::SmokeResult r = upa::serve::run_smoke_probe(host, port);
  for (const auto& [name, ok] : r.checks) {
    std::cout << (ok ? "ok   " : "FAIL ") << name << "\n";
  }
  std::cout << (r.all_ok ? "smoke: all checks passed"
                         : "smoke: FAILURES above")
            << std::endl;
  return r.all_ok ? 0 : 1;
}

void print_loss(const upa::serve::LossResult& r) {
  std::cout << "sent=" << r.sent << " ok=" << r.ok
            << " rejected=" << r.rejected
            << " deadline_missed=" << r.deadline_missed
            << " transport_errors=" << r.transport_errors
            << " other_errors=" << r.other_errors << "\n"
            << "measured_loss=" << r.measured_loss
            << " mean_latency_s=" << r.mean_latency_seconds
            << " max_latency_s=" << r.max_latency_seconds
            << " offered_rate=" << r.offered_rate << "/s"
            << " wall_s=" << r.wall_seconds << std::endl;
}

int run_loss(const upa::cli::Args& args) {
  upa::serve::LossConfig config;
  config.host = args.get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_size("port", 7077));
  config.lambda = args.get_double("lambda", 150.0);
  config.nu = args.get_double("nu", 100.0);
  config.requests = args.get_size("requests", 1000);
  config.seed = args.get_size("seed", 1);

  const std::size_t workers = args.get_size("workers", 0);
  const std::size_t capacity = args.get_size("capacity", 0);
  require_all_options_used(args);

  const upa::serve::LossResult r = upa::serve::run_loss_workload(config);
  print_loss(r);
  if (workers > 0 && capacity > 0) {
    const double analytic = upa::queueing::mmck_loss_probability(
        config.lambda, config.nu, workers, capacity);
    std::cout << "analytic p_K(i) [i=" << workers << ", K=" << capacity
              << "] = " << analytic
              << "  abs_error=" << std::abs(r.measured_loss - analytic)
              << std::endl;
  }
  return r.transport_errors == r.sent ? 1 : 0;
}

int run_session(const upa::cli::Args& args) {
  upa::serve::SessionConfig config;
  config.host = args.get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_size("port", 7077));
  config.sessions = args.get_size("sessions", 50);
  config.session_rate = args.get_double("session-rate", 20.0);
  config.seed = args.get_size("seed", 1);
  const std::string uclass = args.get("class", "B");
  UPA_REQUIRE(uclass == "A" || uclass == "B", "--class must be A or B");
  config.uclass =
      uclass == "A" ? upa::ta::UserClass::kA : upa::ta::UserClass::kB;
  require_all_options_used(args);

  const upa::serve::SessionResult r = upa::serve::run_session_replay(config);
  std::cout << "class " << uclass << ": sessions=" << r.sessions
            << " completed=" << r.completed << " rejected=" << r.rejected
            << " failed=" << r.failed << "\n"
            << "invocations=" << r.invocations
            << " invocation_failures=" << r.invocation_failures
            << " mean_invocations_per_session="
            << r.mean_invocations_per_session << "\n"
            << "session_success_fraction=" << r.session_success_fraction
            << std::endl;
  return r.completed > 0 ? 0 : 1;
}

struct DesignPoint {
  double lambda;       ///< arrival rate [1/s]
  double nu;           ///< service rate [1/s]
  std::size_t workers; ///< the model's i
  std::size_t capacity;///< the model's K
  std::size_t requests;
};

int run_bench(const upa::cli::Args& args) {
  const std::string out = args.get("out", "BENCH_serve.json");
  const std::uint64_t seed = args.get_size("seed", 1);
  require_all_options_used(args);

  // Three operating regimes of eq. (3): heavy overload, a single
  // saturated server, and a lightly-loaded farm. Request counts keep
  // each point's wall clock to a few seconds while the binomial
  // half-width stays well under the loss being measured.
  const std::vector<DesignPoint> points = {
      {300.0, 100.0, 2, 4, 900},
      {150.0, 100.0, 1, 3, 600},
      {120.0, 100.0, 2, 6, 600},
  };

  bool all_within = true;
  for (const DesignPoint& p : points) {
    upa::serve::ServerConfig sc;
    sc.port = 0;  // ephemeral
    sc.workers = p.workers;
    sc.capacity = p.capacity;
    upa::serve::Server server(std::move(sc));
    server.start();

    upa::serve::LossConfig lc;
    lc.port = server.port();
    lc.lambda = p.lambda;
    lc.nu = p.nu;
    lc.requests = p.requests;
    lc.seed = seed;
    const upa::serve::LossResult r = upa::serve::run_loss_workload(lc);
    server.stop();

    const double analytic = upa::queueing::mmck_loss_probability(
        p.lambda, p.nu, p.workers, p.capacity);
    const double abs_error = std::abs(r.measured_loss - analytic);
    // 4-sigma binomial half-width plus a small allowance for scheduling
    // overhead (connect latency shifts effective arrival spacing).
    const double tolerance =
        4.0 * std::sqrt(analytic * (1.0 - analytic) /
                        static_cast<double>(p.requests)) +
        0.02;
    const bool within = abs_error <= tolerance;
    all_within = all_within && within;

    std::ostringstream section;
    section << "serve_loss_l" << static_cast<int>(p.lambda) << "_i"
            << p.workers << "_k" << p.capacity;
    upa::common::write_bench_json(
        out, section.str(),
        {{"lambda", p.lambda},
         {"nu", p.nu},
         {"workers", static_cast<double>(p.workers)},
         {"capacity", static_cast<double>(p.capacity)},
         {"requests", static_cast<double>(r.sent)},
         {"measured_loss", r.measured_loss},
         {"analytic_loss", analytic},
         {"abs_error", abs_error},
         {"tolerance", tolerance},
         {"within_tolerance", within ? 1.0 : 0.0},
         {"transport_errors", static_cast<double>(r.transport_errors)},
         {"mean_latency_seconds", r.mean_latency_seconds},
         {"offered_rate", r.offered_rate},
         {"wall_seconds", r.wall_seconds}});

    std::cout << section.str() << ": measured=" << r.measured_loss
              << " analytic=" << analytic << " abs_error=" << abs_error
              << " tolerance=" << tolerance
              << (within ? " [within]" : " [OUTSIDE]") << std::endl;
  }
  std::cout << "wrote " << out << std::endl;
  return all_within ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  cli::Args args(argc, argv);
  if (args.has("help") || args.command() == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (!args.command().empty()) {
    std::cerr << "upa_loadgen: unexpected positional argument '"
              << args.command() << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    const std::string mode = args.get("mode", "");
    if (mode != "smoke" && mode != "loss" && mode != "session" &&
        mode != "bench") {
      std::cerr << "upa_loadgen: --mode must be smoke | loss | session | "
                   "bench\n\n";
      print_usage(std::cerr);
      return 2;
    }

    if (mode == "smoke") return run_smoke(args);
    if (mode == "loss") return run_loss(args);
    if (mode == "session") return run_session(args);
    return run_bench(args);
  } catch (const UnknownOption& u) {
    std::cerr << "upa_loadgen: unknown option '--" << u.name << "'\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "upa_loadgen: " << e.what() << "\n";
    return 1;
  }
}
