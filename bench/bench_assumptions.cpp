// Robustness of the paper's Markovian assumptions, checked with the
// discrete-event simulator: how do the loss probability and response
// times change when arrivals stay Poisson but service times are NOT
// exponential (same mean, different variability)? The M/M/i/K formulas
// behind Figures 11/12 are exact only for CV = 1; this bench quantifies
// the model error elsewhere.

#include <cmath>

#include "bench_util.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/queueing/response_time.hpp"
#include "upa/sim/queue_sim.hpp"

namespace {

namespace cm = upa::common;
namespace usim = upa::sim;
namespace uq = upa::queueing;

struct ServiceVariant {
  const char* name;
  usim::Distribution service;
  double cv2;  ///< squared coefficient of variation
};

void print_assumptions() {
  upa::bench::print_header(
      "Assumption robustness",
      "M/M/2/10 formulas vs simulated M/G/2/10 with the same mean service\n"
      "time (10 ms) and arrival rate 180/s. CV^2 = squared coefficient of\n"
      "variation of the service law (1 = exponential = the paper).");

  const double alpha = 180.0;
  const double nu = 100.0;
  const std::size_t servers = 2;
  const std::size_t capacity = 10;
  const double deadline = 0.05;

  // Same mean 0.01 s, different shapes.
  const ServiceVariant variants[] = {
      {"Deterministic (CV^2=0)", usim::Deterministic{0.01}, 0.0},
      {"Erlang-4 (CV^2=0.25)", usim::Erlang{4, 400.0}, 0.25},
      {"Exponential (CV^2=1, model)", usim::Exponential{100.0}, 1.0},
  };

  const double model_loss =
      uq::mmck_loss_probability(alpha, nu, servers, capacity);
  const double model_tail =
      uq::mmck_response_time_tail(alpha, nu, servers, capacity, deadline);
  const double model_w =
      uq::mmck_mean_response_time(alpha, nu, servers, capacity);

  cm::Table t({"service law", "loss prob", "mean response [ms]",
               "P(T > 50ms)"});
  t.set_align(0, cm::Align::kLeft);
  t.add_row({"M/M/2/10 analytic", cm::fmt_sci(model_loss, 3),
             cm::fmt(model_w * 1000.0, 4), cm::fmt_sci(model_tail, 3)});
  for (const ServiceVariant& v : variants) {
    usim::QueueSpec spec;
    spec.interarrival = usim::Exponential{alpha};
    spec.service = v.service;
    spec.servers = servers;
    spec.capacity = capacity;
    usim::QueueSimOptions options;
    options.arrivals_per_replication = 80000;
    options.warmup_arrivals = 4000;
    options.replications = 5;
    options.seed = 60;
    options.deadline = deadline;
    const auto r = usim::simulate_queue(spec, options);
    t.add_row({v.name, cm::fmt_sci(r.loss_probability.mean, 3),
               cm::fmt(r.mean_response.mean * 1000.0, 4),
               cm::fmt_sci(r.deadline_miss.mean, 3)});
  }
  // High-variability case: balanced two-phase hyperexponential with
  // mean 0.01 s and CV^2 = 4 (p = 0.5, rates chosen accordingly).
  {
    // Balanced means: p/r1 = (1-p)/r2 = mean/2; CV^2 set via rate split.
    // Solving for CV^2 = 4: r1 = (1 + sqrt(3/5)) / mean * ... use the
    // standard two-moment fit (p = 0.5 (1 + sqrt((c2-1)/(c2+1)))).
    const double c2 = 4.0;
    const double mean = 0.01;
    const double p = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
    const double r1 = 2.0 * p / mean;
    const double r2 = 2.0 * (1.0 - p) / mean;
    usim::QueueSpec spec;
    spec.interarrival = usim::Exponential{alpha};
    spec.service = usim::HyperExponential{p, r1, r2};
    spec.servers = servers;
    spec.capacity = capacity;
    usim::QueueSimOptions options;
    options.arrivals_per_replication = 80000;
    options.warmup_arrivals = 4000;
    options.replications = 5;
    options.seed = 61;
    options.deadline = deadline;
    const auto r = usim::simulate_queue(spec, options);
    t.add_row({"HyperExp (CV^2=4)", cm::fmt_sci(r.loss_probability.mean, 3),
               cm::fmt(r.mean_response.mean * 1000.0, 4),
               cm::fmt_sci(r.deadline_miss.mean, 3)});
  }
  std::cout << t << "\n";
  std::cout
      << "Low-variability service (deterministic/Erlang) loses FEWER\n"
         "requests than the exponential model predicts; heavy-tailed\n"
         "service loses more and misses deadlines far more often. The\n"
         "paper's availability conclusions are conservative for well-\n"
         "behaved services and optimistic for highly variable ones.\n\n";
}

void bm_hyperexp_queue_sim(benchmark::State& state) {
  usim::QueueSpec spec;
  spec.interarrival = usim::Exponential{180.0};
  spec.service = usim::HyperExponential{0.8873, 177.46, 22.54};
  spec.servers = 2;
  spec.capacity = 10;
  usim::QueueSimOptions options;
  options.arrivals_per_replication = 20000;
  options.warmup_arrivals = 1000;
  options.replications = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(usim::simulate_queue(spec, options));
  }
}
BENCHMARK(bm_hyperexp_queue_sim);

}  // namespace

UPA_BENCH_MAIN(print_assumptions)
