#pragma once
// Monte-Carlo availability estimation, the library's third evaluation
// path (after closed forms and numeric chain solutions):
//  * independent repairable components + a structure function (validates
//    the RBD engine), and
//  * trajectory simulation of an arbitrary CTMC with per-state rewards
//    (validates the web-farm performability models and the GSPN chains).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "upa/markov/ctmc.hpp"
#include "upa/sim/stats.hpp"

namespace upa::obs {
struct Observer;
}  // namespace upa::obs

namespace upa::sim {

/// A repairable component with exponential failure/repair times.
struct ComponentSpec {
  std::string name;
  double failure_rate = 0.0;
  double repair_rate = 0.0;
};

/// Common Monte-Carlo controls.
struct MonteCarloOptions {
  double horizon = 10000.0;       ///< observation span per replication
  double warmup = 0.0;            ///< discarded initial span
  std::size_t replications = 20;  ///< independent replications
  std::uint64_t seed = 42;
  double confidence_level = 0.95;
  /// Optional observability sink (non-owning): the event engine emits one
  /// `sim_event_batch` span and its counters per replication. Never
  /// changes results -- instrumentation records, it does not draw.
  obs::Observer* obs = nullptr;
};

/// Point estimate + confidence interval of a steady-state quantity.
struct MonteCarloEstimate {
  ConfidenceInterval interval;
  std::vector<double> replication_values;
};

/// Steady availability of a system of independently failing/repairing
/// components under a boolean structure function (true = system up, given
/// per-component up/down states in spec order).
[[nodiscard]] MonteCarloEstimate simulate_system_availability(
    const std::vector<ComponentSpec>& components,
    const std::function<bool(const std::vector<bool>&)>& system_up,
    const MonteCarloOptions& options = {});

/// Long-run time-average reward of a CTMC trajectory (reward = 1 for up
/// states and 0 otherwise gives steady availability; reward = 1 - p_K(i)
/// gives the paper's composite performance-availability measure).
[[nodiscard]] MonteCarloEstimate simulate_ctmc_reward(
    const markov::Ctmc& chain, const std::vector<double>& state_rewards,
    std::size_t initial_state, const MonteCarloOptions& options = {});

}  // namespace upa::sim
