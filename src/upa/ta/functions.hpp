#pragma once
// Function-level availabilities (paper Table 6) in two forms: direct
// numeric formulas and symbolic core::Expr equations over named service
// parameters (for gradients / sensitivity reports).

#include <array>
#include <string>

#include "upa/core/expr.hpp"
#include "upa/ta/services.hpp"

namespace upa::ta {

/// The five user-visible functions of the travel agency.
enum class TaFunction { kHome, kBrowse, kSearch, kBook, kPay };

inline constexpr std::array<TaFunction, 5> kAllFunctions = {
    TaFunction::kHome, TaFunction::kBrowse, TaFunction::kSearch,
    TaFunction::kBook, TaFunction::kPay};

[[nodiscard]] std::string function_name(TaFunction f);

/// Table 6 numeric evaluation with the given service availabilities.
[[nodiscard]] double function_availability(TaFunction f,
                                           const ServiceAvailabilities& s,
                                           const TaParameters& p);

/// Symbolic Table 6 equation over parameters named
/// "Anet","ALAN","AWS","AAS","ADS","AFlight","AHotel","ACar","APS"
/// (branch probabilities are baked in as constants from `p`).
[[nodiscard]] core::Expr function_expr(TaFunction f, const TaParameters& p);

/// Parameter valuation matching function_expr's names.
[[nodiscard]] core::Params service_params(const ServiceAvailabilities& s);

}  // namespace upa::ta
