#include "upa/dispatch/front.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/protocol.hpp"

namespace upa::dispatch {

namespace {

constexpr std::size_t kMaxLineBytes = 1 << 20;
constexpr int kAcceptPollMillis = 100;
constexpr std::size_t kOutcomeCount = 5;  // AttemptOutcome cardinality

void set_io_timeouts(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer, 0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer.size() > kMaxLineBytes) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

AttemptOutcome from_call_outcome(serve::CallOutcome outcome) {
  switch (outcome) {
    case serve::CallOutcome::kOk: return AttemptOutcome::kOk;
    case serve::CallOutcome::kRejected: return AttemptOutcome::kRejected;
    case serve::CallOutcome::kDeadline: return AttemptOutcome::kDeadline;
    case serve::CallOutcome::kError: return AttemptOutcome::kError;
    case serve::CallOutcome::kTransportError:
      return AttemptOutcome::kTransport;
  }
  return AttemptOutcome::kTransport;
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Front::Front(FrontConfig config)
    : config_(std::move(config)),
      pool_(config_.upstreams),
      balancer_(pool_, config_.policy),
      jitter_rng_(config_.retry.jitter_seed) {
  UPA_REQUIRE(config_.workers >= 1, "FrontConfig.workers must be >= 1");
  UPA_REQUIRE(config_.max_clients >= config_.workers,
              "FrontConfig.max_clients must be >= workers");
  UPA_REQUIRE(config_.read_timeout_seconds > 0.0,
              "FrontConfig.read_timeout_seconds must be > 0");
  UPA_REQUIRE(config_.upstream_connect_timeout_seconds > 0.0,
              "FrontConfig.upstream_connect_timeout_seconds must be > 0");
  UPA_REQUIRE(config_.upstream_call_timeout_seconds > 0.0,
              "FrontConfig.upstream_call_timeout_seconds must be > 0");
  UPA_REQUIRE(config_.retry.max_attempts >= 1,
              "RetryConfig.max_attempts must be >= 1");
  UPA_REQUIRE(config_.retry.backoff_initial_seconds >= 0.0 &&
                  config_.retry.backoff_max_seconds >=
                      config_.retry.backoff_initial_seconds,
              "RetryConfig backoff bounds must satisfy 0 <= initial <= max");
  UPA_REQUIRE(config_.retry.jitter >= 0.0 && config_.retry.jitter <= 1.0,
              "RetryConfig.jitter must be in [0, 1]");
  check_health_config(config_.health);
  health_ = std::make_unique<HealthChecker>(pool_, config_.health);
  latency_by_outcome_.reserve(kOutcomeCount);
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    latency_by_outcome_.emplace_back(obs::geometric_buckets(1e-4, 2.0, 18));
  }
}

Front::~Front() { stop(); }

void Front::start() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  UPA_REQUIRE(!started_, "Front::start called twice");

  // SOCK_CLOEXEC: replica restarts fork from this process mid-run; a
  // child inheriting live sockets would suppress EOF for every peer.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  UPA_REQUIRE(listen_fd_ >= 0,
              std::string("socket() failed: ") + std::strerror(errno));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("FrontConfig.bind_address is not an IPv4 "
                             "address: " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("bind(" + config_.bind_address + ":" +
                             std::to_string(config_.port) +
                             ") failed: " + reason);
  }
  if (::listen(listen_fd_, 256) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("listen() failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    queue_.clear();
    in_system_ = 0;
  }
  accept_stop_.store(false);
  started_ = true;
  running_.store(true);

  health_->start();  // initial sweep runs before any traffic is forwarded
  acceptor_ = std::thread([this] { acceptor_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Front::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const int fd : parked_fds_) ::shutdown(fd, SHUT_RD);
  }
  accept_stop_.store(true);
  work_ready_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  health_->stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
  running_.store(false);
}

FrontStats Front::stats() const {
  FrontStats s;
  s.accepted = accepted_.load();
  s.rejected = rejected_.load();
  s.completed = completed_.load();
  s.requests = requests_.load();
  s.forwarded_ok = forwarded_ok_.load();
  s.forwarded_rejected = forwarded_rejected_.load();
  s.forwarded_deadline = forwarded_deadline_.load();
  s.forwarded_error = forwarded_error_.load();
  s.forwarded_transport = forwarded_transport_.load();
  s.retries = retries_.load();
  s.failovers = failovers_.load();
  s.retries_exhausted = retries_exhausted_.load();
  s.stats_served = stats_served_.load();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.in_system = in_system_;
  }
  s.max_in_system = max_in_system_.load();
  return s;
}

std::vector<UpstreamSnapshot> Front::upstreams() const {
  return pool_.snapshot();
}

void Front::publish_metrics(obs::MetricsRegistry& metrics) const {
  const FrontStats s = stats();
  metrics.gauge("dispatch.accepted").set(static_cast<double>(s.accepted));
  metrics.gauge("dispatch.rejected").set(static_cast<double>(s.rejected));
  metrics.gauge("dispatch.requests").set(static_cast<double>(s.requests));
  metrics.gauge("dispatch.forwarded_ok")
      .set(static_cast<double>(s.forwarded_ok));
  metrics.gauge("dispatch.forwarded_rejected")
      .set(static_cast<double>(s.forwarded_rejected));
  metrics.gauge("dispatch.forwarded_deadline")
      .set(static_cast<double>(s.forwarded_deadline));
  metrics.gauge("dispatch.forwarded_error")
      .set(static_cast<double>(s.forwarded_error));
  metrics.gauge("dispatch.forwarded_transport")
      .set(static_cast<double>(s.forwarded_transport));
  metrics.gauge("dispatch.retries").set(static_cast<double>(s.retries));
  metrics.gauge("dispatch.failovers").set(static_cast<double>(s.failovers));
  metrics.gauge("dispatch.retries_exhausted")
      .set(static_cast<double>(s.retries_exhausted));
  for (const UpstreamSnapshot& u : pool_.snapshot()) {
    const std::string prefix = "dispatch.upstream." + u.address.label();
    metrics.gauge(prefix + ".healthy").set(u.healthy ? 1.0 : 0.0);
    metrics.gauge(prefix + ".attempts")
        .set(static_cast<double>(u.attempts));
    metrics.gauge(prefix + ".ok").set(static_cast<double>(u.ok));
    metrics.gauge(prefix + ".rejected")
        .set(static_cast<double>(u.rejected));
    metrics.gauge(prefix + ".transport")
        .set(static_cast<double>(u.transport));
    metrics.gauge(prefix + ".ejections")
        .set(static_cast<double>(u.ejections));
    metrics.gauge(prefix + ".readmissions")
        .set(static_cast<double>(u.readmissions));
  }
  std::lock_guard<std::mutex> lock(latency_mutex_);
  for (std::size_t i = 0; i < latency_by_outcome_.size(); ++i) {
    const std::string name =
        "dispatch.attempt_latency_seconds." +
        attempt_outcome_name(static_cast<AttemptOutcome>(i));
    metrics.histogram(name, latency_by_outcome_[i].upper_bounds())
        .merge_from(latency_by_outcome_[i]);
  }
}

ForwardAttempt Front::attempt_once(std::size_t index,
                                   const std::string& line,
                                   std::string& response_out) {
  const UpstreamAddress& address = pool_.address(index);
  pool_.begin_call(index);
  const Clock::time_point begin = Clock::now();
  ForwardAttempt attempt;
  attempt.upstream_index = index;
  try {
    serve::Client client;
    client.connect(address.host, address.port,
                   config_.upstream_connect_timeout_seconds,
                   config_.upstream_call_timeout_seconds);
    response_out = client.call_line(line);
    attempt.outcome =
        from_call_outcome(serve::classify_response(response_out).outcome);
  } catch (const std::exception&) {
    attempt.outcome = AttemptOutcome::kTransport;
    response_out.clear();
  }
  const double latency = seconds_between(begin, Clock::now());
  pool_.end_call(index, attempt.outcome, latency);
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    latency_by_outcome_[static_cast<std::size_t>(attempt.outcome)].record(
        latency);
    if (config_.obs != nullptr) {
      config_.obs->metrics.counter("dispatch.attempts").add(1);
      config_.obs->metrics
          .counter("dispatch.attempt." +
                   attempt_outcome_name(attempt.outcome))
          .add(1);
    }
  }
  return attempt;
}

void Front::backoff_sleep(std::size_t retry_number) {
  double delay = config_.retry.backoff_initial_seconds *
                 std::pow(2.0, static_cast<double>(retry_number - 1));
  delay = std::min(delay, config_.retry.backoff_max_seconds);
  if (delay <= 0.0) return;
  double u = 0.0;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    u = jitter_rng_.uniform01();
  }
  delay *= 1.0 - config_.retry.jitter * u;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

std::string Front::exhausted_envelope(
    const std::string& request_line,
    const std::vector<ForwardAttempt>& attempts) const {
  serve::Json id;
  try {
    const serve::Json request = serve::parse_json(request_line);
    if (const serve::Json* i = request.find("id"); i != nullptr) id = *i;
  } catch (const std::exception&) {
    // id stays null, like the upstreams' own unparseable-line envelopes
  }
  serve::Json trail = serve::Json::array();
  for (const ForwardAttempt& a : attempts) {
    serve::Json entry = serve::Json::object();
    entry.set("upstream", serve::Json(pool_.address(a.upstream_index).label()));
    entry.set("outcome", serve::Json(attempt_outcome_name(a.outcome)));
    trail.push_back(std::move(entry));
  }
  // Same member order as make_error_response, plus the attempt trail.
  serve::Json error = serve::Json::object();
  error.set("code", serve::Json(serve::ErrorCode::kQueueFull));
  error.set("message", serve::Json("retries_exhausted"));
  error.set("attempts", std::move(trail));
  serve::Json envelope = serve::Json::object();
  envelope.set("id", id);
  envelope.set("ok", serve::Json(false));
  envelope.set("error", std::move(error));
  return envelope.dump();
}

ForwardResult Front::forward_line(const std::string& request_line) {
  ForwardResult out;
  const std::vector<std::size_t> order =
      balancer_.pick(affinity_key(request_line));
  const std::size_t budget = config_.retry.max_attempts;

  for (std::size_t attempt_no = 0; attempt_no < budget; ++attempt_no) {
    // Walk the balancer's preference order: healthy replicas first, so
    // for budget <= N every retry lands on a different, untried
    // replica; past N the walk wraps (better a repeat than a give-up).
    const std::size_t index = order[attempt_no % order.size()];
    if (attempt_no > 0) {
      retries_.fetch_add(1);
      if (index != out.attempts.back().upstream_index) {
        failovers_.fetch_add(1);
      }
      backoff_sleep(attempt_no);
    }
    std::string response;
    const ForwardAttempt attempt = attempt_once(index, request_line,
                                                response);
    out.attempts.push_back(attempt);
    if (attempt.outcome == AttemptOutcome::kOk ||
        attempt.outcome == AttemptOutcome::kError) {
      // Definitive answers pass through verbatim; 400/404/500 are
      // deterministic and would only be recomputed by a retry.
      out.response_line = std::move(response);
      out.final_outcome = attempt.outcome;
      return out;
    }
  }

  out.exhausted = true;
  out.final_outcome = out.attempts.back().outcome;
  out.response_line = exhausted_envelope(request_line, out.attempts);
  retries_exhausted_.fetch_add(1);
  return out;
}

std::string Front::dispatch_stats_line(const std::string& line) {
  stats_served_.fetch_add(1);
  serve::Json id;
  try {
    const serve::Json request = serve::parse_json(line);
    if (const serve::Json* i = request.find("id"); i != nullptr) id = *i;
  } catch (const std::exception&) {
  }
  const FrontStats s = stats();
  serve::Json result = serve::Json::object();
  result.set("policy", serve::Json(balance_policy_name(config_.policy)));
  result.set("upstream_count", serve::Json(pool_.size()));
  result.set("requests", serve::Json(static_cast<double>(s.requests)));
  result.set("forwarded_ok",
             serve::Json(static_cast<double>(s.forwarded_ok)));
  result.set("forwarded_rejected",
             serve::Json(static_cast<double>(s.forwarded_rejected)));
  result.set("forwarded_deadline",
             serve::Json(static_cast<double>(s.forwarded_deadline)));
  result.set("forwarded_error",
             serve::Json(static_cast<double>(s.forwarded_error)));
  result.set("forwarded_transport",
             serve::Json(static_cast<double>(s.forwarded_transport)));
  result.set("retries", serve::Json(static_cast<double>(s.retries)));
  result.set("failovers", serve::Json(static_cast<double>(s.failovers)));
  result.set("retries_exhausted",
             serve::Json(static_cast<double>(s.retries_exhausted)));
  serve::Json upstreams = serve::Json::array();
  for (const UpstreamSnapshot& u : pool_.snapshot()) {
    serve::Json entry = serve::Json::object();
    entry.set("address", serve::Json(u.address.label()));
    entry.set("healthy", serve::Json(u.healthy));
    entry.set("outstanding", serve::Json(u.outstanding));
    entry.set("attempts", serve::Json(static_cast<double>(u.attempts)));
    entry.set("ok", serve::Json(static_cast<double>(u.ok)));
    entry.set("rejected", serve::Json(static_cast<double>(u.rejected)));
    entry.set("deadline", serve::Json(static_cast<double>(u.deadline)));
    entry.set("errors", serve::Json(static_cast<double>(u.errors)));
    entry.set("transport", serve::Json(static_cast<double>(u.transport)));
    entry.set("probe_failures",
              serve::Json(static_cast<double>(u.probe_failures)));
    entry.set("ejections", serve::Json(static_cast<double>(u.ejections)));
    entry.set("readmissions",
              serve::Json(static_cast<double>(u.readmissions)));
    upstreams.push_back(std::move(entry));
  }
  result.set("upstreams", std::move(upstreams));
  return serve::make_result_response(id, std::move(result)).dump();
}

std::string Front::respond_line(const std::string& line) {
  requests_.fetch_add(1);
  bool is_dispatch_stats = false;
  try {
    const serve::Json request = serve::parse_json(line);
    if (const serve::Json* m = request.find("method");
        m != nullptr && m->is_string() &&
        m->as_string() == "dispatch_stats") {
      is_dispatch_stats = true;
    }
  } catch (const std::exception&) {
    // Unparseable lines are forwarded anyway: the upstream produces the
    // canonical 400 envelope, keeping responses byte-identical to a
    // direct connection.
  }
  if (is_dispatch_stats) return dispatch_stats_line(line);

  const ForwardResult fr = forward_line(line);
  // Counters classify the response the client actually got: a spent
  // budget surfaces as the 503 retries_exhausted envelope, so it counts
  // as a rejection regardless of how the last attempt died.
  const AttemptOutcome client_visible =
      fr.exhausted ? AttemptOutcome::kRejected : fr.final_outcome;
  switch (client_visible) {
    case AttemptOutcome::kOk: forwarded_ok_.fetch_add(1); break;
    case AttemptOutcome::kRejected: forwarded_rejected_.fetch_add(1); break;
    case AttemptOutcome::kDeadline: forwarded_deadline_.fetch_add(1); break;
    case AttemptOutcome::kError: forwarded_error_.fetch_add(1); break;
    case AttemptOutcome::kTransport:
      forwarded_transport_.fetch_add(1);
      break;
  }
  return fr.response_line;
}

void Front::acceptor_loop() {
  const std::string reject_line =
      serve::make_error_response(serve::Json(), serve::ErrorCode::kQueueFull,
                                 "dispatcher at max_clients (" +
                                     std::to_string(config_.max_clients) +
                                     ")")
          .dump() +
      "\n";

  while (!accept_stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_ && in_system_ < config_.max_clients) {
        ++in_system_;
        std::size_t seen = max_in_system_.load();
        while (in_system_ > seen &&
               !max_in_system_.compare_exchange_weak(seen, in_system_)) {
        }
        queue_.push_back(Job{fd});
        admitted = true;
      }
    }
    if (admitted) {
      accepted_.fetch_add(1);
      work_ready_.notify_one();
      continue;
    }

    rejected_.fetch_add(1);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    (void)::send(fd, reject_line.data(), reject_line.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
}

void Front::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
    }
    handle_connection(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_system_;
    }
    completed_.fetch_add(1);
  }
}

void Front::handle_connection(const Job& job) {
  set_io_timeouts(job.fd, config_.read_timeout_seconds);
  std::string buffer;
  bool first_request = true;
  for (;;) {
    std::string line;
    if (first_request) {
      if (!read_line(job.fd, buffer, line)) break;
    } else {
      if (!park_for_next_request(job.fd)) break;
      const bool got = read_line(job.fd, buffer, line);
      unpark(job.fd);
      if (!got) break;
    }
    first_request = false;
    if (line.empty()) continue;
    const std::string response = respond_line(line);
    if (!send_all(job.fd, response + "\n")) break;
  }
  ::close(job.fd);
}

bool Front::park_for_next_request(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  parked_fds_.push_back(fd);
  return true;
}

void Front::unpark(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = parked_fds_.begin(); it != parked_fds_.end(); ++it) {
    if (*it == fd) {
      parked_fds_.erase(it);
      return;
    }
  }
}

}  // namespace upa::dispatch
