#pragma once
// Scripted fault injection: a FaultPlan is a set of deterministic outage
// windows overlaid on the sampled resource trajectories of the end-to-end
// simulation. During a window the targeted resource class is forced down
// regardless of what its stochastic availability model says, so what-if
// campaigns ("the web farm loses power for two hours") can be replayed
// against the same resource history and compared at identical seeds.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace upa::inject {

/// Resource classes of the travel agency that an outage window can force
/// down. A target covers the whole class (every replica): scripted faults
/// model common-cause events the per-component stochastic models cannot.
enum class FaultTarget {
  kInternet,
  kLan,
  kWebFarm,
  kApplication,
  kDatabase,
  kDisks,
  kFlight,
  kHotel,
  kCar,
  kPayment,
};

inline constexpr std::array<FaultTarget, 10> kAllFaultTargets = {
    FaultTarget::kInternet, FaultTarget::kLan,      FaultTarget::kWebFarm,
    FaultTarget::kApplication, FaultTarget::kDatabase, FaultTarget::kDisks,
    FaultTarget::kFlight,   FaultTarget::kHotel,    FaultTarget::kCar,
    FaultTarget::kPayment,
};

[[nodiscard]] std::string fault_target_name(FaultTarget t);

/// Parses the names printed by fault_target_name ("web-farm", "lan", ...);
/// throws ModelError on unknown names (with the valid list in the message).
[[nodiscard]] FaultTarget fault_target_from_name(const std::string& name);

/// One scripted outage: `target` is down on [start, start + duration).
struct FaultWindow {
  FaultTarget target = FaultTarget::kWebFarm;
  double start_hours = 0.0;
  double duration_hours = 0.0;

  [[nodiscard]] double end_hours() const noexcept {
    return start_hours + duration_hours;
  }
};

/// An ordered collection of outage windows. Windows may overlap (they
/// merge naturally: a resource is down when any covering window is open).
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultTarget target, double start_hours,
                 double duration_hours);
  FaultPlan& add(const FaultWindow& window);

  [[nodiscard]] bool empty() const noexcept { return windows_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return windows_.size(); }
  [[nodiscard]] const std::vector<FaultWindow>& windows() const noexcept {
    return windows_;
  }

  /// Throws ModelError unless every window is finite, has positive
  /// duration, starts at >= 0, and ends within the horizon.
  void validate(double horizon_hours) const;

  /// True when `target` is inside an open outage window at time `t`.
  [[nodiscard]] bool forced_down(FaultTarget target, double t) const;

  /// Merged outage intervals of one target, sorted by start time.
  [[nodiscard]] std::vector<std::pair<double, double>> merged_windows(
      FaultTarget target) const;

  /// Fraction of [0, horizon] the target spends forced down (windows
  /// merged and clipped to the horizon).
  [[nodiscard]] double down_fraction(FaultTarget target,
                                     double horizon_hours) const;

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace upa::inject
