#include "upa/serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "upa/common/error.hpp"

namespace upa::serve {

namespace {

/// Protocol guard: a request line longer than this is a client bug, not
/// a workload; the connection is dropped instead of buffering unbounded.
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// How often the acceptor re-checks the stop flag while idle.
constexpr int kAcceptPollMillis = 100;

/// Bounds both directions of socket I/O. The send timeout matters as
/// much as the recv one: without it a client that stops reading (full
/// socket buffer) pins a worker in send_all forever, and stop() can
/// never join that worker.
void set_io_timeouts(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Writes the whole buffer; false on a broken/slow peer. MSG_NOSIGNAL
/// keeps a disappeared client from killing the process with SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Pulls one '\n'-terminated line out of (buffer + socket). Returns
/// false on EOF, timeout, error, or an over-long line.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer, 0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer.size() > kMaxLineBytes) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF, timeout (EAGAIN), or hard error
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// The one-line 503 envelope written to a connection that arrives while
/// the system already holds K admitted connections.
std::string make_reject_line(std::size_t capacity) {
  return make_error_response(Json(), ErrorCode::kQueueFull,
                             "server queue full (capacity " +
                                 std::to_string(capacity) + ")")
             .dump() +
         "\n";
}

/// Optional size param for the reconfigure RPC: absent -> 0 ("keep").
/// Throws ModelError on anything but a nonnegative integer number.
std::size_t reconfigure_param(const Json& params, const char* name) {
  if (!params.is_object()) return 0;
  const Json* v = params.find(name);
  if (v == nullptr) return 0;
  UPA_REQUIRE(v->is_number(), std::string("param '") + name +
                                  "' must be a number");
  const double value = v->as_number();
  UPA_REQUIRE(value >= 0.0 && value == std::floor(value) &&
                  value <= 1e6,
              std::string("param '") + name +
                  "' must be an integer in [0, 1e6]");
  return static_cast<std::size_t>(value);
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      latency_(obs::geometric_buckets(1e-4, 2.0, 18)) {
  UPA_REQUIRE(config_.workers >= 1, "ServerConfig.workers must be >= 1");
  UPA_REQUIRE(config_.capacity >= config_.workers,
              "ServerConfig.capacity must be >= workers (K >= i)");
  UPA_REQUIRE(config_.deadline_seconds >= 0.0,
              "ServerConfig.deadline_seconds must be >= 0");
  UPA_REQUIRE(config_.read_timeout_seconds > 0.0,
              "ServerConfig.read_timeout_seconds must be > 0");
  workers_target_ = config_.workers;
  capacity_limit_ = config_.capacity;
  reject_line_ = make_reject_line(capacity_limit_);
  dispatcher_.register_method("stats", [this](const Json&) {
    const ServerStats s = stats();
    Json out = Json::object();
    out.set("workers", Json(s.workers));
    out.set("capacity", Json(s.capacity));
    out.set("accepted", Json(static_cast<double>(s.accepted)));
    out.set("rejected", Json(static_cast<double>(s.rejected)));
    out.set("completed", Json(static_cast<double>(s.completed)));
    out.set("requests", Json(static_cast<double>(s.requests)));
    out.set("deadline_missed", Json(static_cast<double>(s.deadline_missed)));
    out.set("protocol_errors", Json(static_cast<double>(s.protocol_errors)));
    out.set("in_system", Json(s.in_system));
    out.set("max_in_system", Json(s.max_in_system));
    out.set("retiring", Json(s.retiring));
    out.set("reconfigures", Json(static_cast<double>(s.reconfigures)));
    out.set("busy_seconds", Json(s.busy_seconds));
    out.set("handled_requests",
            Json(static_cast<double>(s.handled_requests)));
    Json method_latency = Json::object();
    {
      std::lock_guard<std::mutex> lock(latency_mutex_);
      for (const auto& [name, histogram] : latency_by_method_) {
        if (histogram.count() == 0) continue;
        Json m = histogram_json(histogram);
        m.set("mean", Json(histogram.sum() /
                           static_cast<double>(histogram.count())));
        method_latency.set(name, std::move(m));
      }
    }
    out.set("method_latency", std::move(method_latency));
    return out;
  });
  dispatcher_.register_method("reconfigure", [this](const Json& params) {
    const std::size_t workers = reconfigure_param(params, "workers");
    const std::size_t capacity = reconfigure_param(params, "capacity");
    UPA_REQUIRE(workers > 0 || capacity > 0,
                "reconfigure requires 'workers' and/or 'capacity'");
    const ReconfigureResult r = reconfigure(workers, capacity);
    Json out = Json::object();
    out.set("workers", Json(r.workers));
    out.set("capacity", Json(r.capacity));
    out.set("previous_workers", Json(r.previous_workers));
    out.set("previous_capacity", Json(r.previous_capacity));
    out.set("retiring", Json(r.retiring));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      out.set("in_system", Json(in_system_));
    }
    return out;
  });
  // One handler-latency histogram per registered method, plus a catch-
  // all for unknown-method / unparseable requests. Built once here so
  // the per-request path is a map find, never an insert.
  for (const std::string& name : dispatcher_.method_names()) {
    latency_by_method_.emplace(name,
                               obs::Histogram(latency_.upper_bounds()));
  }
  latency_by_method_.emplace("other",
                             obs::Histogram(latency_.upper_bounds()));
}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  UPA_REQUIRE(!started_, "Server::start called twice");

  // SOCK_CLOEXEC: a fork+exec elsewhere in the process (the farm
  // orchestrator restarting a replica) must not leak this socket into
  // the child, where a lingering duplicate would keep peers from ever
  // seeing EOF.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  UPA_REQUIRE(listen_fd_ >= 0,
              std::string("socket() failed: ") + std::strerror(errno));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("ServerConfig.bind_address is not an IPv4 "
                             "address: " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("bind(" + config_.bind_address + ":" +
                             std::to_string(config_.port) +
                             ") failed: " + reason);
  }
  if (::listen(listen_fd_, 256) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("listen() failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  std::size_t initial_workers = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    queue_.clear();
    in_system_ = 0;
    exited_worker_ids_.clear();
    // A restart resumes at the last configured targets, which may have
    // been retargeted by reconfigure() since construction.
    active_workers_ = workers_target_;
    initial_workers = workers_target_;
  }
  accept_stop_.store(false);
  started_at_ = Clock::now();

  TelemetryStreamerOptions telemetry;
  telemetry.process = config_.telemetry_process.empty()
                          ? "upa_served:" + std::to_string(port_)
                          : config_.telemetry_process;
  telemetry.io_timeout_seconds = config_.read_timeout_seconds;
  telemetry.fill_metrics = [this](obs::MetricsRegistry& metrics) {
    publish_metrics(metrics);
  };
  telemetry.copy_spans = [this](std::size_t& cursor) {
    std::vector<obs::Span> out;
    std::lock_guard<std::mutex> lock(latency_mutex_);
    if (config_.obs == nullptr) return out;
    const std::vector<obs::Span>& spans = config_.obs->tracer.spans();
    for (; cursor < spans.size(); ++cursor) out.push_back(spans[cursor]);
    return out;
  };
  telemetry.dropped_spans = [this]() -> std::uint64_t {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    return config_.obs == nullptr ? 0 : config_.obs->tracer.dropped();
  };
  telemetry_ = std::make_unique<TelemetryStreamer>(std::move(telemetry));

  started_ = true;
  running_.store(true);

  acceptor_ = std::thread([this] { acceptor_loop(); });
  {
    std::lock_guard<std::mutex> pool_lock(workers_mutex_);
    workers_.reserve(initial_workers);
    for (std::size_t w = 0; w < initial_workers; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Wake connections parked in recv between requests: SHUT_RD makes
    // their recv return 0 at once, so the drain never waits out a read
    // timeout on an idle kept-alive client. Safe under mutex_: a worker
    // closes an fd only after unparking it.
    for (const int fd : parked_fds_) ::shutdown(fd, SHUT_RD);
  }
  accept_stop_.store(true);
  work_ready_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  // Pop-loop join: workers_mutex_ is never held while joining a running
  // worker, because a worker applying the reconfigure RPC needs it. Any
  // thread a racing reconfigure spawns is pushed under workers_mutex_
  // while its spawning worker is still alive -- hence still being
  // joined here -- so this loop always finds every handle.
  for (;;) {
    std::thread victim;
    {
      std::lock_guard<std::mutex> pool_lock(workers_mutex_);
      if (workers_.empty()) break;
      victim = std::move(workers_.back());
      workers_.pop_back();
    }
    if (victim.joinable()) victim.join();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    exited_worker_ids_.clear();
    active_workers_ = 0;
  }
  if (telemetry_ != nullptr) telemetry_->stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
  running_.store(false);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load();
  s.rejected = rejected_.load();
  s.completed = completed_.load();
  s.requests = requests_.load();
  s.deadline_missed = deadline_missed_.load();
  s.protocol_errors = protocol_errors_.load();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.in_system = in_system_;
    s.workers = workers_target_;
    s.capacity = capacity_limit_;
    s.retiring = active_workers_ > workers_target_
                     ? active_workers_ - workers_target_
                     : 0;
  }
  s.max_in_system = max_in_system_.load();
  s.reconfigures = reconfigures_.load();
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    s.busy_seconds = busy_seconds_;
    s.handled_requests = handled_requests_;
  }
  return s;
}

ReconfigureResult Server::reconfigure(std::size_t workers,
                                      std::size_t capacity) {
  std::lock_guard<std::mutex> pool_lock(workers_mutex_);
  ReconfigureResult r;
  std::size_t spawn = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    UPA_REQUIRE(running_.load(), "reconfigure requires a started server");
    UPA_REQUIRE(!stopping_, "server is draining; reconfigure refused");
    const std::size_t new_workers =
        workers == 0 ? workers_target_ : workers;
    const std::size_t new_capacity =
        capacity == 0 ? capacity_limit_ : capacity;
    UPA_REQUIRE(new_workers >= 1, "reconfigure: workers must be >= 1");
    UPA_REQUIRE(new_capacity >= new_workers,
                "reconfigure: capacity must be >= workers (K >= i)");
    r.previous_workers = workers_target_;
    r.previous_capacity = capacity_limit_;
    r.workers = new_workers;
    r.capacity = new_capacity;
    if (new_capacity != capacity_limit_) {
      // The admission bound swaps atomically with the 503 text: the
      // acceptor reads both under this mutex, so no connection is ever
      // judged against one K and told about another. Lowering K below
      // the current occupancy evicts nothing -- the bound applies at
      // admission only and occupancy decays to it as work completes.
      capacity_limit_ = new_capacity;
      reject_line_ = make_reject_line(capacity_limit_);
    }
    workers_target_ = new_workers;
    if (active_workers_ < workers_target_) {
      // Pre-credit the spawns under mutex_ so a concurrent shrink
      // computed against active_workers_ never double-retires.
      spawn = workers_target_ - active_workers_;
      active_workers_ = workers_target_;
    }
    r.retiring = active_workers_ > workers_target_
                     ? active_workers_ - workers_target_
                     : 0;
  }
  reap_exited_workers();
  for (std::size_t w = 0; w < spawn; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  reconfigures_.fetch_add(1);
  // Shrinks need idle workers to notice the lowered target; grows need
  // a backlog handed to the fresh threads at once.
  work_ready_.notify_all();
  return r;
}

void Server::reap_exited_workers() {
  std::vector<std::thread::id> exited;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    exited.swap(exited_worker_ids_);
  }
  // These threads already returned from worker_loop(), so joining them
  // under workers_mutex_ cannot wait on anything that needs it.
  for (const std::thread::id id : exited) {
    for (auto it = workers_.begin(); it != workers_.end(); ++it) {
      if (it->get_id() == id) {
        it->join();
        workers_.erase(it);
        break;
      }
    }
  }
}

void Server::publish_metrics(obs::MetricsRegistry& metrics) const {
  const ServerStats s = stats();
  metrics.gauge("serve.accepted").set(static_cast<double>(s.accepted));
  metrics.gauge("serve.rejected").set(static_cast<double>(s.rejected));
  metrics.gauge("serve.completed").set(static_cast<double>(s.completed));
  metrics.gauge("serve.requests").set(static_cast<double>(s.requests));
  metrics.gauge("serve.deadline_missed")
      .set(static_cast<double>(s.deadline_missed));
  metrics.gauge("serve.protocol_errors")
      .set(static_cast<double>(s.protocol_errors));
  metrics.gauge("serve.queue_depth").set(static_cast<double>(s.in_system));
  metrics.gauge("serve.queue_depth_max")
      .set(static_cast<double>(s.max_in_system));
  metrics.gauge("serve.workers").set(static_cast<double>(s.workers));
  metrics.gauge("serve.capacity").set(static_cast<double>(s.capacity));
  metrics.gauge("serve.retiring").set(static_cast<double>(s.retiring));
  metrics.gauge("serve.reconfigures")
      .set(static_cast<double>(s.reconfigures));
  metrics.gauge("serve.busy_seconds").set(s.busy_seconds);
  metrics.gauge("serve.handled_requests")
      .set(static_cast<double>(s.handled_requests));
  std::lock_guard<std::mutex> lock(latency_mutex_);
  metrics
      .histogram("serve.request_latency_seconds", latency_.upper_bounds())
      .merge_from(latency_);
  for (const auto& [name, histogram] : latency_by_method_) {
    if (histogram.count() == 0) continue;
    metrics
        .histogram("serve.method_latency_seconds." + name,
                   histogram.upper_bounds())
        .merge_from(histogram);
  }
}

void Server::acceptor_loop() {
  while (!accept_stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;  // timeout tick or EINTR: re-check stop flag
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;

    // The admission bound and its 503 text are reconfigurable at
    // runtime, so both are read under mutex_ per connection -- the
    // rejection a client sees always names the K it was judged against.
    bool admitted = false;
    std::string reject_line;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_ && in_system_ < capacity_limit_) {
        ++in_system_;
        std::size_t seen = max_in_system_.load();
        while (in_system_ > seen &&
               !max_in_system_.compare_exchange_weak(seen, in_system_)) {
        }
        queue_.push_back(Job{fd, Clock::now()});
        admitted = true;
      } else {
        reject_line = reject_line_;
      }
    }
    if (admitted) {
      accepted_.fetch_add(1);
      work_ready_.notify_one();
      continue;
    }

    // Reject without ever blocking the accept loop: the socket is made
    // non-blocking, one short send is attempted (a fresh connection's
    // send buffer always has room for ~100 bytes; if not, the client
    // sees the close alone), and the connection is dropped unread.
    rejected_.fetch_add(1);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    (void)::send(fd, reject_line.data(), reject_line.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] {
        return !queue_.empty() || stopping_ ||
               active_workers_ > workers_target_;
      });
      if (!stopping_ && active_workers_ > workers_target_) {
        // Drain-aware shrink: the retire check sits between requests,
        // so a worker only ever leaves with no job in hand -- an
        // in-flight request is never killed by a resize. The id is
        // recorded for reap_exited_workers(); the handle stays in
        // workers_ until a later reconfigure or stop() joins it.
        --active_workers_;
        exited_worker_ids_.push_back(std::this_thread::get_id());
        return;
      }
      if (queue_.empty()) {
        // Stopping and fully drained.
        --active_workers_;
        exited_worker_ids_.push_back(std::this_thread::get_id());
        return;
      }
      job = queue_.front();
      queue_.pop_front();
    }
    handle_connection(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_system_;
    }
    completed_.fetch_add(1);
  }
}

void Server::handle_connection(const Job& job) {
  set_io_timeouts(job.fd, config_.read_timeout_seconds);
  const std::uint64_t conn = conn_serial_.fetch_add(1) + 1;
  std::uint64_t seq = 0;
  std::string buffer;
  bool first_request = true;
  for (;;) {
    std::string line;
    // The first request is always served -- its connection was admitted
    // -- but between requests the fd is parked so stop() can wake the
    // blocking recv and end the drain immediately.
    if (first_request) {
      if (!read_line(job.fd, buffer, line)) break;
    } else {
      if (!park_for_next_request(job.fd)) break;
      const bool got = read_line(job.fd, buffer, line);
      unpark(job.fd);
      if (!got) break;
    }
    if (line.empty()) continue;
    switch (maybe_subscribe(job.fd, line)) {
      case 1:
        // The telemetry streamer owns the fd now; the worker slot is
        // released when this returns (a long-lived subscriber must not
        // consume one of the model's K admission slots).
        return;
      case 2:
        first_request = false;
        continue;
      default:
        break;
    }
    const Clock::time_point line_read = Clock::now();
    // The admission-anchored budget and timings apply only to the
    // connection's first request; later requests on a kept-alive
    // connection are each fresh and anchor at their own line read --
    // otherwise every request after the budget elapsed would 504 and
    // the latency histogram would absorb the whole connection age.
    const Clock::time_point anchor =
        first_request ? job.admitted : line_read;
    const bool was_first = first_request;
    first_request = false;
    const std::string response =
        respond_line(line, anchor, line_read, was_first, conn, seq++);
    if (!send_all(job.fd, response + "\n")) break;
  }
  ::close(job.fd);
}

int Server::maybe_subscribe(int fd, const std::string& line) {
  // Cheap pre-filter: almost every request line lacks the literal and
  // skips the extra parse entirely.
  if (line.find("subscribe") == std::string::npos) return 0;
  Json request;
  try {
    request = parse_json(line);
  } catch (const std::exception&) {
    return 0;  // respond_line produces the canonical 400
  }
  if (!request.is_object()) return 0;
  const Json* method = request.find("method");
  if (method == nullptr || !method->is_string() ||
      method->as_string() != "subscribe") {
    return 0;
  }
  const Json* id_member = request.find("id");
  const Json id = id_member != nullptr ? *id_member : Json();

  double interval_ms = 500.0;
  const Json* params = request.find("params");
  if (params != nullptr && !params->is_object() && !params->is_null()) {
    (void)send_all(fd, make_error_response(
                           id, ErrorCode::kBadRequest,
                           "'params' must be an object when present")
                               .dump() +
                           "\n");
    return 2;
  }
  if (params != nullptr && params->is_object()) {
    if (const Json* v = params->find("interval_ms"); v != nullptr) {
      if (!v->is_number() || !(v->as_number() >= 10.0) ||
          !(v->as_number() <= 60000.0)) {
        (void)send_all(
            fd, make_error_response(
                    id, ErrorCode::kBadRequest,
                    "param 'interval_ms' must be a number in [10, 60000]")
                        .dump() +
                    "\n");
        return 2;
      }
      interval_ms = v->as_number();
    }
  }

  Json result = Json::object();
  result.set("subscribed", Json(true));
  result.set("process", Json(config_.telemetry_process.empty()
                                 ? "upa_served:" + std::to_string(port_)
                                 : config_.telemetry_process));
  result.set("interval_ms", Json(interval_ms));
  const std::string ack = make_result_response(id, std::move(result)).dump();
  if (telemetry_ == nullptr ||
      !telemetry_->add_subscriber(fd, interval_ms / 1000.0, ack)) {
    (void)send_all(fd, make_error_response(
                           id, ErrorCode::kQueueFull,
                           "telemetry subscriber limit reached")
                               .dump() +
                           "\n");
    return 2;
  }
  return 1;
}

bool Server::park_for_next_request(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  parked_fds_.push_back(fd);
  return true;
}

void Server::unpark(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = parked_fds_.begin(); it != parked_fds_.end(); ++it) {
    if (*it == fd) {
      parked_fds_.erase(it);
      return;
    }
  }
}

std::string Server::respond_line(const std::string& line,
                                 Clock::time_point anchor,
                                 Clock::time_point line_read,
                                 bool first_request, std::uint64_t conn,
                                 std::uint64_t seq) {
  const double queue_wait = seconds_between(anchor, line_read);
  RequestObservation observation;
  observation.first_request = first_request;
  observation.queue_wait_seconds = queue_wait;
  observation.conn = conn;
  observation.seq = seq;

  Json request;
  bool parsed = true;
  try {
    request = parse_json(line);
  } catch (const std::exception&) {
    parsed = false;
  }

  std::string method = "?";
  Json id;
  if (parsed) {
    if (const Json* m = request.find("method");
        m != nullptr && m->is_string()) {
      method = m->as_string();
    }
    if (const Json* i = request.find("id"); i != nullptr) id = *i;
    try {
      if (const auto context = parse_trace_context(request); context) {
        observation.has_trace = true;
        observation.trace_id = context->trace_id;
        observation.parent_span = context->span_id;
        observation.sampled = context->sampled;
      }
    } catch (const common::ModelError&) {
      // Malformed trace member: dispatch() below produces the 400; the
      // request is recorded without linkage attrs.
    }
  }

  // Effective deadline: the server-wide budget counts from the request
  // anchor (connection admission for a connection's first request, line
  // read for later ones); a request-level `deadline_ms` counts from
  // when its line was read and can only tighten the budget.
  Clock::time_point deadline = Clock::time_point::max();
  if (config_.deadline_seconds > 0.0) {
    deadline = anchor + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                config_.deadline_seconds));
  }
  if (parsed) {
    if (const Json* ms = request.find("deadline_ms");
        ms != nullptr && ms->is_number() && ms->as_number() > 0.0) {
      const auto request_deadline =
          line_read + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(ms->as_number() /
                                                        1000.0));
      if (request_deadline < deadline) deadline = request_deadline;
    }
  }

  int code = 200;
  std::string response;
  if (!parsed) {
    protocol_errors_.fetch_add(1);
    code = ErrorCode::kBadRequest;
    response = make_error_response(Json(), code,
                                   "request line is not valid JSON")
                   .dump();
  } else if (Clock::now() > deadline) {
    // Spent its whole budget waiting in the queue.
    deadline_missed_.fetch_add(1);
    code = ErrorCode::kDeadlineExceeded;
    response = make_error_response(id, code,
                                   "deadline exceeded before dispatch")
                   .dump();
  } else {
    observation.has_handler = true;
    observation.handler_begin = seconds_between(anchor, Clock::now());
    Json envelope = dispatcher_.dispatch(request);
    observation.handler_end = seconds_between(anchor, Clock::now());
    if (const Json* err = envelope.find("error"); err != nullptr) {
      if (const Json* c = err->find("code"); c != nullptr) {
        code = static_cast<int>(c->as_number());
      }
    }
    if (Clock::now() > deadline) {
      // Computed, but past the budget: the client contract is a 504,
      // even though the work was done (counted as a miss either way).
      deadline_missed_.fetch_add(1);
      code = ErrorCode::kDeadlineExceeded;
      response = make_error_response(
                     id, code, "deadline exceeded during evaluation")
                     .dump();
    } else {
      observation.has_serialize = true;
      observation.serialize_begin = seconds_between(anchor, Clock::now());
      response = envelope.dump();
      observation.serialize_end = seconds_between(anchor, Clock::now());
    }
  }
  requests_.fetch_add(1);

  observation.method = method;
  observation.code = code;
  observation.latency_seconds = seconds_between(anchor, Clock::now());
  observe_request(observation);
  return response;
}

void Server::observe_request(const RequestObservation& o) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_.record(o.latency_seconds);
  if (o.has_handler) {
    // Pure handler wall time: the controller's nu-hat numerator is
    // handled_requests_ / busy_seconds_, free of queue-wait bias.
    busy_seconds_ += o.handler_end - o.handler_begin;
    ++handled_requests_;
  }
  auto by_method = latency_by_method_.find(o.method);
  if (by_method == latency_by_method_.end()) {
    by_method = latency_by_method_.find("other");
  }
  by_method->second.record(o.latency_seconds);
  obs::Observer* ob = config_.obs;
  if (ob == nullptr) return;
  ob->metrics.counter("serve.requests").add(1);
  ob->metrics.counter("serve.code." + std::to_string(o.code)).add(1);
  const double end = ob->tracer.wall_now();
  const double start = end - o.latency_seconds;
  const obs::SpanId id =
      ob->tracer.begin(obs::SpanLevel::kServeRequest, o.method, start,
                       obs::TimeDomain::kWallSeconds);
  ob->tracer.attr(id, "code", static_cast<double>(o.code));
  ob->tracer.attr(id, "queue_wait_seconds", o.queue_wait_seconds);
  if (config_.trace && o.sampled) {
    // Cross-process linkage + session-mining attrs, then retrospective
    // phase children. The whole batch lands under one latency_mutex_
    // hold, so a telemetry subscriber's span cursor never splits it.
    if (o.has_trace) {
      ob->tracer.attr(id, "trace_id", o.trace_id);
      ob->tracer.attr(id, "parent_span",
                      static_cast<double>(o.parent_span));
    }
    ob->tracer.attr(id, "conn", static_cast<double>(o.conn));
    ob->tracer.attr(id, "seq", static_cast<double>(o.seq));
    const auto clamp = [&o](double offset) {
      if (offset < 0.0) return 0.0;
      return offset > o.latency_seconds ? o.latency_seconds : offset;
    };
    const auto phase = [&](const char* name, double begin_offset,
                           double end_offset) {
      const double b = clamp(begin_offset);
      const double e = clamp(end_offset) < b ? b : clamp(end_offset);
      const obs::SpanId child =
          ob->tracer.begin(obs::SpanLevel::kServePhase, name, start + b,
                           obs::TimeDomain::kWallSeconds, id);
      ob->tracer.end(child, start + e);
    };
    phase(o.first_request ? "admission_wait" : "queue_wait", 0.0,
          o.queue_wait_seconds);
    if (o.has_handler) phase("handler", o.handler_begin, o.handler_end);
    if (o.has_serialize) {
      phase("serialize", o.serialize_begin, o.serialize_end);
    }
  }
  ob->tracer.end(id, end);
}

}  // namespace upa::serve
