#pragma once
// Parameter sweeps: evaluate a measure over a grid of one or two
// parameters and collect the series. This is the engine behind the
// paper's Figures 11/12 (N_W x lambda x alpha) and Table 8 (N_F sweep).

#include <functional>
#include <string>
#include <vector>

namespace upa::sensitivity {

/// One swept series: a label plus (x, y) points.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Evaluates `measure` at each x value.
[[nodiscard]] Series sweep(std::string label, const std::vector<double>& xs,
                           const std::function<double(double)>& measure);

/// Evaluates `measure(x, s)` for each series parameter s, producing one
/// Series per s (labels come from `series_labels`).
[[nodiscard]] std::vector<Series> sweep_family(
    const std::vector<double>& xs, const std::vector<double>& series_params,
    const std::vector<std::string>& series_labels,
    const std::function<double(double, double)>& measure);

/// Finite-difference derivative of `measure` at x (central difference).
[[nodiscard]] double derivative_at(const std::function<double(double)>& measure,
                                   double x, double relative_step = 1e-6);

/// Checks a series for monotone decrease; returns the first index where
/// it increases, or -1 when monotone (used to locate the Figure 12
/// coverage-induced reversal).
[[nodiscard]] std::ptrdiff_t first_increase(const Series& series);

}  // namespace upa::sensitivity
