#pragma once
// Explicit resource-level reliability block diagrams of the paper's two
// architectures (Figures 7 and 8). These give a second, structural route
// to the internal-service availabilities of Tables 4/5 (cross-checked in
// tests) and enable component-importance analysis on the physical
// resources ("which box should the TA provider upgrade first?").

#include "upa/rbd/block.hpp"
#include "upa/rbd/importance.hpp"
#include "upa/ta/params.hpp"

namespace upa::ta {

/// Component names used in the architecture diagrams (keys of the
/// ParamMap below): "net", "lan", "ws#i", "cas#i", "cds#i", "disk#i",
/// "flight#i", "hotel#i", "car#i", "payment".
struct ArchitectureRbd {
  /// Full structure: every internal and external resource required for
  /// the *Search* function (the paper's most resource-hungry function,
  /// minus performance effects which RBDs cannot express).
  rbd::Block search_path;
  /// Internal infrastructure only: net, LAN, web farm, AS, DS.
  rbd::Block internal;
  /// Availability of every component, per the parameters.
  rbd::ParamMap availabilities;
};

/// Builds the basic (Figure 7) diagram: one host per server, single
/// disks, N_F/N_H/N_C external systems in parallel per trip item.
[[nodiscard]] ArchitectureRbd basic_architecture_rbd(const TaParameters& p);

/// Builds the redundant (Figure 8) diagram: N_W web servers in parallel,
/// 2 application servers, 2 database servers with 2 mirrored disks.
/// NOTE: web-server hosts appear with their steady availability
/// mu/(mu+lambda); queueing losses are outside RBD semantics, so the
/// web-farm block here reflects only hardware/software failures.
[[nodiscard]] ArchitectureRbd redundant_architecture_rbd(
    const TaParameters& p);

/// Importance ranking of the physical resources for the Search path.
[[nodiscard]] std::vector<rbd::ComponentImportance>
resource_importance_ranking(const ArchitectureRbd& architecture);

}  // namespace upa::ta
