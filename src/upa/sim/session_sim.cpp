#include "upa/sim/session_sim.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/sim/rng.hpp"

namespace upa::sim {

SessionSimResult simulate_sessions(const linalg::Matrix& transition,
                                   std::size_t start, std::size_t exit,
                                   const WorldSampler& world,
                                   const SessionSimOptions& options) {
  const std::size_t n = transition.rows();
  UPA_REQUIRE(transition.cols() == n, "transition matrix must be square");
  UPA_REQUIRE(start < n && exit < n && start != exit,
              "invalid start/exit states");
  UPA_REQUIRE(world != nullptr, "world sampler must be provided");
  UPA_REQUIRE(options.sessions > 0 && options.replications >= 2,
              "need sessions and at least two replications");
  for (std::size_t r = 0; r < n; ++r) {
    if (r == exit) continue;  // exit row may be absorbing or anything
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) sum += transition(r, c);
    UPA_REQUIRE(std::abs(sum - 1.0) <= 1e-9,
                "transition row " + std::to_string(r) + " must sum to 1");
  }

  Xoshiro256 master(options.seed);
  std::vector<double> replication_availability;
  replication_availability.reserve(options.replications);
  std::vector<double> total_visits(n, 0.0);
  double total_function_count = 0.0;

  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    Xoshiro256 rng = master.split();
    double success_sum = 0.0;
    for (std::uint64_t s = 0; s < options.sessions; ++s) {
      const std::vector<double> availability = world(rng);
      UPA_REQUIRE(availability.size() == n,
                  "world must return one availability per state");
      std::vector<bool> visited(n, false);
      std::size_t state = start;
      double success = 1.0;
      std::uint64_t steps = 0;
      while (state != exit) {
        UPA_REQUIRE(++steps <= options.max_steps_per_session,
                    "session did not reach Exit; profile may be absorbing");
        // Move to the next state.
        double u = rng.uniform01();
        std::size_t next = exit;
        for (std::size_t c = 0; c < n; ++c) {
          const double p = transition(state, c);
          if (u < p) {
            next = c;
            break;
          }
          u -= p;
        }
        state = next;
        if (state == exit) break;
        total_visits[state] += 1.0;
        if (!visited[state]) {
          visited[state] = true;
          total_function_count += 1.0;
          success *= availability[state];  // conditional expectation
        }
      }
      success_sum += success;
    }
    replication_availability.push_back(
        success_sum / static_cast<double>(options.sessions));
  }

  SessionSimResult result;
  result.perceived_availability = confidence_interval(
      replication_availability, options.confidence_level);
  const double total_sessions =
      static_cast<double>(options.sessions) *
      static_cast<double>(options.replications);
  result.mean_functions_per_session = total_function_count / total_sessions;
  result.mean_visits.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.mean_visits[i] = total_visits[i] / total_sessions;
  }
  return result;
}

}  // namespace upa::sim
