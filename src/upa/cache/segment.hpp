#pragma once
// Append-only, checksummed, version-tagged segment files: the on-disk
// unit of the evaluation cache's persistent tier, and the blob format
// the `cache export` / `cache import` RPC verbs ship between replicas.
//
// Layout (all integers little-endian):
//
//   +--------------------------------------------------------------+
//   | header                                                       |
//   |   magic            8 bytes   "UPACSEG1"                      |
//   |   format_version   u32       layout version of THIS table    |
//   |   tag_length       u32                                       |
//   |   tag              bytes     solver-version tag              |
//   +--------------------------------------------------------------+
//   | record (repeated)                                            |
//   |   payload_length   u32                                       |
//   |   payload_crc32    u32       IEEE CRC-32 of the payload      |
//   |   payload:                                                   |
//   |     type_tag       string    codec tag ("f64", ...)          |
//   |     key_bytes      string    canonical KeyBuilder bytes      |
//   |     value_bytes    string    codec-serialized value          |
//   |   (strings are u64 length-prefixed, see serialize.hpp)       |
//   +--------------------------------------------------------------+
//
// Failure semantics, in decreasing blast radius:
//  - magic / format_version / tag mismatch rejects the WHOLE segment
//    (a different layout or a different solver generation must never
//    replay a wrong answer -- at worst everything is recomputed);
//  - a record whose CRC does not match its payload is skipped and
//    counted (a flipped byte loses one record, not the file);
//  - an incomplete record at the end of the file -- the torn tail a
//    kill -9 mid-append leaves behind -- ends the parse silently; the
//    bytes before it all load.
//
// Appends flush after every record, so the only unreadable suffix a
// crash can leave is the one record being written.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

namespace upa::cache {

inline constexpr std::string_view kSegmentMagic = "UPACSEG1";
inline constexpr std::uint32_t kSegmentFormatVersion = 1;
/// Generation tag of the whole solver stack. Per-solver formula versions
/// already live inside every key's bytes (KeyBuilder embeds them), so
/// this tag guards what the keys cannot: the key canonicalization scheme
/// and the value codecs themselves. Bump it when either changes shape.
inline constexpr std::string_view kSolverVersionTag = "upa-solvers-v1";
inline constexpr std::string_view kSegmentExtension = ".upaseg";

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320).
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

struct SegmentRecord {
  std::string type_tag;
  std::string key_bytes;
  std::string value_bytes;
};

/// Serialized header with the given version/tag (parameters exist so
/// tests can fabricate mismatching segments).
[[nodiscard]] std::string segment_header(
    std::uint32_t format_version = kSegmentFormatVersion,
    std::string_view tag = kSolverVersionTag);

/// One framed record: payload length + CRC + payload.
[[nodiscard]] std::string encode_record(const SegmentRecord& record);

/// Decodes one CRC-valid record payload (the bytes a frame wraps);
/// false when it is structurally wrong -- same bucket as corruption.
bool parse_record_payload(std::string_view payload, SegmentRecord* out);

struct SegmentLoadStats {
  std::size_t segments_loaded = 0;
  std::size_t segments_rejected = 0;  ///< magic/version/tag mismatch
  std::uint64_t records_loaded = 0;
  std::uint64_t records_skipped_crc = 0;
  std::uint64_t torn_tail_bytes = 0;  ///< incomplete trailing record
};

/// Parses one segment's bytes, handing every CRC-valid record to
/// `on_record`. Returns false (and counts segments_rejected) when the
/// header is missing, has the wrong magic, or carries a different
/// format version or solver-version tag.
bool load_segment_bytes(
    std::string_view bytes, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record);

/// Read-only view of a segment file. Prefers mmap (attach cost is page
/// tables, not a copy of the file); when the mapping fails -- no mmap on
/// the filesystem, ENOMEM, ... -- the file stays open and `read_at`
/// serves bounded pread slices, so neither path ever buffers a whole
/// multi-gigabyte segment in an std::string.
class MappedFile {
 public:
  MappedFile() = default;
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// False when the file could not be opened or stat'd.
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }
  /// True when the contents are memory-mapped (view() is usable).
  [[nodiscard]] bool mapped() const noexcept { return map_ != nullptr; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  /// The whole file when mapped; empty otherwise.
  [[nodiscard]] std::string_view view() const noexcept;
  /// Copies [offset, offset+length) into `out` via the mapping or
  /// pread. Returns false on a short or failed read.
  bool read_at(std::uint64_t offset, void* out, std::size_t length) const;
  /// read_at into a string (resized to `length`).
  bool read_at(std::uint64_t offset, std::size_t length,
               std::string* out) const;

 private:
  void reset() noexcept;

  int fd_ = -1;
  void* map_ = nullptr;
  std::uint64_t size_ = 0;
};

/// Parses an open segment through `file` -- zero-copy over the mapping,
/// bounded per-record reads in the pread fallback. Same stats and
/// failure semantics as load_segment_bytes.
bool load_segment_mapped(
    const MappedFile& file, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record);

/// File wrapper around load_segment_mapped. An unreadable file counts
/// as a rejected segment.
bool load_segment_file(
    const std::string& path, SegmentLoadStats& stats,
    const std::function<void(SegmentRecord&&)>& on_record);

/// The active segment a process appends to: created eagerly with a
/// fresh header, appended record by record with a flush after each so a
/// kill -9 loses at most the record in flight.
class SegmentFile {
 public:
  /// Creates `path` (truncating any stale file of the same name) and
  /// writes the header. Throws ModelError when the file cannot be
  /// created or written.
  explicit SegmentFile(std::string path);
  ~SegmentFile();

  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;

  /// Appends one framed record and flushes. Throws ModelError on write
  /// failure (disk full, ...).
  void append(const SegmentRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
};

}  // namespace upa::cache
